// Grid relaxation (Jacobi heat diffusion): the same computation under
// the classic hard-wired fork-join and under parmap (§9.2 dynamic
// parallelism) — both bitwise-identical to the sequential sweep.
//
//   $ ./grid_demo [size] [steps] [workers]
#include <cstdio>
#include <cstdlib>

#include "src/apps/grid/grid.h"
#include "src/delirium.h"
#include "src/support/clock.h"

using namespace delirium;
using namespace delirium::grid;

int main(int argc, char** argv) {
  GridParams params;
  params.width = params.height = argc > 1 ? std::atoi(argv[1]) : 256;
  params.steps = argc > 2 ? std::atoi(argv[2]) : 32;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;
  params.bands = 4;

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_grid_operators(registry, params);

  Stopwatch sw;
  const Grid reference = sequential_run(params);
  const double seq_ms = sw.elapsed_ms();
  std::printf("sequential: %.1f ms, checksum %.3f\n", seq_ms, checksum(reference));

  Runtime runtime(registry, {.num_workers = workers});
  for (const bool use_parmap : {false, true}) {
    CompiledProgram program = compile_or_throw(
        use_parmap ? grid_source_parmap(params) : grid_source(params), registry);
    sw.reset();
    Value result = runtime.run(program);
    const double ms = sw.elapsed_ms();
    const Grid& grid = result.block_as<Grid>();
    std::printf("%-22s %.1f ms, %s\n",
                use_parmap ? "parmap (dynamic fork):" : "classic (4-way fork):", ms,
                grid.rows == reference.rows ? "bitwise identical" : "MISMATCH");
  }
  return 0;
}
