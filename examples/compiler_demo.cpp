// The parallel compiler case study (§6): compile a generated Delirium
// program with the compiler's passes themselves coordinated by Delirium,
// then execute the compiled output and check it against the sequential
// compiler.
//
//   $ ./compiler_demo [functions] [workers]
#include <cstdio>
#include <cstdlib>

#include "src/apps/dcc/dcc.h"
#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"

using namespace delirium;
using namespace delirium::dcc;

int main(int argc, char** argv) {
  GenParams gen;
  gen.num_functions = argc > 1 ? std::atoi(argv[1]) : 300;
  gen.body_size = 50;
  gen.seed = 7;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  const std::string source = generate_program(gen);
  std::printf("generated program: %zu lines, %zu bytes\n", count_lines(source),
              source.size());

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_dcc_operators(registry, source);

  CompileOptions copts;
  copts.optimize = false;  // the coordination framework is straight-line
  CompiledProgram coordination = compile_or_throw(dcc_coordination_source(), registry, copts);
  std::printf("coordination framework: %zu templates\n", coordination.templates.size());

  Runtime runtime(registry, {.num_workers = workers});
  Value result = runtime.run(coordination);
  DccOutput out = std::move(result.block_mut<DccOutput>());
  if (!out.ok) {
    std::fprintf(stderr, "parallel compile failed:\n%s", out.diagnostics.c_str());
    return 1;
  }
  std::printf("parallel compiler: %zu templates, %zu nodes\n", out.num_templates,
              out.total_nodes);

  // Execute both compilers' outputs: same answer required.
  CompileResult sequential = compile_source("<gen>", source, registry);
  Runtime exec(registry, {.num_workers = 2});
  const int64_t a = exec.run(*out.program).as_int();
  const int64_t b = exec.run(sequential.program).as_int();
  std::printf("compiled program result: %lld (%s)\n", static_cast<long long>(a),
              a == b ? "matches the sequential compiler" : "MISMATCH");
  return a == b ? 0 : 1;
}
