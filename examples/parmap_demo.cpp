// Dynamic parallelism (the §9.2 extension): the paper notes that the
// base model hard-wires the degree of parallelism into the program text
// ("an awkward way to describe high degrees of parallelism [that] cannot
// take into account the load of the system") and that the authors
// generalized the notation in follow-up work. This reproduction's
// parmap(f, package) expands one subgraph per package element at run
// time: the fan-out below comes from the command line, not the source.
//
//   $ ./parmap_demo [pieces] [workers]
#include <cstdio>
#include <cstdlib>

#include "src/delirium.h"

int main(int argc, char** argv) {
  const int pieces = argc > 1 ? std::atoi(argv[1]) : 16;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  delirium::OperatorRegistry registry;
  delirium::register_builtin_operators(registry);

  // Numeric integration of f(x) = 4/(1+x^2) over [0,1] (= pi), split
  // into `pieces` intervals chosen at run time.
  constexpr int64_t kStepsPerPiece = 200000;
  registry.add("intervals", 1, [](delirium::OpContext& ctx) {
    const int64_t n = ctx.arg_int(0);
    std::vector<delirium::Value> elems;
    for (int64_t i = 0; i < n; ++i) {
      elems.push_back(delirium::Value::tuple(
          {delirium::Value::of(i), delirium::Value::of(n)}));
    }
    return delirium::Value::tuple(std::move(elems));
  }).pure();

  registry.add("integrate", 1, [](delirium::OpContext& ctx) {
    const auto& bounds = ctx.arg(0).as_tuple();
    const double piece = static_cast<double>(bounds.elems[0].as_int());
    const double total = static_cast<double>(bounds.elems[1].as_int());
    const double lo = piece / total;
    const double hi = (piece + 1) / total;
    const double h = (hi - lo) / static_cast<double>(kStepsPerPiece);
    double acc = 0;
    for (int64_t s = 0; s < kStepsPerPiece; ++s) {
      const double x = lo + (static_cast<double>(s) + 0.5) * h;
      acc += 4.0 / (1.0 + x * x) * h;
    }
    return delirium::Value::of(acc);
  }).pure();

  registry.add("sum_all", 1, [](delirium::OpContext& ctx) {
    double total = 0;
    for (const delirium::Value& v : ctx.arg(0).as_tuple().elems) total += v.as_float();
    return delirium::Value::of(total);
  }).pure();

  const std::string source =
      "define PIECES = " + std::to_string(pieces) + R"(
piece(bounds) integrate(bounds)
main() sum_all(parmap(piece, intervals(PIECES)))
)";

  delirium::CompiledProgram program = delirium::compile_or_throw(source, registry);
  delirium::Runtime runtime(registry, {.num_workers = workers});
  const delirium::Value result = runtime.run(program);
  std::printf("pi ~= %.10f with %d dynamically-forked pieces on %d workers\n",
              result.as_float(), pieces, workers);
  std::printf("activations created: %llu\n",
              static_cast<unsigned long long>(runtime.last_stats().activations_created));
  return 0;
}
