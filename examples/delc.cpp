// delc: the Delirium command-line compiler.
//
//   delc [options] <file.dlr>
//     --dump-ast      print the tree after macro expansion & optimization
//     --dump-dot      print the coordination graphs as Graphviz DOT
//     --no-opt        disable the optimizer
//     --timings       print per-pass times (Table 1 style)
//     --run           execute main() with the built-in operators
//     --executor E    which engine executes the program: "threaded"
//                     (the default for --run) or "sim" (virtual time);
//                     rewrites --run/--sim onto the chosen engine while
//                     keeping the parallelism degree. The
//                     DELIRIUM_EXECUTOR environment variable overrides
//                     the flag.
//     --workers N     worker threads for --run (default 4)
//     --scheduler S   ready-queue implementation for --run:
//                     "work_stealing" (default) or "global_lock"
//     --affinity M    scheduling affinity for --run and --sim: "none",
//                     "operator" (last-worker memory per operator), or
//                     "data" (follow the biggest input block's home
//                     domain). Never changes values — placement only.
//     --topology SPEC memory topology for the locality cost model:
//                     preset[:key=value,...] with presets
//                     uma|numa2|numa4|cluster|flat and keys
//                     domains|intra|inter|migrate (docs/RUNTIME.md
//                     "Locality model")
//     --stats         with --run or --sim: print the run's RunStats
//                     counters (activations, CoW, scheduler, faults)
//     --inject-faults SPEC
//                     seeded deterministic fault injection for --run and
//                     --sim (grammar in src/runtime/fault.h), e.g.
//                     "incr:throw:every=7:seed=42,print:stall=1000000"
//     --retries N     retry faulting retry-eligible operators up to N
//                     times with exponential backoff
//     --watchdog MS   stall detector: cancel the run and dump stranded
//                     activations after MS milliseconds (wall time under
//                     --run, virtual time under --sim)
//     --instances N   run main() as N concurrent isolated instances over
//                     one shared worker pool (docs/ROBUSTNESS.md
//                     "Isolation model"); works with --run and --sim
//     --admission-cap N
//                     bound on concurrently admitted instances; excess
//                     submissions are shed deterministically with the
//                     structured "overload" outcome
//     --instance-budget SPEC
//                     per-instance ceilings "acts=<n>,ms=<m>" (either
//                     part optional); exceeding one cancels only that
//                     instance and reports "budget_exhausted"
//     --sim N         instead of --run, execute under virtual time on N
//                     simulated processors and report the makespan
//     --trace FILE    with --run or --sim: write the operator timeline as
//                     Chrome tracing JSON (chrome://tracing, Perfetto)
//     --trace-events FILE
//                     with --run or --sim: record the full trace event
//                     stream (operator, scheduler, and fault events) and
//                     write it as Chrome tracing JSON
//     --metrics FILE  with --run or --sim: write RunStats counters and
//                     per-operator duration histograms
//     --metrics-format json|prom
//                     format for --metrics (default json)
//     --profile-out FILE
//                     with --run or --sim: aggregate the run's trace into
//                     per-operator cost histograms and write them as a
//                     versioned JSON calibration profile (forces event
//                     tracing on; docs/PROFILING.md)
//     --profile-in FILE
//                     load a calibration profile: measured costs replace
//                     unit heights in the critical-path scheduling hints
//                     (kill switch DELIRIUM_COST_HINTS=0) and default the
//                     per-instance time budget from the profile p99
//     --plan          replay the loaded profile through the virtual-time
//                     executor across a worker sweep (1..64) and report
//                     predicted makespan, the speedup curve, and the
//                     best/knee worker counts; requires --profile-in and
//                     honors --format text|json
//     --plan-target MS
//                     with --plan: also report the smallest swept worker
//                     count whose predicted makespan meets MS ms
//     --help          print this flag summary and exit
//     --lint          report the sole-consumer analysis: destructive uses
//                     of provably-shared blocks (guaranteed CoW copies)
//                     and provably-unique ones (clone elided)
//     --lint-json     the same findings as machine-readable JSON on stdout
//     --analyze       report the graph-facts table (src/analysis/facts.h):
//                     per-template purity, delivery, heights, constants,
//                     dead parameters, stranded locations, rewrite stats
//     --format F      output format for --analyze: "text" (default) or
//                     "json" (a superset of the --lint-json schema)
//     --verify-graphs run the structural graph verifier even in release
//                     builds; defects are reported as errors
//
// Only built-in operators are available here; applications embed their
// own operators through the library API instead (see the other examples).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/delirium.h"
#include "src/lang/macro.h"
#include "src/runtime/instance.h"
#include "src/runtime/sim.h"
#include "src/support/env.h"
#include "src/support/topology.h"
#include "src/analysis/facts.h"
#include "src/tools/analysis_json.h"
#include "src/tools/metrics.h"
#include "src/tools/profile.h"
#include "src/tools/report.h"
#include "src/tools/trace.h"

namespace {

// The flag list below is the contract checked by tools_test against
// docs/CLI.md: every flag documented there must appear here and vice
// versa.
void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: delc [options] <file.dlr>\n"
      "  --dump-ast                print the tree after macro expansion & optimization\n"
      "  --dump-dot                print the coordination graphs as Graphviz DOT\n"
      "  --no-opt                  disable the optimizer\n"
      "  --timings                 print per-pass compile times\n"
      "  --lint                    report the sole-consumer analysis findings\n"
      "  --lint-json               the same findings as JSON on stdout\n"
      "  --analyze                 report the graph-facts table (purity, heights,\n"
      "                            constants, dead params, stranded locations)\n"
      "  --format text|json        output format for --analyze (default text)\n"
      "  --verify-graphs           run the structural graph verifier\n"
      "  --run                     execute main() with the built-in operators\n"
      "  --executor threaded|sim   which engine executes the program (--executor=E\n"
      "                            also accepted; DELIRIUM_EXECUTOR overrides)\n"
      "  --workers N               worker threads for --run (default 4)\n"
      "  --scheduler work_stealing|global_lock\n"
      "                            ready-queue implementation for --run\n"
      "  --affinity none|operator|data\n"
      "                            scheduling affinity (--affinity=M also accepted;\n"
      "                            DELIRIUM_AFFINITY overrides)\n"
      "  --topology SPEC           memory topology preset[:key=value,...] — presets\n"
      "                            uma|numa2|numa4|cluster|flat, keys\n"
      "                            domains|intra|inter|migrate (--topology=SPEC also\n"
      "                            accepted; DELIRIUM_TOPOLOGY overrides)\n"
      "  --sim N                   execute under virtual time on N simulated processors\n"
      "  --stats                   print the run's RunStats counters\n"
      "  --inject-faults SPEC      deterministic fault injection (src/runtime/fault.h)\n"
      "  --retries N               retry faulting retry-eligible operators up to N times\n"
      "  --watchdog MS             cancel a stalled run after MS milliseconds\n"
      "  --instances N             run main() as N concurrent isolated instances\n"
      "  --admission-cap N         bound on concurrently admitted instances; excess\n"
      "                            submissions are shed with outcome \"overload\"\n"
      "  --instance-budget acts=<n>,ms=<m>\n"
      "                            per-instance ceilings (either part optional);\n"
      "                            exceeding one cancels only that instance\n"
      "  --trace FILE              write the operator timeline as Chrome tracing JSON\n"
      "  --trace-events FILE       record and write the full trace event stream\n"
      "                            (operator, scheduler, and fault events)\n"
      "  --metrics FILE            write RunStats counters and per-operator histograms\n"
      "  --metrics-format json|prom\n"
      "                            format for --metrics (default json)\n"
      "  --profile-out FILE        write the run's per-operator cost histograms as a\n"
      "                            JSON calibration profile (forces event tracing)\n"
      "  --profile-in FILE         load a calibration profile: measured costs sharpen\n"
      "                            the scheduling hints and default instance budgets\n"
      "  --plan                    predict makespan/speedup across a 1..64 virtual\n"
      "                            worker sweep from the loaded profile (--profile-in)\n"
      "  --plan-target MS          with --plan: report the smallest worker count\n"
      "                            whose predicted makespan meets MS milliseconds\n"
      "  --help                    print this flag summary and exit\n"
      "environment: DELIRIUM_EXECUTOR, DELIRIUM_SCHEDULER, DELIRIUM_INJECT_FAULTS,\n"
      "             DELIRIUM_RETRIES, DELIRIUM_TRACE, DELIRIUM_TRACE_CAPACITY,\n"
      "             DELIRIUM_ACTIVATION_POOL, DELIRIUM_GRAPH_FACTS,\n"
      "             DELIRIUM_FACTS_FOLD, DELIRIUM_FACTS_DEADPARAM,\n"
      "             DELIRIUM_FACTS_STRAND, DELIRIUM_FACTS_SOLE,\n"
      "             DELIRIUM_SCHED_HINTS, DELIRIUM_COST_HINTS, DELIRIUM_AFFINITY,\n"
      "             DELIRIUM_TOPOLOGY, DELIRIUM_LOCALITY (see docs/CLI.md)\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string trace_path;
  std::string trace_events_path;
  std::string metrics_path;
  std::string metrics_format = "json";
  std::string profile_out_path;
  std::string profile_in_path;
  bool plan = false;
  long plan_target_ms = 0;
  std::string fault_spec;
  std::string executor;  // "", "threaded", or "sim"
  bool dump_ast = false, dump_dot = false, no_opt = false, timings = false, run = false;
  bool lint = false, lint_json = false, verify_graphs = false, stats = false;
  bool analyze = false;
  std::string analyze_format = "text";
  int workers = 4;
  int sim_procs = 0;
  int retries = 0;
  long watchdog_ms = 0;
  int instances = 0;
  long admission_cap = 0;
  delirium::InstanceBudget instance_budget;
  delirium::SchedulerKind scheduler = delirium::SchedulerKind::kWorkStealing;
  std::string affinity;       // "", "none", "operator", or "data"
  std::string topology_spec;  // "" = the config default (uma)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump-ast") dump_ast = true;
    else if (arg == "--dump-dot") dump_dot = true;
    else if (arg == "--no-opt") no_opt = true;
    else if (arg == "--timings") timings = true;
    else if (arg == "--run") run = true;
    else if (arg == "--lint") lint = true;
    else if (arg == "--lint-json") lint_json = true;
    else if (arg == "--analyze") analyze = true;
    else if (arg == "--format" && i + 1 < argc) {
      analyze_format = argv[++i];
      if (analyze_format != "text" && analyze_format != "json") return usage();
    }
    else if (arg == "--verify-graphs") verify_graphs = true;
    else if (arg == "--stats") stats = true;
    else if (arg == "--executor" && i + 1 < argc) executor = argv[++i];
    else if (arg.rfind("--executor=", 0) == 0) executor = arg.substr(sizeof("--executor=") - 1);
    else if (arg == "--workers" && i + 1 < argc) workers = std::atoi(argv[++i]);
    else if (arg == "--scheduler" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "work_stealing") scheduler = delirium::SchedulerKind::kWorkStealing;
      else if (mode == "global_lock") scheduler = delirium::SchedulerKind::kGlobalLock;
      else return usage();
    }
    else if (arg == "--affinity" && i + 1 < argc) affinity = argv[++i];
    else if (arg.rfind("--affinity=", 0) == 0) affinity = arg.substr(sizeof("--affinity=") - 1);
    else if (arg == "--topology" && i + 1 < argc) topology_spec = argv[++i];
    else if (arg.rfind("--topology=", 0) == 0) topology_spec = arg.substr(sizeof("--topology=") - 1);
    else if (arg == "--help") {
      print_usage(stdout);
      return 0;
    }
    else if (arg == "--sim" && i + 1 < argc) sim_procs = std::atoi(argv[++i]);
    else if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (arg == "--trace-events" && i + 1 < argc) trace_events_path = argv[++i];
    else if (arg == "--metrics" && i + 1 < argc) metrics_path = argv[++i];
    else if (arg == "--metrics-format" && i + 1 < argc) {
      metrics_format = argv[++i];
      if (metrics_format != "json" && metrics_format != "prom") return usage();
    }
    else if (arg == "--profile-out" && i + 1 < argc) profile_out_path = argv[++i];
    else if (arg == "--profile-in" && i + 1 < argc) profile_in_path = argv[++i];
    else if (arg == "--plan") plan = true;
    else if (arg == "--plan-target" && i + 1 < argc) plan_target_ms = std::atol(argv[++i]);
    else if (arg == "--inject-faults" && i + 1 < argc) fault_spec = argv[++i];
    else if (arg == "--retries" && i + 1 < argc) retries = std::atoi(argv[++i]);
    else if (arg == "--watchdog" && i + 1 < argc) watchdog_ms = std::atol(argv[++i]);
    else if (arg == "--instances" && i + 1 < argc) instances = std::atoi(argv[++i]);
    else if (arg == "--admission-cap" && i + 1 < argc) admission_cap = std::atol(argv[++i]);
    else if (arg == "--instance-budget" && i + 1 < argc) {
      // "acts=<n>,ms=<m>" — either part optional, unknown keys rejected.
      std::string spec = argv[++i];
      size_t pos = 0;
      while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        const std::string part = spec.substr(pos, comma - pos);
        const size_t eq = part.find('=');
        const std::string key = eq == std::string::npos ? part : part.substr(0, eq);
        const long v = eq == std::string::npos ? -1 : std::atol(part.c_str() + eq + 1);
        if (key == "acts" && v > 0) {
          instance_budget.max_activations = static_cast<uint64_t>(v);
        } else if (key == "ms" && v > 0) {
          instance_budget.time_budget_ns = v * 1000000;
        } else {
          std::fprintf(stderr, "delc: bad --instance-budget part '%s' (acts=<n>,ms=<m>)\n",
                       part.c_str());
          return usage();
        }
        pos = comma + 1;
      }
    }
    else if (!arg.empty() && arg[0] == '-') return usage();
    else path = arg;
  }
  if (path.empty()) return usage();

  // DELIRIUM_EXECUTOR overrides the --executor flag, mirroring how the
  // runtime's own env knobs (DELIRIUM_SCHEDULER, ...) win over config.
  // The shared parser rejects bad spellings naming the variable and the
  // offending value instead of silently ignoring them.
  try {
    if (delirium::env_raw("DELIRIUM_EXECUTOR").has_value()) {
      executor = delirium::env_choice("DELIRIUM_EXECUTOR", {"threaded", "sim"}, 0) == 0
                     ? "threaded"
                     : "sim";
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "delc: %s\n", e.what());
    return 2;
  }
  if (!executor.empty() && executor != "threaded" && executor != "sim") {
    std::fprintf(stderr, "delc: unknown executor '%s' (threaded|sim)\n", executor.c_str());
    return usage();
  }
  // The choice rewrites --run/--sim onto the selected engine, keeping
  // the requested parallelism degree.
  if (executor == "sim" && run) {
    if (sim_procs <= 0) sim_procs = workers;
    run = false;
  } else if (executor == "threaded" && sim_procs > 0) {
    workers = sim_procs;
    sim_procs = 0;
    run = true;
  }

  // Locality knobs, shared by both executors through the ExecConfig base
  // slice. The flags only *set* the config; DELIRIUM_AFFINITY /
  // DELIRIUM_TOPOLOGY still win inside apply_exec_env_overrides, like
  // every other runtime env knob.
  if (!affinity.empty() && affinity != "none" && affinity != "operator" &&
      affinity != "data") {
    std::fprintf(stderr, "delc: unknown affinity '%s' (none|operator|data)\n",
                 affinity.c_str());
    return usage();
  }
  delirium::MemoryTopology topology;
  bool have_topology = false;
  if (!topology_spec.empty()) {
    try {
      topology = delirium::parse_topology(topology_spec, "--topology");
      have_topology = true;
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "delc: %s\n", e.what());
      return 2;
    }
  }
  const auto apply_locality_flags = [&](delirium::ExecConfig& config) {
    if (affinity == "none") config.affinity = delirium::AffinityMode::kNone;
    else if (affinity == "operator") config.affinity = delirium::AffinityMode::kOperator;
    else if (affinity == "data") config.affinity = delirium::AffinityMode::kData;
    if (have_topology) config.topology = topology;
  };

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "delc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  delirium::OperatorRegistry registry;
  delirium::register_builtin_operators(registry);
  if (!fault_spec.empty()) {
    try {
      registry.set_fault_plan(
          std::make_shared<const delirium::FaultPlan>(delirium::FaultPlan::parse(fault_spec)));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "delc: %s\n", e.what());
      return 2;
    }
  }

  delirium::CompileOptions options;
  options.optimize = !no_opt;
  options.verify = verify_graphs;

  if (dump_ast) {
    // Re-run the front half to show the tree (the compile result below
    // only carries graphs).
    delirium::SourceFile file(path, buffer.str());
    delirium::DiagnosticEngine diags;
    delirium::AstContext ctx;
    delirium::Program program = delirium::parse_source(file, ctx, diags);
    delirium::expand_macros(program, ctx, diags);
    if (diags.has_errors()) {
      diags.print(std::cerr, file);
      return 1;
    }
    if (!no_opt) {
      const auto analysis = delirium::analyze_environment(program, registry, diags);
      delirium::optimize_program(program, ctx, registry, analysis);
    }
    delirium::print_program(std::cout, program);
  }

  delirium::CompileResult result =
      delirium::compile_source(path, buffer.str(), registry, options);
  if (!result.ok) {
    std::fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }
  std::fprintf(stderr, "delc: %zu templates, %zu graph nodes, %zu AST nodes\n",
               result.program.templates.size(), result.program.total_nodes(),
               result.ast_nodes);
  if (verify_graphs) {
    std::fprintf(stderr, "delc: graph verifier: all templates well-formed\n");
  }

  if (analyze) {
    delirium::SourceFile file(path, buffer.str());
    const std::string report = analyze_format == "json"
                                   ? delirium::tools::render_analysis_json(result, file)
                                   : delirium::tools::render_analysis_text(result, file);
    std::fputs(report.c_str(), stdout);
  }

  if (lint || lint_json) {
    delirium::SourceFile file(path, buffer.str());
    if (lint_json) {
      std::fputs(
          delirium::tools::render_lint_json(result.lint, result.sole_consumer, file).c_str(),
          stdout);
    }
    if (lint) {
      delirium::DiagnosticEngine lint_diags;
      for (const delirium::LintFinding& f : result.lint) {
        lint_diags.add(f.cls == delirium::ConsumeClass::kShared ? delirium::Severity::kWarning
                                                                : delirium::Severity::kNote,
                       f.range, f.message);
      }
      lint_diags.print(std::cout, file);
      const auto& s = result.sole_consumer;
      std::printf("delint: %zu destructive edge(s): %zu unique, %zu shared, %zu unknown\n",
                  s.destructive_edges, s.unique_edges, s.shared_edges, s.unknown_edges);
    }
  }

  if (timings) {
    const auto& t = result.timings;
    std::printf("pass timings (ms):\n");
    std::printf("  %-18s %8.2f\n", "Lexing", t.lex_ms);
    std::printf("  %-18s %8.2f\n", "Parsing", t.parse_ms);
    std::printf("  %-18s %8.2f\n", "Macro Expansion", t.macro_ms);
    std::printf("  %-18s %8.2f\n", "Env Analysis", t.env_ms);
    std::printf("  %-18s %8.2f\n", "Optimization", t.opt_ms);
    std::printf("  %-18s %8.2f\n", "Graph Conversion", t.graph_ms);
    std::printf("  %-18s %8.2f\n", "Total", t.total_ms());
  }

  if (dump_dot) {
    delirium::write_program_dot(std::cout, result.program);
  }

  // Feedback scheduling (docs/PROFILING.md): a loaded calibration
  // profile re-marks the critical path with measured costs, so the
  // long-pole operators launch first in both executors.
  delirium::tools::CostProfile profile_in;
  bool have_profile = false;
  if (!profile_in_path.empty()) {
    try {
      profile_in = delirium::tools::load_cost_profile_file(profile_in_path);
      have_profile = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "delc: %s\n", e.what());
      return 2;
    }
    if (result.has_facts) {
      const size_t marked = delirium::apply_sched_hints(
          result.program, result.facts, delirium::tools::to_cost_model(profile_in));
      std::fprintf(stderr, "delc: cost hints: %zu node(s) marked from %s\n", marked,
                   profile_in_path.c_str());
    }
  }

  // Capacity planning: replay the profile through the virtual-time
  // executor across the worker sweep. Byte-deterministic for a given
  // (program, profile) — the --scheduler/--workers/--executor flags do
  // not enter the simulation.
  if (plan) {
    if (!have_profile) {
      std::fprintf(stderr, "delc: --plan requires --profile-in FILE\n");
      return usage();
    }
    try {
      const delirium::tools::CapacityPlan p = delirium::tools::plan_capacity(
          result.program, registry, profile_in, delirium::tools::default_plan_workers(),
          plan_target_ms * 1000000);
      std::fputs((analyze_format == "json" ? delirium::tools::render_plan_json(p, path)
                                           : delirium::tools::render_plan_text(p, path))
                     .c_str(),
                 stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "delc: plan failed: %s\n", e.what());
      return 1;
    }
  }

  // A loaded profile also defaults the per-instance time budget for
  // admission control: an upper envelope of one instance's work
  // (headroomed p99 sum, see budget_from_profile), scaled by the
  // instance count since co-tenant instances share one machine.
  if (have_profile && instances > 0 && instance_budget.time_budget_ns == 0) {
    const int64_t budget =
        delirium::tools::budget_from_profile(profile_in) * instances;
    if (budget > 0) {
      instance_budget.time_budget_ns = budget;
      std::fprintf(stderr, "delc: instance time budget defaulted to %lld ns (profile p99)\n",
                   static_cast<long long>(budget));
    }
  }

  // Multi-instance mode (docs/ROBUSTNESS.md "Isolation model"): submit
  // main() N times to one shared machine and report per-instance
  // outcomes. Exit 1 only when *no* instance completed — faults, budget
  // kills, and shed requests are contained, structured outcomes.
  auto run_instance_mode = [&](delirium::InstanceManager& mgr) -> int {
    for (int k = 0; k < instances; ++k) {
      delirium::InstanceRequest req;
      req.program = &result.program;
      req.budget = instance_budget;
      mgr.submit(req);
    }
    const std::vector<delirium::InstanceResult> outcomes = mgr.wait_all();
    for (const delirium::InstanceResult& r : outcomes) {
      if (r.outcome == delirium::InstanceOutcome::kCompleted) {
        std::printf("result: %s\n", r.value.to_display_string().c_str());
        break;
      }
    }
    for (const delirium::InstanceResult& r : outcomes) {
      if (r.outcome == delirium::InstanceOutcome::kCompleted) continue;
      std::fprintf(stderr, "delc: instance %llu %s: %s\n",
                   static_cast<unsigned long long>(r.id),
                   delirium::instance_outcome_name(r.outcome),
                   r.error.substr(0, r.error.find('\n')).c_str());
    }
    const delirium::InstanceCounters c = mgr.counters();
    std::printf(
        "instances: %d submitted, %llu completed, %llu faulted, %llu budget-killed, "
        "%llu shed\n",
        instances, static_cast<unsigned long long>(c.completed),
        static_cast<unsigned long long>(c.faulted),
        static_cast<unsigned long long>(c.budget_killed),
        static_cast<unsigned long long>(c.shed));
    if (stats) delirium::tools::print_run_stats(std::cout, mgr.stats());
    if (!metrics_path.empty()) {
      delirium::tools::MetricsRegistry metrics;
      metrics.observe_run(mgr.stats(), {});
      metrics.observe_instances(c, mgr.latencies());
      if (metrics.write_file(metrics_path, metrics_format)) {
        std::fprintf(stderr, "delc: wrote metrics to %s\n", metrics_path.c_str());
      }
    }
    return c.completed > 0 ? 0 : 1;
  };
  delirium::InstanceManagerConfig imconfig;
  imconfig.admission_capacity = admission_cap > 0 ? static_cast<size_t>(admission_cap) : 0;
  imconfig.default_budget = instance_budget;
  imconfig.track_busy_workers = instance_budget.time_budget_ns > 0;

  if (sim_procs > 0) {
    delirium::SimConfig config;
    config.num_procs = sim_procs;
    config.enable_node_timing = !trace_path.empty() || !metrics_path.empty();
    config.enable_tracing = !trace_events_path.empty() || !profile_out_path.empty();
    config.max_retries = retries;
    config.watchdog_budget_ns = watchdog_ms * 1000000;
    apply_locality_flags(config);
    try {
      delirium::SimRuntime sim(registry, config);
      if (instances > 0) {
        delirium::InstanceManager mgr(sim, imconfig);
        return run_instance_mode(mgr);
      }
      const delirium::SimResult r = sim.run(result.program);
      std::printf("result: %s\n", r.result.to_display_string().c_str());
      std::printf("virtual makespan on %d processors: %.3f ms (busy %.3f ms)\n", sim_procs,
                  static_cast<double>(r.makespan) / 1e6,
                  static_cast<double>(r.total_busy) / 1e6);
      if (stats) delirium::tools::print_run_stats(std::cout, r.stats);
      if (!trace_path.empty() &&
          delirium::tools::write_chrome_trace_file(trace_path, r.timings)) {
        std::fprintf(stderr, "delc: wrote trace to %s\n", trace_path.c_str());
      }
      if (!trace_events_path.empty() &&
          delirium::tools::write_trace_events_file(trace_events_path, r.trace_events,
                                                   registry)) {
        std::fprintf(stderr, "delc: wrote trace events to %s\n",
                     trace_events_path.c_str());
      }
      if (!profile_out_path.empty() &&
          delirium::tools::write_cost_profile_file(
              profile_out_path,
              delirium::tools::profile_from_trace(r.trace_events, registry))) {
        std::fprintf(stderr, "delc: wrote cost profile to %s\n", profile_out_path.c_str());
      }
      if (!metrics_path.empty()) {
        delirium::tools::MetricsRegistry metrics;
        metrics.observe_run(r.stats, r.timings);
        if (metrics.write_file(metrics_path, metrics_format)) {
          std::fprintf(stderr, "delc: wrote metrics to %s\n", metrics_path.c_str());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "delc: run failed: %s\n", e.what());
      return 1;
    }
  } else if (run) {
    delirium::RuntimeConfig config;
    config.num_workers = workers;
    config.enable_node_timing = !trace_path.empty() || !metrics_path.empty();
    config.enable_tracing = !trace_events_path.empty() || !profile_out_path.empty();
    config.scheduler = scheduler;
    config.max_retries = retries;
    config.watchdog_budget_ms = watchdog_ms;
    apply_locality_flags(config);
    // Construction can throw (a malformed DELIRIUM_* knob fails loudly
    // with an EnvError); report it like any other failed run instead of
    // letting it terminate the process.
    std::unique_ptr<delirium::Runtime> runtime;
    try {
      runtime = std::make_unique<delirium::Runtime>(registry, config);
      if (instances > 0) {
        delirium::InstanceManager mgr(*runtime, imconfig);
        return run_instance_mode(mgr);
      }
      const delirium::Value value = runtime->run(result.program);
      std::printf("result: %s\n", value.to_display_string().c_str());
      if (!trace_path.empty() &&
          delirium::tools::write_chrome_trace_file(trace_path, runtime->node_timings())) {
        std::fprintf(stderr, "delc: wrote trace to %s\n", trace_path.c_str());
      }
      if (!trace_events_path.empty() &&
          delirium::tools::write_trace_events_file(trace_events_path,
                                                   runtime->trace_events(), registry)) {
        std::fprintf(stderr, "delc: wrote trace events to %s\n",
                     trace_events_path.c_str());
      }
      if (!profile_out_path.empty() &&
          delirium::tools::write_cost_profile_file(
              profile_out_path,
              delirium::tools::profile_from_trace(runtime->trace_events(), registry))) {
        std::fprintf(stderr, "delc: wrote cost profile to %s\n", profile_out_path.c_str());
      }
      if (!metrics_path.empty()) {
        delirium::tools::MetricsRegistry metrics;
        metrics.observe_run(runtime->last_stats(), runtime->node_timings());
        if (metrics.write_file(metrics_path, metrics_format)) {
          std::fprintf(stderr, "delc: wrote metrics to %s\n", metrics_path.c_str());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "delc: run failed: %s\n", e.what());
      if (stats && runtime) delirium::tools::print_run_stats(std::cout, runtime->last_stats());
      return 1;
    }
    if (stats) delirium::tools::print_run_stats(std::cout, runtime->last_stats());
  }
  return 0;
}
