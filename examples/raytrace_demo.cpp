// Ray tracer example: the scene is shared read-only; image bands render
// in parallel and join at assemble. Writes out.ppm.
//
//   $ ./raytrace_demo [width] [height] [workers] [out.ppm]
#include <cstdio>
#include <cstdlib>

#include "src/apps/ray/ray.h"
#include "src/delirium.h"
#include "src/support/clock.h"

int main(int argc, char** argv) {
  delirium::ray::RayParams params;
  params.width = argc > 1 ? std::atoi(argv[1]) : 320;
  params.height = argc > 2 ? std::atoi(argv[2]) : 240;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;
  const char* out_path = argc > 4 ? argv[4] : "out.ppm";
  params.num_spheres = 14;
  params.seed = 2026;

  delirium::OperatorRegistry registry;
  delirium::register_builtin_operators(registry);
  delirium::ray::register_ray_operators(registry, params);

  delirium::CompiledProgram program =
      delirium::compile_or_throw(delirium::ray::ray_source(params), registry);
  delirium::Runtime runtime(registry, {.num_workers = workers});

  delirium::Stopwatch sw;
  delirium::Value result = runtime.run(program);
  const double parallel_ms = sw.elapsed_ms();
  const auto& image = result.block_as<delirium::ray::Image>();

  sw.reset();
  const auto reference = delirium::ray::render_sequential(params);
  const double sequential_ms = sw.elapsed_ms();

  std::printf("rendered %dx%d in %.1f ms (%d workers); sequential %.1f ms\n", params.width,
              params.height, parallel_ms, workers, sequential_ms);
  std::printf("checksums %s\n", delirium::ray::image_checksum(image) ==
                                        delirium::ray::image_checksum(reference)
                                    ? "match"
                                    : "MISMATCH");
  if (delirium::ray::write_ppm(image, out_path)) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
