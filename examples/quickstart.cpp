// Quickstart: embed four C++ operators in a Delirium coordination
// framework — the fork/join example of §2.1 of the paper.
//
//   $ ./quickstart [workers]
//
// The let-bindings have no lexical dependencies between the four
// convolve calls, so the runtime executes them in parallel; term_fn
// fires only when all four results have arrived. No locks, no barriers:
// the data dependencies *are* the synchronization.
#include <cstdio>
#include <cstdlib>

#include "src/delirium.h"

namespace {

const char* kCoordination = R"(
main()
  let
    a_start = init_fn()
    a = convolve(a_start, 0)
    b = convolve(a_start, 1)
    c = convolve(a_start, 2)
    d = convolve(a_start, 3)
  in term_fn(a, b, c, d)
)";

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;

  // 1. Register the sequential operators (the "existing C code").
  delirium::OperatorRegistry registry;
  delirium::register_builtin_operators(registry);

  registry.add("init_fn", 0, [](delirium::OpContext&) {
    std::printf("  [init_fn] producing the input block\n");
    return delirium::Value::block(std::vector<double>(1 << 16, 1.0));
  });

  registry.add("convolve", 2, [](delirium::OpContext& ctx) {
    const auto& data = ctx.arg_block<std::vector<double>>(0);
    const int64_t phase = ctx.arg_int(1);
    double acc = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      acc += data[i] * static_cast<double>((i + phase) % 7);
    }
    std::printf("  [convolve %lld] done on worker %d\n",
                static_cast<long long>(phase), ctx.worker_id());
    return delirium::Value::of(acc);
  }).pure();

  registry.add("term_fn", 4, [](delirium::OpContext& ctx) {
    return delirium::Value::of(ctx.arg_float(0) + ctx.arg_float(1) + ctx.arg_float(2) +
                               ctx.arg_float(3));
  }).pure();

  // 2. Compile the coordination framework.
  delirium::CompiledProgram program = delirium::compile_or_throw(kCoordination, registry);
  std::printf("compiled: %zu templates, %zu nodes\n", program.templates.size(),
              program.total_nodes());

  // 3. Execute on a worker pool.
  delirium::Runtime runtime(registry, {.num_workers = workers});
  const delirium::Value result = runtime.run(program);
  std::printf("result = %f\n", result.as_float());
  std::printf("activations used: %llu, peak live: %llu\n",
              static_cast<unsigned long long>(runtime.last_stats().activations_created),
              static_cast<unsigned long long>(runtime.last_stats().peak_live_activations));
  return 0;
}
