// Eight queens (§3 of the paper): parallel recursive backtracking
// expressed as a one-page coordination framework.
//
//   $ ./queens_demo [N] [workers]
#include <cstdio>
#include <cstdlib>

#include "src/apps/queens/queens.h"
#include "src/delirium.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;
  if (n < 1 || n > 12) {
    std::fprintf(stderr, "usage: queens_demo [N in 1..12] [workers]\n");
    return 1;
  }

  delirium::OperatorRegistry registry;
  delirium::register_builtin_operators(registry);
  delirium::queens::register_queens_operators(registry, n);

  const std::string source = delirium::queens::queens_source(n);
  std::printf("--- Delirium coordination framework ---\n%s\n", source.c_str());

  delirium::CompiledProgram program = delirium::compile_or_throw(source, registry);
  delirium::Runtime runtime(registry, {.num_workers = workers});
  const delirium::Value result = runtime.run(program);

  std::printf("%d-queens solutions: %lld (sequential check: %lld)\n", n,
              static_cast<long long>(result.as_int()),
              static_cast<long long>(delirium::queens::count_solutions_sequential(n)));
  std::printf("template activations created: %llu, peak live: %llu\n",
              static_cast<unsigned long long>(runtime.last_stats().activations_created),
              static_cast<unsigned long long>(runtime.last_stats().peak_live_activations));

  // Show one solution from the sequential solver.
  const auto solutions = delirium::queens::solve_sequential(n);
  if (!solutions.empty()) {
    std::printf("\nfirst solution:\n");
    for (int row = n; row >= 1; --row) {
      for (int col = 0; col < n; ++col) {
        std::printf("%s", solutions[0][col] == row ? " Q" : " .");
      }
      std::printf("\n");
    }
  }
  return 0;
}
