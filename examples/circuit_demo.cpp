// Circuit simulator example: a random netlist simulated cycle by cycle,
// cones evaluated in parallel inside each cycle's fork-join.
//
//   $ ./circuit_demo [gates] [cycles] [workers]
#include <cstdio>
#include <cstdlib>

#include "src/apps/circuit/circuit.h"
#include "src/delirium.h"

int main(int argc, char** argv) {
  delirium::circuit::CircuitParams params;
  params.num_gates = argc > 1 ? std::atoi(argv[1]) : 5000;
  params.cycles = argc > 2 ? std::atoi(argv[2]) : 64;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;

  delirium::OperatorRegistry registry;
  delirium::register_builtin_operators(registry);
  delirium::circuit::register_circuit_operators(registry, params);

  const std::string source = delirium::circuit::circuit_source(params);
  std::printf("--- coordination framework ---\n%s\n", source.c_str());

  delirium::CompiledProgram program = delirium::compile_or_throw(source, registry);
  delirium::Runtime runtime(registry, {.num_workers = workers});
  delirium::Value result = runtime.run(program);
  const auto& block = result.block_as<delirium::circuit::CircuitBlock>();

  const auto reference = delirium::circuit::simulate_sequential(params);
  std::printf("simulated %d gates x %d cycles: signature %016llx (%s)\n", params.num_gates,
              params.cycles, static_cast<unsigned long long>(block.state.signature),
              block.state.signature == reference.signature ? "matches sequential"
                                                           : "MISMATCH");
  return 0;
}
