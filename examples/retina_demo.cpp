// The retina case study (§5): runs the v1 (imbalanced) and v2 (balanced)
// coordination frameworks, prints the node-timing report the paper uses
// to diagnose load imbalance, and verifies both against the sequential
// original.
//
//   $ ./retina_demo [size] [workers] [trace.json]
//
// With a third argument, records the full trace event stream and writes
// it as Chrome/Perfetto JSON (load at https://ui.perfetto.dev) — slices
// sit at their real start timestamps, so load imbalance shows up as
// visible gaps. See docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>

#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"
#include "src/tools/trace.h"

using namespace delirium;
using namespace delirium::retina;

namespace {

void report(Runtime& runtime, const char* label) {
  // Aggregate node timings per operator, like reading the paper's dump.
  std::map<std::string, std::pair<int, double>> agg;
  for (const NodeTiming& t : runtime.node_timings()) {
    agg[t.label].first += 1;
    agg[t.label].second += static_cast<double>(t.duration);
  }
  std::printf("--- node timings (%s) ---\n", label);
  for (const auto& [op, stats] : agg) {
    std::printf("  call of %-13s x%-4d avg %8.0f ticks\n", op.c_str(), stats.first,
                stats.second / stats.first);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RetinaParams params;
  params.width = params.height = argc > 1 ? std::atoi(argv[1]) : 256;
  params.num_targets = 48;
  params.num_iter = 3;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string trace_path = argc > 3 ? argv[3] : "";

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_retina_operators(registry, params);

  const RetinaModel reference = sequential_run(params);
  std::printf("sequential checksum: %.6f\n\n", checksum(reference));

  RuntimeConfig config{.num_workers = workers};
  config.enable_node_timing = true;
  config.enable_tracing = !trace_path.empty();
  Runtime runtime(registry, config);
  for (const auto version : {RetinaVersion::kV1Imbalanced, RetinaVersion::kV2Balanced}) {
    const char* label = version == RetinaVersion::kV1Imbalanced ? "v1 (imbalanced post_up)"
                                                                : "v2 (balanced update)";
    const RetinaModel model = delirium_run(params, version, runtime);
    report(runtime, label);
    std::printf("  checksum %s (cow copies: %llu)\n\n",
                checksum(model) == checksum(reference) ? "matches sequential" : "MISMATCH",
                static_cast<unsigned long long>(runtime.last_stats().cow_copies));
  }
  // The trace covers the last run (v2): each run resets the stream.
  if (!trace_path.empty() &&
      tools::write_trace_events_file(trace_path, runtime.trace_events(), registry)) {
    std::printf("wrote trace events to %s\n", trace_path.c_str());
  }
  return 0;
}
