// The §6.2 tree-walk primitives applied as a program analyzer: crown
// clipping statistics, a synthesized-attribute walk (subtree weights),
// and an inherited-attribute walk (depth histogram) over a generated
// Delirium program, executed on a thread pool.
//
//   $ ./treewalk_demo [body_size] [pieces]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>

#include "src/apps/dcc/program_gen.h"
#include "src/apps/dcc/tree_walk.h"
#include "src/baselines/fork_join.h"
#include "src/lang/parser.h"
#include "src/tools/report.h"

using namespace delirium;
using namespace delirium::dcc;

int main(int argc, char** argv) {
  GenParams gen;
  gen.num_functions = 1;
  gen.body_size = argc > 1 ? std::atoi(argv[1]) : 2000;
  gen.call_density = 0;
  gen.seed = 5;
  const int pieces = argc > 2 ? std::atoi(argv[2]) : 8;

  SourceFile file("<gen>", generate_program(gen));
  DiagnosticEngine diags;
  AstContext ctx;
  Program program = parse_source(file, ctx, diags);
  if (diags.has_errors()) {
    diags.print(std::cerr, file);
    return 1;
  }
  Expr* root = program.functions.at(0)->body;

  // Crown clipping statistics.
  const CrownClip clip = clip_crown(root, pieces);
  std::printf("tree: %llu nodes; clipped into %zu subtrees (crown %llu nodes) for %d pieces\n",
              static_cast<unsigned long long>(clip.total_weight), clip.subtrees.size(),
              static_cast<unsigned long long>(clip.crown_weight), pieces);
  auto bins = assign_subtrees(clip, pieces);
  tools::Table bin_table({"piece", "subtrees", "weight"});
  for (size_t b = 0; b < bins.size(); ++b) {
    uint64_t weight = 0;
    for (const Expr* s : bins[b]) weight += subtree_weight(s);
    bin_table.add_row({std::to_string(b), std::to_string(bins[b].size()),
                       std::to_string(weight)});
  }
  bin_table.print(std::cout);

  baselines::ForkJoinPool pool(4);
  const PieceExecutor executor = [&pool](int n, const std::function<void(int)>& fn) {
    pool.fork(n, fn);
  };

  // Synthesized-attribute walk: recompute the total weight bottom-up.
  const SynthCombine<uint64_t> combine = [](Expr*, const std::vector<uint64_t>& kids) {
    uint64_t total = 1;
    for (uint64_t k : kids) total += k;
    return total;
  };
  const uint64_t weight = synthesized_walk<uint64_t>(root, pieces, executor, combine);
  std::printf("synthesized-attribute walk recomputed weight: %llu (%s)\n",
              static_cast<unsigned long long>(weight),
              weight == clip.total_weight ? "matches" : "MISMATCH");

  // Inherited-attribute walk: depth histogram.
  std::map<int, int> histogram;
  std::mutex mu;
  const InheritStep<int> step = [&](Expr*, const int& depth) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++histogram[depth];
    }
    return depth + 1;
  };
  inherited_walk<int>(root, pieces, executor, 0, step);
  std::printf("inherited-attribute walk depth histogram (depth: nodes):\n  ");
  int shown = 0;
  for (const auto& [depth, count] : histogram) {
    std::printf("%d:%d  ", depth, count);
    if (++shown % 12 == 0) std::printf("\n  ");
  }
  std::printf("\n");
  return 0;
}
