// Activation-pool gate (docs/RUNTIME.md §pooling): ExecutorCore serves
// Activation/WorkItem storage from a per-runtime arena + freelist, so
// steady-state runs should recycle every activation instead of hitting
// the global heap. This bench holds two contracts:
//
//  * pool_a vs pool_b — two identical pool-enabled runtimes,
//    interleaved min-of-N (the bench_trace_overhead protocol). Their
//    geometric-mean ratio across worker counts is the A/A noise floor;
//    the bench FAILS (exit 1) outside ±5%.
//  * off/on — the same program with DELIRIUM_ACTIVATION_POOL-style
//    pooling disabled (ExecConfig::activation_pool = false), reported
//    as a ratio against pool_a. Pooling must not be a pessimization:
//    the bench FAILS if the off/on geomean drops below the same noise
//    bound (i.e. the pooled build measurably slower than raw new/delete).
//
// Two workloads, chosen to stress the two allocation profiles:
//  * fan-out — §9.2 parmap over 512 cheap activations: wide bursts,
//    collector traffic, one spike of allocations then heavy reuse.
//  * tiny-op — deep iterate loop of trivial operators: one live
//    activation chain recycled thousands of times (pure freelist churn).
//
// `--quick` drops to 5 reps for CI; a JSON path as the last argument
// writes the results (BENCH_executor_core.json is a recorded run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/delirium.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wide parmap of cheap operators joined by an iterate fold: one burst
/// of 512 activations, then reuse (same shape as bench_scheduler's
/// fan-out program).
const char* kFanOutSource = R"(
work(x) add(mul(x, x), incr(x))
total(p)
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, package_get(p, i))
  } while is_not_equal(i, package_size(p)), result acc
main() total(parmap(work, range(512)))
)";

/// Deep loop of trivial operators: allocation/recycle traffic dominates
/// because every operator does almost no work.
const char* kTinyOpSource = R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, mul(i, 3))
  } while is_not_equal(i, 20000), result acc
)";

struct Point {
  const char* workload;
  int workers;
  double pool_a_ms;
  double pool_b_ms;
  double off_ms;
  uint64_t pooled;     // RunStats.activations_pooled (pool_a, last rep)
  uint64_t allocated;  // RunStats.activations_allocated (pool_a, last rep)
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }
  const int reps = quick ? 5 : 15;

  OperatorRegistry registry;
  register_builtin_operators(registry);

  std::vector<Point> points;
  for (const auto& [name, source] :
       std::vector<std::pair<const char*, const char*>>{{"fan-out", kFanOutSource},
                                                        {"tiny-op", kTinyOpSource}}) {
    const CompiledProgram program = compile_or_throw(source, registry);
    for (const int workers : quick ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8}) {
      RuntimeConfig config;
      config.num_workers = workers;
      Runtime pool_a(registry, config);
      Runtime pool_b(registry, config);
      config.activation_pool = false;
      Runtime off(registry, config);

      // Interleaved minimum-of-N: overhead is a lower-bound quantity,
      // and alternating the three runtimes cancels slow drift.
      auto timed = [&](Runtime& runtime) {
        const double start = now_ms();
        runtime.run(program);
        return now_ms() - start;
      };
      timed(pool_a);  // warm up outside the clock (also fills the arena)
      timed(pool_b);
      timed(off);
      Point p{name, workers, 1e30, 1e30, 1e30, 0, 0};
      for (int rep = 0; rep < reps; ++rep) {
        p.pool_a_ms = std::min(p.pool_a_ms, timed(pool_a));
        p.pool_b_ms = std::min(p.pool_b_ms, timed(pool_b));
        p.off_ms = std::min(p.off_ms, timed(off));
      }
      p.pooled = pool_a.last_stats().activations_pooled;
      p.allocated = pool_a.last_stats().activations_allocated;
      points.push_back(p);
    }
  }

  tools::Table table({"workload", "workers", "pool A (ms)", "pool B (ms)", "off (ms)",
                      "pool B/A", "off/pool", "pooled", "alloc'd"});
  double aa_log_sum = 0;
  double off_log_sum = 0;
  for (const Point& p : points) {
    const double aa_ratio = p.pool_b_ms / p.pool_a_ms;
    const double off_ratio = p.off_ms / p.pool_a_ms;
    aa_log_sum += std::log(aa_ratio);
    off_log_sum += std::log(off_ratio);
    table.add_row({p.workload, std::to_string(p.workers), tools::Table::ms(p.pool_a_ms, 2),
                   tools::Table::ms(p.pool_b_ms, 2), tools::Table::ms(p.off_ms, 2),
                   tools::Table::ratio(aa_ratio), tools::Table::ratio(off_ratio),
                   std::to_string(p.pooled), std::to_string(p.allocated)});
  }
  const double count = static_cast<double>(points.size());
  const double aa_geomean = std::exp(aa_log_sum / count);
  const double off_geomean = std::exp(off_log_sum / count);
  // --quick runs one worker count under CI sanitizers, where a single
  // A/A point is noisy and instrumentation dominates; the gate there is
  // only a smoke bound. The full run holds the real 5% contract.
  const double tolerance = quick ? 0.15 : 0.05;
  const bool aa_ok = aa_geomean >= 1.0 - tolerance && aa_geomean <= 1.0 + tolerance;
  // Pooling must be >= 1.0x within the same noise bound: off/pool below
  // 1 - tolerance means the pool costs more than it saves.
  const bool speedup_ok = off_geomean >= 1.0 - tolerance;
  std::printf("activation pool (parmap width 512 + tiny-op loop, interleaved min of %d):\n",
              reps);
  table.print(std::cout);
  std::printf("pooled A/A geomean ratio: %.3f\n", aa_geomean);
  std::printf("pool-off / pool-on geomean ratio: %.3f\n", off_geomean);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_activation_pool\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"aa_geomean\": " << tools::Table::ms(aa_geomean, 3) << ",\n"
       << "  \"off_over_pool_geomean\": " << tools::Table::ms(off_geomean, 3) << ",\n"
       << "  \"interleaved_min_of_" << reps << "\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"workload\": \"" << p.workload << "\", \"workers\": " << p.workers
         << ", \"pool_a_ms\": " << tools::Table::ms(p.pool_a_ms, 2)
         << ", \"pool_b_ms\": " << tools::Table::ms(p.pool_b_ms, 2)
         << ", \"off_ms\": " << tools::Table::ms(p.off_ms, 2)
         << ", \"aa_ratio\": " << tools::Table::ms(p.pool_b_ms / p.pool_a_ms, 3)
         << ", \"off_ratio\": " << tools::Table::ms(p.off_ms / p.pool_a_ms, 3)
         << ", \"activations_pooled\": " << p.pooled
         << ", \"activations_allocated\": " << p.allocated << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!aa_ok) {
    std::fprintf(stderr,
                 "FAIL: identical pooled runtimes differ by more than %.0f%% — the "
                 "measurement is unstable\n",
                 tolerance * 100);
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: pooling is a pessimization (pool-off/pool-on %.3f < %.2f)\n",
                 off_geomean, 1.0 - tolerance);
    return 1;
  }
  std::printf("pool A/A within the noise bound and pooling is not a pessimization\n");
  return 0;
}
