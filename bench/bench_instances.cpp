// Multi-instance soak + hygiene check (docs/ROBUSTNESS.md "Isolation
// model"): the InstanceManager shares the plain runtime's hot paths
// (the drain hook and the live-activation ledger carry a per-run
// manager check), so a runtime that never constructs a manager must be
// indistinguishable from the pre-instance build.
//
// Protocol:
//
//  * off_a vs off_b — two identical runtimes running the §9.2 fan-out
//    parmap program through plain run(), interleaved min-of-N. Their
//    ratio is the measurement noise floor *plus* any hidden cost of the
//    compiled-but-unused manager hooks; the bench FAILS (exit 1) if the
//    geometric mean across worker counts leaves ±5%.
//  * managed — the same program as a one-instance manager session per
//    rep (construct, submit, wait, destruct), reported as a ratio
//    against off_a for context: the full per-session admission/finalize
//    overhead on top of identical graph work.
//  * soak — thousands of requests mixing healthy / faulting / stalling
//    / budget-buster instances through one manager per config, across
//    schedulers × worker counts and the virtual-time simulator.
//    Reports req/s and p50/p99 instance latency (LogHistogram, the
//    metrics-layer estimator), and FAILS if isolation is violated: a
//    healthy instance not completing with the right value, or the
//    outcome tallies not conserving admissions.
//
// `--quick` drops reps and soak size for CI; a JSON path as the last
// argument writes the results (BENCH_instances.json is a recorded run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/delirium.h"
#include "src/runtime/instance.h"
#include "src/tools/metrics.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wide parmap of cheap operators joined by an iterate fold: maximal
/// scheduler traffic per unit of useful work (same shape as
/// bench_scheduler's fan-out program).
const char* kFanOutSource = R"(
work(x) add(mul(x, x), incr(x))
total(p)
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, package_get(p, i))
  } while is_not_equal(i, package_size(p)), result acc
main() total(parmap(work, range(512)))
)";

/// Recursive fib survives the optimizer with its template intact, so
/// the soak can call it by name with per-request arguments.
const char* kFibSource =
    "fib(n) if less_than(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))\n"
    "main() fib(10)";

int64_t fib(int64_t n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

/// The injected operators live in their own tiny functions; those are
/// single-call so the optimizer would inline them away — compile the
/// chaos programs unoptimized to keep the templates callable by name.
CompiledProgram compile_noopt(const std::string& source, OperatorRegistry& reg) {
  CompileOptions copts;
  copts.optimize = false;
  return compile_or_throw(source, reg, copts);
}

struct AaPoint {
  int workers;
  double off_a_ms;
  double off_b_ms;
  double managed_ms;
};

struct SoakPoint {
  std::string config;
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t faulted = 0;
  uint64_t budget_killed = 0;
  uint64_t injected = 0;  // injection-plan actions that fired (throws + stalls)
  double wall_ms = 0;
  double req_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Request classes by submission index i (ids are dense and 1-based, so
// class of result id is (id - 1) % 5): two healthy fib calls, one
// faulting, one stalling, one activation-budget buster.
enum SoakClass { kHealthyA = 0, kHealthyB = 1, kChaos = 2, kStall = 3, kBuster = 4 };

InstanceRequest soak_request(size_t i, const CompiledProgram& fib_prog,
                             const CompiledProgram& chaos_prog,
                             const CompiledProgram& stall_prog) {
  InstanceRequest req;
  switch (i % 5) {
    case kHealthyA:
    case kHealthyB:
      req.program = &fib_prog;
      req.function = "fib";
      req.args = {Value::of(static_cast<int64_t>(6 + i % 5))};
      break;
    case kChaos:
      req.program = &chaos_prog;
      req.function = "poke";
      req.args = {Value::of(static_cast<int64_t>(i))};
      break;
    case kStall:
      req.program = &stall_prog;
      req.function = "dawdle";
      req.args = {Value::of(static_cast<int64_t>(i))};
      break;
    case kBuster:
      req.program = &fib_prog;
      req.function = "fib";
      req.args = {Value::of(static_cast<int64_t>(12))};
      req.budget.max_activations = 16;
      break;
  }
  return req;
}

/// Validate one finished soak: healthy instances completed with the
/// reference value, busters tripped their budget, and the outcome
/// tallies conserve admissions. Returns false (and prints why) on any
/// isolation violation.
bool check_soak(const std::string& config, const std::vector<InstanceResult>& results,
                const InstanceCounters& counters) {
  for (const InstanceResult& r : results) {
    const size_t cls = (r.id - 1) % 5;
    if (cls == kHealthyA || cls == kHealthyB) {
      const int64_t want = fib(static_cast<int64_t>(6 + (r.id - 1) % 5));
      if (r.outcome != InstanceOutcome::kCompleted || r.value.as_int() != want) {
        std::fprintf(stderr, "FAIL [%s]: healthy instance %llu -> %s (%s)\n",
                     config.c_str(), static_cast<unsigned long long>(r.id),
                     instance_outcome_name(r.outcome), r.error.c_str());
        return false;
      }
    } else if (cls == kBuster && r.outcome != InstanceOutcome::kBudgetExhausted) {
      std::fprintf(stderr, "FAIL [%s]: buster instance %llu -> %s, want budget_exhausted\n",
                   config.c_str(), static_cast<unsigned long long>(r.id),
                   instance_outcome_name(r.outcome));
      return false;
    }
  }
  if (counters.admitted != counters.completed + counters.faulted + counters.budget_killed ||
      counters.shed != 0 || counters.live != 0) {
    std::fprintf(stderr, "FAIL [%s]: outcome tallies do not conserve admissions\n",
                 config.c_str());
    return false;
  }
  return true;
}

SoakPoint summarize(const std::string& config, uint64_t requests, double wall_ms,
                    const InstanceCounters& counters, uint64_t injected,
                    const std::vector<int64_t>& latencies) {
  tools::LogHistogram hist;
  for (int64_t ns : latencies) hist.observe(ns);
  SoakPoint p;
  p.config = config;
  p.requests = requests;
  p.completed = counters.completed;
  p.faulted = counters.faulted;
  p.budget_killed = counters.budget_killed;
  p.injected = injected;
  p.wall_ms = wall_ms;
  p.req_per_s = wall_ms > 0 ? 1000.0 * static_cast<double>(requests) / wall_ms : 0;
  p.p50_ms = static_cast<double>(hist.percentile(0.50)) / 1e6;
  p.p99_ms = static_cast<double>(hist.percentile(0.99)) / 1e6;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }
  const int reps = quick ? 5 : 15;
  const size_t soak_n = quick ? 250 : 2000;

  OperatorRegistry registry;
  register_builtin_operators(registry);
  const CompiledProgram fanout = compile_or_throw(kFanOutSource, registry);

  // ------------------------------------------------------------------
  // A/A gate: the single-run path with the manager compiled but unused
  // ------------------------------------------------------------------
  std::vector<AaPoint> aa_points;
  for (const int workers : quick ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8}) {
    RuntimeConfig config;
    config.num_workers = workers;
    Runtime off_a(registry, config);
    Runtime off_b(registry, config);
    Runtime managed_rt(registry, config);

    auto timed_plain = [&](Runtime& runtime) {
      const double start = now_ms();
      runtime.run(fanout);
      return now_ms() - start;
    };
    // One-instance manager session per rep: admission, spawn, drain
    // hook, finalize, session teardown — the whole per-request path.
    auto timed_managed = [&] {
      const double start = now_ms();
      {
        InstanceManager mgr(managed_rt);
        mgr.submit(InstanceRequest{.program = &fanout});
        mgr.wait_all();
      }
      return now_ms() - start;
    };
    timed_plain(off_a);  // warm up outside the clock
    timed_plain(off_b);
    timed_managed();
    AaPoint p{workers, 1e30, 1e30, 1e30};
    for (int rep = 0; rep < reps; ++rep) {
      p.off_a_ms = std::min(p.off_a_ms, timed_plain(off_a));
      p.off_b_ms = std::min(p.off_b_ms, timed_plain(off_b));
      p.managed_ms = std::min(p.managed_ms, timed_managed());
    }
    aa_points.push_back(p);
  }

  tools::Table aa_table(
      {"workers", "plain A (ms)", "plain B (ms)", "managed (ms)", "B/A", "managed/A"});
  double log_sum = 0;
  for (const AaPoint& p : aa_points) {
    const double aa_ratio = p.off_b_ms / p.off_a_ms;
    log_sum += std::log(aa_ratio);
    aa_table.add_row({std::to_string(p.workers), tools::Table::ms(p.off_a_ms, 2),
                      tools::Table::ms(p.off_b_ms, 2), tools::Table::ms(p.managed_ms, 2),
                      tools::Table::ratio(aa_ratio),
                      tools::Table::ratio(p.managed_ms / p.off_a_ms)});
  }
  const double geomean = std::exp(log_sum / static_cast<double>(aa_points.size()));
  const double tolerance = quick ? 0.15 : 0.05;
  const bool aa_ok = geomean >= 1.0 - tolerance && geomean <= 1.0 + tolerance;
  std::printf("single-run path A/A (parmap width 512, interleaved min of %d):\n", reps);
  aa_table.print(std::cout);
  std::printf("plain-run geomean ratio: %.3f\n\n", geomean);

  // ------------------------------------------------------------------
  // Chaos soak: healthy / faulting / stalling / budget-buster traffic
  // ------------------------------------------------------------------
  OperatorRegistry chaos_registry;
  register_builtin_operators(chaos_registry);
  chaos_registry.add("chaos_op", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); })
      .pure();
  chaos_registry.add("slow_op", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); })
      .pure();
  // Structural (seq-seeded) selectors so every config sees the same
  // fault pattern; the stall clause delays without failing.
  chaos_registry.set_fault_plan(std::make_shared<const FaultPlan>(FaultPlan::parse(
      "chaos_op:throw:every=3:seed=4,slow_op:stall=200000:every=2:seed=11")));

  const CompiledProgram fib_prog = compile_or_throw(kFibSource, chaos_registry);
  const CompiledProgram chaos_prog =
      compile_noopt("poke(n) add(chaos_op(n), 1)\nmain() poke(1)", chaos_registry);
  const CompiledProgram stall_prog =
      compile_noopt("dawdle(n) add(slow_op(n), 1)\nmain() dawdle(1)", chaos_registry);

  struct ThreadedSpec {
    SchedulerKind sched;
    int workers;
  };
  const std::vector<ThreadedSpec> threaded_specs =
      quick ? std::vector<ThreadedSpec>{{SchedulerKind::kWorkStealing, 4}}
            : std::vector<ThreadedSpec>{{SchedulerKind::kGlobalLock, 2},
                                        {SchedulerKind::kGlobalLock, 8},
                                        {SchedulerKind::kWorkStealing, 2},
                                        {SchedulerKind::kWorkStealing, 8}};

  std::vector<SoakPoint> soak_points;
  bool soak_ok = true;
  for (const ThreadedSpec& spec : threaded_specs) {
    const std::string name =
        std::string(spec.sched == SchedulerKind::kWorkStealing ? "ws" : "gl") +
        std::to_string(spec.workers);
    RuntimeConfig config;
    config.scheduler = spec.sched;
    config.num_workers = spec.workers;
    Runtime runtime(chaos_registry, config);

    const double start = now_ms();
    std::vector<InstanceResult> results;
    std::vector<int64_t> latencies;
    InstanceCounters counters;
    uint64_t injected = 0;
    {
      InstanceManager mgr(runtime);
      for (size_t i = 0; i < soak_n; ++i) {
        mgr.submit(soak_request(i, fib_prog, chaos_prog, stall_prog));
      }
      results = mgr.wait_all();
      latencies = mgr.latencies();
      counters = mgr.counters();
      injected = mgr.stats().faults_injected;
    }
    const double wall_ms = now_ms() - start;
    soak_ok = check_soak(name, results, counters) && soak_ok;
    soak_points.push_back(summarize(name, soak_n, wall_ms, counters, injected, latencies));
  }

  {  // Virtual-time simulator: one deterministic batch, wall-clock rate.
    SimRuntime sim(chaos_registry, SimConfig{.num_procs = 4});
    const double start = now_ms();
    std::vector<InstanceResult> results;
    std::vector<int64_t> latencies;
    InstanceCounters counters;
    uint64_t injected = 0;
    {
      InstanceManager mgr(sim);
      for (size_t i = 0; i < soak_n; ++i) {
        mgr.submit(soak_request(i, fib_prog, chaos_prog, stall_prog));
      }
      results = mgr.wait_all();
      latencies = mgr.latencies();
      counters = mgr.counters();
      injected = mgr.stats().faults_injected;
    }
    const double wall_ms = now_ms() - start;
    soak_ok = check_soak("sim4", results, counters) && soak_ok;
    soak_points.push_back(summarize("sim4", soak_n, wall_ms, counters, injected, latencies));
  }

  tools::Table soak_table({"config", "requests", "completed", "faulted", "budget", "injected",
                           "wall (ms)", "req/s", "p50 (ms)", "p99 (ms)"});
  for (const SoakPoint& p : soak_points) {
    soak_table.add_row({p.config, tools::Table::count(p.requests),
                        tools::Table::count(p.completed), tools::Table::count(p.faulted),
                        tools::Table::count(p.budget_killed), tools::Table::count(p.injected),
                        tools::Table::ms(p.wall_ms, 1), tools::Table::ms(p.req_per_s, 0),
                        tools::Table::ms(p.p50_ms, 3), tools::Table::ms(p.p99_ms, 3)});
  }
  std::printf("chaos soak (%zu requests: 40%% healthy fib, 20%% faulting, 20%% stalling, "
              "20%% budget busters; sim latencies are virtual):\n",
              soak_n);
  soak_table.print(std::cout);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_instances\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"aa_fanout_parmap512_interleaved_min_of_" << reps << "\": [\n";
  for (size_t i = 0; i < aa_points.size(); ++i) {
    const AaPoint& p = aa_points[i];
    json << "    {\"workers\": " << p.workers
         << ", \"plain_a_ms\": " << tools::Table::ms(p.off_a_ms, 2)
         << ", \"plain_b_ms\": " << tools::Table::ms(p.off_b_ms, 2)
         << ", \"managed_ms\": " << tools::Table::ms(p.managed_ms, 2)
         << ", \"aa_ratio\": " << tools::Table::ms(p.off_b_ms / p.off_a_ms, 3)
         << ", \"managed_ratio\": " << tools::Table::ms(p.managed_ms / p.off_a_ms, 3) << "}"
         << (i + 1 < aa_points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"soak_" << soak_n << "_requests\": [\n";
  for (size_t i = 0; i < soak_points.size(); ++i) {
    const SoakPoint& p = soak_points[i];
    json << "    {\"config\": \"" << p.config << "\", \"requests\": " << p.requests
         << ", \"completed\": " << p.completed << ", \"faulted\": " << p.faulted
         << ", \"budget_killed\": " << p.budget_killed << ", \"injected\": " << p.injected
         << ", \"wall_ms\": " << tools::Table::ms(p.wall_ms, 1)
         << ", \"req_per_s\": " << tools::Table::ms(p.req_per_s, 0)
         << ", \"p50_ms\": " << tools::Table::ms(p.p50_ms, 3)
         << ", \"p99_ms\": " << tools::Table::ms(p.p99_ms, 3) << "}"
         << (i + 1 < soak_points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!aa_ok) {
    std::fprintf(stderr,
                 "FAIL: manager-free runtimes differ by more than %.0f%% — the unused "
                 "instance hooks are not free\n",
                 tolerance * 100);
    return 1;
  }
  if (!soak_ok) {
    std::fprintf(stderr, "FAIL: chaos soak violated an isolation contract (see above)\n");
    return 1;
  }
  std::printf("single-run overhead within the %.0f%% bound; soak isolation contracts held\n",
              tolerance * 100);
  return 0;
}
