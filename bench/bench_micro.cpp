// Micro-benchmarks (google-benchmark) for the runtime's primitive costs:
// operator dispatch, activation spawn via call, tail-recursive loop rate,
// conditional dispatch, tuple plumbing, copy-on-write, and the compiler's
// per-pass throughput. These quantify the constants behind the <3%
// overhead claim (§7) reproduced in bench_overhead.
#include <benchmark/benchmark.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"

namespace {

using namespace delirium;

std::shared_ptr<OperatorRegistry> shared_registry() {
  static auto registry = [] {
    auto r = std::make_shared<OperatorRegistry>();
    register_builtin_operators(*r);
    r->add("nop", 1, [](OpContext& ctx) { return ctx.take(0); }).pure();
    return r;
  }();
  return registry;
}

/// One operator application per iteration.
void BM_OperatorDispatch(benchmark::State& state) {
  auto registry = shared_registry();
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate { i = 0, nop(incr(i)) } while less_than(i, 1000), result i
)",
                                             *registry);
  Runtime runtime(*registry, {.num_workers = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // two operators per step
}
BENCHMARK(BM_OperatorDispatch);

/// Non-tail function call: activation spawn + return.
void BM_ActivationSpawn(benchmark::State& state) {
  auto registry = shared_registry();
  CompiledProgram program = compile_or_throw(R"(
callee(x) incr(x)
main()
  iterate { i = 0, incr(callee(i)) } while less_than(i, 1000), result i
)",
                                             *registry);
  CompileOptions copts;  // keep the call: no inlining
  copts.optimize = false;
  program = compile_or_throw(R"(
callee(x) incr(x)
main()
  iterate { i = 0, incr(callee(i)) } while less_than(i, 1000), result i
)",
                             *registry, copts);
  Runtime runtime(*registry, {.num_workers = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ActivationSpawn);

/// Pure tail-recursive loop iterations per second.
void BM_TailLoop(benchmark::State& state) {
  auto registry = shared_registry();
  const int64_t steps = state.range(0);
  CompiledProgram program = compile_or_throw(
      "main() iterate { i = 0, incr(i) } while is_not_equal(i, " + std::to_string(steps) +
          "), result i",
      *registry);
  Runtime runtime(*registry, {.num_workers = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_TailLoop)->Arg(1000)->Arg(10000);

/// Conditional (closure-dispatch) cost.
void BM_ConditionalDispatch(benchmark::State& state) {
  auto registry = shared_registry();
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0, if is_equal(mod(i, 2), 0) then incr(i) else add(i, 1)
  } while less_than(i, 1000), result i
)",
                                             *registry);
  Runtime runtime(*registry, {.num_workers = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ConditionalDispatch);

/// Multiple-value construction + decomposition.
void BM_TuplePlumbing(benchmark::State& state) {
  auto registry = shared_registry();
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0,
      let <a, b, c, d> = <incr(i), 2, 3, 4>
      in a
  } while less_than(i, 1000), result i
)",
                                             *registry);
  Runtime runtime(*registry, {.num_workers = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TuplePlumbing);

/// Copy-on-write: a destructively-modified block that is (or is not)
/// shared with a second consumer.
void BM_CopyOnWrite(benchmark::State& state) {
  const bool shared = state.range(0) != 0;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  const size_t block_elems = 1 << 14;
  registry.add("make_block", 0, [block_elems](OpContext&) {
    return Value::block(std::vector<double>(block_elems, 1.0));
  });
  registry.add("bump", 1, [](OpContext& ctx) {
    auto& data = ctx.arg_block_mut<std::vector<double>>(0);
    data[0] += 1;
    return ctx.take(0);
  }).destructive(0);
  registry.add("peek", 1, [](OpContext& ctx) {
    return Value::of(ctx.arg_block<std::vector<double>>(0)[0]);
  }).pure();

  // shared: `b` also feeds peek, so bump must copy. unshared: sole ref.
  const std::string source = shared ? R"(
main()
  let b = make_block()
      p = peek(b)
  in add(p, peek(bump(b)))
)"
                                    : R"(
main()
  let b = make_block()
  in peek(bump(b))
)";
  CompiledProgram program = compile_or_throw(source, registry);
  Runtime runtime(registry, {.num_workers = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
  state.SetLabel(shared ? "shared (copies)" : "sole reference (in place)");
  state.SetBytesProcessed(state.iterations() *
                          (shared ? block_elems * sizeof(double) : 0));
}
BENCHMARK(BM_CopyOnWrite)->Arg(0)->Arg(1);

/// Sole-consumer CoW elision: the block is shared with a consumer that
/// provably never reads it (a dead parameter), so the clone the plain
/// runtime pays is statically elided by the analysis. Arg(1) enables the
/// analysis + fast path; Arg(0) is the baseline that copies.
void BM_CowElision(benchmark::State& state) {
  const bool analyzed = state.range(0) != 0;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  const size_t block_elems = 1 << 14;
  registry.add("make_block", 0, [block_elems](OpContext&) {
    return Value::block(std::vector<double>(block_elems, 1.0));
  });
  registry.add("bump", 1, [](OpContext& ctx) {
    auto& data = ctx.arg_block_mut<std::vector<double>>(0);
    data[0] += 1;
    return ctx.take(0);
  }).destructive(0);
  registry.add("peek", 1, [](OpContext& ctx) {
    return Value::of(ctx.arg_block<std::vector<double>>(0)[0]);
  }).pure();

  // first() holds b in its dead second parameter while bump runs: the
  // refcount is two, but the analysis proves the clone wasted.
  const std::string source = R"(
first(x, y) x
main()
  let b = make_block()
  in first(peek(bump(b)), b)
)";
  CompileOptions options;
  options.optimize = false;  // inlining would erase the dead parameter
  options.analyze_unique = analyzed;
  CompiledProgram program = compile_or_throw(source, registry, options);
  Runtime runtime(registry, {.num_workers = 1});
  uint64_t copies = 0, skipped = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
    copies += runtime.last_stats().cow_copies;
    skipped += runtime.last_stats().cow_skipped;
  }
  state.SetLabel(analyzed ? "analyzed (clone elided)" : "baseline (clones)");
  state.counters["cow_copies"] =
      benchmark::Counter(static_cast<double>(copies), benchmark::Counter::kAvgIterations);
  state.counters["cow_skipped"] =
      benchmark::Counter(static_cast<double>(skipped), benchmark::Counter::kAvgIterations);
  state.SetBytesProcessed(state.iterations() *
                          (analyzed ? 0 : block_elems * sizeof(double)));
}
BENCHMARK(BM_CowElision)->Arg(0)->Arg(1);

/// Compiler throughput per pass over a mid-sized generated program.
void BM_CompilerPasses(benchmark::State& state) {
  auto registry = shared_registry();
  dcc::GenParams gen;
  gen.num_functions = 200;
  gen.body_size = 40;
  gen.seed = 11;
  const std::string source = dcc::generate_program(gen);
  for (auto _ : state) {
    CompileResult result = compile_source("<gen>", source, *registry);
    benchmark::DoNotOptimize(result.ok);
  }
  state.SetBytesProcessed(state.iterations() * source.size());
}
BENCHMARK(BM_CompilerPasses);

/// Worker scaling of the scheduler itself: a fork-join of cheap tasks.
void BM_SchedulerForkJoin(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  OperatorRegistry registry;
  register_builtin_operators(registry);
  registry.add("leaf", 1, [](OpContext& ctx) { return ctx.take(0); }).pure();
  registry.add("join8", 8, [](OpContext& ctx) {
    int64_t total = 0;
    for (size_t i = 0; i < 8; ++i) total += ctx.arg_int(i);
    return Value::of(total);
  }).pure();
  std::string source = "main()\n  let\n";
  for (int i = 0; i < 8; ++i) {
    source += "    x" + std::to_string(i) + " = leaf(" + std::to_string(i) + ")\n";
  }
  source += "  in join8(x0, x1, x2, x3, x4, x5, x6, x7)\n";
  CompiledProgram program = compile_or_throw(source, registry);
  Runtime runtime(registry, {.num_workers = workers});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.run(program));
  }
}
BENCHMARK(BM_SchedulerForkJoin)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
