// §7 reproduction: runtime system overhead.
//
// Paper: "Delirium runtime system overhead contributed less than one
// percent to the total execution time of the retina model", and the
// environment "generally adds less than three percent" (§1).
//
// Measured as (one-worker Delirium wall time) / (hand-written sequential
// wall time doing identical work) - 1, on the real machine. Sequential
// and Delirium runs are interleaved and medians taken, so slow drift in
// background load cancels. The circuit baseline evaluates the same cone
// partition the coordination framework uses (identical work).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "src/apps/circuit/circuit.h"
#include "src/apps/ray/ray.h"
#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"
#include "src/support/clock.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

constexpr int kRepeats = 7;

struct Row {
  std::string name;
  double seq_ms = 0;
  double del_ms = 0;
  uint64_t nodes = 0;
  uint64_t activations = 0;
};

/// Interleaved minimum-of-N: run (seq, delirium) pairs back to back after
/// a warmup of each, and keep the fastest observation of either. On a
/// shared single core the minimum estimates the noise-free time; medians
/// still carry ordering/warmup artifacts larger than the overhead itself.
template <typename SeqFn, typename DelFn>
void measure(Row& row, SeqFn seq, DelFn del) {
  seq();
  del();  // warmup both paths
  double seq_min = 1e100, del_min = 1e100;
  for (int i = 0; i < kRepeats; ++i) {
    Stopwatch sw;
    seq();
    seq_min = std::min(seq_min, sw.elapsed_ms());
    sw.reset();
    del();
    del_min = std::min(del_min, sw.elapsed_ms());
  }
  row.seq_ms = seq_min;
  row.del_ms = del_min;
}

}  // namespace

int main() {
  std::printf("Runtime overhead: one-worker Delirium vs hand-written sequential\n");
  std::printf("paper: <1%% on the retina model, <3%% generally\n\n");

  std::vector<Row> rows;

  {
    retina::RetinaParams p;
    p.width = p.height = 512;
    p.num_targets = 64;
    p.num_iter = 4;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    retina::register_retina_operators(registry, p);
    CompiledProgram program = compile_or_throw(
        retina::retina_source(retina::RetinaVersion::kV2Balanced, p), registry);
    Runtime runtime(registry, {.num_workers = 1});
    Row row;
    row.name = "retina (v2)";
    measure(row, [&] { retina::sequential_run(p); }, [&] { runtime.run(program); });
    row.nodes = runtime.last_stats().nodes_executed;
    row.activations = runtime.last_stats().activations_created;
    rows.push_back(row);
  }

  {
    // Coarse enough operators that per-node cost stays small relative to
    // the work (§2.1: "the programmer can adjust the amount of
    // computation in an operator to minimize overhead").
    circuit::CircuitParams p;
    p.num_gates = 120000;
    p.num_outputs = 1024;
    p.num_regs = 256;
    p.cycles = 24;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    circuit::register_circuit_operators(registry, p);
    CompiledProgram program = compile_or_throw(circuit::circuit_source(p), registry);
    Runtime runtime(registry, {.num_workers = 1});
    Row row;
    row.name = "circuit (cone eval)";
    measure(row, [&] { circuit::simulate_sequential_cones(p); },
            [&] { runtime.run(program); });
    row.nodes = runtime.last_stats().nodes_executed;
    row.activations = runtime.last_stats().activations_created;
    rows.push_back(row);
  }

  {
    ray::RayParams p;
    p.width = 320;
    p.height = 240;
    p.num_spheres = 12;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    ray::register_ray_operators(registry, p);
    CompiledProgram program = compile_or_throw(ray::ray_source(p), registry);
    Runtime runtime(registry, {.num_workers = 1});
    Row row;
    row.name = "ray tracer";
    measure(row, [&] { ray::render_sequential(p); }, [&] { runtime.run(program); });
    row.nodes = runtime.last_stats().nodes_executed;
    row.activations = runtime.last_stats().activations_created;
    rows.push_back(row);
  }

  tools::Table table({"application", "sequential (ms)", "delirium 1w (ms)", "overhead",
                      "graph nodes", "activations"});
  for (const Row& row : rows) {
    const double overhead = (row.del_ms - row.seq_ms) / row.seq_ms * 100.0;
    char overhead_str[32];
    std::snprintf(overhead_str, sizeof overhead_str, "%+.1f%%", overhead);
    table.add_row({row.name, tools::Table::ms(row.seq_ms), tools::Table::ms(row.del_ms),
                   overhead_str, std::to_string(row.nodes), std::to_string(row.activations)});
  }
  table.print(std::cout);
  std::printf("\nNote: single-core host; interleaved minimum of %d runs after warmup.\n"
              "Residual noise is a couple of percent — the same order as the overhead\n"
              "being measured, so treat single-run figures with care.\n",
              kRepeats);
  return 0;
}
