// Tracing-overhead check (docs/OBSERVABILITY.md): the event tracer is
// compiled in unconditionally and gated by one predictable branch per
// hook (`trace_enabled_`), so a runtime with tracing disabled must be
// indistinguishable from one that never heard of tracing.
//
// Protocol, on the §9.2 fan-out parmap program (the shape that fires
// the scheduler hooks hardest):
//
//  * off_a vs off_b — two identical runtimes, both with tracing
//    disabled, interleaved min-of-N. Their ratio is the measurement
//    noise floor *plus* any hidden cost of the disabled hooks; the
//    bench FAILS (exit 1) if the geometric mean across worker counts
//    leaves ±5% (per-point ratios are reported but not gated — thread
//    scheduling noise on an oversubscribed host swamps single points).
//  * on — the same program with tracing enabled (ring-buffer writes on
//    every hook), reported as a ratio against off_a for context. This
//    also drives the full tracing path under the CI sanitizer matrix.
//
// `--quick` drops to 5 reps for CI; a JSON path as the last argument
// writes the results (BENCH_trace_overhead.json is a recorded run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/delirium.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wide parmap of cheap operators joined by an iterate fold: maximal
/// scheduler traffic per unit of useful work (same shape as
/// bench_scheduler's fan-out program).
const char* kFanOutSource = R"(
work(x) add(mul(x, x), incr(x))
total(p)
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, package_get(p, i))
  } while is_not_equal(i, package_size(p)), result acc
main() total(parmap(work, range(512)))
)";

struct Point {
  int workers;
  double off_a_ms;
  double off_b_ms;
  double on_ms;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }
  const int reps = quick ? 5 : 15;

  OperatorRegistry registry;
  register_builtin_operators(registry);
  const CompiledProgram program = compile_or_throw(kFanOutSource, registry);

  std::vector<Point> points;
  for (const int workers : quick ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8}) {
    RuntimeConfig config;
    config.num_workers = workers;
    Runtime off_a(registry, config);
    Runtime off_b(registry, config);
    config.enable_tracing = true;
    Runtime on(registry, config);

    // Interleaved minimum-of-N (the bench_overhead protocol): overhead
    // is a lower-bound quantity, and alternating the three runtimes
    // cancels slow drift on a noisy host.
    auto timed = [&](Runtime& runtime) {
      const double start = now_ms();
      runtime.run(program);
      return now_ms() - start;
    };
    timed(off_a);  // warm up outside the clock
    timed(off_b);
    timed(on);
    Point p{workers, 1e30, 1e30, 1e30};
    for (int rep = 0; rep < reps; ++rep) {
      p.off_a_ms = std::min(p.off_a_ms, timed(off_a));
      p.off_b_ms = std::min(p.off_b_ms, timed(off_b));
      p.on_ms = std::min(p.on_ms, timed(on));
    }
    points.push_back(p);
  }

  tools::Table table(
      {"workers", "off A (ms)", "off B (ms)", "traced (ms)", "off B/A", "traced/off"});
  double log_sum = 0;
  for (const Point& p : points) {
    const double disabled_ratio = p.off_b_ms / p.off_a_ms;
    log_sum += std::log(disabled_ratio);
    table.add_row({std::to_string(p.workers), tools::Table::ms(p.off_a_ms, 2),
                   tools::Table::ms(p.off_b_ms, 2), tools::Table::ms(p.on_ms, 2),
                   tools::Table::ratio(disabled_ratio),
                   tools::Table::ratio(p.on_ms / p.off_a_ms)});
  }
  const double geomean = std::exp(log_sum / static_cast<double>(points.size()));
  // --quick runs one worker count under CI sanitizers, where a single
  // A/A point is noisy and instrumentation dominates; the gate there is
  // only a smoke bound. The full run holds the real 5% contract.
  const double tolerance = quick ? 0.15 : 0.05;
  const bool ok = geomean >= 1.0 - tolerance && geomean <= 1.0 + tolerance;
  std::printf("trace overhead (parmap width 512, interleaved min of %d):\n", reps);
  table.print(std::cout);
  std::printf("disabled-tracing geomean ratio: %.3f\n", geomean);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_trace_overhead\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"fanout_parmap512_interleaved_min_of_" << reps << "\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"workers\": " << p.workers
         << ", \"off_a_ms\": " << tools::Table::ms(p.off_a_ms, 2)
         << ", \"off_b_ms\": " << tools::Table::ms(p.off_b_ms, 2)
         << ", \"traced_ms\": " << tools::Table::ms(p.on_ms, 2)
         << ", \"disabled_ratio\": " << tools::Table::ms(p.off_b_ms / p.off_a_ms, 3)
         << ", \"traced_ratio\": " << tools::Table::ms(p.on_ms / p.off_a_ms, 3) << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: disabled-tracing runtimes differ by more than 5%% — the "
                 "kill-switch branch is not free\n");
    return 1;
  }
  std::printf("disabled-tracing overhead within the 5%% bound\n");
  return 0;
}
