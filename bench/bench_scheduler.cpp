// Scheduler ablation: the per-worker work-stealing scheduler vs the
// original global-mutex ready queue (RuntimeConfig::scheduler).
//
// Two measurements:
//
//  1. Raw ready-queue throughput — push/pop pairs per second through a
//     WorkStealDeque (owner fast path), through the MPSC injection
//     queue, and through a mutex-guarded std::deque (what every
//     enqueue/dequeue under kGlobalLock pays), plus a two-thread
//     owner-vs-thief steal run on the Chase–Lev deque.
//
//  2. A fan-out-heavy program — a wide parmap of cheap operators, the
//     §9.2 shape that hammers the ready queue hardest — run end-to-end
//     under both schedulers at 1/2/4/8 workers (real threads, real
//     time: this measures scheduler overhead, not parallel speedup, so
//     it is meaningful on a single-core host — fewer lock handoffs and
//     futex syscalls shorten the wall clock even with one core).
//
// Writes the results as JSON to the path given as argv[1] (default
// stdout) — BENCH_scheduler.json in the repo root is a recorded run;
// EXPERIMENTS.md discusses the numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/delirium.h"
#include "src/support/mpsc_queue.h"
#include "src/support/work_steal_deque.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- 1. raw queue throughput ----------------------------------------------

constexpr int kQueueOps = 2'000'000;

/// Push/pop `kQueueOps` int payloads in batches of 64; returns Mops/s.
template <typename PushFn, typename PopFn>
double queue_throughput(PushFn push, PopFn pop) {
  const double start = now_ms();
  int x = 0;
  for (int done = 0; done < kQueueOps; done += 64) {
    for (int i = 0; i < 64; ++i) push(x++);
    int out;
    for (int i = 0; i < 64; ++i) pop(out);
  }
  return kQueueOps / (now_ms() - start) / 1e3;
}

double ws_deque_throughput() {
  WorkStealDeque<int> q(128);
  return queue_throughput([&](int v) { q.push(std::move(v)); },
                          [&](int& out) { q.pop(out); });
}

double mpsc_throughput() {
  MpscQueue<int> q;
  return queue_throughput([&](int v) { q.push(std::move(v)); },
                          [&](int& out) { q.pop(out); });
}

double mutex_deque_throughput() {
  std::deque<int> q;
  std::mutex mu;
  return queue_throughput(
      [&](int v) {
        std::lock_guard<std::mutex> lock(mu);
        q.push_back(v);
      },
      [&](int& out) {
        std::lock_guard<std::mutex> lock(mu);
        out = q.front();
        q.pop_front();
      });
}

/// Owner pushes/pops while a thief steals; returns items drained per
/// second (both ends combined), exercising the top-CAS contention path.
double ws_deque_steal_throughput() {
  WorkStealDeque<int> q(1024);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> stolen{0};
  std::thread thief([&] {
    int out;
    while (!stop.load(std::memory_order_relaxed)) {
      if (q.steal(out)) stolen.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const double start = now_ms();
  int64_t popped = 0;
  int x = 0;
  for (int done = 0; done < kQueueOps; done += 64) {
    for (int i = 0; i < 64; ++i) q.push(x++);
    int out;
    for (int i = 0; i < 64; ++i) {
      if (q.pop(out)) ++popped;
    }
  }
  const double elapsed = now_ms() - start;
  stop.store(true);
  thief.join();
  return (popped + stolen.load()) / elapsed / 1e3;
}

// --- 2. fan-out program ----------------------------------------------------

/// Wide parmap of cheap operators: WIDTH tasks of a few arithmetic
/// nodes each, joined by an iterate fold. Ready-queue traffic dominates.
const char* kFanOutSource = R"(
work(x) add(mul(x, x), incr(x))
total(p)
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, package_get(p, i))
  } while is_not_equal(i, package_size(p)), result acc
main() total(parmap(work, range(512)))
)";

struct ProgramPoint {
  int workers;
  double global_lock_ms;
  double work_stealing_ms;
};

std::vector<ProgramPoint> run_fanout(const OperatorRegistry& registry,
                                     const CompiledProgram& program) {
  constexpr int kReps = 15;
  std::vector<ProgramPoint> points;
  for (const int workers : {1, 2, 4, 8}) {
    RuntimeConfig config;
    config.num_workers = workers;
    config.scheduler = SchedulerKind::kGlobalLock;
    Runtime global_lock(registry, config);
    config.scheduler = SchedulerKind::kWorkStealing;
    Runtime work_stealing(registry, config);

    // Interleaved minimum-of-N (the bench_overhead protocol): scheduler
    // overhead is a lower-bound quantity, and alternating the two
    // runtimes cancels slow drift on a noisy single-core host.
    auto timed = [&](Runtime& runtime) {
      const double start = now_ms();
      runtime.run(program);
      return now_ms() - start;
    };
    timed(global_lock);  // warm up (and validate) outside the clock
    timed(work_stealing);
    ProgramPoint p{workers, 1e30, 1e30};
    for (int rep = 0; rep < kReps; ++rep) {
      p.global_lock_ms = std::min(p.global_lock_ms, timed(global_lock));
      p.work_stealing_ms = std::min(p.work_stealing_ms, timed(work_stealing));
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  OperatorRegistry registry;
  register_builtin_operators(registry);

  const double ws = ws_deque_throughput();
  const double mpsc = mpsc_throughput();
  const double locked = mutex_deque_throughput();
  const double steal = ws_deque_steal_throughput();
  std::printf("ready-queue throughput (Mops/s): chase-lev %.1f, mpsc %.1f, "
              "mutex+deque %.1f, chase-lev w/ thief %.1f\n",
              ws, mpsc, locked, steal);

  const CompiledProgram program = compile_or_throw(kFanOutSource, registry);
  const std::vector<ProgramPoint> points = run_fanout(registry, program);

  tools::Table table({"workers", "global_lock (ms)", "work_stealing (ms)", "speedup"});
  for (const ProgramPoint& p : points) {
    table.add_row({std::to_string(p.workers), tools::Table::ms(p.global_lock_ms, 2),
                   tools::Table::ms(p.work_stealing_ms, 2),
                   tools::Table::ratio(p.global_lock_ms / p.work_stealing_ms)});
  }
  std::printf("fan-out program (parmap width 512, interleaved min of 15):\n");
  table.print(std::cout);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_scheduler\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"queue_throughput_mops\": {\n"
       << "    \"chase_lev_owner\": " << tools::Table::ms(ws, 1) << ",\n"
       << "    \"mpsc_inject\": " << tools::Table::ms(mpsc, 1) << ",\n"
       << "    \"mutex_deque\": " << tools::Table::ms(locked, 1) << ",\n"
       << "    \"chase_lev_with_thief\": " << tools::Table::ms(steal, 1) << "\n"
       << "  },\n"
       << "  \"fanout_parmap512_interleaved_min_of_15\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ProgramPoint& p = points[i];
    json << "    {\"workers\": " << p.workers
         << ", \"global_lock_ms\": " << tools::Table::ms(p.global_lock_ms, 2)
         << ", \"work_stealing_ms\": " << tools::Table::ms(p.work_stealing_ms, 2)
         << ", \"speedup\": "
         << tools::Table::ms(p.global_lock_ms / p.work_stealing_ms, 2) << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json.str();
    std::printf("wrote %s\n", argv[1]);
  } else {
    std::fputs(json.str().c_str(), stdout);
  }
  return 0;
}
