// Ablation: the graph-level optimizer (§6.1's "unnecessary nodes in the
// graph translate into extra overhead at run-time"). Measures node and
// slot counts with and without the pass, and the virtual-time effect on
// execution, over generated programs compiled without AST optimization
// (so the graph pass has work to do) and with it (the production
// pipeline, where the AST passes have already removed most waste).
#include <cstdio>
#include <iostream>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;

int main() {
  OperatorRegistry registry;
  register_builtin_operators(registry);

  dcc::GenParams gen;
  gen.num_functions = 200;
  gen.body_size = 40;
  gen.seed = 17;
  const std::string source = dcc::generate_program(gen);

  std::printf("Graph-level optimization ablation (generated program, %zu lines)\n\n",
              dcc::count_lines(source));

  tools::Table table({"pipeline", "graph nodes", "value slots", "templates",
                      "virtual makespan (2 procs)"});
  for (const bool ast_opt : {false, true}) {
    CompileOptions options;
    options.optimize = ast_opt;
    options.graph_opt = false;
    CompiledProgram unpruned = compile_or_throw(source, registry, options);
    CompiledProgram pruned = compile_or_throw(source, registry, options);
    optimize_graphs(pruned, registry);

    auto slots = [](const CompiledProgram& p) {
      size_t total = 0;
      for (const auto& t : p.templates) total += t->value_slots;
      return total;
    };
    auto makespan = [&registry](const CompiledProgram& p) {
      SimRuntime sim(registry, {.num_procs = 2});
      return static_cast<double>(sim.run(p).makespan) / 1e6;
    };
    const std::string label = ast_opt ? "AST opt" : "no AST opt";
    table.add_row({label + ", raw graphs", std::to_string(unpruned.total_nodes()),
                   std::to_string(slots(unpruned)),
                   std::to_string(unpruned.templates.size()),
                   tools::Table::ms(makespan(unpruned))});
    table.add_row({label + ", + graph opt", std::to_string(pruned.total_nodes()),
                   std::to_string(slots(pruned)), std::to_string(pruned.templates.size()),
                   tools::Table::ms(makespan(pruned))});
  }
  table.print(std::cout);
  std::printf("\nWith AST optimization off, the graph pass removes the dead plumbing the\n"
              "front end left behind; in the production pipeline it is a safety net.\n");
  return 0;
}
