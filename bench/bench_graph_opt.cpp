// Ablation: the graph-level optimizer and the facts-driven rewrites
// (§6.1's "unnecessary nodes in the graph translate into extra overhead
// at run-time"). Two sections:
//
//  1. Static ablation over a generated program — node / slot / template
//     counts and virtual makespan with and without the pass, with and
//     without AST optimization (the production pipeline).
//  2. A/A-disciplined wall-clock comparison on tiny-op fan-out
//     workloads whose per-iteration bodies are dominated by
//     constant-returning pure calls — the shape the facts engine's
//     interprocedural folding collapses. Protocol is
//     bench_activation_pool's: two identical facts-optimized programs
//     interleaved min-of-N give the A/A noise floor (FAIL outside
//     ±5%), and the unoptimized program must come out >= the gate
//     ratio slower (FAIL below it — the rewrite must pay for itself).
//
// `--quick` drops reps/matrix for CI; a JSON path as the last argument
// writes the results (BENCH_graph_facts.json is a recorded run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Tiny-op fan-out: every iteration fans out into constant-returning
/// pure calls of tiny operators. Unfolded, each call expands an
/// activation of cheap nodes; folded, the whole fan collapses to one
/// literal per iteration and only the loop spine remains.
const char* kCallFanSource = R"(
k1() add(mul(3, 4), sub(9, 2))
k2() mul(add(2, 3), add(1, 4))
k3() add(k1(), mul(k2(), 2))
main()
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, add(k3(), add(k1(), k2())))
  } while is_not_equal(i, 20000), result acc
)";

/// Tiny-op constant chains: the same loop, but the per-iteration waste
/// is a deep chain of constant scalar operators (no calls) — the
/// intraprocedural half of the folding.
const char* kConstChainSource = R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, add(mul(3, 4), add(mul(2, 5), add(sub(9, 2), mul(1, 6)))))
  } while is_not_equal(i, 20000), result acc
)";

struct Point {
  const char* workload;
  int workers;
  double opt_a_ms;
  double opt_b_ms;
  double off_ms;
  uint64_t opt_nodes;  // RunStats.nodes_executed, facts-optimized
  uint64_t off_nodes;  // RunStats.nodes_executed, unoptimized
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }
  const int reps = quick ? 5 : 15;

  OperatorRegistry registry;
  register_builtin_operators(registry);

  // -- Section 1: static ablation over a generated program ------------------
  {
    dcc::GenParams gen;
    gen.num_functions = 200;
    gen.body_size = 40;
    gen.seed = 17;
    const std::string source = dcc::generate_program(gen);

    std::printf("Graph-level optimization ablation (generated program, %zu lines)\n\n",
                dcc::count_lines(source));

    tools::Table table({"pipeline", "graph nodes", "value slots", "templates",
                        "virtual makespan (2 procs)"});
    for (const bool ast_opt : {false, true}) {
      CompileOptions options;
      options.optimize = ast_opt;
      options.graph_opt = false;
      CompiledProgram unpruned = compile_or_throw(source, registry, options);
      CompiledProgram pruned = compile_or_throw(source, registry, options);
      optimize_graphs(pruned, registry);

      auto slots = [](const CompiledProgram& p) {
        size_t total = 0;
        for (const auto& t : p.templates) total += t->value_slots;
        return total;
      };
      auto makespan = [&registry](const CompiledProgram& p) {
        SimRuntime sim(registry, {.num_procs = 2});
        return static_cast<double>(sim.run(p).makespan) / 1e6;
      };
      const std::string label = ast_opt ? "AST opt" : "no AST opt";
      table.add_row({label + ", raw graphs", std::to_string(unpruned.total_nodes()),
                     std::to_string(slots(unpruned)),
                     std::to_string(unpruned.templates.size()),
                     tools::Table::ms(makespan(unpruned))});
      table.add_row({label + ", + graph opt", std::to_string(pruned.total_nodes()),
                     std::to_string(slots(pruned)),
                     std::to_string(pruned.templates.size()),
                     tools::Table::ms(makespan(pruned))});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  // -- Section 2: A/A-disciplined wall-clock before/after -------------------
  CompileOptions no_opt;
  no_opt.optimize = false;  // isolate the graph pass: AST pipeline off

  std::vector<Point> points;
  for (const auto& [name, source] :
       std::vector<std::pair<const char*, const char*>>{{"call-fan", kCallFanSource},
                                                        {"const-chain", kConstChainSource}}) {
    CompiledProgram opt_program = compile_or_throw(source, registry, no_opt);
    const GraphOptStats stats = optimize_graphs(opt_program, registry);
    const CompiledProgram off_program = compile_or_throw(source, registry, no_opt);
    std::printf("%s: folded %zu const(s), removed %zu node(s), %zu -> %zu graph nodes\n",
                name, stats.consts_folded, stats.dead_nodes_removed,
                off_program.total_nodes(), opt_program.total_nodes());

    for (const int workers : quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8}) {
      RuntimeConfig config;
      config.num_workers = workers;
      Runtime opt_a(registry, config);
      Runtime opt_b(registry, config);
      Runtime off(registry, config);

      // Interleaved minimum-of-N: overhead is a lower-bound quantity,
      // and alternating the three runtimes cancels slow drift.
      auto timed = [&](Runtime& runtime, const CompiledProgram& program) {
        const double start = now_ms();
        runtime.run(program);
        return now_ms() - start;
      };
      timed(opt_a, opt_program);  // warm up outside the clock
      timed(opt_b, opt_program);
      timed(off, off_program);
      Point p{name, workers, 1e30, 1e30, 1e30, 0, 0};
      for (int rep = 0; rep < reps; ++rep) {
        p.opt_a_ms = std::min(p.opt_a_ms, timed(opt_a, opt_program));
        p.opt_b_ms = std::min(p.opt_b_ms, timed(opt_b, opt_program));
        p.off_ms = std::min(p.off_ms, timed(off, off_program));
      }
      p.opt_nodes = opt_a.last_stats().nodes_executed;
      p.off_nodes = off.last_stats().nodes_executed;
      points.push_back(p);
    }
  }

  tools::Table table({"workload", "workers", "facts A (ms)", "facts B (ms)", "off (ms)",
                      "B/A", "off/facts", "nodes opt", "nodes off"});
  double aa_log_sum = 0;
  double off_log_sum = 0;
  for (const Point& p : points) {
    const double aa_ratio = p.opt_b_ms / p.opt_a_ms;
    const double off_ratio = p.off_ms / p.opt_a_ms;
    aa_log_sum += std::log(aa_ratio);
    off_log_sum += std::log(off_ratio);
    table.add_row({p.workload, std::to_string(p.workers), tools::Table::ms(p.opt_a_ms, 2),
                   tools::Table::ms(p.opt_b_ms, 2), tools::Table::ms(p.off_ms, 2),
                   tools::Table::ratio(aa_ratio), tools::Table::ratio(off_ratio),
                   std::to_string(p.opt_nodes), std::to_string(p.off_nodes)});
  }
  const double count = static_cast<double>(points.size());
  const double aa_geomean = std::exp(aa_log_sum / count);
  const double off_geomean = std::exp(off_log_sum / count);
  // --quick runs one worker count under CI sanitizers, where a single
  // A/A point is noisy and instrumentation flattens the fold win; the
  // gates there are smoke bounds. The full run holds the real contract:
  // A/A within ±5% and the fold worth >= 1.2x on these workloads.
  const double tolerance = quick ? 0.15 : 0.05;
  const double speedup_gate = quick ? 1.05 : 1.2;
  const bool aa_ok = aa_geomean >= 1.0 - tolerance && aa_geomean <= 1.0 + tolerance;
  const bool speedup_ok = off_geomean >= speedup_gate;
  std::printf("\nfacts-driven folding (tiny-op fan-out, interleaved min of %d):\n", reps);
  table.print(std::cout);
  std::printf("facts A/A geomean ratio: %.3f\n", aa_geomean);
  std::printf("unoptimized / facts-optimized geomean ratio: %.3f\n", off_geomean);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_graph_opt\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"aa_geomean\": " << tools::Table::ms(aa_geomean, 3) << ",\n"
       << "  \"off_over_facts_geomean\": " << tools::Table::ms(off_geomean, 3) << ",\n"
       << "  \"interleaved_min_of_" << reps << "\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"workload\": \"" << p.workload << "\", \"workers\": " << p.workers
         << ", \"facts_a_ms\": " << tools::Table::ms(p.opt_a_ms, 2)
         << ", \"facts_b_ms\": " << tools::Table::ms(p.opt_b_ms, 2)
         << ", \"off_ms\": " << tools::Table::ms(p.off_ms, 2)
         << ", \"aa_ratio\": " << tools::Table::ms(p.opt_b_ms / p.opt_a_ms, 3)
         << ", \"off_ratio\": " << tools::Table::ms(p.off_ms / p.opt_a_ms, 3)
         << ", \"nodes_executed_opt\": " << p.opt_nodes
         << ", \"nodes_executed_off\": " << p.off_nodes << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!aa_ok) {
    std::fprintf(stderr,
                 "FAIL: identical facts-optimized runtimes differ by more than %.0f%% — "
                 "the measurement is unstable\n",
                 tolerance * 100);
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: facts-driven folding below the gate on its home workload "
                 "(unopt/opt %.3f < %.2f)\n",
                 off_geomean, speedup_gate);
    return 1;
  }
  std::printf("A/A within the noise bound and the fold clears the %.2fx gate\n",
              speedup_gate);
  return 0;
}
