// §9.2 ablation: hard-wired vs dynamic parallelism.
//
// Paper: "the number of pieces into which a data structure is divided is
// chosen explicitly by the Delirium programmer. This is an awkward way
// to describe high degrees of parallelism and cannot take into account
// the load of the system. We have addressed this problem by generalizing
// the language..." — the generalization this repo implements as parmap.
//
// Workload: grid relaxation. The classic program forks a fixed 4 ways
// (it saturates at 4 processors, like Figure 1's retina); the parmap
// program picks its band count from the data, so the same source scales
// with the machine.
#include <cstdio>
#include <iostream>

#include "src/apps/grid/grid.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;
using namespace delirium::grid;

namespace {

double makespan_ms(const OperatorRegistry& registry, const CompiledProgram& program,
                   const CostTable& costs, int procs) {
  SimConfig config;
  config.num_procs = procs;
  config.replay_costs = &costs;
  SimRuntime sim(registry, config);
  return static_cast<double>(sim.run(program).makespan) / 1e6;
}

}  // namespace

int main() {
  GridParams params;
  params.width = params.height = 768;
  params.steps = 6;
  params.seed = 11;

  std::printf("Hard-wired (4-way) vs dynamic (parmap) parallelism: grid relaxation %dx%d\n\n",
              params.width, params.height);

  tools::Table table({"program", "bands", "1 proc (ms)", "4 procs", "8 procs",
                      "speedup @8"});

  // Classic: bands fixed at 4 in the source.
  {
    params.bands = 4;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    register_grid_operators(registry, params);
    CompiledProgram program = compile_or_throw(grid_source(params), registry);
    const CostTable costs = calibrate_costs(registry, program, 3);
    const double one = makespan_ms(registry, program, costs, 1);
    const double four = makespan_ms(registry, program, costs, 4);
    const double eight = makespan_ms(registry, program, costs, 8);
    table.add_row({"classic fork-join", "4 (hard-wired)", tools::Table::ms(one),
                   tools::Table::ms(four), tools::Table::ms(eight),
                   tools::Table::ratio(one / eight)});
  }

  // parmap: same source text, band count from the data.
  for (int bands : {8, 16}) {
    params.bands = bands;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    register_grid_operators(registry, params);
    CompiledProgram program = compile_or_throw(grid_source_parmap(params), registry);
    const CostTable costs = calibrate_costs(registry, program, 3);
    const double one = makespan_ms(registry, program, costs, 1);
    const double four = makespan_ms(registry, program, costs, 4);
    const double eight = makespan_ms(registry, program, costs, 8);
    table.add_row({"parmap (dynamic)", std::to_string(bands) + " (run-time)",
                   tools::Table::ms(one), tools::Table::ms(four), tools::Table::ms(eight),
                   tools::Table::ratio(one / eight)});
  }
  table.print(std::cout);
  std::printf("\nThe hard-wired program cannot use more than 4 processors; the dynamic\n"
              "one keeps scaling because its fork width follows the data.\n");
  return 0;
}
