// §9.3 reproduction: affinity scheduling under non-uniform memory cost.
//
// Paper: two preliminary affinity schemes — operator affinity (an
// operator prefers the processor it last ran on) and data affinity (the
// scheduler considers the size and cached locations of a node's inputs).
// "We expect affinity to be of some use on machines like the Cray, but
// to be particularly important on architectures like the Butterfly which
// have non-uniform access to memory."
//
// Workload: iterative grid relaxation — five persistent 2 MiB grids,
// each relaxed once per step by the same operator. Five grids on four
// processors force rotation under plain FIFO scheduling (grids migrate
// every step and pay the remote penalty); data affinity pins each grid
// to the processor whose memory holds it. Remote access is a virtual
// per-KiB penalty in the simulator (Butterfly-style NUMA); 0 models the
// UMA Cray/Sequent. See DESIGN.md for the substitution.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

constexpr int kGrids = 5;
constexpr int kSteps = 24;
constexpr int kGridCells = 512 * 1024;  // 2 MiB of floats

std::string grid_source() {
  std::ostringstream os;
  os << "main()\n  iterate {\n    step = 0, incr(step)\n";
  for (int g = 0; g < kGrids; ++g) {
    os << "    g" << g << " = make_grid(" << g << "), relax(g" << g << ")\n";
  }
  os << "  } while is_not_equal(step, " << kSteps << "), result g0\n";
  return os.str();
}

void register_grid_operators(OperatorRegistry& registry) {
  registry.add("make_grid", 1, [](OpContext& ctx) {
    return Value::block(std::vector<float>(
        kGridCells, static_cast<float>(ctx.arg_int(0))));
  });
  registry.add("relax", 1, [](OpContext& ctx) {
    auto& grid = ctx.arg_block_mut<std::vector<float>>(0);
    // One Jacobi-ish smoothing sweep.
    float prev = grid[0];
    for (size_t i = 1; i + 1 < grid.size(); ++i) {
      const float cur = grid[i];
      grid[i] = 0.25f * prev + 0.5f * cur + 0.25f * grid[i + 1];
      prev = cur;
    }
    return ctx.take(0);
  }).destructive(0);
}

}  // namespace

int main() {
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_grid_operators(registry);
  CompiledProgram program = compile_or_throw(grid_source(), registry);
  const CostTable costs = calibrate_costs(registry, program, 3);

  std::printf("Affinity scheduling: %d persistent 2 MiB grids relaxed for %d steps on 4 "
              "virtual processors\n", kGrids, kSteps);
  std::printf("remote penalty: virtual ns per KiB of a block homed on another processor\n\n");

  tools::Table table({"memory model", "affinity", "makespan (ms)", "remote block moves",
                      "speedup vs no affinity"});
  for (const int64_t penalty : {int64_t{0}, int64_t{500}, int64_t{2000}}) {
    double none_ms = 0;
    for (const auto affinity :
         {AffinityMode::kNone, AffinityMode::kOperator, AffinityMode::kData}) {
      SimConfig config;
      config.num_procs = 4;
      config.replay_costs = &costs;
      config.remote_penalty_ns_per_kb = penalty;
      config.affinity = affinity;
      SimRuntime sim(registry, config);
      SimResult result = sim.run(program);
      const double ms = static_cast<double>(result.makespan) / 1e6;
      const char* affinity_name = affinity == AffinityMode::kNone       ? "none"
                                  : affinity == AffinityMode::kOperator ? "operator"
                                                                        : "data";
      if (affinity == AffinityMode::kNone) none_ms = ms;
      std::string model = penalty == 0 ? "UMA (Cray/Sequent)"
                                       : "NUMA " + std::to_string(penalty) + " ns/KiB";
      table.add_row({model, affinity_name, tools::Table::ms(ms),
                     std::to_string(result.stats.remote_block_moves),
                     tools::Table::ratio(none_ms / ms)});
    }
  }
  table.print(std::cout);
  std::printf("\nExpected shape (§9.3): affinity is marginal on UMA and increasingly\n"
              "important as remote access grows more expensive; data affinity\n"
              "eliminates nearly all block migrations.\n");
  return 0;
}
