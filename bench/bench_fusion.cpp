// Ablation: operator chain fusion and tuple-plumbing elision (§6.1's
// "unnecessary nodes in the graph translate into extra overhead at
// run-time" — here the overhead removed is per-node dispatch itself:
// a fused chain pays scheduling, tracing, and delivery once per chain
// instead of once per operator).
//
// Protocol is bench_trace_overhead / bench_graph_opt's: two identical
// fusion-optimized programs interleaved min-of-N give the A/A noise
// floor (FAIL outside ±5%), and the PR 6 baseline — same facts-driven
// pipeline with fusion and tuple elision off — must come out >= the
// gate ratio slower on the geomean (FAIL below it). A chains-only leg
// (tuple elision off) rides along for the EXPERIMENTS.md ablation.
//
// Workloads: two tiny-op fan-out loops whose per-iteration bodies are
// chains of cheap pure operators rooted at loop-carried values (the
// shape folding cannot touch but fusion collapses), and the Table 1
// compiler-scale generated program (bench_table1_compiler's GenParams)
// executed on the threaded runtime.
//
// `--quick` drops reps/matrix for CI; a JSON path as the last argument
// writes the results (BENCH_fusion.json is a recorded run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A `depth`-operator linear chain rooted at `root`, every sibling
/// input a constant — exactly the fusion shape. Alternating add/sub
/// with mul-by-1 links keeps the value bounded over any iteration
/// count.
std::string chain_expr(const std::string& root, int depth) {
  std::string e = root;
  for (int k = 0; k < depth; ++k) {
    switch (k % 3) {
      case 0: e = "add(" + e + ", " + std::to_string(k % 7 + 1) + ")"; break;
      case 1: e = "mul(" + e + ", 1)"; break;
      default: e = "sub(" + e + ", " + std::to_string(k % 5) + ")"; break;
    }
  }
  return e;
}

/// Tiny-op chain fan-out: the loop body is a 32-operator linear chain
/// rooted at the loop-carried accumulator.
std::string chain_fan_source() {
  return "main()\n  iterate {\n    i = 0, incr(i)\n    acc = 0, " +
         chain_expr("acc", 32) +
         "\n  } while is_not_equal(i, 20000), result acc\n";
}

/// Tiny-op call chain: each iteration activates a pure template whose
/// body is an 18-operator chain rooted at its parameter, plus a
/// statically-matched tuple round-trip the elision rewrite removes —
/// per activation, fusion + elision collapse the dispatches to one.
std::string call_chain_source() {
  return "step(x)\n  let <lo, hi> = <" + chain_expr("x", 18) +
         ", 3>\n  in mul(add(lo, hi), 1)\n"
         "main()\n  iterate {\n    i = 0, incr(i)\n    acc = 0, add(acc, step(i))\n"
         "  } while is_not_equal(i, 8000), result acc\n";
}

struct Point {
  std::string workload;
  int workers;
  double fused_a_ms;
  double fused_b_ms;
  double chains_ms;  // chains fused, tuple elision off
  double off_ms;     // PR 6 baseline: facts rewrites on, fusion+elision off
  uint64_t fused_nodes;  // RunStats.nodes_executed, fully fused
  uint64_t off_nodes;    // RunStats.nodes_executed, baseline
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }
  const int reps = quick ? 5 : 15;

  OperatorRegistry registry;
  register_builtin_operators(registry);

  // The Table 1 compiler-scale input (bench_table1_compiler's GenParams):
  // a generated program of the scale the paper's compiler compiles,
  // executed here as a coordination graph of tiny arithmetic operators.
  dcc::GenParams gen;
  gen.num_functions = quick ? 200 : 1200;
  gen.body_size = 60;
  gen.num_macros = 30;
  gen.seed = 42;
  const std::string table1_source = dcc::generate_program(gen);

  struct Workload {
    std::string name;
    std::string source;
  };
  const std::vector<Workload> workloads = {
      {"chain-fan", chain_fan_source()},
      {"call-chain", call_chain_source()},
      {"table1-compiler", table1_source},
  };

  // AST pipeline off, graph pass applied per leg: isolates what fusion
  // adds on top of the PR 6 facts rewrites, which stay on in every leg.
  CompileOptions no_opt;
  no_opt.optimize = false;

  std::vector<Point> points;
  for (const Workload& w : workloads) {
    auto build = [&](bool fuse, bool tuples) {
      CompiledProgram program = compile_or_throw(w.source, registry, no_opt);
      GraphOptOptions options;
      options.fuse_chains = fuse;
      options.elide_tuples = tuples;
      const GraphOptStats stats = optimize_graphs(program, registry, options);
      return std::make_pair(std::move(program), stats);
    };
    auto [fused_program, fused_stats] = build(true, true);
    auto [chains_program, chains_stats] = build(true, false);
    auto [off_program, off_stats] = build(false, false);
    std::printf(
        "%s: fused %zu chain(s) (%zu node(s) absorbed), elided %zu tuple(s), "
        "%zu -> %zu graph nodes\n",
        w.name.c_str(), fused_stats.chains_fused, fused_stats.fused_nodes_absorbed,
        fused_stats.tuples_elided, off_program.total_nodes(), fused_program.total_nodes());

    for (const int workers : quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8}) {
      RuntimeConfig config;
      config.num_workers = workers;
      Runtime fused_a(registry, config);
      Runtime fused_b(registry, config);
      Runtime chains(registry, config);
      Runtime off(registry, config);

      // Interleaved minimum-of-N: overhead is a lower-bound quantity,
      // and alternating the four runtimes cancels slow drift.
      auto timed = [&](Runtime& runtime, const CompiledProgram& program) {
        const double start = now_ms();
        runtime.run(program);
        return now_ms() - start;
      };
      timed(fused_a, fused_program);  // warm up outside the clock
      timed(fused_b, fused_program);
      timed(chains, chains_program);
      timed(off, off_program);
      Point p{w.name, workers, 1e30, 1e30, 1e30, 1e30, 0, 0};
      for (int rep = 0; rep < reps; ++rep) {
        p.fused_a_ms = std::min(p.fused_a_ms, timed(fused_a, fused_program));
        p.fused_b_ms = std::min(p.fused_b_ms, timed(fused_b, fused_program));
        p.chains_ms = std::min(p.chains_ms, timed(chains, chains_program));
        p.off_ms = std::min(p.off_ms, timed(off, off_program));
      }
      p.fused_nodes = fused_a.last_stats().nodes_executed;
      p.off_nodes = off.last_stats().nodes_executed;
      points.push_back(p);
    }
  }

  tools::Table table({"workload", "workers", "fused A (ms)", "fused B (ms)",
                      "chains only (ms)", "fusion off (ms)", "B/A", "off/fused",
                      "nodes fused", "nodes off"});
  double aa_log_sum = 0;
  double off_log_sum = 0;
  for (const Point& p : points) {
    const double aa_ratio = p.fused_b_ms / p.fused_a_ms;
    const double off_ratio = p.off_ms / p.fused_a_ms;
    aa_log_sum += std::log(aa_ratio);
    off_log_sum += std::log(off_ratio);
    table.add_row({p.workload, std::to_string(p.workers),
                   tools::Table::ms(p.fused_a_ms, 2), tools::Table::ms(p.fused_b_ms, 2),
                   tools::Table::ms(p.chains_ms, 2), tools::Table::ms(p.off_ms, 2),
                   tools::Table::ratio(aa_ratio), tools::Table::ratio(off_ratio),
                   std::to_string(p.fused_nodes), std::to_string(p.off_nodes)});
  }
  const double count = static_cast<double>(points.size());
  const double aa_geomean = std::exp(aa_log_sum / count);
  const double off_geomean = std::exp(off_log_sum / count);
  // --quick runs one worker count under CI, where a single A/A point is
  // noisy and sanitizer instrumentation flattens the dispatch win; the
  // gates there are smoke bounds. The full run holds the real contract:
  // A/A within ±5% and fusion worth >= 1.5x on these workloads.
  const double tolerance = quick ? 0.15 : 0.05;
  const double speedup_gate = quick ? 1.05 : 1.5;
  const bool aa_ok = aa_geomean >= 1.0 - tolerance && aa_geomean <= 1.0 + tolerance;
  const bool speedup_ok = off_geomean >= speedup_gate;
  std::printf("\nchain fusion + tuple elision (interleaved min of %d):\n", reps);
  table.print(std::cout);
  std::printf("fused A/A geomean ratio: %.3f\n", aa_geomean);
  std::printf("fusion-off / fused geomean ratio: %.3f\n", off_geomean);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_fusion\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"aa_geomean\": " << tools::Table::ms(aa_geomean, 3) << ",\n"
       << "  \"off_over_fused_geomean\": " << tools::Table::ms(off_geomean, 3) << ",\n"
       << "  \"interleaved_min_of_" << reps << "\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"workload\": \"" << p.workload << "\", \"workers\": " << p.workers
         << ", \"fused_a_ms\": " << tools::Table::ms(p.fused_a_ms, 2)
         << ", \"fused_b_ms\": " << tools::Table::ms(p.fused_b_ms, 2)
         << ", \"chains_only_ms\": " << tools::Table::ms(p.chains_ms, 2)
         << ", \"fusion_off_ms\": " << tools::Table::ms(p.off_ms, 2)
         << ", \"aa_ratio\": " << tools::Table::ms(p.fused_b_ms / p.fused_a_ms, 3)
         << ", \"off_ratio\": " << tools::Table::ms(p.off_ms / p.fused_a_ms, 3)
         << ", \"nodes_executed_fused\": " << p.fused_nodes
         << ", \"nodes_executed_off\": " << p.off_nodes << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!aa_ok) {
    std::fprintf(stderr,
                 "FAIL: identical fused runtimes differ by more than %.0f%% — "
                 "the measurement is unstable\n",
                 tolerance * 100);
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: chain fusion below the gate on its home workloads "
                 "(off/fused %.3f < %.2f)\n",
                 off_geomean, speedup_gate);
    return 1;
  }
  std::printf("A/A within the noise bound and fusion clears the %.2fx gate\n",
              speedup_gate);
  return 0;
}
