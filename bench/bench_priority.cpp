// §7 reproduction: the three-level priority ready queue.
//
// Paper: "The priority scheme reduces the number of template activations
// required to evaluate a Delirium program, by making activations
// available for re-use as early as possible", and warns (§3) that the
// queens program's parallelism "might lead to an unwieldy explosion of
// schedulable operators without the priority execution scheme".
//
// Measured: peak live activations and total activations for N-queens
// under the priority queue vs a single FIFO, on 4 virtual processors.
// Also an ablation of tail-call continuation forwarding via a long
// iterate loop.
#include <cstdio>
#include <iostream>

#include "src/apps/queens/queens.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;

int main() {
  std::printf("Priority ready queue vs FIFO: live template activations (4 virtual procs)\n\n");

  tools::Table table({"workload", "policy", "peak live activations", "activations created",
                      "result"});
  for (int n : {6, 7, 8}) {
    OperatorRegistry registry;
    register_builtin_operators(registry);
    queens::register_queens_operators(registry, n);
    CompiledProgram program = compile_or_throw(queens::queens_source(n), registry);
    for (const bool priorities : {true, false}) {
      SimConfig config;
      config.num_procs = 4;
      config.use_priorities = priorities;
      SimRuntime sim(registry, config);
      SimResult result = sim.run(program);
      table.add_row({std::to_string(n) + "-queens",
                     priorities ? "3-level priority" : "single FIFO",
                     std::to_string(result.stats.peak_live_activations),
                     std::to_string(result.stats.activations_created),
                     std::to_string(result.result.as_int()) + " solutions"});
    }
  }
  table.print(std::cout);

  std::printf("\nTail-call forwarding: iterate loop of 100000 steps\n");
  {
    OperatorRegistry registry;
    register_builtin_operators(registry);
    CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0, incr(i)
  } while is_not_equal(i, 100000), result i
)",
                                               registry);
    Runtime runtime(registry, {.num_workers = 2});
    runtime.run(program);
    std::printf("  activations created: %llu, peak live: %llu "
                "(constant space despite 100000 iterations)\n",
                static_cast<unsigned long long>(runtime.last_stats().activations_created),
                static_cast<unsigned long long>(runtime.last_stats().peak_live_activations));
  }
  return 0;
}
