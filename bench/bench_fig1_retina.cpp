// Figure 1 reproduction: retina simulation speedup vs processor count.
//
// Paper (Cray Y-MP, final/v2 coordination): speedup ~3.3 on 4 processors,
// with 3 processors performing almost exactly like 2 (four equal tasks:
// one processor does two of them).
//
// Host substitution: this machine has one core, so processors are
// simulated in virtual time (SimRuntime). Operators execute for real;
// per-invocation costs are calibrated once (median of 3 single-processor
// runs) and replayed, so the curves are deterministic. See DESIGN.md.
#include <cstdio>
#include <iostream>

#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;
using namespace delirium::retina;

int main() {
  RetinaParams params;
  params.width = params.height = 512;
  params.num_targets = 64;
  params.num_iter = 4;
  params.seed = 7;

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_retina_operators(registry, params);

  std::printf("Figure 1: Retina Simulation speedup (virtual processors)\n");
  std::printf("paper reference (v2 on Cray Y-MP): 1 -> 1.0, 2 -> ~1.9, 3 -> ~2.0, 4 -> 3.3\n\n");

  const double seq_checksum = checksum(sequential_run(params));

  for (const auto version : {RetinaVersion::kV2Balanced, RetinaVersion::kV1Imbalanced}) {
    const bool v2 = version == RetinaVersion::kV2Balanced;
    CompiledProgram program = compile_or_throw(retina_source(version, params), registry);
    const CostTable costs = calibrate_costs(registry, program, 3);

    tools::Table table({"processors", "makespan (ms)", "speedup", "efficiency", "checksum ok"});
    double base_ms = 0;
    for (int procs : {1, 2, 3, 4, 8}) {
      SimConfig config;
      config.num_procs = procs;
      config.replay_costs = &costs;
      SimRuntime sim(registry, config);
      SimResult result = sim.run(program);
      const double ms = static_cast<double>(result.makespan) / 1e6;
      if (procs == 1) base_ms = ms;
      const double speedup = base_ms / ms;
      const bool ok =
          checksum(result.result.block_as<RetinaModel>()) == seq_checksum;
      table.add_row({std::to_string(procs), tools::Table::ms(ms),
                     tools::Table::ratio(speedup),
                     tools::Table::ratio(speedup / procs), ok ? "yes" : "NO"});
    }
    std::printf("%s coordination (%s):\n", v2 ? "v2 (final, balanced)" : "v1 (first attempt)",
                v2 ? "the Figure 1 program" : "capped below 2 by sequential post_up");
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
