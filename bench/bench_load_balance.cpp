// §5.2 reproduction: diagnosing load imbalance with node timings.
//
// Paper: the first coordination version showed post_up alternating
// between negligible cost and "as long as all the convolutions
// combined", capping speedup below 2 regardless of processor count.
// Decomposing the update into a four-way fork-join (update_bite) gave
// almost perfect balance.
//
// This bench prints the node-timing evidence for both versions, exactly
// the diagnostic workflow the paper describes.
#include <algorithm>
#include <cstdio>
#include <map>
#include <iostream>

#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"
#include "src/tools/report.h"

using namespace delirium;
using namespace delirium::retina;

int main() {
  RetinaParams params;
  params.width = params.height = 384;
  params.num_targets = 48;
  params.num_iter = 2;
  params.seed = 7;

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_retina_operators(registry, params);

  RuntimeConfig config{.num_workers = 1};
  config.enable_node_timing = true;
  Runtime runtime(registry, config);

  for (const auto version : {RetinaVersion::kV1Imbalanced, RetinaVersion::kV2Balanced}) {
    const bool v1 = version == RetinaVersion::kV1Imbalanced;
    delirium_run(params, version, runtime);
    std::printf("=== %s ===\n", v1 ? "v1: post_up merges and updates sequentially"
                                   : "v2: update decomposed into update_bite x4");

    // The paper-style trace excerpt: one slab's worth of calls.
    std::printf("node timing excerpt:\n");
    size_t shown = 0;
    for (const NodeTiming& t : runtime.node_timings()) {
      if (t.label == "incr" || t.label == "is_not_equal") continue;
      if (t.label == "set_up" || t.label == "target_split" || t.label == "target_bite") {
        continue;
      }
      std::printf("  call of %s took %lld\n", t.label.c_str(),
                  static_cast<long long>(t.duration));
      if (++shown >= 14) break;
    }

    // Per-op duration lists; light/heavy invocations are separated by
    // the median split (heavy slabs are every other slab).
    std::map<std::string, std::vector<Ticks>> durations;
    for (const NodeTiming& t : runtime.node_timings()) durations[t.label].push_back(t.duration);
    auto median = [](std::vector<Ticks> v) -> double {
      if (v.empty()) return 0;
      std::sort(v.begin(), v.end());
      return static_cast<double>(v[v.size() / 2]);
    };
    auto heavy_median = [&median](const std::vector<Ticks>& v) -> double {
      std::vector<Ticks> sorted = v;
      std::sort(sorted.begin(), sorted.end());
      return median(std::vector<Ticks>(sorted.begin() + static_cast<long>(sorted.size() / 2),
                                       sorted.end()));
    };
    auto light_median = [&median](const std::vector<Ticks>& v) -> double {
      std::vector<Ticks> sorted = v;
      std::sort(sorted.begin(), sorted.end());
      return median(std::vector<Ticks>(sorted.begin(),
                                       sorted.begin() + static_cast<long>(sorted.size() / 2)));
    };

    tools::Table table(
        {"operator", "calls", "light median (us)", "heavy median (us)"});
    for (const char* op : {"convol_bite", "post_up", "update_bite", "done_up"}) {
      auto it = durations.find(op);
      if (it == durations.end()) continue;
      table.add_row({op, std::to_string(it->second.size()),
                     tools::Table::ms(light_median(it->second) / 1e3, 0),
                     tools::Table::ms(heavy_median(it->second) / 1e3, 0)});
    }
    table.print(std::cout);

    const double bite = median(durations.at("convol_bite"));
    if (v1) {
      const auto& post = durations.at("post_up");
      std::printf("heavy/light post_up: %.0fx (paper: 'roughly half negligible, half as "
                  "long as all the convolutions combined')\n",
                  heavy_median(post) / std::max(light_median(post), 1.0));
      std::printf("heavy post_up vs all four convol_bites of a slab: %.2fx\n\n",
                  heavy_median(post) / (4.0 * bite));
    } else {
      const auto& update = durations.at("update_bite");
      std::printf("heavy update_bite vs convol_bite: %.2fx (the paper's v2 node timings "
                  "show them nearly equal)\n\n",
                  heavy_median(update) / bite);
    }
  }
  return 0;
}
