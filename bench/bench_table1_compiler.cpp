// Table 1 reproduction: per-pass times of the parallel compiler.
//
// Paper (Sequent Symmetry, 5500-line compiler source as input):
//   Pass              Sequential   Parallel (n=3)
//   Lexing                91            91
//   Parsing              200            78
//   Macro Expansion      117            50
//   Env Analysis         300           120
//   Optimization         350           160
//   Graph Conversion     380           160
//   Totals              1438           659
//
// Substitutions: the authors' compiler source is unavailable, so the
// input is a generated program of comparable scale; the 3 processors are
// virtual (single-core host — see DESIGN.md). The sequential column is
// the plain driver's measured pass times; the parallel column is each
// pass's virtual makespan on 3 processors. Both columns are medians of 5.
#include <cstdio>
#include <iostream>

#include "src/apps/dcc/dcc.h"
#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"

using namespace delirium;
using namespace delirium::dcc;

namespace {
constexpr int kRepeats = 5;
constexpr int kProcs = 3;
}  // namespace

int main() {
  GenParams gen;
  gen.num_functions = 1200;
  gen.body_size = 60;
  gen.num_macros = 30;
  gen.seed = 42;
  const std::string source = generate_program(gen);

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_dcc_operators(registry, source);

  std::printf("Table 1: The Parallel Compiler (virtual n=%d)\n", kProcs);
  std::printf("input: generated program, %zu lines, %zu bytes\n\n", count_lines(source),
              source.size());

  // Sequential column: plain driver pass timings (median of repeats).
  // Dead-function elimination is off in both columns: the parallel
  // compiler cannot see cross-group reachability, so for comparable work
  // the sequential compiler keeps dead functions too (see EXPERIMENTS.md).
  CompileOptions seq_options;
  seq_options.opt.dce_functions = false;
  PassTimings seq;
  {
    std::vector<PassTimings> samples;
    for (int i = 0; i < kRepeats; ++i) {
      CompileResult result = compile_source("<gen>", source, registry, seq_options);
      if (!result.ok) {
        std::fprintf(stderr, "sequential compile failed:\n%s", result.diagnostics.c_str());
        return 1;
      }
      samples.push_back(result.timings);
    }
    auto median_field = [&samples](double PassTimings::*field) {
      std::vector<double> values;
      for (const PassTimings& t : samples) values.push_back(t.*field);
      std::sort(values.begin(), values.end());
      return values[values.size() / 2];
    };
    seq.lex_ms = median_field(&PassTimings::lex_ms);
    seq.parse_ms = median_field(&PassTimings::parse_ms);
    seq.macro_ms = median_field(&PassTimings::macro_ms);
    seq.env_ms = median_field(&PassTimings::env_ms);
    seq.opt_ms = median_field(&PassTimings::opt_ms);
    seq.graph_ms = median_field(&PassTimings::graph_ms);
  }

  // Parallel column: virtual makespan per pass, median of repeats.
  CompileOptions copts;
  copts.optimize = false;  // coordination framework is straight-line
  CompiledProgram coordination = compile_or_throw(dcc_coordination_source(), registry, copts);
  const char* passes[] = {"lex_pass", "parse_pass", "macro_pass",
                          "env_pass", "opt_pass",   "graph_pass"};
  double parallel_ms[6] = {};
  {
    std::vector<std::array<double, 6>> samples;
    for (int rep = 0; rep < kRepeats; ++rep) {
      std::array<double, 6> row{};
      Value state = Value::block(SourceBlock{source});
      for (int p = 0; p < 6; ++p) {
        SimRuntime sim(registry, {.num_procs = kProcs});
        SimResult result = sim.run_function(coordination, passes[p], {std::move(state)});
        state = std::move(result.result);
        row[p] = static_cast<double>(result.makespan) / 1e6;
      }
      // Sanity: the pipeline's output must be a successful compile.
      const DccOutput& out = state.block_as<DccOutput>();
      if (!out.ok) {
        std::fprintf(stderr, "parallel compile failed:\n%s", out.diagnostics.c_str());
        return 1;
      }
      samples.push_back(row);
    }
    for (int p = 0; p < 6; ++p) {
      std::vector<double> values;
      for (const auto& row : samples) values.push_back(row[p]);
      std::sort(values.begin(), values.end());
      parallel_ms[p] = values[values.size() / 2];
    }
  }

  const char* names[] = {"Lexing",       "Parsing",      "Macro Expansion",
                         "Env Analysis", "Optimization", "Graph Conversion"};
  const double seq_ms[] = {seq.lex_ms, seq.parse_ms, seq.macro_ms,
                           seq.env_ms, seq.opt_ms,   seq.graph_ms};
  tools::Table table(
      {"Pass", "Sequential (ms)", "Parallel n=3 (ms)", "Speedup", "Paper speedup"});
  const double paper_ratio[] = {91.0 / 91, 200.0 / 78, 117.0 / 50,
                                300.0 / 120, 350.0 / 160, 380.0 / 160};
  double total_seq = 0, total_par = 0;
  for (int p = 0; p < 6; ++p) {
    total_seq += seq_ms[p];
    total_par += parallel_ms[p];
    table.add_row({names[p], tools::Table::ms(seq_ms[p]), tools::Table::ms(parallel_ms[p]),
                   tools::Table::ratio(seq_ms[p] / parallel_ms[p]),
                   tools::Table::ratio(paper_ratio[p])});
  }
  table.add_row({"Totals", tools::Table::ms(total_seq), tools::Table::ms(total_par),
                 tools::Table::ratio(total_seq / total_par),
                 tools::Table::ratio(1438.0 / 659)});
  table.print(std::cout);
  return 0;
}
