// Table 2 companion: a quantitative stand-in for the paper's qualitative
// coordination-model comparison. The same two workloads are run under
// each model this repo implements:
//
//   queens  — Delirium coordination, the replicated-worker queue (§9.1),
//             and a Linda-style tuple space (§8)
//   retina  — Delirium coordination, hand-coded thread fork-join (§8's
//             "uniform shared memory" model), and plain sequential
//
// On this single-core host, wall-clock differences are coordination
// overhead, which is the comparable quantity. Determinism is the other
// column: only Delirium guarantees it by construction.
#include <cstdio>
#include <iostream>

#include "src/apps/queens/queens.h"
#include "src/apps/retina/retina_ops.h"
#include "src/baselines/baseline_apps.h"
#include "src/delirium.h"
#include "src/support/clock.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {
constexpr int kRepeats = 5;
constexpr int kWorkers = 4;
}  // namespace

int main() {
  std::printf("Coordination model comparison (wall time, %d workers on 1 core; medians of "
              "%d)\n\n",
              kWorkers, kRepeats);

  // --- queens -----------------------------------------------------------
  {
    const int n = 8;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    queens::register_queens_operators(registry, n);
    CompiledProgram program = compile_or_throw(queens::queens_source(n), registry);
    Runtime runtime(registry, {.num_workers = kWorkers});

    tools::Table table({"model", "notation", "time (ms)", "deterministic", "solutions"});
    const double delirium_ms = tools::median_of(kRepeats, [&] {
      Stopwatch sw;
      runtime.run(program);
      return sw.elapsed_ms();
    });
    table.add_row({"Delirium", "embedding", tools::Table::ms(delirium_ms), "yes (by model)",
                   std::to_string(runtime.run(program).as_int())});
    int64_t rw_result = 0;
    const double rw_ms = tools::median_of(kRepeats, [&] {
      Stopwatch sw;
      rw_result = baselines::queens_replicated_worker(n, kWorkers);
      return sw.elapsed_ms();
    });
    table.add_row({"replicated worker", "embedded (task queue)", tools::Table::ms(rw_ms),
                   "values only", std::to_string(rw_result)});
    int64_t ts_result = 0;
    const double ts_ms = tools::median_of(kRepeats, [&] {
      Stopwatch sw;
      ts_result = baselines::queens_tuple_space(n, kWorkers);
      return sw.elapsed_ms();
    });
    table.add_row({"tuple space (Linda-style)", "embedded (out/in/rd)",
                   tools::Table::ms(ts_ms), "values only", std::to_string(ts_result)});
    std::printf("%d-queens:\n", n);
    table.print(std::cout);
    std::printf("\n");
  }

  // --- retina -------------------------------------------------------------
  {
    retina::RetinaParams p;
    p.width = p.height = 384;
    p.num_targets = 48;
    p.num_iter = 3;
    OperatorRegistry registry;
    register_builtin_operators(registry);
    retina::register_retina_operators(registry, p);
    CompiledProgram program = compile_or_throw(
        retina::retina_source(retina::RetinaVersion::kV2Balanced, p), registry);
    Runtime runtime(registry, {.num_workers = kWorkers});
    baselines::ForkJoinPool pool(kWorkers);

    const double seq_checksum = retina::checksum(retina::sequential_run(p));

    tools::Table table({"model", "notation", "time (ms)", "checksum matches sequential"});
    const double seq_ms = tools::median_of(kRepeats, [&] {
      Stopwatch sw;
      retina::sequential_run(p);
      return sw.elapsed_ms();
    });
    table.add_row({"sequential original", "-", tools::Table::ms(seq_ms), "(reference)"});
    double checksum_value = 0;
    const double delirium_ms = tools::median_of(kRepeats, [&] {
      Stopwatch sw;
      checksum_value = retina::checksum(
          retina::delirium_run(p, retina::RetinaVersion::kV2Balanced, runtime));
      return sw.elapsed_ms();
    });
    table.add_row({"Delirium", "embedding", tools::Table::ms(delirium_ms),
                   checksum_value == seq_checksum ? "yes" : "NO"});
    const double fj_ms = tools::median_of(kRepeats, [&] {
      Stopwatch sw;
      checksum_value = retina::checksum(baselines::retina_forkjoin_run(p, pool));
      return sw.elapsed_ms();
    });
    table.add_row({"thread fork-join", "embedded (threads+barriers)", tools::Table::ms(fj_ms),
                   checksum_value == seq_checksum ? "yes" : "NO"});
    std::printf("retina model:\n");
    table.print(std::cout);
  }
  return 0;
}
