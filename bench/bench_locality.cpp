// Locality model A/A gate + UMA→strongly-NUMA sweep (docs/RUNTIME.md
// "Locality model"): measures what topology-aware placement buys,
// entirely in virtual time so the numbers are deterministic and
// meaningful on any host (including single-core CI).
//
// Protocol (all legs replay fixed per-operator costs through SimRuntime,
// so a "measurement" is an exact virtual-ns makespan):
//
//  * A/A — the legacy flat knob (remote_penalty_ns_per_kb) vs the
//    explicit degenerate topology (MemoryTopology::flat) it now maps
//    onto. The refactor promises the mapping is byte-identical, so the
//    two makespans must agree; the bench FAILS (exit 1) if the geomean
//    ratio across processor counts leaves ±5%.
//  * sweep — D big blocks, each homed in its own NUMA domain, each
//    fanned out to F readers. The locality-AWARE schedule (data
//    affinity + domain-biased selection, the defaults) keeps every
//    reader in its block's home domain; the locality-BLIND schedule
//    (affinity none, DELIRIUM_LOCALITY=0 semantics) scatters readers
//    FIFO and pays the inter-domain per-KiB transfer + migration
//    surcharge per pull. The bench FAILS if aware is not >= 1.2x at the
//    strongly-NUMA (cluster) point, or if it leaves ±5% at the
//    penalty-0 multi-domain point (same domains, zero costs — placement
//    must be free when memory is uniform).
//
// `--quick` trims the processor sweep for CI; a JSON path as the last
// argument writes the results (BENCH_locality.json is a recorded run).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/support/topology.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

constexpr int kProcs = 8;
constexpr int kBlocks = 4;   // one per numa4/cluster domain; 2 per numa2 domain
constexpr int kFanout = 8;   // readers per block
constexpr int64_t kReadNs = 20000;
constexpr int64_t kJoinNs = 200;

/// kBlocks producers fanned out to kFanout readers each, joined by a
/// cheap add tree. Producers are unbound, so the first kBlocks virtual
/// processors take them FIFO — striping homes each block in its own
/// domain. The readers are where placement matters.
std::string reader_source() {
  std::string rsum = "weigh(b)";
  for (int i = 1; i < kFanout; ++i) rsum = "add(" + rsum + ", weigh(b))";
  std::string source = "rsum(b) " + rsum + "\nmain()\n  let";
  for (int i = 0; i < kBlocks; ++i) {
    source += std::string(i == 0 ? " " : "      ") + "b" + std::to_string(i) +
              " = make_data()\n";
  }
  std::string join = "rsum(b0)";
  for (int i = 1; i < kBlocks; ++i) join = "add(" + join + ", rsum(b" + std::to_string(i) + "))";
  return source + "  in " + join + "\n";
}

std::shared_ptr<OperatorRegistry> locality_registry() {
  auto reg = std::make_shared<OperatorRegistry>();
  register_builtin_operators(*reg);
  reg->add("make_data", 0, [](OpContext&) {
    return Value::block(std::vector<double>(1 << 15, 1.0));  // 256 KiB
  });
  reg->add("weigh", 1, [](OpContext& ctx) {
    const auto& data = ctx.arg_block<std::vector<double>>(0);
    double sum = 0;
    for (double d : data) sum += d;
    return Value::of(static_cast<int64_t>(sum));
  });
  return reg;
}

int64_t virtual_makespan(const CompiledProgram& program, const OperatorRegistry& registry,
                         const std::unordered_map<std::string, Ticks>& costs,
                         SimConfig config, int procs) {
  config.num_procs = procs;
  config.fixed_costs = &costs;
  config.fixed_cost_default_ns = kJoinNs;
  SimRuntime sim(registry, config);
  return sim.run(program).makespan;
}

struct SweepPoint {
  std::string topology;
  int64_t aware_ns = 0;
  int64_t blind_ns = 0;
  uint64_t aware_pulls = 0;
  uint64_t blind_pulls = 0;
  double ratio() const {
    return static_cast<double>(blind_ns) / static_cast<double>(aware_ns);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }

  auto registry = locality_registry();
  const CompiledProgram program = compile_or_throw(reader_source(), *registry);
  const std::unordered_map<std::string, Ticks> costs = {
      {"make_data", kReadNs}, {"weigh", kReadNs}, {"add", kJoinNs}};

  // -- A/A: legacy flat knob vs the explicit degenerate topology --------------
  const std::vector<int> proc_sweep =
      quick ? std::vector<int>{4} : std::vector<int>{2, 4, 8};
  struct AaPoint {
    int procs;
    int64_t legacy_ns;
    int64_t explicit_ns;
  };
  std::vector<AaPoint> aa_points;
  double aa_log_sum = 0;
  for (const int procs : proc_sweep) {
    SimConfig legacy;
    legacy.remote_penalty_ns_per_kb = 1000;
    SimConfig explicit_flat;
    explicit_flat.topology = MemoryTopology::flat(1000);
    AaPoint p{procs, virtual_makespan(program, *registry, costs, legacy, procs),
              virtual_makespan(program, *registry, costs, explicit_flat, procs)};
    aa_log_sum += std::log(static_cast<double>(p.explicit_ns) /
                           static_cast<double>(p.legacy_ns));
    aa_points.push_back(p);
  }
  const double aa_geomean = std::exp(aa_log_sum / static_cast<double>(aa_points.size()));
  const bool aa_ok = aa_geomean >= 0.95 && aa_geomean <= 1.05;

  tools::Table aa_table({"procs", "legacy flat (ns)", "topology flat (ns)", "ratio"});
  for (const AaPoint& p : aa_points) {
    aa_table.add_row({std::to_string(p.procs), std::to_string(p.legacy_ns),
                      std::to_string(p.explicit_ns),
                      tools::Table::ratio(static_cast<double>(p.explicit_ns) /
                                          static_cast<double>(p.legacy_ns))});
  }
  std::printf("A/A: remote_penalty_ns_per_kb=1000 vs MemoryTopology::flat(1000) "
              "(same program, fixed virtual costs):\n");
  aa_table.print(std::cout);
  std::printf("A/A geomean: %.3f\n\n", aa_geomean);

  // -- Sweep: UMA -> strongly NUMA, locality-aware vs locality-blind ----------
  // "numa4:inter=0,migrate=0" is the penalty-0 control: same four
  // domains, so the aware schedule still reorders, but memory is
  // uniform — placement must cost nothing.
  const std::vector<std::string> topologies = {"numa4:inter=0,migrate=0", "numa2",
                                               "numa4", "cluster"};
  std::vector<SweepPoint> sweep;
  for (const std::string& spec : topologies) {
    SweepPoint point;
    point.topology = spec;
    const MemoryTopology topo = parse_topology(spec, "bench_locality");

    SimConfig aware;
    aware.topology = topo;
    aware.affinity = AffinityMode::kData;  // locality_scheduling defaults on
    SimConfig blind;
    blind.topology = topo;
    blind.affinity = AffinityMode::kNone;
    blind.locality_scheduling = false;

    point.aware_ns = virtual_makespan(program, *registry, costs, aware, kProcs);
    point.blind_ns = virtual_makespan(program, *registry, costs, blind, kProcs);
    {
      SimConfig probe = aware;
      probe.num_procs = kProcs;
      probe.fixed_costs = &costs;
      probe.fixed_cost_default_ns = kJoinNs;
      SimRuntime sim(*registry, probe);
      sim.run(program);
      point.aware_pulls = sim.last_stats().remote_block_moves;
      probe = blind;
      probe.num_procs = kProcs;
      probe.fixed_costs = &costs;
      probe.fixed_cost_default_ns = kJoinNs;
      SimRuntime sim_blind(*registry, probe);
      sim_blind.run(program);
      point.blind_pulls = sim_blind.last_stats().remote_block_moves;
    }
    sweep.push_back(point);
  }

  tools::Table sweep_table({"topology", "aware (ns)", "blind (ns)", "blind/aware",
                            "aware pulls", "blind pulls"});
  for (const SweepPoint& p : sweep) {
    sweep_table.add_row({p.topology, std::to_string(p.aware_ns),
                         std::to_string(p.blind_ns), tools::Table::ratio(p.ratio()),
                         std::to_string(p.aware_pulls), std::to_string(p.blind_pulls)});
  }
  std::printf("locality-aware vs locality-blind on the %d-block x %d-reader fan-out "
              "(%d virtual procs):\n",
              kBlocks, kFanout, kProcs);
  sweep_table.print(std::cout);

  const double zero_ratio = sweep.front().ratio();
  const bool zero_ok = zero_ratio >= 0.95 && zero_ratio <= 1.05;
  const double cluster_ratio = sweep.back().ratio();
  const bool cluster_ok = cluster_ratio >= 1.2;

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_locality\",\n"
       << "  \"procs\": " << kProcs << ",\n"
       << "  \"blocks\": " << kBlocks << ",\n"
       << "  \"fanout\": " << kFanout << ",\n"
       << "  \"aa\": [\n";
  for (size_t i = 0; i < aa_points.size(); ++i) {
    const AaPoint& p = aa_points[i];
    json << "    {\"procs\": " << p.procs << ", \"legacy_ns\": " << p.legacy_ns
         << ", \"explicit_ns\": " << p.explicit_ns << "}"
         << (i + 1 < aa_points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"aa_geomean\": " << aa_geomean << ",\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", p.ratio());
    json << "    {\"topology\": \"" << p.topology << "\", \"aware_ns\": " << p.aware_ns
         << ", \"blind_ns\": " << p.blind_ns << ", \"ratio\": " << ratio
         << ", \"aware_pulls\": " << p.aware_pulls
         << ", \"blind_pulls\": " << p.blind_pulls << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!aa_ok) {
    std::fprintf(stderr,
                 "FAIL: legacy flat knob vs explicit flat topology left the ±5%% A/A "
                 "band (geomean %.3f) — the mapping is not byte-identical\n",
                 aa_geomean);
    return 1;
  }
  if (!zero_ok) {
    std::fprintf(stderr,
                 "FAIL: locality-aware scheduling regressed the penalty-0 point "
                 "(blind/aware %.3f) — placement must be free on uniform memory\n",
                 zero_ratio);
    return 1;
  }
  if (!cluster_ok) {
    std::fprintf(stderr,
                 "FAIL: locality-aware under 1.2x at the cluster point "
                 "(blind/aware %.3f)\n",
                 cluster_ratio);
    return 1;
  }
  std::printf("A/A within ±5%%; penalty-0 within ±5%%; aware >= 1.2x at cluster\n");
  return 0;
}
