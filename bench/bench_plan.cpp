// Feedback-scheduling ablation + capacity-plan exercise
// (docs/PROFILING.md): measures what trace-driven cost profiles buy the
// scheduler, entirely in virtual time so the numbers are deterministic
// and meaningful on any host (including single-core CI).
//
// Protocol (all legs replay fixed per-operator costs through SimRuntime,
// so a "measurement" is an exact virtual-ns makespan):
//
//  * A/A — the skew program with static unit-height hints vs the same
//    program re-marked from a UNIFORM cost profile. A uniform profile
//    carries no information the unit heights don't already have, so the
//    two schedules must agree; the bench FAILS (exit 1) if the geomean
//    makespan ratio across processor counts leaves ±5%.
//  * skew — the same program re-marked from the true skewed profile
//    (one chain of operators 25x the cost of the rest, written last in
//    the source so FIFO tie-breaking is maximally wrong about it). Unit
//    heights see nine equal-length chains and mark them all critical;
//    the cost model marks only the heavy chain, so the executors start
//    the long pole first instead of last. The bench FAILS if the
//    feedback schedule is not >= 1.1x faster at every measured
//    processor count.
//  * plan — the `delc --plan` sweep (plan_capacity) over the skewed
//    profile, reported for the speedup-curve record in EXPERIMENTS.md.
//
// `--quick` trims the processor sweep for CI; a JSON path as the last
// argument writes the results (BENCH_plan.json is a recorded run).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/delirium.h"
#include "src/tools/profile.h"
#include "src/tools/report.h"

using namespace delirium;

namespace {

/// Nine independent equal-LENGTH chains joined by a cheap add tree. The
/// heavy chain is last in the source, so under unit heights (which mark
/// every chain critical — they all have height 4) the FIFO ready queue
/// starts it last; a measured cost model marks only the heavy chain.
const char* kSkewSource = R"(
lchain(x) light_op(light_op(light_op(light_op(x))))
hchain(x) heavy_op(heavy_op(heavy_op(heavy_op(x))))
main()
  let a = lchain(1)
      b = lchain(2)
      c = lchain(3)
      d = lchain(4)
      e = lchain(5)
      f = lchain(6)
      g = lchain(7)
      i = lchain(8)
      h = hchain(9)
  in add(add(add(add(a, b), add(c, d)), add(add(e, f), add(g, i))), h)
)";

constexpr int64_t kLightNs = 60000;
constexpr int64_t kHeavyNs = 750000;

/// Compile unoptimized so the chain templates survive (the program is
/// all-constant and would otherwise fold away). The compiler still
/// applies the static unit-height hints.
CompiledProgram compile_skew(const OperatorRegistry& registry) {
  CompileOptions copts;
  copts.optimize = false;
  return compile_or_throw(kSkewSource, registry, copts);
}

/// The skewed calibration profile --profile-out would have captured.
tools::CostProfile skew_profile() {
  tools::CostProfile profile;
  for (int i = 0; i < 4; ++i) profile.operators["heavy_op"].observe(kHeavyNs);
  for (int i = 0; i < 32; ++i) profile.operators["light_op"].observe(kLightNs);
  profile.operators["add"].observe(100);
  return profile;
}

/// Virtual makespan of one run with the profile's costs fixed on the
/// virtual clock. Deterministic: same program marks -> same number.
int64_t virtual_makespan(const CompiledProgram& program, const OperatorRegistry& registry,
                         const std::unordered_map<std::string, Ticks>& costs, int procs) {
  SimConfig config;
  config.num_procs = procs;
  config.fixed_costs = &costs;
  config.fixed_cost_default_ns = 100;
  SimRuntime sim(registry, config);
  return sim.run(program).makespan;
}

struct Point {
  int procs;
  int64_t static_ns;    // unit-height hints (the compiler's default)
  int64_t uniform_ns;   // re-marked from a uniform (information-free) profile
  int64_t feedback_ns;  // re-marked from the true skewed profile
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      json_path = argv[i];
    }
  }

  OperatorRegistry registry;
  register_builtin_operators(registry);
  registry.add("light_op", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); })
      .pure();
  registry.add("heavy_op", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); })
      .pure();

  // Three copies of the program: templates are shared_ptr-owned, so
  // re-marking in place would alias; each leg gets its own compile.
  CompiledProgram static_prog = compile_skew(registry);
  CompiledProgram uniform_prog;
  CompiledProgram feedback_prog;

  const tools::CostProfile profile = skew_profile();
  const std::unordered_map<std::string, Ticks> costs = tools::fixed_costs_from(profile);

  {
    CompileOptions copts;
    copts.optimize = false;
    CompileResult result = compile_source("<bench_plan>", kSkewSource, registry, copts);
    if (!result.ok || !result.has_facts) {
      std::fprintf(stderr, "FAIL: skew program did not compile with facts\n");
      return 1;
    }
    CostModel uniform;
    uniform.op_cost_ns = {{"light_op", 1000}, {"heavy_op", 1000}, {"add", 1000}};
    uniform_prog = std::move(result.program);
    apply_sched_hints(uniform_prog, result.facts, uniform);

    CompileResult again = compile_source("<bench_plan>", kSkewSource, registry, copts);
    feedback_prog = std::move(again.program);
    const size_t marked =
        apply_sched_hints(feedback_prog, again.facts, tools::to_cost_model(profile));
    if (marked == 0) {
      std::fprintf(stderr, "FAIL: cost model marked no nodes\n");
      return 1;
    }
  }

  const std::vector<int> proc_sweep = quick ? std::vector<int>{2} : std::vector<int>{2, 4};
  std::vector<Point> points;
  for (const int procs : proc_sweep) {
    Point p{procs, 0, 0, 0};
    p.static_ns = virtual_makespan(static_prog, registry, costs, procs);
    p.uniform_ns = virtual_makespan(uniform_prog, registry, costs, procs);
    p.feedback_ns = virtual_makespan(feedback_prog, registry, costs, procs);
    points.push_back(p);
  }

  tools::Table table({"procs", "static (ns)", "uniform (ns)", "feedback (ns)",
                      "uniform/static", "static/feedback"});
  double aa_log_sum = 0;
  bool skew_ok = true;
  for (const Point& p : points) {
    const double aa = static_cast<double>(p.uniform_ns) / static_cast<double>(p.static_ns);
    const double gain =
        static_cast<double>(p.static_ns) / static_cast<double>(p.feedback_ns);
    aa_log_sum += std::log(aa);
    skew_ok = skew_ok && gain >= 1.1;
    table.add_row({std::to_string(p.procs), std::to_string(p.static_ns),
                   std::to_string(p.uniform_ns), std::to_string(p.feedback_ns),
                   tools::Table::ratio(aa), tools::Table::ratio(gain)});
  }
  const double aa_geomean = std::exp(aa_log_sum / static_cast<double>(points.size()));
  const bool aa_ok = aa_geomean >= 0.95 && aa_geomean <= 1.05;

  std::printf("feedback scheduling on the skewed 9-chain fan-out "
              "(virtual makespans, heavy op %lldx the light op):\n",
              static_cast<long long>(kHeavyNs / kLightNs));
  table.print(std::cout);
  std::printf("uniform-profile A/A geomean: %.3f\n\n", aa_geomean);

  // The `delc --plan` view of the same profile, for the record.
  const tools::CapacityPlan plan =
      tools::plan_capacity(feedback_prog, registry, profile,
                           quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8});
  tools::Table plan_table({"workers", "makespan (ns)", "speedup"});
  for (const tools::PlanPoint& pp : plan.points) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.3f", pp.speedup);
    plan_table.add_row(
        {std::to_string(pp.workers), std::to_string(pp.makespan_ns), speedup});
  }
  std::printf("capacity plan over the skewed profile (plan_capacity sweep):\n");
  plan_table.print(std::cout);
  std::printf("best: %d workers, knee: %d workers\n", plan.best_workers, plan.knee_workers);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_plan\",\n"
       << "  \"heavy_ns\": " << kHeavyNs << ",\n"
       << "  \"light_ns\": " << kLightNs << ",\n"
       << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char ratios[96];
    std::snprintf(ratios, sizeof(ratios), "\"aa_ratio\": %.3f, \"gain\": %.3f",
                  static_cast<double>(p.uniform_ns) / static_cast<double>(p.static_ns),
                  static_cast<double>(p.static_ns) / static_cast<double>(p.feedback_ns));
    json << "    {\"procs\": " << p.procs << ", \"static_ns\": " << p.static_ns
         << ", \"uniform_ns\": " << p.uniform_ns << ", \"feedback_ns\": " << p.feedback_ns
         << ", " << ratios << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"plan\": [\n";
  for (size_t i = 0; i < plan.points.size(); ++i) {
    const tools::PlanPoint& pp = plan.points[i];
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.3f", pp.speedup);
    json << "    {\"workers\": " << pp.workers << ", \"makespan_ns\": " << pp.makespan_ns
         << ", \"speedup\": " << speedup << "}" << (i + 1 < plan.points.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fputs(json.str().c_str(), stdout);
  }

  if (!aa_ok) {
    std::fprintf(stderr,
                 "FAIL: uniform-profile feedback left the ±5%% A/A band (geomean %.3f) — "
                 "an information-free profile changed the schedule\n",
                 aa_geomean);
    return 1;
  }
  if (!skew_ok) {
    std::fprintf(stderr, "FAIL: feedback scheduling under 1.1x on the skewed fan-out\n");
    return 1;
  }
  std::printf("A/A within ±5%%; feedback >= 1.1x on the skewed fan-out\n");
  return 0;
}
