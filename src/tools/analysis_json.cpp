#include "src/tools/analysis_json.h"

#include <cstdio>

#include "src/analysis/facts.h"

namespace delirium::tools {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// The lint sections shared by both reports, without the enclosing
/// braces: `"file": ..., "findings": [...], "stats": {...}`. The byte
/// layout is pinned by tests/golden/lint_shared.json.
std::string lint_body(const std::vector<LintFinding>& findings,
                      const SoleConsumerStats& stats, const SourceFile& file) {
  std::string out = "  \"file\": \"" + json_escape(file.name()) + "\",\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    const LineCol lc = file.line_col(f.range.begin);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": \"";
    out += f.cls == ConsumeClass::kShared ? "warning" : "note";
    out += "\", \"class\": \"";
    out += f.cls == ConsumeClass::kShared ? "shared" : "unique";
    out += "\", \"operator\": \"" + json_escape(f.op_name) + "\"";
    out += ", \"argument\": " + std::to_string(f.port);
    out += ", \"line\": " + std::to_string(lc.line);
    out += ", \"column\": " + std::to_string(lc.col);
    out += ", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"stats\": {\"destructive_edges\": " + std::to_string(stats.destructive_edges) +
         ", \"unique\": " + std::to_string(stats.unique_edges) +
         ", \"shared\": " + std::to_string(stats.shared_edges) +
         ", \"unknown\": " + std::to_string(stats.unknown_edges) + "}";
  return out;
}

/// Dead (never-observed) parameter positions of template `t`.
std::vector<uint32_t> dead_params(const GraphFacts& facts, uint32_t t) {
  std::vector<uint32_t> out;
  if (t < facts.param_live.size()) {
    for (uint32_t i = 0; i < facts.param_live[t].size(); ++i) {
      if (facts.param_live[t][i] == 0) out.push_back(i);
    }
  }
  return out;
}

size_t count_flags(const std::vector<std::vector<uint8_t>>& table, uint32_t t) {
  size_t n = 0;
  if (t < table.size()) {
    for (uint8_t f : table[t]) n += f != 0 ? 1 : 0;
  }
  return n;
}

size_t count_constants(const GraphFacts& facts, uint32_t t) {
  size_t n = 0;
  if (t < facts.constants.size()) {
    for (const auto& c : facts.constants[t]) n += c.has_value() ? 1 : 0;
  }
  return n;
}

std::string template_display_name(const CompiledProgram& program, uint32_t t) {
  const std::string& name = program.templates[t]->name;
  return name.empty() ? "<anon>" : name;
}

}  // namespace

std::string render_lint_json(const std::vector<LintFinding>& findings,
                             const SoleConsumerStats& stats, const SourceFile& file) {
  return "{\n" + lint_body(findings, stats, file) + "\n}\n";
}

std::string render_analysis_json(const CompileResult& result, const SourceFile& file) {
  std::string out = "{\n" + lint_body(result.lint, result.sole_consumer, file) + ",\n";
  out += "  \"facts\": {\"enabled\": ";
  out += result.has_facts ? "true" : "false";
  if (!result.has_facts) {
    out += "},\n";
  } else {
    const GraphFacts& facts = result.facts;
    out += ",\n    \"templates\": [";
    const size_t n = result.program.templates.size();
    for (uint32_t t = 0; t < n; ++t) {
      out += t == 0 ? "\n" : ",\n";
      out += "      {\"index\": " + std::to_string(t);
      out += ", \"name\": \"" + json_escape(template_display_name(result.program, t)) + "\"";
      out += ", \"pure\": ";
      out += t < facts.pure_templates.size() && facts.pure_templates[t] ? "true" : "false";
      out += ", \"delivers\": ";
      out += t < facts.delivers.size() && facts.delivers[t] ? "true" : "false";
      out += ", \"call_only\": ";
      out += t < facts.call_only.size() && facts.call_only[t] ? "true" : "false";
      out += ", \"returns_fresh\": ";
      out += t < facts.returns_fresh.size() && facts.returns_fresh[t] ? "true" : "false";
      const int64_t h = t < facts.template_height.size() ? facts.template_height[t] : 0;
      out += ", \"height\": " + std::to_string(h);
      out += ", \"critical_nodes\": " + std::to_string(count_flags(facts.on_critical_path, t));
      out += ", \"constant_nodes\": " + std::to_string(count_constants(facts, t));
      out += ", \"dead_params\": [";
      const std::vector<uint32_t> dead = dead_params(facts, t);
      for (size_t i = 0; i < dead.size(); ++i) {
        out += i == 0 ? "" : ", ";
        out += std::to_string(dead[i]);
      }
      out += "]}";
    }
    out += n == 0 ? "],\n" : "\n    ],\n";
    out += "    \"stranded\": [";
    for (size_t i = 0; i < facts.stranded.size(); ++i) {
      const StrandedFact& f = facts.stranded[i];
      out += i == 0 ? "\n" : ",\n";
      out += "      {\"template\": " + std::to_string(f.tmpl);
      out += ", \"name\": \"";
      out += json_escape(f.tmpl < result.program.templates.size()
                             ? template_display_name(result.program, f.tmpl)
                             : "?");
      out += "\", \"node\": ";
      out += f.node == StrandedFact::kNoNode ? std::string("null") : std::to_string(f.node);
      out += ", \"reason\": \"" + json_escape(f.reason) + "\"}";
    }
    out += facts.stranded.empty() ? "]\n  },\n" : "\n    ]\n  },\n";
  }
  const GraphOptStats& g = result.graph_opt_stats;
  out += "  \"graph_opt\": {\"consts_folded\": " + std::to_string(g.consts_folded) +
         ", \"dead_params_pruned\": " + std::to_string(g.dead_params_pruned) +
         ", \"tuples_elided\": " + std::to_string(g.tuples_elided) +
         ", \"chains_fused\": " + std::to_string(g.chains_fused) +
         ", \"fused_nodes_absorbed\": " + std::to_string(g.fused_nodes_absorbed) +
         ", \"dead_nodes_removed\": " + std::to_string(g.dead_nodes_removed) +
         ", \"templates_pruned\": " + std::to_string(g.templates_pruned) +
         ", \"slots_reclaimed\": " + std::to_string(g.slots_reclaimed) +
         ", \"rounds\": " + std::to_string(g.rounds) + "},\n";
  out += "  \"sched_hints\": {\"critical_path_nodes\": " +
         std::to_string(result.sched_hint_nodes) + "}\n}\n";
  return out;
}

std::string render_analysis_text(const CompileResult& result, const SourceFile& file) {
  std::string out = "analysis: " + file.name() + "\n";
  if (!result.has_facts) {
    out += "analysis: facts engine disabled (DELIRIUM_GRAPH_FACTS=0)\n";
  } else {
    const GraphFacts& facts = result.facts;
    for (uint32_t t = 0; t < result.program.templates.size(); ++t) {
      out += "analysis: template '" + template_display_name(result.program, t) + "' (#" +
             std::to_string(t) + "):";
      out += t < facts.pure_templates.size() && facts.pure_templates[t] ? " pure," : " impure,";
      out += t < facts.delivers.size() && facts.delivers[t] ? " delivers," : " never delivers,";
      const int64_t h = t < facts.template_height.size() ? facts.template_height[t] : 0;
      out += " height " + std::to_string(h);
      out += ", " + std::to_string(count_flags(facts.on_critical_path, t)) + " critical";
      out += ", " + std::to_string(count_constants(facts, t)) + " constant";
      if (t < facts.call_only.size() && facts.call_only[t]) out += ", call-only";
      if (t < facts.returns_fresh.size() && facts.returns_fresh[t]) out += ", returns fresh";
      const std::vector<uint32_t> dead = dead_params(facts, t);
      if (!dead.empty()) {
        out += ", dead params [";
        for (size_t i = 0; i < dead.size(); ++i) {
          out += i == 0 ? "" : " ";
          out += std::to_string(dead[i]);
        }
        out += "]";
      }
      out += "\n";
    }
    for (const StrandedFact& f : facts.stranded) {
      out += "analysis: stranded: template '";
      out += f.tmpl < result.program.templates.size()
                 ? template_display_name(result.program, f.tmpl)
                 : "?";
      out += "' (#" + std::to_string(f.tmpl) + ")";
      if (f.node != StrandedFact::kNoNode) out += " node #" + std::to_string(f.node);
      out += ": " + f.reason + "\n";
    }
  }
  const SoleConsumerStats& s = result.sole_consumer;
  out += "analysis: lint: " + std::to_string(s.destructive_edges) + " destructive edge(s): " +
         std::to_string(s.unique_edges) + " unique, " + std::to_string(s.shared_edges) +
         " shared, " + std::to_string(s.unknown_edges) + " unknown\n";
  const GraphOptStats& g = result.graph_opt_stats;
  out += "analysis: graph_opt: " + std::to_string(g.consts_folded) + " const(s) folded, " +
         std::to_string(g.dead_params_pruned) + " dead param(s) pruned, " +
         std::to_string(g.tuples_elided) + " tuple(s) elided, " +
         std::to_string(g.chains_fused) + " chain(s) fused (" +
         std::to_string(g.fused_nodes_absorbed) + " node(s) absorbed), " +
         std::to_string(g.dead_nodes_removed) + " dead node(s) removed, " +
         std::to_string(g.templates_pruned) + " template(s) pruned, " +
         std::to_string(g.slots_reclaimed) + " slot(s) reclaimed, " +
         std::to_string(g.rounds) + " round(s)\n";
  out += "analysis: sched hints: " + std::to_string(result.sched_hint_nodes) +
         " node(s) on critical path\n";
  return out;
}

namespace {

std::string format_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string render_plan_json(const CapacityPlan& plan, const std::string& file) {
  std::string out = "{\n  \"schema\": \"delirium.plan\",\n  \"version\": 1,\n";
  out += "  \"file\": \"" + json_escape(file) + "\",\n";
  out += "  \"serial_makespan_ns\": " + std::to_string(plan.serial_makespan_ns) + ",\n";
  out += "  \"best\": {\"workers\": " + std::to_string(plan.best_workers) +
         ", \"makespan_ns\": " + std::to_string(plan.best_makespan_ns) + "},\n";
  out += "  \"knee_workers\": " + std::to_string(plan.knee_workers) + ",\n";
  out += "  \"target_ns\": " + std::to_string(plan.target_ns) + ",\n";
  out += "  \"target_workers\": " + std::to_string(plan.target_workers) + ",\n";
  out += "  \"points\": [";
  for (size_t i = 0; i < plan.points.size(); ++i) {
    const PlanPoint& p = plan.points[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"workers\": " + std::to_string(p.workers) +
           ", \"makespan_ns\": " + std::to_string(p.makespan_ns) +
           ", \"speedup\": " + format_ratio(p.speedup) +
           ", \"efficiency\": " + format_ratio(p.efficiency) + "}";
  }
  out += plan.points.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string render_plan_text(const CapacityPlan& plan, const std::string& file) {
  std::string out = "plan: " + file + "\n";
  out += "  profile-driven virtual replay (SimRuntime, fixed per-operator costs)\n";
  out += "  workers    makespan_ns  speedup  efficiency\n";
  for (const PlanPoint& p : plan.points) {
    char line[128];
    std::snprintf(line, sizeof line, "  %7d  %13lld  %7.3f  %10.3f\n", p.workers,
                  static_cast<long long>(p.makespan_ns), p.speedup, p.efficiency);
    out += line;
  }
  out += "  best: " + std::to_string(plan.best_workers) + " workers (makespan " +
         std::to_string(plan.best_makespan_ns) + " ns)\n";
  out += "  knee: " + std::to_string(plan.knee_workers) +
         " workers (smallest within 5% of best)\n";
  if (plan.target_ns > 0) {
    if (plan.target_workers > 0) {
      out += "  target " + std::to_string(plan.target_ns) + " ns: met at " +
             std::to_string(plan.target_workers) + " workers\n";
    } else {
      out += "  target " + std::to_string(plan.target_ns) +
             " ns: not met at any swept worker count\n";
    }
  }
  return out;
}

}  // namespace delirium::tools
