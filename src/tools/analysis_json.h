// Shared renderer for delc's analysis reports.
//
// `delc --lint-json` and `delc --analyze --format=json` emit one schema:
// the analyze report is a strict superset of the lint report (same
// "file" / "findings" / "stats" sections, plus the facts-engine
// sections), produced by the same emitter so the two can never drift.
// Ordering is deterministic everywhere — templates by index, nodes by
// id, findings in analysis order — so the output is byte-stable across
// schedulers and worker counts (golden-tested in tools_test).
#pragma once

#include <string>
#include <vector>

#include "src/analysis/sole_consumer.h"
#include "src/core/compiler.h"
#include "src/support/source.h"

namespace delirium::tools {

/// Machine-readable sole-consumer findings: {"file", "findings", "stats"}.
std::string render_lint_json(const std::vector<LintFinding>& findings,
                             const SoleConsumerStats& stats, const SourceFile& file);

/// Machine-readable whole-compile analysis report: the lint sections
/// above plus {"facts", "graph_opt", "sched_hints"} drawn from the
/// GraphFacts table the compile computed.
std::string render_analysis_json(const CompileResult& result, const SourceFile& file);

/// The same report for humans: one "analysis:" line per template, plus
/// stranded locations, lint totals, rewrite stats, and scheduler hints.
std::string render_analysis_text(const CompileResult& result, const SourceFile& file);

}  // namespace delirium::tools
