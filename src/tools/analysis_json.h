// Shared renderer for delc's analysis reports.
//
// `delc --lint-json` and `delc --analyze --format=json` emit one schema:
// the analyze report is a strict superset of the lint report (same
// "file" / "findings" / "stats" sections, plus the facts-engine
// sections), produced by the same emitter so the two can never drift.
// Ordering is deterministic everywhere — templates by index, nodes by
// id, findings in analysis order — so the output is byte-stable across
// schedulers and worker counts (golden-tested in tools_test).
#pragma once

#include <string>
#include <vector>

#include "src/analysis/sole_consumer.h"
#include "src/core/compiler.h"
#include "src/support/source.h"
#include "src/tools/profile.h"

namespace delirium::tools {

/// Machine-readable sole-consumer findings: {"file", "findings", "stats"}.
std::string render_lint_json(const std::vector<LintFinding>& findings,
                             const SoleConsumerStats& stats, const SourceFile& file);

/// Machine-readable whole-compile analysis report: the lint sections
/// above plus {"facts", "graph_opt", "sched_hints"} drawn from the
/// GraphFacts table the compile computed.
std::string render_analysis_json(const CompileResult& result, const SourceFile& file);

/// The same report for humans: one "analysis:" line per template, plus
/// stranded locations, lint totals, rewrite stats, and scheduler hints.
std::string render_analysis_text(const CompileResult& result, const SourceFile& file);

/// Machine-readable capacity plan (`delc --plan --format=json`):
/// {"schema": "delirium.plan", "version", "file", the sweep points, and
/// the best/knee/target summary}. Byte-deterministic for a given plan.
std::string render_plan_json(const CapacityPlan& plan, const std::string& file);

/// The same plan for humans: a worker/makespan/speedup table plus the
/// best/knee/target summary lines (`delc --plan`).
std::string render_plan_text(const CapacityPlan& plan, const std::string& file);

}  // namespace delirium::tools
