#include "src/tools/profile.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace delirium::tools {

// ---------------------------------------------------------------------------
// Building a profile from a trace
// ---------------------------------------------------------------------------

CostProfile profile_from_trace(const std::vector<TraceEvent>& events,
                               const OperatorRegistry& registry) {
  std::vector<TraceEvent> sorted = events;
  sort_trace_events(sorted);

  CostProfile profile;
  struct Open {
    int32_t op = -1;
    int64_t ts = 0;
    bool open = false;
  };
  // A worker executes one operator attempt at a time (fused members run
  // sequentially and emit their own pairs), so one open slot per worker
  // pairs every begin with its end.
  std::unordered_map<int16_t, Open> open;
  for (const TraceEvent& e : sorted) {
    if (e.kind == TraceEventKind::kOpBegin) {
      open[e.worker] = Open{e.op, e.ts, true};
    } else if (e.kind == TraceEventKind::kOpEnd) {
      Open& slot = open[e.worker];
      if (slot.open && slot.op == e.op && e.op >= 0 &&
          static_cast<size_t>(e.op) < registry.size()) {
        profile.operators[registry.at(static_cast<size_t>(e.op)).info.name].observe(
            std::max<int64_t>(0, e.ts - slot.ts));
      }
      slot.open = false;
    }
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void write_cost_profile(std::ostream& os, const CostProfile& profile) {
  os << "{\n  \"schema\": \"delirium.cost_profile\",\n  \"version\": "
     << kCostProfileVersion << ",\n  \"operators\": {";
  size_t i = 0;
  for (const auto& [op, h] : profile.operators) {
    os << (i++ == 0 ? "\n" : ",\n") << "    \"";
    write_escaped(os, op);
    os << "\": {\n      \"count\": " << h.count() << ",\n      \"total_ns\": " << h.total()
       << ",\n      \"min_ns\": " << h.min() << ",\n      \"max_ns\": " << h.max()
       << ",\n      \"buckets\": {";
    size_t j = 0;
    const auto& buckets = h.buckets();
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      os << (j++ == 0 ? "" : ", ") << "\"" << b << "\": " << buckets[b];
    }
    os << "}\n    }";
  }
  os << (i == 0 ? "}\n}\n" : "\n  }\n}\n");
}

std::string cost_profile_to_json(const CostProfile& profile) {
  std::ostringstream os;
  write_cost_profile(os, profile);
  return os.str();
}

bool write_cost_profile_file(const std::string& path, const CostProfile& profile) {
  std::ofstream out(path);
  if (!out) return false;
  write_cost_profile(out, profile);
  return out.good();
}

// ---------------------------------------------------------------------------
// Parsing — a minimal JSON reader specialized to the schema above. Every
// error names the offending field path so a bad hand-edited profile is
// diagnosable ("cost profile: operators.add.count: ...").
// ---------------------------------------------------------------------------

namespace {

class ProfileParser {
 public:
  explicit ProfileParser(const std::string& text) : text_(text) {}

  CostProfile parse() {
    CostProfile profile;
    bool saw_schema = false, saw_version = false, saw_operators = false;
    expect('{', "cost profile");
    while (true) {
      skip_ws();
      if (peek() == '}') break;
      const std::string key = parse_string("cost profile");
      expect(':', key);
      if (key == "schema") {
        const std::string schema = parse_string(key);
        if (schema != "delirium.cost_profile") {
          fail(key, "expected \"delirium.cost_profile\", got \"" + schema + "\"");
        }
        saw_schema = true;
      } else if (key == "version") {
        const int64_t version = parse_int(key);
        if (version != kCostProfileVersion) {
          fail(key, "unsupported version " + std::to_string(version) + " (expected " +
                        std::to_string(kCostProfileVersion) + ")");
        }
        saw_version = true;
      } else if (key == "operators") {
        parse_operators(profile);
        saw_operators = true;
      } else {
        fail(key, "unknown field");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}', "cost profile");
    if (!saw_schema) fail("schema", "missing field");
    if (!saw_version) fail("version", "missing field");
    if (!saw_operators) fail("operators", "missing field");
    skip_ws();
    if (pos_ != text_.size()) fail("cost profile", "trailing content after the object");
    return profile;
  }

 private:
  void parse_operators(CostProfile& profile) {
    expect('{', "operators");
    while (true) {
      skip_ws();
      if (peek() == '}') break;
      const std::string op = parse_string("operators");
      const std::string path = "operators." + op;
      expect(':', path);
      parse_operator(profile, op, path);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}', "operators");
  }

  void parse_operator(CostProfile& profile, const std::string& op, const std::string& path) {
    int64_t count = -1, total = -1, min = -1, max = -1;
    std::array<uint64_t, LogHistogram::kBuckets> buckets{};
    bool saw_buckets = false;
    expect('{', path);
    while (true) {
      skip_ws();
      if (peek() == '}') break;
      const std::string key = parse_string(path);
      const std::string field = path + "." + key;
      expect(':', field);
      if (key == "count") {
        count = parse_non_negative(field);
      } else if (key == "total_ns") {
        total = parse_non_negative(field);
      } else if (key == "min_ns") {
        min = parse_non_negative(field);
      } else if (key == "max_ns") {
        max = parse_non_negative(field);
      } else if (key == "buckets") {
        parse_buckets(buckets, field);
        saw_buckets = true;
      } else {
        fail(field, "unknown field");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}', path);
    if (count < 0) fail(path + ".count", "missing field");
    if (total < 0) fail(path + ".total_ns", "missing field");
    if (min < 0) fail(path + ".min_ns", "missing field");
    if (max < 0) fail(path + ".max_ns", "missing field");
    if (!saw_buckets) fail(path + ".buckets", "missing field");
    if (count > 0 && min > max) fail(path + ".min_ns", "exceeds max_ns");
    uint64_t bucket_sum = 0;
    for (const uint64_t b : buckets) bucket_sum += b;
    if (bucket_sum != static_cast<uint64_t>(count)) {
      fail(path + ".count", "does not match the bucket sum (" +
                                std::to_string(bucket_sum) + ")");
    }
    profile.operators[op] = LogHistogram::restore(
        buckets, static_cast<uint64_t>(count), total, min, max);
  }

  void parse_buckets(std::array<uint64_t, LogHistogram::kBuckets>& buckets,
                     const std::string& path) {
    expect('{', path);
    while (true) {
      skip_ws();
      if (peek() == '}') break;
      const std::string key = parse_string(path);
      const std::string field = path + "." + key;
      expect(':', field);
      int64_t index = -1;
      if (!key.empty() && key.find_first_not_of("0123456789") == std::string::npos &&
          key.size() <= 2) {
        index = std::stoll(key);
      }
      if (index < 0 || index >= static_cast<int64_t>(LogHistogram::kBuckets)) {
        fail(field, "bucket index out of range (0.." +
                        std::to_string(LogHistogram::kBuckets - 1) + ")");
      }
      buckets[static_cast<size_t>(index)] =
          static_cast<uint64_t>(parse_non_negative(field));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}', path);
  }

  // -- lexing helpers --------------------------------------------------------

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) return '\0';
    return text_[pos_];
  }

  void expect(char c, const std::string& path) {
    skip_ws();
    if (peek() != c) {
      fail(path, std::string("expected '") + c + "'" +
                     (pos_ < text_.size()
                          ? std::string(", got '") + text_[pos_] + "'"
                          : std::string(", got end of input")));
    }
    ++pos_;
  }

  std::string parse_string(const std::string& path) {
    expect('"', path);
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    if (pos_ >= text_.size()) fail(path, "unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  int64_t parse_int(const std::string& path) {
    skip_ws();
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    const std::string digits = text_.substr(start, pos_ - start);
    if (digits.empty() || digits == "-") fail(path, "expected an integer");
    if (digits.size() > 19) fail(path, "integer out of range");
    try {
      return std::stoll(digits);
    } catch (const std::exception&) {
      fail(path, "integer out of range");
    }
    return 0;  // unreachable
  }

  int64_t parse_non_negative(const std::string& path) {
    const int64_t v = parse_int(path);
    if (v < 0) fail(path, "must be non-negative");
    return v;
  }

  [[noreturn]] void fail(const std::string& path, const std::string& message) {
    throw std::invalid_argument("cost profile: " + path + ": " + message);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

CostProfile load_cost_profile(const std::string& text) {
  return ProfileParser(text).parse();
}

CostProfile load_cost_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read cost profile '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_cost_profile(buffer.str());
}

// ---------------------------------------------------------------------------
// Distillation
// ---------------------------------------------------------------------------

int64_t profile_mean_ns(const LogHistogram& h) {
  if (h.count() == 0) return 1;
  return std::max<int64_t>(1, h.total() / static_cast<int64_t>(h.count()));
}

namespace {

int64_t overall_mean_ns(const CostProfile& profile) {
  int64_t total = 0;
  uint64_t count = 0;
  for (const auto& [op, h] : profile.operators) {
    total += h.total();
    count += h.count();
  }
  if (count == 0) return 1;
  return std::max<int64_t>(1, total / static_cast<int64_t>(count));
}

}  // namespace

CostModel to_cost_model(const CostProfile& profile) {
  CostModel model;
  model.default_cost_ns = overall_mean_ns(profile);
  for (const auto& [op, h] : profile.operators) {
    model.op_cost_ns[op] = profile_mean_ns(h);
  }
  return model;
}

std::unordered_map<std::string, Ticks> fixed_costs_from(const CostProfile& profile) {
  std::unordered_map<std::string, Ticks> fixed;
  fixed.reserve(profile.operators.size());
  for (const auto& [op, h] : profile.operators) {
    fixed[op] = profile_mean_ns(h);
  }
  return fixed;
}

int64_t budget_from_profile(const CostProfile& profile) {
  int64_t budget = 0;
  for (const auto& [op, h] : profile.operators) {
    budget += static_cast<int64_t>(h.count()) * h.percentile(0.99);
  }
  // The histograms only see operator bodies; graph dispatch (calls,
  // parameter delivery, scheduling) is invisible to them and dominates
  // fine-grained programs — a p99 sum alone cancels healthy instances.
  // 8x headroom keeps the ceiling real (runaways exceed any constant
  // multiple) without tripping on dispatch overhead.
  return budget > 0 ? kBudgetHeadroom * budget : 0;
}

// ---------------------------------------------------------------------------
// Capacity planning
// ---------------------------------------------------------------------------

std::vector<int> default_plan_workers() { return {1, 2, 4, 8, 16, 32, 64}; }

CapacityPlan plan_capacity(const CompiledProgram& program,
                           const OperatorRegistry& registry, const CostProfile& profile,
                           const std::vector<int>& workers, int64_t target_ns) {
  const std::unordered_map<std::string, Ticks> fixed = fixed_costs_from(profile);
  const Ticks default_cost = overall_mean_ns(profile);
  auto makespan_at = [&](int num_procs) -> int64_t {
    SimConfig config;
    config.num_procs = num_procs;
    config.fixed_costs = &fixed;
    config.fixed_cost_default_ns = default_cost;
    SimRuntime sim(registry, config);
    return sim.run(program).makespan;
  };

  CapacityPlan plan;
  plan.target_ns = target_ns;
  plan.serial_makespan_ns = makespan_at(1);
  for (const int w : workers) {
    PlanPoint point;
    point.workers = w;
    point.makespan_ns = w == 1 ? plan.serial_makespan_ns : makespan_at(w);
    point.speedup = point.makespan_ns > 0
                        ? static_cast<double>(plan.serial_makespan_ns) /
                              static_cast<double>(point.makespan_ns)
                        : 1.0;
    point.efficiency = point.speedup / static_cast<double>(w);
    plan.points.push_back(point);
  }
  for (const PlanPoint& p : plan.points) {
    if (plan.best_workers == 0 || p.makespan_ns < plan.best_makespan_ns) {
      plan.best_makespan_ns = p.makespan_ns;
      plan.best_workers = p.workers;
    }
  }
  for (const PlanPoint& p : plan.points) {
    // Knee: the cheapest machine within 5% of the best predicted makespan.
    if (plan.knee_workers == 0 && p.makespan_ns * 100 <= plan.best_makespan_ns * 105) {
      plan.knee_workers = p.workers;
    }
    if (target_ns > 0 && plan.target_workers == 0 && p.makespan_ns <= target_ns) {
      plan.target_workers = p.workers;
    }
  }
  return plan;
}

}  // namespace delirium::tools
