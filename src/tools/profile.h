// Trace-driven cost profiles (docs/PROFILING.md): aggregate a run's
// trace event stream into per-operator LogHistogram cost profiles,
// persist them as a versioned JSON calibration profile
// (delc --profile-out / --profile-in), and replay them through the
// virtual-time executor for capacity planning (delc --plan).
//
// Everything here is deterministic: the profile is a function of the
// seq-stamped merged trace (exact virtual nanoseconds in SimRuntime),
// serialization orders operators by name and buckets by index, and
// plan_capacity drives SimRuntime with fixed per-operator costs so the
// predicted makespans are byte-stable across schedulers, executors, and
// recompiles.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/facts.h"
#include "src/runtime/registry.h"
#include "src/runtime/sim.h"
#include "src/runtime/tracing.h"
#include "src/tools/metrics.h"

namespace delirium::tools {

/// Serialization format version (the "version" field of the JSON).
inline constexpr int kCostProfileVersion = 1;

/// Per-operator cost histograms distilled from one or more runs.
struct CostProfile {
  std::map<std::string, LogHistogram> operators;

  bool empty() const { return operators.empty(); }
};

/// Build a profile from a trace event stream: kOpBegin/kOpEnd pairs are
/// matched per worker (a worker runs one attempt at a time) and each
/// attempt's duration (end.ts - begin.ts) is observed under the
/// operator's name. With SimRuntime timestamps the durations are the
/// exact virtual operator costs; with wall-clock timestamps they are
/// measured. Events are re-sorted by seq first, so any merge order is
/// accepted.
CostProfile profile_from_trace(const std::vector<TraceEvent>& events,
                               const OperatorRegistry& registry);

/// Serialize as the versioned JSON calibration profile. Deterministic:
/// a load followed by a write reproduces the bytes exactly.
void write_cost_profile(std::ostream& os, const CostProfile& profile);
bool write_cost_profile_file(const std::string& path, const CostProfile& profile);
std::string cost_profile_to_json(const CostProfile& profile);

/// Parse a serialized profile. Throws std::invalid_argument with a
/// message naming the offending field path (e.g. "operators.add.count")
/// on any malformed input.
CostProfile load_cost_profile(const std::string& text);
/// Read and parse `path`; throws std::runtime_error if unreadable.
CostProfile load_cost_profile_file(const std::string& path);

/// Deterministic representative cost of one histogram: mean nanoseconds
/// (total / count, at least 1).
int64_t profile_mean_ns(const LogHistogram& h);

/// Distill the profile into the facts engine's CostModel: per-operator
/// mean ns, default = the mean across every observation.
CostModel to_cost_model(const CostProfile& profile);

/// Per-operator fixed costs for SimConfig::fixed_costs (same means).
std::unordered_map<std::string, Ticks> fixed_costs_from(const CostProfile& profile);

/// One worker-count point of a capacity plan.
struct PlanPoint {
  int workers = 0;
  int64_t makespan_ns = 0;
  double speedup = 1.0;     // serial makespan / this makespan
  double efficiency = 1.0;  // speedup / workers
};

/// The full what-if sweep `delc --plan` reports.
struct CapacityPlan {
  std::vector<PlanPoint> points;   // ascending worker counts
  int64_t serial_makespan_ns = 0;  // the 1-worker point
  int64_t best_makespan_ns = 0;
  int best_workers = 0;    // smallest count achieving the best makespan
  int knee_workers = 0;    // smallest count within 5% of the best
  int64_t target_ns = 0;   // requested latency target; 0 = none
  int target_workers = 0;  // smallest count meeting the target; 0 = unmet
};

/// The default sweep: 1..64 virtual processors in powers of two.
std::vector<int> default_plan_workers();

/// Replay `program` through SimRuntime at each worker count with the
/// profile's per-operator costs fixed on the virtual clock. Operators
/// absent from the profile cost the profile-wide mean. Byte-
/// deterministic for a given (program, profile, workers, target).
CapacityPlan plan_capacity(const CompiledProgram& program,
                           const OperatorRegistry& registry, const CostProfile& profile,
                           const std::vector<int>& workers = default_plan_workers(),
                           int64_t target_ns = 0);

/// Headroom multiplier on the p99 work sum in budget_from_profile:
/// operator histograms don't see graph-dispatch overhead, so the raw
/// sum undershoots whole-run time on fine-grained programs.
inline constexpr int64_t kBudgetHeadroom = 8;

/// Conservative per-instance time budget for admission control:
/// kBudgetHeadroom * the sum over operators of count * p99
/// (docs/PROFILING.md). Used as the --instances default when a profile
/// is loaded and no explicit budget was given; callers running N
/// co-tenant instances should scale by N, since the instances share
/// one machine.
int64_t budget_from_profile(const CostProfile& profile);

}  // namespace delirium::tools
