#include "src/tools/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <ostream>

namespace delirium::tools {

std::vector<RunStatField> run_stat_fields(const RunStats& s) {
  return {
      {"activations_created", s.activations_created},
      {"peak_live_activations", s.peak_live_activations},
      {"activations_pooled", s.activations_pooled},
      {"activations_allocated", s.activations_allocated},
      {"nodes_executed", s.nodes_executed},
      {"operator_invocations", s.operator_invocations},
      {"operator_ticks", static_cast<uint64_t>(s.operator_ticks)},
      {"cow_copies", s.cow_copies},
      {"cow_skipped", s.cow_skipped},
      {"remote_block_moves", s.remote_block_moves},
      {"remote_bytes_pulled", s.remote_bytes_pulled},
      {"sched_local_enqueues", s.sched_local_enqueues},
      {"sched_injected_enqueues", s.sched_injected_enqueues},
      {"sched_steals", s.sched_steals},
      {"sched_failed_steals", s.sched_failed_steals},
      {"sched_local_steals", s.sched_local_steals},
      {"sched_remote_steals", s.sched_remote_steals},
      {"sched_parks", s.sched_parks},
      {"sched_wakeups", s.sched_wakeups},
      {"sched_hint_promotions", s.sched_hint_promotions},
      {"sched_cost_promotions", s.sched_cost_promotions},
      {"faults_raised", s.faults_raised},
      {"faults_injected", s.faults_injected},
      {"retries", s.retries},
      {"retries_exhausted", s.retries_exhausted},
      {"items_purged", s.items_purged},
      {"watchdog_fires", s.watchdog_fires},
      {"instances_admitted", s.instances_admitted},
      {"instances_completed", s.instances_completed},
      {"instances_faulted", s.instances_faulted},
      {"instances_budget_killed", s.instances_budget_killed},
      {"instances_shed", s.instances_shed},
  };
}

void LogHistogram::observe(int64_t value_ns) {
  if (value_ns < 0) value_ns = 0;
  if (count_ == 0) {
    min_ = max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  ++count_;
  total_ += value_ns;
  const size_t bucket = std::bit_width(static_cast<uint64_t>(value_ns));
  ++buckets_[std::min(bucket, buckets_.size() - 1)];
}

LogHistogram LogHistogram::restore(const std::array<uint64_t, kBuckets>& buckets,
                                   uint64_t count, int64_t total, int64_t min,
                                   int64_t max) {
  LogHistogram h;
  h.buckets_ = buckets;
  h.count_ = count;
  h.total_ = total;
  h.min_ = min;
  h.max_ = max;
  return h;
}

int64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper bound of bucket i: values with bit width i are < 2^i.
      return i == 0 ? 0 : static_cast<int64_t>((uint64_t{1} << i) - 1);
    }
  }
  return max_;
}

void MetricsRegistry::observe_run(const RunStats& stats,
                                  const std::vector<NodeTiming>& timings) {
  ++runs_;
  totals_.activations_created += stats.activations_created;
  totals_.peak_live_activations =
      std::max(totals_.peak_live_activations, stats.peak_live_activations);
  totals_.activations_pooled += stats.activations_pooled;
  totals_.activations_allocated += stats.activations_allocated;
  totals_.nodes_executed += stats.nodes_executed;
  totals_.operator_invocations += stats.operator_invocations;
  totals_.operator_ticks += stats.operator_ticks;
  totals_.cow_copies += stats.cow_copies;
  totals_.cow_skipped += stats.cow_skipped;
  totals_.remote_block_moves += stats.remote_block_moves;
  totals_.remote_bytes_pulled += stats.remote_bytes_pulled;
  totals_.sched_local_enqueues += stats.sched_local_enqueues;
  totals_.sched_injected_enqueues += stats.sched_injected_enqueues;
  totals_.sched_steals += stats.sched_steals;
  totals_.sched_failed_steals += stats.sched_failed_steals;
  totals_.sched_local_steals += stats.sched_local_steals;
  totals_.sched_remote_steals += stats.sched_remote_steals;
  totals_.sched_parks += stats.sched_parks;
  totals_.sched_wakeups += stats.sched_wakeups;
  totals_.sched_hint_promotions += stats.sched_hint_promotions;
  totals_.sched_cost_promotions += stats.sched_cost_promotions;
  totals_.faults_raised += stats.faults_raised;
  totals_.faults_injected += stats.faults_injected;
  totals_.retries += stats.retries;
  totals_.retries_exhausted += stats.retries_exhausted;
  totals_.items_purged += stats.items_purged;
  totals_.watchdog_fires += stats.watchdog_fires;
  totals_.instances_admitted += stats.instances_admitted;
  totals_.instances_completed += stats.instances_completed;
  totals_.instances_faulted += stats.instances_faulted;
  totals_.instances_budget_killed += stats.instances_budget_killed;
  totals_.instances_shed += stats.instances_shed;
  for (const NodeTiming& t : timings) per_op_[t.label].observe(t.duration);
}

void MetricsRegistry::observe_instances(const InstanceCounters& counters,
                                        const std::vector<int64_t>& latencies_ns) {
  instances_observed_ = true;
  instance_totals_.admitted += counters.admitted;
  instance_totals_.completed += counters.completed;
  instance_totals_.faulted += counters.faulted;
  instance_totals_.budget_killed += counters.budget_killed;
  instance_totals_.shed += counters.shed;
  instance_totals_.live = counters.live;
  for (const int64_t lat : latencies_ns) instance_latency_.observe(lat);
}

namespace {

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void MetricsRegistry::to_json(std::ostream& os) const {
  os << "{\n  \"runs\": " << runs_ << ",\n  \"stats\": {\n";
  const std::vector<RunStatField> fields = run_stat_fields(totals_);
  for (size_t i = 0; i < fields.size(); ++i) {
    os << "    \"" << fields[i].name << "\": " << fields[i].value;
    os << (i + 1 < fields.size() ? ",\n" : "\n");
  }
  os << "  },\n  \"operators\": {\n";
  size_t i = 0;
  for (const auto& [op, h] : per_op_) {
    os << "    \"";
    write_json_escaped(os, op);
    os << "\": {\"count\": " << h.count() << ", \"total_ns\": " << h.total()
       << ", \"min_ns\": " << h.min() << ", \"max_ns\": " << h.max()
       << ", \"p50_ns\": " << h.percentile(0.5) << ", \"p99_ns\": " << h.percentile(0.99)
       << "}";
    os << (++i < per_op_.size() ? ",\n" : "\n");
  }
  // The instance section is present only for multi-instance sessions so
  // single-run exports (and their golden files) are unchanged.
  if (!instances_observed_) {
    os << "  }\n}\n";
    return;
  }
  const LogHistogram& h = instance_latency_;
  os << "  },\n  \"instances\": {\n"
     << "    \"admitted\": " << instance_totals_.admitted << ",\n"
     << "    \"completed\": " << instance_totals_.completed << ",\n"
     << "    \"faulted\": " << instance_totals_.faulted << ",\n"
     << "    \"budget_killed\": " << instance_totals_.budget_killed << ",\n"
     << "    \"shed\": " << instance_totals_.shed << ",\n"
     << "    \"live\": " << instance_totals_.live << ",\n"
     << "    \"latency_ns\": {\"count\": " << h.count() << ", \"total_ns\": " << h.total()
     << ", \"min_ns\": " << h.min() << ", \"max_ns\": " << h.max()
     << ", \"p50_ns\": " << h.percentile(0.5) << ", \"p99_ns\": " << h.percentile(0.99)
     << "}\n  }\n}\n";
}

void MetricsRegistry::to_prometheus(std::ostream& os) const {
  os << "# HELP delirium_runs_total Runs observed by this registry.\n"
     << "# TYPE delirium_runs_total counter\n"
     << "delirium_runs_total " << runs_ << "\n";
  for (const RunStatField& f : run_stat_fields(totals_)) {
    os << "# TYPE delirium_" << f.name << " counter\n"
       << "delirium_" << f.name << " " << f.value << "\n";
  }
  if (!per_op_.empty()) {
    os << "# HELP delirium_operator_duration_ns Operator execution time (log2-bucket "
          "percentile estimates).\n"
       << "# TYPE delirium_operator_duration_ns summary\n";
    for (const auto& [op, h] : per_op_) {
      os << "delirium_operator_duration_ns{operator=\"" << op << "\",quantile=\"0.5\"} "
         << h.percentile(0.5) << "\n"
         << "delirium_operator_duration_ns{operator=\"" << op << "\",quantile=\"0.99\"} "
         << h.percentile(0.99) << "\n"
         << "delirium_operator_duration_ns_sum{operator=\"" << op << "\"} " << h.total()
         << "\n"
         << "delirium_operator_duration_ns_count{operator=\"" << op << "\"} " << h.count()
         << "\n";
    }
  }
  if (instances_observed_) {
    os << "# HELP delirium_instances_live Instances admitted and not yet finalized.\n"
       << "# TYPE delirium_instances_live gauge\n"
       << "delirium_instances_live " << instance_totals_.live << "\n"
       << "# HELP delirium_instance_latency_ns Submit-to-finalize instance latency "
          "(log2-bucket percentile estimates).\n"
       << "# TYPE delirium_instance_latency_ns summary\n"
       << "delirium_instance_latency_ns{quantile=\"0.5\"} "
       << instance_latency_.percentile(0.5) << "\n"
       << "delirium_instance_latency_ns{quantile=\"0.99\"} "
       << instance_latency_.percentile(0.99) << "\n"
       << "delirium_instance_latency_ns_sum " << instance_latency_.total() << "\n"
       << "delirium_instance_latency_ns_count " << instance_latency_.count() << "\n";
  }
}

bool MetricsRegistry::write_file(const std::string& path, const std::string& format) const {
  std::ofstream out(path);
  if (!out) return false;
  if (format == "json") {
    to_json(out);
  } else if (format == "prom") {
    to_prometheus(out);
  } else {
    return false;
  }
  return out.good();
}

}  // namespace delirium::tools
