// Reporting utilities shared by the bench harness and examples: aligned
// text tables (the paper's tables reproduced as console output), node
// timing aggregation, and median-of-N measurement helpers.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/runtime.h"

namespace delirium::tools {

/// Simple aligned text table. Columns are sized to their widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Format helpers.
  static std::string ms(double value, int precision = 1);
  static std::string ratio(double value, int precision = 2);
  static std::string count(uint64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Per-operator aggregate of a node-timing trace.
struct OpAggregate {
  int invocations = 0;
  Ticks total = 0;
  Ticks min = 0;
  Ticks max = 0;

  double mean() const { return invocations > 0 ? static_cast<double>(total) / invocations : 0; }
};

std::map<std::string, OpAggregate> aggregate_timings(const std::vector<NodeTiming>& timings);

/// Print the paper-style dump: "call of <op> took <ticks>", optionally
/// limited to the first `limit` entries.
void print_timing_trace(std::ostream& os, const std::vector<NodeTiming>& timings,
                        size_t limit = 0);

/// Print a RunStats block, one "name: value" per line (delc --stats).
/// The schema is identical for Runtime and SimRuntime runs; counters a
/// given executor does not exercise read zero.
void print_run_stats(std::ostream& os, const RunStats& stats);

/// Run `fn` `repeats` times and return the median of its returned values
/// (used to tame single-core measurement noise).
double median_of(int repeats, const std::function<double()>& fn);

}  // namespace delirium::tools
