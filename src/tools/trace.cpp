#include "src/tools/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <string>

namespace delirium::tools {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Timestamps are nanoseconds; the trace-event format wants microseconds.
/// Emit them with the sub-microsecond part as decimals so short operators
/// don't collapse to zero-width slices.
void write_us(std::ostream& os, int64_t ns) {
  if (ns < 0) ns = 0;
  os << ns / 1000 << '.';
  const int64_t frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

void write_slice(std::ostream& os, bool& first, const std::string& name,
                 const char* cat, int tid, int64_t ts_ns, int64_t dur_ns,
                 const std::string& args_key, const std::string& args_value,
                 bool quote_value) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")";
  write_escaped(os, name);
  os << R"(", "cat": ")" << cat << R"(", "ph": "X", "pid": 1, "tid": )" << tid
     << R"(, "ts": )";
  write_us(os, ts_ns);
  os << R"(, "dur": )";
  write_us(os, dur_ns < 1 ? 1 : dur_ns);
  os << R"(, "args": {")" << args_key << R"(": )";
  if (quote_value) {
    os << '"';
    write_escaped(os, args_value);
    os << '"';
  } else {
    os << args_value;
  }
  os << "}}";
}

void write_instant(std::ostream& os, bool& first, const std::string& name, int tid,
                   int64_t ts_ns, int64_t arg) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")";
  write_escaped(os, name);
  os << R"(", "cat": "scheduler", "ph": "i", "s": "t", "pid": 1, "tid": )" << tid
     << R"(, "ts": )";
  write_us(os, ts_ns);
  os << R"(, "args": {"arg": )" << arg << "}}";
}

void write_thread_name(std::ostream& os, bool& first, int tid, const std::string& name) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << tid
     << R"(, "args": {"name": ")";
  write_escaped(os, name);
  os << R"("}})";
}

/// Row id for an event: workers keep their index; the run's caller
/// thread (worker -1) gets a row past every worker.
int event_tid(const TraceEvent& e, int max_worker) {
  return e.worker >= 0 ? e.worker : max_worker + 1;
}

std::string op_name(int32_t op, const OperatorRegistry& registry) {
  if (op >= 0 && static_cast<size_t>(op) < registry.size()) {
    return registry.at(static_cast<size_t>(op)).info.name;
  }
  return "?";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<NodeTiming>& timings) {
  // Slices placed at their recorded start: gaps between operators on a
  // worker row are the real idle/scheduling time, in both executors.
  std::vector<const NodeTiming*> ordered;
  ordered.reserve(timings.size());
  for (const NodeTiming& t : timings) ordered.push_back(&t);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const NodeTiming* a, const NodeTiming* b) { return a->start < b->start; });
  os << "[\n";
  bool first = true;
  for (const NodeTiming* t : ordered) {
    write_slice(os, first, t->label, "operator", t->worker, t->start, t->duration,
                "template", t->tmpl, /*quote_value=*/true);
  }
  os << "\n]\n";
}

void write_chrome_trace(std::ostream& os, const SimResult& result) {
  write_chrome_trace(os, result.timings);
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<NodeTiming>& timings) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, timings);
  return out.good();
}

void write_trace_events(std::ostream& os, const std::vector<TraceEvent>& events,
                        const OperatorRegistry& registry) {
  int max_worker = 0;
  for (const TraceEvent& e : events) max_worker = std::max(max_worker, static_cast<int>(e.worker));

  os << "[\n";
  bool first = true;

  // Row names.
  std::set<int> tids;
  bool has_external = false;
  for (const TraceEvent& e : events) {
    if (e.worker >= 0) tids.insert(e.worker);
    else has_external = true;
  }
  for (int tid : tids) write_thread_name(os, first, tid, "worker " + std::to_string(tid));
  if (has_external) write_thread_name(os, first, max_worker + 1, "caller");

  // Operator slices from begin/end pairs. A worker executes one operator
  // at a time, so a one-deep slot per row suffices; a stack keeps the
  // exporter robust to streams it didn't produce.
  struct Open {
    int64_t ts;
    int32_t op;
    int64_t attempt;
  };
  std::vector<std::vector<Open>> open(static_cast<size_t>(max_worker) + 2);

  for (const TraceEvent& e : events) {
    const int tid = event_tid(e, max_worker);
    switch (e.kind) {
      case TraceEventKind::kOpBegin:
        open[static_cast<size_t>(tid)].push_back(Open{e.ts, e.op, e.arg});
        break;
      case TraceEventKind::kOpEnd: {
        auto& stack = open[static_cast<size_t>(tid)];
        if (!stack.empty() && stack.back().op == e.op) {
          const Open& o = stack.back();
          write_slice(os, first, op_name(e.op, registry), "operator", tid, o.ts,
                      e.ts - o.ts, "attempt", std::to_string(o.attempt),
                      /*quote_value=*/false);
          stack.pop_back();
        } else {
          write_instant(os, first, "op_end", tid, e.ts, e.arg);
        }
        break;
      }
      case TraceEventKind::kPark:
        // arg is the total ns slept starting at ts (tracing.h).
        write_slice(os, first, "park", "scheduler", tid, e.ts, e.arg, "slept_ns",
                    std::to_string(e.arg), /*quote_value=*/false);
        break;
      case TraceEventKind::kFaultRaise:
      case TraceEventKind::kRetry:
      case TraceEventKind::kPurge: {
        std::string name(trace_event_kind_name(e.kind));
        if (e.op >= 0) name += ' ' + op_name(e.op, registry);
        write_instant(os, first, name, tid, e.ts, e.arg);
        break;
      }
      default:
        write_instant(os, first, std::string(trace_event_kind_name(e.kind)), tid, e.ts,
                      e.arg);
        break;
    }
  }
  os << "\n]\n";
}

bool write_trace_events_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const OperatorRegistry& registry) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_events(out, events, registry);
  return out.good();
}

std::vector<std::string> deterministic_event_multiset(
    const std::vector<TraceEvent>& events, const OperatorRegistry& registry) {
  std::vector<std::string> out;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kOpBegin:
      case TraceEventKind::kOpEnd:
      case TraceEventKind::kFaultRaise:
      case TraceEventKind::kRetry: {
        std::string line(trace_event_kind_name(e.kind));
        line += " op=" + op_name(e.op, registry);
        line += " arg=" + std::to_string(e.arg);
        out.push_back(std::move(line));
        break;
      }
      default:
        break;  // schedule-dependent: steal, park, wake, inject, purge, watchdog
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace delirium::tools
