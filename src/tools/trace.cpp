#include "src/tools/trace.h"

#include <fstream>
#include <map>
#include <ostream>

namespace delirium::tools {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void write_event(std::ostream& os, bool& first, const std::string& name, int tid,
                 int64_t ts_us, int64_t dur_us, const std::string& tmpl) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")";
  write_escaped(os, name);
  os << R"(", "cat": "operator", "ph": "X", "pid": 1, "tid": )" << tid << R"(, "ts": )"
     << ts_us << R"(, "dur": )" << dur_us << R"(, "args": {"template": ")";
  write_escaped(os, tmpl);
  os << R"("}})";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<NodeTiming>& timings) {
  os << "[\n";
  bool first = true;
  std::map<int, int64_t> cursor_us;  // per worker: end of last slice
  for (const NodeTiming& t : timings) {
    int64_t& cursor = cursor_us[t.worker];
    const int64_t dur = std::max<int64_t>(t.duration / 1000, 1);
    write_event(os, first, t.label, t.worker, cursor, dur, t.tmpl);
    cursor += dur;
  }
  os << "\n]\n";
}

void write_chrome_trace(std::ostream& os, const SimResult& result) {
  // SimResult timings are in execution order; pack per processor in that
  // order (the simulator executes each processor's slices back to back
  // except for idle gaps, which this compact view elides).
  write_chrome_trace(os, result.timings);
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<NodeTiming>& timings) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, timings);
  return out.good();
}

}  // namespace delirium::tools
