// Execution trace export — the modern form of the paper's "tools for
// analyzing and improving execution speed" (§1). Two exporters, both in
// Chrome trace-event JSON (chrome://tracing, Perfetto):
//
//  * write_chrome_trace: node timings as one slice per operator
//    execution, placed at its recorded start timestamp — true gaps, in
//    both executors (NodeTiming::start is wall-clock ns relative to the
//    run start in Runtime, exact virtual ns in SimRuntime).
//  * write_trace_events: the full event stream (tracing.h) — operator
//    slices reconstructed from begin/end pairs, park intervals as
//    slices, and scheduler/fault events as instants.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/runtime/registry.h"
#include "src/runtime/runtime.h"
#include "src/runtime/sim.h"

namespace delirium::tools {

/// Write node timings in Chrome trace-event format: one row per
/// worker/processor, one slice per operator execution, placed at its
/// recorded start timestamp (NodeTiming::start) so idle gaps are real.
void write_chrome_trace(std::ostream& os, const std::vector<NodeTiming>& timings);

/// Write a SimResult's operator timeline. Virtual time is exact, so the
/// trace shows exact starts, gaps, and per-processor utilization.
void write_chrome_trace(std::ostream& os, const SimResult& result);

/// Convenience: write to a file; returns false on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<NodeTiming>& timings);

/// Write a trace event stream (Runtime::trace_events(),
/// SimResult::trace_events) as Chrome trace-event JSON: operator
/// begin/end pairs become ph:"X" slices (args carry the attempt), parks
/// become slices on the owning worker's row, everything else becomes a
/// ph:"i" instant. Rows are named via thread_name metadata ("worker N" /
/// "caller"). The registry resolves operator indices to names.
void write_trace_events(std::ostream& os, const std::vector<TraceEvent>& events,
                        const OperatorRegistry& registry);

/// Convenience: write to a file; returns false on I/O failure.
bool write_trace_events_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const OperatorRegistry& registry);

/// The executor-independent projection of a trace, for sim-vs-threaded
/// comparison: one sorted string per operator event (begin/end with
/// attempt) and fault event (raise with activation seq, retry with
/// attempt). Scheduler events (steal, park, wake, inject) and
/// cancellation purges depend on the schedule and are excluded. Two runs
/// of the same program — any executor, any worker count, any structural
/// (`every=`) injection plan — produce equal multisets.
std::vector<std::string> deterministic_event_multiset(
    const std::vector<TraceEvent>& events, const OperatorRegistry& registry);

}  // namespace delirium::tools
