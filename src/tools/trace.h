// Execution trace export — the modern form of the paper's "tools for
// analyzing and improving execution speed" (§1). Node timings from a run
// are written as Chrome tracing JSON (chrome://tracing, Perfetto):
// one row per worker/processor, one slice per operator execution.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/runtime/runtime.h"
#include "src/runtime/sim.h"

namespace delirium::tools {

/// Write node timings in Chrome trace-event format. The threaded
/// runtime's timings have no start timestamps, so slices are laid
/// end-to-end per worker in completion order — durations and placement
/// per worker are faithful; gaps are not.
void write_chrome_trace(std::ostream& os, const std::vector<NodeTiming>& timings);

/// Write a SimResult's operator timeline. Virtual time is exact here, so
/// the trace shows true starts, gaps, and per-processor utilization.
/// (Uses the timings' recorded order plus per-processor busy packing.)
void write_chrome_trace(std::ostream& os, const SimResult& result);

/// Convenience: write to a file; returns false on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<NodeTiming>& timings);

}  // namespace delirium::tools
