#include "src/tools/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/tools/metrics.h"

namespace delirium::tools {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_sep = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::ms(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::ratio(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "x";
  return os.str();
}

std::string Table::count(uint64_t value) { return std::to_string(value); }

std::map<std::string, OpAggregate> aggregate_timings(const std::vector<NodeTiming>& timings) {
  std::map<std::string, OpAggregate> agg;
  for (const NodeTiming& t : timings) {
    OpAggregate& a = agg[t.label];
    if (a.invocations == 0) {
      a.min = a.max = t.duration;
    } else {
      a.min = std::min(a.min, t.duration);
      a.max = std::max(a.max, t.duration);
    }
    ++a.invocations;
    a.total += t.duration;
  }
  return agg;
}

void print_timing_trace(std::ostream& os, const std::vector<NodeTiming>& timings,
                        size_t limit) {
  size_t n = 0;
  for (const NodeTiming& t : timings) {
    os << "call of " << t.label << " took " << t.duration << '\n';
    if (limit > 0 && ++n >= limit) {
      os << "... (" << timings.size() - n << " more)\n";
      return;
    }
  }
}

void print_run_stats(std::ostream& os, const RunStats& s) {
  // One schema source: the same run_stat_fields list feeds this dump,
  // the metrics JSON, and the Prometheus export (src/tools/metrics.h).
  const std::vector<RunStatField> fields = run_stat_fields(s);
  size_t width = 0;
  for (const RunStatField& f : fields) width = std::max(width, std::string(f.name).size());
  width += 2;  // ':' plus at least one space
  for (const RunStatField& f : fields) {
    std::string label = std::string(f.name) + ':';
    label.resize(width, ' ');
    os << label << f.value << '\n';
  }
}

double median_of(int repeats, const std::function<double()>& fn) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int i = 0; i < std::max(repeats, 1); ++i) samples.push_back(fn());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace delirium::tools
