#include "src/tools/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace delirium::tools {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_sep = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::ms(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::ratio(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "x";
  return os.str();
}

std::string Table::count(uint64_t value) { return std::to_string(value); }

std::map<std::string, OpAggregate> aggregate_timings(const std::vector<NodeTiming>& timings) {
  std::map<std::string, OpAggregate> agg;
  for (const NodeTiming& t : timings) {
    OpAggregate& a = agg[t.label];
    if (a.invocations == 0) {
      a.min = a.max = t.duration;
    } else {
      a.min = std::min(a.min, t.duration);
      a.max = std::max(a.max, t.duration);
    }
    ++a.invocations;
    a.total += t.duration;
  }
  return agg;
}

void print_timing_trace(std::ostream& os, const std::vector<NodeTiming>& timings,
                        size_t limit) {
  size_t n = 0;
  for (const NodeTiming& t : timings) {
    os << "call of " << t.label << " took " << t.duration << '\n';
    if (limit > 0 && ++n >= limit) {
      os << "... (" << timings.size() - n << " more)\n";
      return;
    }
  }
}

void print_run_stats(std::ostream& os, const RunStats& s) {
  os << "activations_created:     " << s.activations_created << '\n'
     << "peak_live_activations:   " << s.peak_live_activations << '\n'
     << "nodes_executed:          " << s.nodes_executed << '\n'
     << "operator_invocations:    " << s.operator_invocations << '\n'
     << "operator_ticks:          " << s.operator_ticks << '\n'
     << "cow_copies:              " << s.cow_copies << '\n'
     << "cow_skipped:             " << s.cow_skipped << '\n'
     << "remote_block_moves:      " << s.remote_block_moves << '\n'
     << "sched_local_enqueues:    " << s.sched_local_enqueues << '\n'
     << "sched_injected_enqueues: " << s.sched_injected_enqueues << '\n'
     << "sched_steals:            " << s.sched_steals << '\n'
     << "sched_failed_steals:     " << s.sched_failed_steals << '\n'
     << "sched_parks:             " << s.sched_parks << '\n'
     << "sched_wakeups:           " << s.sched_wakeups << '\n'
     << "faults_raised:           " << s.faults_raised << '\n'
     << "faults_injected:         " << s.faults_injected << '\n'
     << "retries:                 " << s.retries << '\n'
     << "retries_exhausted:       " << s.retries_exhausted << '\n'
     << "items_purged:            " << s.items_purged << '\n'
     << "watchdog_fires:          " << s.watchdog_fires << '\n';
}

double median_of(int repeats, const std::function<double()>& fn) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int i = 0; i < std::max(repeats, 1); ++i) samples.push_back(fn());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace delirium::tools
