// Metrics export (docs/OBSERVABILITY.md): a MetricsRegistry snapshots
// RunStats plus per-operator duration histograms from node timings and
// serializes them as JSON or Prometheus text exposition format
// (delc --metrics FILE --metrics-format {json,prom}).
//
// Histograms use fixed log2 buckets, so percentile estimates are
// deterministic bucket upper bounds — the same durations always report
// the same p50/p99, which keeps the golden-file test stable.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/runtime.h"

namespace delirium::tools {

/// One RunStats counter, by name. run_stat_fields() is the single source
/// of truth for the counter schema: the --stats text dump, the metrics
/// JSON, and the Prometheus export all iterate this list, so the three
/// views can never drift apart.
struct RunStatField {
  const char* name;
  uint64_t value;
};

/// Every RunStats counter in the fixed report order.
std::vector<RunStatField> run_stat_fields(const RunStats& stats);

/// Fixed-bucket log2 histogram of nanosecond durations. Bucket i holds
/// values whose bit width is i, i.e. [2^(i-1), 2^i); percentiles report
/// the upper bound of the bucket containing the requested rank.
class LogHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void observe(int64_t value_ns);

  uint64_t count() const { return count_; }
  int64_t total() const { return total_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }

  /// Raw log2 bucket counts, for serialization (docs/PROFILING.md).
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Rebuild a histogram from previously serialized state, exactly: a
  /// restore followed by a re-serialize is byte-identical. `min`/`max`
  /// are the raw stored fields (returned only while count > 0).
  static LogHistogram restore(const std::array<uint64_t, kBuckets>& buckets,
                              uint64_t count, int64_t total, int64_t min, int64_t max);

  /// Deterministic percentile estimate: the upper bound of the log2
  /// bucket holding the value of rank ceil(p * count). p in [0, 1].
  int64_t percentile(double p) const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t total_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Aggregates one or more runs (RunStats + per-operator histograms from
/// the node-timing trace) and exports them. Counters sum across observed
/// runs; peak_live_activations keeps the maximum.
class MetricsRegistry {
 public:
  void observe_run(const RunStats& stats, const std::vector<NodeTiming>& timings);

  /// Fold in one InstanceManager session (docs/ROBUSTNESS.md "Isolation
  /// model"): the admission/outcome tallies plus a latency histogram
  /// built from the manager's raw per-instance latencies. Counters sum
  /// and `live` keeps the latest value across sessions. The instance
  /// section appears in the exports only once this has been called.
  void observe_instances(const InstanceCounters& counters,
                         const std::vector<int64_t>& latencies_ns);

  /// Deterministic JSON: {"runs": N, "stats": {...}, "operators": {...}}
  /// with operators sorted by name.
  void to_json(std::ostream& os) const;
  /// Prometheus text exposition format, metrics prefixed `delirium_`.
  void to_prometheus(std::ostream& os) const;

  /// Write in `format` ("json" or "prom"); false on I/O failure or an
  /// unknown format.
  bool write_file(const std::string& path, const std::string& format) const;

  uint64_t runs() const { return runs_; }
  const std::map<std::string, LogHistogram>& per_operator() const { return per_op_; }

 private:
  uint64_t runs_ = 0;
  RunStats totals_;
  std::map<std::string, LogHistogram> per_op_;
  bool instances_observed_ = false;
  InstanceCounters instance_totals_;
  LogHistogram instance_latency_;
};

}  // namespace delirium::tools
