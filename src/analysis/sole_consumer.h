// Sole-consumer analysis (the "delint" CoW pass).
//
// A block may be destructively modified only through its sole reference;
// otherwise the runtime pays a copy-on-write clone (§2.1). Both
// executors keep reference counts exact, so the clone fires exactly when
// a block is genuinely shared at mutation time. This pass classifies
// each value feeding a declared-destructive operator argument:
//
//   kUnique  — every other reference provably belongs to a consumer that
//              never reads the block (e.g. a pending call whose callee
//              parameter is dead). The runtime may mutate in place and
//              skip both the uniqueness test and the clone.
//   kShared  — the clone is guaranteed (the block is still referenced by
//              a consumer ordered after the mutation, or reaches the
//              same operator twice). Reported as a lint warning with the
//              source location.
//   kUnknown — no static verdict; runtime behavior is unchanged.
//
// Soundness rests on the embedding contract: operators do not retain
// hidden references to argument or result blocks beyond their
// invocation (see docs/ANALYSIS.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/graph/template.h"
#include "src/support/source.h"

namespace delirium {

struct GraphFacts;

/// One classified destructive use. kShared findings are lint warnings;
/// kUnique findings are informational (the elision is reported so tests
/// and `--lint` can see what the analysis proved).
struct LintFinding {
  uint32_t template_index = 0;
  uint32_t node = 0;
  uint16_t port = 0;
  ConsumeClass cls = ConsumeClass::kUnknown;
  std::string op_name;
  SourceRange range;
  std::string message;
};

struct SoleConsumerStats {
  size_t destructive_edges = 0;  // classified edges in total
  size_t unique_edges = 0;
  size_t shared_edges = 0;
  size_t unknown_edges = 0;
};

/// Classify every destructive edge of `program` and annotate operator
/// nodes' `input_classes` so the executors can take the in-place fast
/// path on kUnique edges. Appends kUnique/kShared findings to
/// `findings` when provided (kUnknown edges are silent). `facts`, when
/// provided, upgrades the pass interprocedurally: a kCall result whose
/// callee `returns_fresh` counts as uniquely held, and a value escaping
/// through a return keeps its classification when every call site and
/// closure-invocation site of the template provably never reads it.
SoleConsumerStats analyze_sole_consumers(CompiledProgram& program,
                                         const OperatorTable& operators,
                                         std::vector<LintFinding>* findings = nullptr,
                                         const GraphFacts* facts = nullptr);

// The JSON renderer for these findings lives with the other report
// emitters: tools::render_lint_json (src/tools/analysis_json.h).

}  // namespace delirium
