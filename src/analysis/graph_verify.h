// Coordination-graph verifier (the "delint" structural pass).
//
// `build_graphs` and `optimize_graphs` promise a restricted dataflow
// graph (§6): dense slot numbering, one producer per input port,
// acyclic intra-template data edges, priorities consistent with the
// recursion analysis, and operator applications consistent with the
// registry. This pass re-checks every promise on a CompiledProgram so
// graph-construction bugs surface as diagnostics instead of scheduler
// hangs or memory corruption at run time. compile() runs it
// automatically in debug builds; `delc --verify-graphs` runs it on
// demand.
#pragma once

#include <string>
#include <vector>

#include "src/graph/template.h"
#include "src/sema/env_analysis.h"

namespace delirium {

struct GraphFacts;

/// One structural defect found by the verifier.
struct VerifyIssue {
  uint32_t template_index = 0;
  /// Offending node, or kNoNode for template-level defects.
  uint32_t node = kNoNode;
  /// Human-readable description, already including template/node context.
  std::string message;

  static constexpr uint32_t kNoNode = 0xffffffffu;
};

/// Check every template of `program` against the structural invariants.
/// `analysis`, when provided, additionally cross-checks each named
/// template's `recursive` flag against the recursion analysis. `facts`,
/// when provided, promotes the engine's static strandedness facts
/// (src/analysis/facts.h) to diagnostics: templates that provably never
/// deliver and nodes whose inputs provably never arrive are reported at
/// compile time instead of surfacing as a runtime deadlock dump.
/// Returns all defects found (empty = well-formed).
std::vector<VerifyIssue> verify_graphs(const CompiledProgram& program,
                                       const OperatorTable& operators,
                                       const AnalysisResult* analysis = nullptr,
                                       const GraphFacts* facts = nullptr);

/// Join issue messages into one newline-separated report ("" when clean).
std::string verify_report(const std::vector<VerifyIssue>& issues);

}  // namespace delirium
