// GraphFacts: one whole-program dataflow fact table per CompiledProgram.
//
// §6.1 of the paper: "Unnecessary nodes in the graph translate into
// extra overhead at run-time." The passes that remove or exploit those
// nodes all need the same structural groundwork — producer maps, call
// sites, reachability across call/closure edges — so this engine
// computes it once, runs a small set of forward and backward fixpoint
// analyses over it, and publishes the results as one immutable
// `GraphFacts` value. Independent consumers read the table instead of
// re-deriving structure:
//
//   * graph_opt      — graph-level constant folding and dead-parameter
//                      pruning (rewrites driven by `constants` and
//                      `param_live`);
//   * graph_verify   — static strandedness: nodes whose inputs provably
//                      never arrive become compile-time diagnostics
//                      instead of a runtime deadlock dump;
//   * sole_consumer  — interprocedural upgrade: kUnknown destructive
//                      edges resolve across call boundaries using
//                      `returns_fresh` and `callers`;
//   * the executors  — `on_critical_path` marks feed the ready queues'
//                      critical-path sub-levels (static priority hints
//                      sharpening the paper's three-level heuristic);
//   * delc --analyze — human- and machine-readable report.
//
// Every analysis is *sound but incomplete*: a fact is only published
// when it holds on every execution of the program (under the embedding
// contract that operators honor their purity annotations), and the
// absence of a fact means "unknown", never "false". The soundness
// argument per analysis lives in docs/ANALYSIS.md.
//
// All tables are deterministic functions of (program, operator table):
// no iteration order over hash maps leaks into the results, so delc
// --analyze output is byte-stable across schedulers and worker counts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/template.h"
#include "src/sema/operator_table.h"

namespace delirium {

/// Which analyses to run. Structure (producers, call sites) is always
/// computed; everything else can be switched off individually for
/// ablation. compile_source() resolves the DELIRIUM_* kill switches
/// into these flags (see from_env).
struct FactsOptions {
  bool constants = true;      // interprocedural constant propagation
  bool liveness = true;       // observed-output / live-parameter marks
  bool strandedness = true;   // static never-delivers / never-fires facts
  bool heights = true;        // critical-path cost estimation
  bool fresh_returns = true;  // returns_fresh (sole_consumer interproc)

  /// Apply the per-analysis environment kill switches on top of the
  /// current values: DELIRIUM_FACTS_FOLD=0, DELIRIUM_FACTS_DEADPARAM=0,
  /// DELIRIUM_FACTS_STRAND=0, DELIRIUM_SCHED_HINTS=0 and
  /// DELIRIUM_FACTS_SOLE=0 each clear the analysis backing that
  /// consumer. When an analysis is off, its tables are filled with
  /// vacuous facts (nothing constant, everything live, everything
  /// delivering), so consumers need no separate gating.
  static FactsOptions from_env(FactsOptions base);
  static FactsOptions from_env() { return from_env(FactsOptions()); }
};

/// Master kill switch: DELIRIUM_GRAPH_FACTS=0 disables the engine and
/// every consumer (the compiler then never computes a fact table).
bool graph_facts_enabled();

/// One reference to a template: the (template, node) pair of a kCall or
/// kMakeClosure node targeting it.
struct TemplateRef {
  uint32_t tmpl = 0;
  uint32_t node = 0;
};

/// One statically-stranded location: a node whose inputs provably never
/// all arrive, or a template that provably never delivers its result.
struct StrandedFact {
  static constexpr uint32_t kNoNode = 0xffffffff;
  uint32_t tmpl = 0;
  uint32_t node = kNoNode;  // kNoNode: the template itself
  std::string reason;
};

/// The immutable whole-program fact table. Indexing: anything shaped
/// [t][n] is per template `t`, per node `n`; [t][i] over parameters is
/// per parameter position.
struct GraphFacts {
  // -- Structure (always present) -------------------------------------------

  /// producers[t][n][port] = node id producing input `port` of node `n`.
  std::vector<std::vector<std::vector<uint32_t>>> producers;
  /// Every kCall site targeting template t.
  std::vector<std::vector<TemplateRef>> callers;
  /// Every kMakeClosure site targeting template t.
  std::vector<std::vector<TemplateRef>> closure_sites;
  /// Template t is referenced only through kCall nodes — never by name
  /// (entry / run_function) and never through a closure — so its full
  /// set of invocations is statically known.
  std::vector<uint8_t> call_only;

  // -- Constant propagation --------------------------------------------------

  /// constants[t][n]: the value node n produces on *every* execution,
  /// when statically known. Scalars only (ConstValue's domain).
  std::vector<std::vector<std::optional<ConstValue>>> constants;
  /// param_constants[t][i]: every reaching argument is this constant.
  std::vector<std::vector<std::optional<ConstValue>>> param_constants;
  /// Template t is effect-free: its body (transitively, through kCall)
  /// contains only pure operators and plumbing, and no dynamic dispatch.
  /// A pure template whose result is constant may be folded whole.
  std::vector<uint8_t> pure_templates;

  // -- Liveness --------------------------------------------------------------

  /// observed[t][n]: node n is retained under interprocedural liveness —
  /// the mark phase of dead-node elimination, minus the "parameters are
  /// pinned" seed, refined so an argument edge into a call (or a capture
  /// edge into a closure) only keeps its producer alive when the callee
  /// parameter it feeds is itself observed. A kParam with observed ==
  /// false is a dead parameter, even when its only uses are loop-carried.
  std::vector<std::vector<uint8_t>> observed;
  /// param_live[t][i]: parameter i has at least one observing consumer.
  std::vector<std::vector<uint8_t>> param_live;

  // -- Strandedness ----------------------------------------------------------

  /// delivers[t]: template t provably delivers a result on every
  /// activation (all kCall nodes feeding its return bottom out). False
  /// means the return depends on an unconditional kCall cycle — every
  /// node fires exactly once per activation, so such recursion can
  /// never terminate and the result provably never arrives.
  std::vector<uint8_t> delivers;
  /// arrives[t][n]: node n's inputs all provably arrive (no diverging
  /// kCall in its backward slice). False nodes are statically stranded.
  std::vector<std::vector<uint8_t>> arrives;
  /// Deterministically ordered (template-major, then node id) list of
  /// stranded locations with human-readable reasons.
  std::vector<StrandedFact> stranded;

  // -- Critical path ---------------------------------------------------------

  /// height[t][n]: length (in node-firings, calls weighted by callee
  /// height) of the longest dependency chain from node n to the
  /// template's delivery. The executors' static priority hint.
  std::vector<std::vector<int64_t>> height;
  /// on_critical_path[t][n]: n lies on a maximal-height chain.
  std::vector<std::vector<uint8_t>> on_critical_path;
  /// template_height[t] = height of the return node's chain.
  std::vector<int64_t> template_height;

  // -- Sole-consumer support -------------------------------------------------

  /// returns_fresh[t]: the value template t delivers is freshly
  /// manufactured inside the activation and aliases nothing else —
  /// every link of the chain that builds it has a single consumer. A
  /// caller may treat the kCall result as uniquely held.
  std::vector<uint8_t> returns_fresh;

  const std::vector<uint32_t>& producers_of(uint32_t tmpl, uint32_t node) const {
    return producers[tmpl][node];
  }
  bool is_constant(uint32_t tmpl, uint32_t node) const {
    return constants[tmpl][node].has_value();
  }
};

/// Compute the fact table for `program`. Pure function of its inputs;
/// the program is not modified.
GraphFacts compute_graph_facts(const CompiledProgram& program,
                               const OperatorTable& operators,
                               const FactsOptions& options = FactsOptions());

/// Annotate every node's `on_critical_path` flag from the facts table
/// (the executors' static scheduling hint). Returns the number of nodes
/// marked. A no-op when the heights analysis was disabled.
size_t apply_sched_hints(CompiledProgram& program, const GraphFacts& facts);

/// Measured per-operator execution costs in nanoseconds, typically
/// distilled from a calibration profile (tools::to_cost_model,
/// docs/PROFILING.md). Operators absent from the map are charged
/// `default_cost_ns`; plumbing nodes always cost 1.
struct CostModel {
  std::map<std::string, int64_t> op_cost_ns;
  int64_t default_cost_ns = 1;

  int64_t cost_of(const std::string& op) const {
    const auto it = op_cost_ns.find(op);
    return it != op_cost_ns.end() ? it->second : default_cost_ns;
  }
};

/// Cost-weighted scheduling hints (feedback scheduling): rerun the
/// longest-path analysis with measured per-operator nanosecond costs
/// replacing unit heights, then re-stamp `Node::on_critical_path` and
/// set `Node::cost_hinted` on the marks. Criticality is filtered
/// interprocedurally from the entry down: a call-only template's nodes
/// are marked only when some critical call site actually reaches it, so
/// a cheap helper's local long chain no longer competes with the
/// measured long pole. Returns the number of nodes marked; a no-op
/// (existing marks untouched) when the heights analysis was disabled
/// (DELIRIUM_SCHED_HINTS=0). Deterministic function of
/// (program, facts, costs).
size_t apply_sched_hints(CompiledProgram& program, const GraphFacts& facts,
                         const CostModel& costs);

}  // namespace delirium
