#include "src/analysis/facts.h"

#include <algorithm>
#include <utility>

#include "src/support/env.h"

namespace delirium {

namespace {

/// The uniform kill-switch convention ("<VAR>=0" / "false" / "off",
/// anything else rejected with a diagnostic naming the variable) — the
/// shared parser in src/support/env.h, same as the runtime's
/// DELIRIUM_TRACE / DELIRIUM_ACTIVATION_POOL handling.
bool env_off(const char* name) { return !env_flag(name, true); }

/// Three-point lattice for constant propagation. Values only descend:
/// Top (no information yet) -> Const(v) -> Bottom (provably varying),
/// which bounds the interprocedural fixpoint.
struct ConstLattice {
  enum State : uint8_t { kTop, kConst, kBottom };
  State state = kTop;
  ConstValue value;

  static ConstLattice top() { return {}; }
  static ConstLattice bottom() { return {kBottom, {}}; }
  static ConstLattice of(ConstValue v) { return {kConst, std::move(v)}; }

  /// Lower `this` toward `other`; returns true when `this` changed.
  bool meet(const ConstLattice& other) {
    if (other.state == kTop || state == kBottom) return false;
    if (state == kTop) {
      *this = other;
      return true;
    }
    if (other.state == kBottom || !(other.value == value)) {
      *this = bottom();
      return true;
    }
    return false;
  }
};

class FactsEngine {
 public:
  FactsEngine(const CompiledProgram& program, const OperatorTable& operators,
              const FactsOptions& options)
      : program_(program), operators_(operators), options_(options) {}

  GraphFacts run() {
    build_structure();
    compute_delivery();
    compute_purity();
    compute_constants();
    compute_liveness();
    compute_heights();
    compute_fresh();
    return std::move(facts_);
  }

 private:
  uint32_t num_templates() const {
    return static_cast<uint32_t>(program_.templates.size());
  }
  const Template& tmpl(uint32_t t) const { return *program_.templates[t]; }
  uint32_t producer_of(uint32_t t, uint32_t node, uint16_t port) const {
    return facts_.producers[t][node][port];
  }

  // -- Structure ------------------------------------------------------------

  void build_structure() {
    const uint32_t nt = num_templates();
    facts_.producers.resize(nt);
    facts_.callers.resize(nt);
    facts_.closure_sites.resize(nt);
    facts_.call_only.assign(nt, 0);
    named_.assign(nt, 0);
    for (const auto& [name, index] : program_.by_name) {
      if (index < nt) named_[index] = 1;
    }
    if (program_.entry < nt) named_[program_.entry] = 1;

    for (uint32_t t = 0; t < nt; ++t) {
      const Template& tp = tmpl(t);
      const uint32_t n = static_cast<uint32_t>(tp.nodes.size());
      auto& prod = facts_.producers[t];
      prod.resize(n);
      for (uint32_t i = 0; i < n; ++i) prod[i].assign(tp.nodes[i].num_inputs, 0);
      for (uint32_t i = 0; i < n; ++i) {
        for (const PortRef& c : tp.nodes[i].consumers) {
          if (c.node < n && c.port < prod[c.node].size()) prod[c.node][c.port] = i;
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        const Node& node = tp.nodes[i];
        if (node.target_template >= nt) continue;
        if (node.kind == NodeKind::kCall) {
          facts_.callers[node.target_template].push_back(TemplateRef{t, i});
        } else if (node.kind == NodeKind::kMakeClosure) {
          facts_.closure_sites[node.target_template].push_back(TemplateRef{t, i});
        }
      }
    }
    for (uint32_t t = 0; t < nt; ++t) {
      facts_.call_only[t] = (!named_[t] && facts_.closure_sites[t].empty()) ? 1 : 0;
    }
  }

  // -- Delivery / strandedness ----------------------------------------------

  /// delivers[] is a least fixpoint: a template delivers only once every
  /// kCall in the backward slice of its return provably delivers. Every
  /// node fires exactly once per activation (§7), so a kCall cycle with
  /// no kIfDispatch in between is unconditional recursion — the result
  /// provably never arrives, with no false positives: conditional
  /// recursion always routes the back edge through a dispatch's branch
  /// closures, which the slice does not treat as calls.
  void compute_delivery() {
    const uint32_t nt = num_templates();
    facts_.delivers.assign(nt, 0);
    std::vector<std::vector<uint32_t>> slice_calls(nt);
    for (uint32_t t = 0; t < nt; ++t) {
      const Template& tp = tmpl(t);
      const uint32_t n = static_cast<uint32_t>(tp.nodes.size());
      if (tp.return_node >= n) continue;  // malformed: verifier reports it
      std::vector<uint8_t> in_slice(n, 0);
      std::vector<uint32_t> work{tp.return_node};
      in_slice[tp.return_node] = 1;
      while (!work.empty()) {
        const uint32_t i = work.back();
        work.pop_back();
        for (uint32_t q : facts_.producers[t][i]) {
          if (!in_slice[q]) {
            in_slice[q] = 1;
            work.push_back(q);
          }
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        if (in_slice[i] && tp.nodes[i].kind == NodeKind::kCall &&
            tp.nodes[i].target_template < nt) {
          slice_calls[t].push_back(tp.nodes[i].target_template);
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t t = 0; t < nt; ++t) {
        if (facts_.delivers[t]) continue;
        bool ok = true;
        for (uint32_t u : slice_calls[t]) ok = ok && facts_.delivers[u] != 0;
        if (ok) {
          facts_.delivers[t] = 1;
          changed = true;
        }
      }
    }

    facts_.arrives.resize(nt);
    for (uint32_t t = 0; t < nt; ++t) {
      facts_.arrives[t].assign(tmpl(t).nodes.size(), 1);
    }
    if (!options_.strandedness) {
      // Vacuous facts: no diagnostics, nothing stranded.
      facts_.delivers.assign(nt, 1);
      return;
    }
    for (uint32_t t = 0; t < nt; ++t) {
      const Template& tp = tmpl(t);
      const uint32_t n = static_cast<uint32_t>(tp.nodes.size());
      // Node ids are emitted producers-first, so ascending id order is a
      // topological order (the verifier rejects data-edge cycles).
      std::vector<uint8_t> avail(n, 1);
      for (uint32_t i = 0; i < n; ++i) {
        bool fires = true;
        for (uint32_t q : facts_.producers[t][i]) fires = fires && avail[q] != 0;
        facts_.arrives[t][i] = fires ? 1 : 0;
        const Node& node = tp.nodes[i];
        const bool produces = node.kind != NodeKind::kCall ||
                              node.target_template >= nt ||
                              facts_.delivers[node.target_template] != 0;
        avail[i] = (fires && produces) ? 1 : 0;
      }
      if (!facts_.delivers[t]) {
        facts_.stranded.push_back(StrandedFact{
            t, StrandedFact::kNoNode,
            "never delivers: every path to its result runs through an "
            "unconditional call cycle"});
      }
      for (uint32_t i = 0; i < n; ++i) {
        const Node& node = tp.nodes[i];
        if (node.kind == NodeKind::kCall && node.target_template < nt &&
            !facts_.delivers[node.target_template]) {
          facts_.stranded.push_back(StrandedFact{
              t, i,
              "calls '" + tmpl(node.target_template).name + "' (#" +
                  std::to_string(node.target_template) +
                  "), which never delivers; this call's result can never arrive"});
        }
      }
    }
  }

  // -- Purity ---------------------------------------------------------------

  /// Greatest fixpoint: a template is effect-free unless it contains an
  /// impure (or unknown) operator, dynamic dispatch, or a call to an
  /// impure template. Dynamic dispatch is conservatively impure — the
  /// callee is not statically evaluable anyway.
  void compute_purity() {
    const uint32_t nt = num_templates();
    facts_.pure_templates.assign(nt, 1);
    for (uint32_t t = 0; t < nt; ++t) {
      for (const Node& node : tmpl(t).nodes) {
        switch (node.kind) {
          case NodeKind::kOperator: {
            const OperatorInfo* info = operators_.lookup(node.op_name);
            if (info == nullptr || !info->pure) facts_.pure_templates[t] = 0;
            break;
          }
          case NodeKind::kCallClosure:
          case NodeKind::kIfDispatch:
          case NodeKind::kParMap:
            facts_.pure_templates[t] = 0;
            break;
          default:
            break;
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t t = 0; t < nt; ++t) {
        if (!facts_.pure_templates[t]) continue;
        for (const Node& node : tmpl(t).nodes) {
          if (node.kind == NodeKind::kCall && node.target_template < nt &&
              !facts_.pure_templates[node.target_template]) {
            facts_.pure_templates[t] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // -- Constant propagation -------------------------------------------------

  ConstLattice node_transfer(uint32_t t, uint32_t i) {
    const Template& tp = tmpl(t);
    const Node& node = tp.nodes[i];
    switch (node.kind) {
      case NodeKind::kConst:
        return ConstLattice::of(node.literal);
      case NodeKind::kParam:
        return node.param_index < param_lat_[t].size()
                   ? param_lat_[t][node.param_index]
                   : ConstLattice::bottom();
      case NodeKind::kOperator: {
        const OperatorInfo* info = operators_.lookup(node.op_name);
        if (info == nullptr || !info->pure || !info->fold) {
          return ConstLattice::bottom();
        }
        std::vector<ConstValue> args;
        args.reserve(node.num_inputs);
        for (uint16_t p = 0; p < node.num_inputs; ++p) {
          const ConstLattice& a = node_lat_[t][producer_of(t, i, p)];
          if (a.state == ConstLattice::kBottom) return ConstLattice::bottom();
          if (a.state == ConstLattice::kTop) return ConstLattice::top();
          args.push_back(a.value);
        }
        std::optional<ConstValue> folded = info->fold(args);
        return folded ? ConstLattice::of(std::move(*folded)) : ConstLattice::bottom();
      }
      case NodeKind::kCall: {
        // The fact "this call always produces v" is only meaningful when
        // the callee actually delivers (a diverging callee never
        // produces; publishing a constant would let folding turn a hang
        // into a value).
        const uint32_t u = node.target_template;
        if (u >= num_templates() || !facts_.delivers[u]) return ConstLattice::bottom();
        const Template& callee = tmpl(u);
        if (callee.return_node >= callee.nodes.size()) return ConstLattice::bottom();
        return node_lat_[u][callee.return_node];
      }
      case NodeKind::kReturn:
        return node.num_inputs >= 1 ? node_lat_[t][producer_of(t, i, 0)]
                                    : ConstLattice::bottom();
      default:
        // Tuples, closures, and dynamic dispatch are not scalar values.
        return ConstLattice::bottom();
    }
  }

  void compute_constants() {
    const uint32_t nt = num_templates();
    facts_.constants.resize(nt);
    facts_.param_constants.resize(nt);
    for (uint32_t t = 0; t < nt; ++t) {
      facts_.constants[t].assign(tmpl(t).nodes.size(), std::nullopt);
      facts_.param_constants[t].assign(tmpl(t).num_params, std::nullopt);
    }
    if (!options_.constants) return;

    node_lat_.resize(nt);
    param_lat_.resize(nt);
    for (uint32_t t = 0; t < nt; ++t) {
      node_lat_[t].assign(tmpl(t).nodes.size(), ConstLattice::top());
      // Named templates (and the entry) are callable through
      // run_function with arbitrary arguments.
      param_lat_[t].assign(tmpl(t).num_params, named_[t] ? ConstLattice::bottom()
                                                         : ConstLattice::top());
    }

    bool changed = true;
    while (changed) {
      changed = false;
      // Parameters: meet over every reaching argument.
      for (uint32_t t = 0; t < nt; ++t) {
        if (named_[t]) continue;
        const uint32_t ep = tmpl(t).explicit_params();
        for (const TemplateRef& site : facts_.callers[t]) {
          const Node& call = tmpl(site.tmpl).nodes[site.node];
          const uint16_t ports =
              std::min<size_t>(call.num_inputs, param_lat_[t].size());
          for (uint16_t p = 0; p < ports; ++p) {
            changed |= param_lat_[t][p].meet(
                node_lat_[site.tmpl][producer_of(site.tmpl, site.node, p)]);
          }
        }
        for (const TemplateRef& site : facts_.closure_sites[t]) {
          // Explicit parameters are filled at dynamic invocation sites.
          for (uint32_t p = 0; p < ep && p < param_lat_[t].size(); ++p) {
            changed |= param_lat_[t][p].meet(ConstLattice::bottom());
          }
          const Node& clo = tmpl(site.tmpl).nodes[site.node];
          for (uint16_t j = 0; j < clo.num_inputs; ++j) {
            const uint32_t idx = ep + j;
            if (idx >= param_lat_[t].size()) break;
            changed |= param_lat_[t][idx].meet(
                node_lat_[site.tmpl][producer_of(site.tmpl, site.node, j)]);
          }
        }
      }
      // Nodes, producers-first within each template.
      for (uint32_t t = 0; t < nt; ++t) {
        const uint32_t n = static_cast<uint32_t>(tmpl(t).nodes.size());
        for (uint32_t i = 0; i < n; ++i) {
          changed |= node_lat_[t][i].meet(node_transfer(t, i));
        }
      }
    }

    for (uint32_t t = 0; t < nt; ++t) {
      for (uint32_t i = 0; i < node_lat_[t].size(); ++i) {
        if (node_lat_[t][i].state == ConstLattice::kConst) {
          facts_.constants[t][i] = node_lat_[t][i].value;
        }
      }
      for (uint32_t i = 0; i < param_lat_[t].size(); ++i) {
        if (param_lat_[t][i].state == ConstLattice::kConst) {
          facts_.param_constants[t][i] = param_lat_[t][i].value;
        }
      }
    }
  }

  // -- Liveness -------------------------------------------------------------

  /// Ascending interprocedural mark. Seeds are the nodes the optimizer
  /// can never remove (returns, calls, dispatches, impure operators) —
  /// everything the DCE's always_needed keeps except parameters, which
  /// is exactly what makes an unmarked parameter a dead parameter. The
  /// refinement over plain DCE marking: an argument edge into a kCall or
  /// a capture edge into a kMakeClosure only marks its producer when the
  /// corresponding callee parameter is itself observed, so arguments
  /// feeding dead parameters (including loop-carried ones) stay dead.
  void compute_liveness() {
    const uint32_t nt = num_templates();
    facts_.observed.resize(nt);
    facts_.param_live.resize(nt);
    if (!options_.liveness) {
      for (uint32_t t = 0; t < nt; ++t) {
        facts_.observed[t].assign(tmpl(t).nodes.size(), 1);
        facts_.param_live[t].assign(tmpl(t).num_params, 1);
      }
      return;
    }
    for (uint32_t t = 0; t < nt; ++t) {
      facts_.observed[t].assign(tmpl(t).nodes.size(), 0);
    }

    std::vector<std::pair<uint32_t, uint32_t>> work;
    auto mark = [&](uint32_t t, uint32_t i) {
      if (t < nt && i < facts_.observed[t].size() && !facts_.observed[t][i]) {
        facts_.observed[t][i] = 1;
        work.emplace_back(t, i);
      }
    };

    for (uint32_t t = 0; t < nt; ++t) {
      const Template& tp = tmpl(t);
      for (uint32_t i = 0; i < tp.nodes.size(); ++i) {
        const Node& node = tp.nodes[i];
        switch (node.kind) {
          case NodeKind::kReturn:
          case NodeKind::kCall:
          case NodeKind::kCallClosure:
          case NodeKind::kIfDispatch:
          case NodeKind::kParMap:
            mark(t, i);
            break;
          case NodeKind::kOperator: {
            const OperatorInfo* info = operators_.lookup(node.op_name);
            if (info == nullptr || !info->pure) mark(t, i);
            break;
          }
          default:
            break;
        }
      }
    }

    while (!work.empty()) {
      const auto [t, i] = work.back();
      work.pop_back();
      const Template& tp = tmpl(t);
      const Node& node = tp.nodes[i];
      if (node.kind == NodeKind::kCall && node.target_template < nt) {
        const Template& callee = tmpl(node.target_template);
        for (uint16_t p = 0; p < node.num_inputs; ++p) {
          if (p < callee.param_nodes.size()) {
            if (facts_.observed[node.target_template][callee.param_nodes[p]]) {
              mark(t, producer_of(t, i, p));
            }
          } else {
            mark(t, producer_of(t, i, p));  // arity defect: stay conservative
          }
        }
      } else if (node.kind == NodeKind::kMakeClosure && node.target_template < nt) {
        const Template& callee = tmpl(node.target_template);
        const uint32_t ep = callee.explicit_params();
        for (uint16_t j = 0; j < node.num_inputs; ++j) {
          const uint32_t idx = ep + j;
          if (idx < callee.param_nodes.size()) {
            if (facts_.observed[node.target_template][callee.param_nodes[idx]]) {
              mark(t, producer_of(t, i, j));
            }
          } else {
            mark(t, producer_of(t, i, j));
          }
        }
      } else {
        for (uint16_t p = 0; p < node.num_inputs; ++p) mark(t, producer_of(t, i, p));
      }
      if (node.kind == NodeKind::kParam) {
        // A parameter just became live: argument edges at every site that
        // was processed before this point must be re-examined.
        const uint32_t idx = node.param_index;
        for (const TemplateRef& site : facts_.callers[t]) {
          const Node& call = tmpl(site.tmpl).nodes[site.node];
          if (facts_.observed[site.tmpl][site.node] && idx < call.num_inputs) {
            mark(site.tmpl, producer_of(site.tmpl, site.node, idx));
          }
        }
        const uint32_t ep = tp.explicit_params();
        for (const TemplateRef& site : facts_.closure_sites[t]) {
          const Node& clo = tmpl(site.tmpl).nodes[site.node];
          if (facts_.observed[site.tmpl][site.node] && idx >= ep &&
              idx - ep < clo.num_inputs) {
            mark(site.tmpl, producer_of(site.tmpl, site.node, idx - ep));
          }
        }
      }
    }

    for (uint32_t t = 0; t < nt; ++t) {
      const Template& tp = tmpl(t);
      facts_.param_live[t].assign(tp.num_params, 1);
      for (uint32_t i = 0; i < tp.param_nodes.size() && i < tp.num_params; ++i) {
        const uint32_t p = tp.param_nodes[i];
        if (p < facts_.observed[t].size()) {
          facts_.param_live[t][i] = facts_.observed[t][p];
        }
      }
    }
  }

  // -- Critical-path heights ------------------------------------------------

  /// Unit-cost longest paths to delivery; a kCall is weighted by its
  /// callee's height. Templates are processed callees-first (iterative
  /// DFS post-order over the call graph); a back edge on a call cycle
  /// contributes the callee's not-yet-final height — a sound lower bound
  /// that keeps the estimate finite for recursive programs.
  void compute_heights() {
    const uint32_t nt = num_templates();
    facts_.height.resize(nt);
    facts_.on_critical_path.resize(nt);
    facts_.template_height.assign(nt, 0);
    for (uint32_t t = 0; t < nt; ++t) {
      facts_.height[t].assign(tmpl(t).nodes.size(), 0);
      facts_.on_critical_path[t].assign(tmpl(t).nodes.size(), 0);
    }
    if (!options_.heights) return;

    // Post-order over kCall edges.
    std::vector<uint32_t> postorder;
    postorder.reserve(nt);
    std::vector<uint8_t> state(nt, 0);  // 0 new, 1 open, 2 done
    for (uint32_t root = 0; root < nt; ++root) {
      if (state[root] != 0) continue;
      std::vector<std::pair<uint32_t, uint32_t>> stack{{root, 0}};
      state[root] = 1;
      while (!stack.empty()) {
        auto& [t, next] = stack.back();
        const Template& tp = tmpl(t);
        bool descended = false;
        while (next < tp.nodes.size()) {
          const Node& node = tp.nodes[next];
          ++next;
          if (node.kind == NodeKind::kCall && node.target_template < nt &&
              state[node.target_template] == 0) {
            state[node.target_template] = 1;
            stack.emplace_back(node.target_template, 0);
            descended = true;
            break;
          }
        }
        if (descended) continue;
        state[t] = 2;
        postorder.push_back(t);
        stack.pop_back();
      }
    }

    for (uint32_t t : postorder) {
      const Template& tp = tmpl(t);
      const uint32_t n = static_cast<uint32_t>(tp.nodes.size());
      auto cost = [&](uint32_t i) -> int64_t {
        const Node& node = tp.nodes[i];
        if (node.kind == NodeKind::kCall && node.target_template < nt) {
          return 1 + facts_.template_height[node.target_template];
        }
        // A fused chain fires once but runs every member.
        if (node.kind == NodeKind::kFused) {
          return static_cast<int64_t>(node.fused.size());
        }
        return 1;
      };
      auto& h = facts_.height[t];
      int64_t best = 0;
      for (uint32_t i = n; i-- > 0;) {  // consumers have larger ids
        int64_t tail = 0;
        for (const PortRef& c : tp.nodes[i].consumers) {
          if (c.node < n) tail = std::max(tail, h[c.node]);
        }
        h[i] = cost(i) + tail;
        best = std::max(best, h[i]);
      }
      facts_.template_height[t] = best;
      // d[i]: longest chain from a root down to (excluding) node i. A
      // node is critical iff some maximal chain runs through it.
      std::vector<int64_t> d(n, 0);
      for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t q : facts_.producers[t][i]) {
          d[i] = std::max(d[i], d[q] + cost(q));
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        facts_.on_critical_path[t][i] = (d[i] + h[i] == best) ? 1 : 0;
      }
    }
  }

  // -- Fresh returns --------------------------------------------------------

  /// A link of the chain building the returned value: its producer must
  /// be exclusively consumed here (one consumer edge in total) or the
  /// block could be referenced elsewhere when the caller mutates it.
  bool chain_fresh(uint32_t t, uint32_t i, const std::vector<uint8_t>& fresh) const {
    const uint32_t nt = num_templates();
    const Template& tp = tmpl(t);
    const Node& node = tp.nodes[i];
    switch (node.kind) {
      case NodeKind::kConst:
        return true;  // literals are manufactured per activation
      case NodeKind::kOperator:
      case NodeKind::kFused: {
        // An operator may pass any argument through (`ctx.take` style),
        // so every input must itself be fresh and exclusively ours. A
        // fused chain is a composition of such operators, so the same
        // rule applies to its external inputs.
        for (uint16_t p = 0; p < node.num_inputs; ++p) {
          const uint32_t q = producer_of(t, i, p);
          if (tp.nodes[q].consumers.size() != 1) return false;
          if (!chain_fresh(t, q, fresh)) return false;
        }
        return true;
      }
      case NodeKind::kCall:
        return node.target_template < nt && fresh[node.target_template] != 0;
      case NodeKind::kCallClosure: {
        if (node.num_inputs < 1) return false;
        const Node& fn = tp.nodes[producer_of(t, i, 0)];
        return fn.kind == NodeKind::kMakeClosure && fn.target_template < nt &&
               fresh[fn.target_template] != 0;
      }
      case NodeKind::kIfDispatch: {
        if (node.num_inputs < 3) return false;
        for (uint16_t p = 1; p <= 2; ++p) {
          const Node& fn = tp.nodes[producer_of(t, i, p)];
          if (fn.kind != NodeKind::kMakeClosure || fn.target_template >= nt ||
              !fresh[fn.target_template]) {
            return false;
          }
        }
        return true;
      }
      default:
        // Parameters and tuple plumbing alias caller-visible storage.
        return false;
    }
  }

  /// Greatest fixpoint (freshness of mutually tail-recursive templates
  /// depends on each other; starting true and lowering is sound — any
  /// actual alias lowers the flag on its own merits).
  void compute_fresh() {
    const uint32_t nt = num_templates();
    facts_.returns_fresh.assign(nt, 0);
    if (!options_.fresh_returns) return;
    std::vector<uint8_t> fresh(nt, 1);
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t t = 0; t < nt; ++t) {
        if (!fresh[t]) continue;
        const Template& tp = tmpl(t);
        bool ok = tp.return_node < tp.nodes.size() &&
                  tp.nodes[tp.return_node].num_inputs >= 1;
        if (ok) {
          const uint32_t r = producer_of(t, tp.return_node, 0);
          ok = tp.nodes[r].consumers.size() == 1 && chain_fresh(t, r, fresh);
        }
        if (!ok) {
          fresh[t] = 0;
          changed = true;
        }
      }
    }
    facts_.returns_fresh = std::move(fresh);
  }

  const CompiledProgram& program_;
  const OperatorTable& operators_;
  const FactsOptions& options_;
  GraphFacts facts_;
  std::vector<uint8_t> named_;
  std::vector<std::vector<ConstLattice>> node_lat_;
  std::vector<std::vector<ConstLattice>> param_lat_;
};

}  // namespace

FactsOptions FactsOptions::from_env(FactsOptions base) {
  if (env_off("DELIRIUM_FACTS_FOLD")) base.constants = false;
  if (env_off("DELIRIUM_FACTS_DEADPARAM")) base.liveness = false;
  if (env_off("DELIRIUM_FACTS_STRAND")) base.strandedness = false;
  if (env_off("DELIRIUM_SCHED_HINTS")) base.heights = false;
  if (env_off("DELIRIUM_FACTS_SOLE")) base.fresh_returns = false;
  return base;
}

bool graph_facts_enabled() { return !env_off("DELIRIUM_GRAPH_FACTS"); }

GraphFacts compute_graph_facts(const CompiledProgram& program,
                               const OperatorTable& operators,
                               const FactsOptions& options) {
  return FactsEngine(program, operators, options).run();
}

size_t apply_sched_hints(CompiledProgram& program, const GraphFacts& facts) {
  size_t marked = 0;
  for (uint32_t t = 0; t < program.templates.size() && t < facts.on_critical_path.size();
       ++t) {
    Template& tp = *program.templates[t];
    const auto& flags = facts.on_critical_path[t];
    for (uint32_t i = 0; i < tp.nodes.size(); ++i) {
      const bool critical = i < flags.size() && flags[i] != 0;
      tp.nodes[i].on_critical_path = critical;
      marked += critical ? 1 : 0;
    }
  }
  return marked;
}

size_t apply_sched_hints(CompiledProgram& program, const GraphFacts& facts,
                         const CostModel& costs) {
  const uint32_t nt = static_cast<uint32_t>(program.templates.size());
  if (facts.producers.size() < nt || facts.template_height.size() < nt) return 0;
  // The compile-side kill switch (DELIRIUM_SCHED_HINTS=0) skips the
  // heights analysis, leaving every template height at zero; honor it
  // here too so one switch disables both hint flavors.
  bool heights_ran = false;
  for (uint32_t t = 0; t < nt; ++t) heights_ran = heights_ran || facts.template_height[t] > 0;
  if (!heights_ran) return 0;

  // Callees-first postorder over kCall edges, as in the unit-height
  // analysis; a back edge on a call cycle contributes the callee's
  // not-yet-final height (sound lower bound, finite for recursion).
  std::vector<uint32_t> postorder;
  postorder.reserve(nt);
  {
    std::vector<uint8_t> state(nt, 0);  // 0 new, 1 open, 2 done
    for (uint32_t root = 0; root < nt; ++root) {
      if (state[root] != 0) continue;
      std::vector<std::pair<uint32_t, uint32_t>> stack{{root, 0}};
      state[root] = 1;
      while (!stack.empty()) {
        auto& [t, next] = stack.back();
        const Template& tp = *program.templates[t];
        bool descended = false;
        while (next < tp.nodes.size()) {
          const Node& node = tp.nodes[next];
          ++next;
          if (node.kind == NodeKind::kCall && node.target_template < nt &&
              state[node.target_template] == 0) {
            state[node.target_template] = 1;
            stack.emplace_back(node.target_template, 0);
            descended = true;
            break;
          }
        }
        if (descended) continue;
        state[t] = 2;
        postorder.push_back(t);
        stack.pop_back();
      }
    }
  }

  // Cost-weighted longest paths to delivery, per template.
  std::vector<int64_t> cost_height(nt, 0);
  std::vector<std::vector<uint8_t>> crit(nt);
  for (uint32_t t : postorder) {
    const Template& tp = *program.templates[t];
    const uint32_t n = static_cast<uint32_t>(tp.nodes.size());
    auto cost = [&](uint32_t i) -> int64_t {
      const Node& node = tp.nodes[i];
      switch (node.kind) {
        case NodeKind::kOperator:
          return std::max<int64_t>(1, costs.cost_of(node.op_name));
        case NodeKind::kFused: {
          int64_t sum = 0;
          for (const auto& m : node.fused) sum += std::max<int64_t>(1, costs.cost_of(m.op_name));
          return std::max<int64_t>(1, sum);
        }
        case NodeKind::kCall:
          if (node.target_template < nt) return 1 + cost_height[node.target_template];
          return 1;
        default:
          return 1;  // plumbing: dispatch overhead only
      }
    };
    std::vector<int64_t> h(n, 0);
    int64_t best = 0;
    for (uint32_t i = n; i-- > 0;) {  // consumers have larger ids
      int64_t tail = 0;
      for (const PortRef& c : tp.nodes[i].consumers) {
        if (c.node < n) tail = std::max(tail, h[c.node]);
      }
      h[i] = cost(i) + tail;
      best = std::max(best, h[i]);
    }
    cost_height[t] = best;
    std::vector<int64_t> d(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t q : facts.producers[t][i]) {
        d[i] = std::max(d[i], d[q] + cost(q));
      }
    }
    crit[t].assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
      crit[t][i] = (d[i] + h[i] == best) ? 1 : 0;
    }
  }

  // Entry-down filter: a call-only template keeps its marks only when a
  // critical call site in a critical template reaches it. Templates
  // reachable by name or through closures keep theirs unconditionally
  // (their invocation sites are not statically known).
  std::vector<uint8_t> critical_tmpl(nt, 0);
  for (uint32_t t = 0; t < nt; ++t) {
    if (t >= facts.call_only.size() || !facts.call_only[t]) critical_tmpl[t] = 1;
  }
  critical_tmpl[program.entry] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t t = 0; t < nt; ++t) {
      if (critical_tmpl[t] || t >= facts.callers.size()) continue;
      for (const TemplateRef& site : facts.callers[t]) {
        if (site.tmpl < nt && critical_tmpl[site.tmpl] &&
            site.node < crit[site.tmpl].size() && crit[site.tmpl][site.node]) {
          critical_tmpl[t] = 1;
          changed = true;
          break;
        }
      }
    }
  }

  size_t marked = 0;
  for (uint32_t t = 0; t < nt; ++t) {
    Template& tp = *program.templates[t];
    for (uint32_t i = 0; i < tp.nodes.size(); ++i) {
      const bool critical = critical_tmpl[t] && i < crit[t].size() && crit[t][i] != 0;
      tp.nodes[i].on_critical_path = critical;
      tp.nodes[i].cost_hinted = critical;
      marked += critical ? 1 : 0;
    }
  }
  return marked;
}

}  // namespace delirium
