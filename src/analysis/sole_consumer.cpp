#include "src/analysis/sole_consumer.h"

#include <cstdint>
#include <unordered_set>

#include "src/analysis/facts.h"

namespace delirium {

namespace {

/// How a block value is currently wrapped while we chase its references:
/// element `index` of a package, or capture `index` of a closure over
/// template `target`. The wrap stack lets the chase stay precise through
/// tuple-make/tuple-get and make-closure/invoke pairs.
struct Wrap {
  enum Kind : uint8_t { kTuple, kClosure } kind;
  uint32_t index;
  uint32_t target;  // kClosure: the closure's template
};

constexpr size_t kMaxWrapDepth = 16;

class Analyzer {
 public:
  Analyzer(CompiledProgram& program, const OperatorTable& operators, const GraphFacts* facts)
      : program_(program), operators_(operators), facts_(facts) {
    named_.assign(program.templates.size(), 0);
    for (const auto& [name, index] : program.by_name) {
      if (index < named_.size()) named_[index] = 1;
    }
    if (program.entry < named_.size()) named_[program.entry] = 1;
    producers_.resize(program.templates.size());
    for (uint32_t ti = 0; ti < program.templates.size(); ++ti) {
      const Template& t = *program.templates[ti];
      auto& prod = producers_[ti];
      prod.resize(t.nodes.size());
      for (uint32_t i = 0; i < t.nodes.size(); ++i) {
        prod[i].assign(t.nodes[i].num_inputs, 0);
      }
      for (uint32_t i = 0; i < t.nodes.size(); ++i) {
        for (const PortRef& c : t.nodes[i].consumers) {
          if (c.node < prod.size() && c.port < prod[c.node].size()) prod[c.node][c.port] = i;
        }
      }
    }
  }

  SoleConsumerStats run(std::vector<LintFinding>* findings) {
    SoleConsumerStats stats;
    for (uint32_t ti = 0; ti < program_.templates.size(); ++ti) {
      Template& t = *program_.templates[ti];
      for (uint32_t d = 0; d < t.nodes.size(); ++d) {
        Node& node = t.nodes[d];
        if (node.kind != NodeKind::kOperator) continue;
        const OperatorInfo* info = operators_.lookup(node.op_name);
        if (info == nullptr || !info->any_destructive()) continue;
        node.input_classes.assign(node.num_inputs, ConsumeClass::kUnknown);
        for (uint16_t port = 0; port < node.num_inputs; ++port) {
          if (!info->is_destructive(port)) continue;
          ++stats.destructive_edges;
          std::string reason;
          const ConsumeClass cls = classify(ti, d, port, &reason);
          node.input_classes[port] = cls;
          switch (cls) {
            case ConsumeClass::kUnique: ++stats.unique_edges; break;
            case ConsumeClass::kShared: ++stats.shared_edges; break;
            case ConsumeClass::kUnknown: ++stats.unknown_edges; break;
          }
          if (findings == nullptr || cls == ConsumeClass::kUnknown) continue;
          LintFinding f;
          f.template_index = ti;
          f.node = d;
          f.port = port;
          f.cls = cls;
          f.op_name = node.op_name;
          f.range = node.range;
          if (cls == ConsumeClass::kShared) {
            f.message = "destructive use of shared block — guaranteed CoW copy: operator '" +
                        node.op_name + "' argument " + std::to_string(port) + " (" + reason + ")";
          } else {
            f.message = "destructive use is provably unique: operator '" + node.op_name +
                        "' argument " + std::to_string(port) +
                        " mutates in place (clone elided)";
          }
          findings->push_back(std::move(f));
        }
      }
    }
    return stats;
  }

 private:
  /// Classify the value arriving on destructive input `port` of operator
  /// node `d` in template `ti`.
  ///
  /// kUnique is decided first: a reference count above one is irrelevant
  /// when every other reference provably never reads the block — that is
  /// precisely the case where the runtime's clone is wasted and the fast
  /// path pays off. Only a use that is NOT unique can be a guaranteed
  /// (and necessary) copy worth a lint warning.
  ConsumeClass classify(uint32_t ti, uint32_t d, uint16_t port, std::string* reason) {
    const Template& t = *program_.templates[ti];
    const uint32_t p = producers_[ti][d][port];
    const Node& producer = t.nodes[p];

    bool unique = uniquely_held(ti, p);
    if (unique) {
      bool skipped_own = false;
      for (const PortRef& c : producer.consumers) {
        if (!skipped_own && c.node == d && c.port == port) {
          skipped_own = true;
          continue;
        }
        if (!never_reads(ti, c.node, c.port, {})) {
          unique = false;
          break;
        }
      }
    }
    if (unique) return ConsumeClass::kUnique;

    // (a) Guaranteed copy: the block reaches the mutating operator at
    // more than one argument — the argument array itself holds two
    // references when the operator fires.
    size_t edges_into_d = 0;
    for (const PortRef& c : producer.consumers) {
      if (c.node == d) ++edges_into_d;
    }
    if (edges_into_d > 1) {
      *reason = "the value reaches '" + t.nodes[d].op_name + "' at " +
                std::to_string(edges_into_d) + " arguments";
      return ConsumeClass::kShared;
    }

    // (b) Guaranteed copy: several destructive consumers. Whichever
    // fires first still sees the other's pending reference.
    size_t destructive_edges = 0;
    for (const PortRef& c : producer.consumers) {
      const Node& consumer = t.nodes[c.node];
      if (consumer.kind != NodeKind::kOperator) continue;
      const OperatorInfo* info = operators_.lookup(consumer.op_name);
      if (info != nullptr && info->is_destructive(c.port)) ++destructive_edges;
    }
    if (destructive_edges > 1) {
      *reason = "the value feeds " + std::to_string(destructive_edges) +
                " destructive arguments; at least one copy is unavoidable";
      return ConsumeClass::kShared;
    }

    // (c) Guaranteed copy: a reading consumer ordered after the mutation.
    // Data is delivered to every consumer slot when the producer fires,
    // so a consumer that (transitively) needs our operator's result still
    // holds its reference when the operator runs.
    std::unordered_set<uint32_t> downstream = reachable_from(t, d);
    for (const PortRef& c : producer.consumers) {
      if (c.node == d) continue;
      if (downstream.count(c.node) > 0 && !never_reads(ti, c.node, c.port, {})) {
        *reason = "node #" + std::to_string(c.node) +
                  (t.nodes[c.node].debug_label.empty() ? ""
                                                       : " [" + t.nodes[c.node].debug_label + "]") +
                  " still references the value after the mutation";
        return ConsumeClass::kShared;
      }
    }
    return ConsumeClass::kUnknown;
  }

  /// Nodes (transitively) consuming `start`'s output, within one template.
  std::unordered_set<uint32_t> reachable_from(const Template& t, uint32_t start) {
    std::unordered_set<uint32_t> seen;
    std::vector<uint32_t> work{start};
    while (!work.empty()) {
      const uint32_t i = work.back();
      work.pop_back();
      for (const PortRef& c : t.nodes[i].consumers) {
        if (seen.insert(c.node).second) work.push_back(c.node);
      }
    }
    return seen;
  }

  /// Does the consumer at (`node`, `port`) in template `ti` — receiving
  /// our block wrapped as described by `wraps` — ever read the block's
  /// contents or pass it somewhere that might? Coinductive on cycles:
  /// an in-progress query is assumed true, which is sound because any
  /// actual read on the cycle answers false on its own merits.
  bool never_reads(uint32_t ti, uint32_t node, uint16_t port, std::vector<Wrap> wraps) {
    if (wraps.size() > kMaxWrapDepth) return false;
    const std::string key = encode_key(ti, node, port, wraps);
    if (!in_progress_.insert(key).second) return true;
    const bool result = never_reads_impl(ti, node, port, std::move(wraps));
    in_progress_.erase(key);
    return result;
  }

  bool never_reads_impl(uint32_t ti, uint32_t node, uint16_t port, std::vector<Wrap> wraps) {
    const Template& t = *program_.templates[ti];
    const Node& n = t.nodes[node];
    switch (n.kind) {
      case NodeKind::kConst:
      case NodeKind::kParam:
        return false;  // malformed graph; be conservative
      case NodeKind::kReturn:
        // The value escapes to the caller / continuation. With the facts
        // tables the full site set of an anonymous template is static,
        // so the chase continues in every caller.
        return return_never_read(ti, wraps);
      case NodeKind::kOperator:
      case NodeKind::kFused:
        // Operators may read (or pass through) any argument, wrapped or not.
        return false;
      case NodeKind::kTupleMake:
        wraps.push_back(Wrap{Wrap::kTuple, port, 0});
        return consumers_never_read(ti, node, wraps);
      case NodeKind::kTupleGet: {
        if (wraps.empty() || wraps.back().kind != Wrap::kTuple) return false;
        if (n.tuple_index != wraps.back().index) return true;  // other element: ref dropped
        wraps.pop_back();
        return consumers_never_read(ti, node, wraps);
      }
      case NodeKind::kMakeClosure:
        wraps.push_back(Wrap{Wrap::kClosure, port, n.target_template});
        return consumers_never_read(ti, node, wraps);
      case NodeKind::kCall: {
        const Template& callee = *program_.templates[n.target_template];
        if (port >= callee.param_nodes.size()) return false;
        return param_never_reads(n.target_template, callee.param_nodes[port], wraps);
      }
      case NodeKind::kCallClosure: {
        if (port != 0) return false;  // argument to a statically-unknown callee
        return invoke_never_reads(wraps);
      }
      case NodeKind::kIfDispatch: {
        if (port == 0) return false;  // condition
        return invoke_never_reads(wraps);
      }
      case NodeKind::kParMap: {
        if (port == 0) return invoke_never_reads(wraps);
        // The package input: every element is handed to the function
        // closure's explicit parameter. Precise only when the function is
        // a make-closure in the same template.
        if (wraps.empty() || wraps.back().kind != Wrap::kTuple) return false;
        const uint32_t fn = producers_[ti][node][0];
        const Node& fn_node = t.nodes[fn];
        if (fn_node.kind != NodeKind::kMakeClosure) return false;
        const Template& callee = *program_.templates[fn_node.target_template];
        if (callee.explicit_params() != 1 || callee.param_nodes.empty()) return false;
        wraps.pop_back();
        return param_never_reads(fn_node.target_template, callee.param_nodes[0], wraps);
      }
    }
    return false;
  }

  /// The wrapped closure is being invoked: the capture lands on the
  /// closure template's trailing parameter row.
  bool invoke_never_reads(std::vector<Wrap>& wraps) {
    if (wraps.empty() || wraps.back().kind != Wrap::kClosure) return false;
    const Wrap top = wraps.back();
    const Template& callee = *program_.templates[top.target];
    const uint32_t param = callee.explicit_params() + top.index;
    if (param >= callee.param_nodes.size()) return false;
    wraps.pop_back();
    return param_never_reads(top.target, callee.param_nodes[param], wraps);
  }

  bool param_never_reads(uint32_t ti, uint32_t param_node, const std::vector<Wrap>& wraps) {
    return consumers_never_read(ti, param_node, wraps);
  }

  /// The block escapes through template `ti`'s return. Interprocedural
  /// continuation of the chase (facts engine, src/analysis/facts.h): an
  /// anonymous template's deliveries land at statically-known places —
  /// each kCall site's consumers, and each closure-invocation node's
  /// consumers when every use of the closure value is an invocation.
  /// Named templates stay conservative: run_function can observe them.
  bool return_never_read(uint32_t ti, const std::vector<Wrap>& wraps) {
    if (facts_ == nullptr || ti >= named_.size() || named_[ti]) return false;
    for (const TemplateRef& site : facts_->callers[ti]) {
      if (!consumers_never_read(site.tmpl, site.node, wraps)) return false;
    }
    for (const TemplateRef& site : facts_->closure_sites[ti]) {
      const Template& host = *program_.templates[site.tmpl];
      for (const PortRef& use : host.nodes[site.node].consumers) {
        const Node& user = host.nodes[use.node];
        const bool invoking =
            (user.kind == NodeKind::kCallClosure && use.port == 0) ||
            (user.kind == NodeKind::kIfDispatch && use.port != 0);
        // Anything else (kParMap wraps results in a fresh package with
        // an element index we cannot track; operators, tuples, returns
        // let the closure escape) ends the chase conservatively.
        if (!invoking) return false;
        if (!consumers_never_read(site.tmpl, use.node, wraps)) return false;
      }
    }
    return true;
  }

  bool consumers_never_read(uint32_t ti, uint32_t node, const std::vector<Wrap>& wraps) {
    for (const PortRef& c : program_.templates[ti]->nodes[node].consumers) {
      if (!never_reads(ti, c.node, c.port, wraps)) return false;
    }
    return true;
  }

  /// Can node `p` have leaked an alias of its output block? Constants
  /// cannot; operators cannot unless an *input* block escaped to another
  /// reader (operators may pass any argument through, `ctx.take(0)`
  /// style, so each input must itself be uniquely held and otherwise
  /// unread). Parameters and call results are conservatively shared.
  bool uniquely_held(uint32_t ti, uint32_t p) {
    const Template& t = *program_.templates[ti];
    const Node& n = t.nodes[p];
    switch (n.kind) {
      case NodeKind::kConst:
        return true;  // literals are freshly built per activation
      case NodeKind::kOperator:
      case NodeKind::kFused: {
        // A fused chain is a composition of pure operators, so the same
        // pass-through reasoning applies to its external inputs.
        for (uint16_t port = 0; port < n.num_inputs; ++port) {
          const uint32_t q = producers_[ti][p][port];
          if (!uniquely_held(ti, q)) return false;
          bool skipped_own = false;
          for (const PortRef& c : t.nodes[q].consumers) {
            if (!skipped_own && c.node == p && c.port == port) {
              skipped_own = true;
              continue;
            }
            if (!never_reads(ti, c.node, c.port, {})) return false;
          }
        }
        return true;
      }
      case NodeKind::kCall:
        // Interprocedural upgrade: a call delivering a provably fresh
        // chain (facts engine) hands its caller the block's only
        // reference.
        return facts_ != nullptr && n.target_template < program_.templates.size() &&
               facts_->returns_fresh[n.target_template] != 0;
      default:
        return false;
    }
  }

  static std::string encode_key(uint32_t ti, uint32_t node, uint16_t port,
                                const std::vector<Wrap>& wraps) {
    std::string key = std::to_string(ti) + ':' + std::to_string(node) + ':' +
                      std::to_string(port);
    for (const Wrap& w : wraps) {
      key += w.kind == Wrap::kTuple ? ":t" : ":c";
      key += std::to_string(w.index);
      if (w.kind == Wrap::kClosure) key += '@' + std::to_string(w.target);
    }
    return key;
  }

  CompiledProgram& program_;
  const OperatorTable& operators_;
  const GraphFacts* facts_;
  std::vector<uint8_t> named_;
  /// producers_[tmpl][node][port] = producing node id.
  std::vector<std::vector<std::vector<uint32_t>>> producers_;
  std::unordered_set<std::string> in_progress_;
};

}  // namespace

SoleConsumerStats analyze_sole_consumers(CompiledProgram& program,
                                         const OperatorTable& operators,
                                         std::vector<LintFinding>* findings,
                                         const GraphFacts* facts) {
  return Analyzer(program, operators, facts).run(findings);
}

}  // namespace delirium
