#include "src/analysis/graph_verify.h"

#include <cstdint>
#include <unordered_set>

#include "src/analysis/facts.h"

namespace delirium {

namespace {

class Verifier {
 public:
  Verifier(const CompiledProgram& program, const OperatorTable& operators,
           const AnalysisResult* analysis, const GraphFacts* facts)
      : program_(program), operators_(operators), analysis_(analysis), facts_(facts) {}

  std::vector<VerifyIssue> run() {
    check_program_tables();
    compute_template_cycles();
    for (uint32_t ti = 0; ti < program_.templates.size(); ++ti) {
      check_template(ti);
    }
    check_strandedness();
    return std::move(issues_);
  }

 private:
  void issue(uint32_t ti, uint32_t node, std::string what) {
    std::string where = "template '" + program_.templates[ti]->name + "' (#" +
                        std::to_string(ti) + ")";
    if (node != VerifyIssue::kNoNode) {
      const Node& n = program_.templates[ti]->nodes[node];
      where += " node #" + std::to_string(node);
      if (!n.debug_label.empty()) where += " [" + n.debug_label + "]";
    }
    issues_.push_back(VerifyIssue{ti, node, where + ": " + std::move(what)});
  }

  void check_program_tables() {
    if (program_.templates.empty()) {
      issues_.push_back(VerifyIssue{0, VerifyIssue::kNoNode, "program has no templates"});
      return;
    }
    if (program_.entry >= program_.templates.size()) {
      issues_.push_back(VerifyIssue{program_.entry, VerifyIssue::kNoNode,
                                    "entry template index " + std::to_string(program_.entry) +
                                        " out of range (" +
                                        std::to_string(program_.templates.size()) + " templates)"});
    }
    for (const auto& [name, index] : program_.by_name) {
      if (index >= program_.templates.size()) {
        issues_.push_back(VerifyIssue{index, VerifyIssue::kNoNode,
                                      "by_name['" + name + "'] = " + std::to_string(index) +
                                          " is out of range"});
        continue;
      }
      if (program_.templates[index]->name != name) {
        issue(index, VerifyIssue::kNoNode,
              "registered under name '" + name + "' but is named '" +
                  program_.templates[index]->name + "'");
      }
      if (analysis_ != nullptr &&
          program_.templates[index]->recursive != analysis_->is_recursive(name)) {
        issue(index, VerifyIssue::kNoNode,
              std::string("recursive flag is ") +
                  (program_.templates[index]->recursive ? "set" : "clear") +
                  " but the recursion analysis says '" + name + "' is " +
                  (analysis_->is_recursive(name) ? "" : "not ") + "recursive");
      }
    }
  }

  /// Mark templates that sit on a cycle of the template reference graph
  /// (edges: kCall and kMakeClosure targets). A local function whose
  /// self-call lives in a conditional-arm sub-template is recursive even
  /// though its own `recursive` flag stays clear — the cycle runs through
  /// the arm — so the priority check below accepts kRecursiveCallClosure
  /// for calls into any such cycle.
  void compute_template_cycles() {
    const size_t n = program_.templates.size();
    std::vector<std::vector<uint32_t>> edges(n);
    for (uint32_t ti = 0; ti < n; ++ti) {
      for (const Node& node : program_.templates[ti]->nodes) {
        if ((node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) &&
            node.target_template < n) {
          edges[ti].push_back(node.target_template);
        }
      }
    }
    // on_cycle_[t] := t is reachable from itself. n is small (one template
    // per function plus arms), so a BFS per template is fine.
    on_cycle_.assign(n, false);
    for (uint32_t start = 0; start < n; ++start) {
      std::vector<bool> seen(n, false);
      std::vector<uint32_t> stack(edges[start]);
      while (!stack.empty()) {
        const uint32_t t = stack.back();
        stack.pop_back();
        if (t == start) {
          on_cycle_[start] = true;
          break;
        }
        if (seen[t]) continue;
        seen[t] = true;
        stack.insert(stack.end(), edges[t].begin(), edges[t].end());
      }
    }
  }

  void check_template(uint32_t ti) {
    const Template& t = *program_.templates[ti];
    const uint32_t n = static_cast<uint32_t>(t.nodes.size());

    if (t.num_captures > t.num_params) {
      issue(ti, VerifyIssue::kNoNode,
            "num_captures (" + std::to_string(t.num_captures) + ") exceeds num_params (" +
                std::to_string(t.num_params) + ")");
    }

    // Return node.
    if (t.return_node >= n) {
      issue(ti, VerifyIssue::kNoNode,
            "return_node " + std::to_string(t.return_node) + " out of range");
    } else {
      const Node& ret = t.nodes[t.return_node];
      if (ret.kind != NodeKind::kReturn) {
        issue(ti, t.return_node, "return_node is not a kReturn node");
      }
      if (!ret.consumers.empty()) {
        issue(ti, t.return_node, "kReturn node must not have consumers");
      }
    }

    // Parameter nodes.
    if (t.param_nodes.size() != t.num_params) {
      issue(ti, VerifyIssue::kNoNode,
            "param_nodes has " + std::to_string(t.param_nodes.size()) + " entries for " +
                std::to_string(t.num_params) + " parameters");
    } else {
      for (uint32_t i = 0; i < t.num_params; ++i) {
        const uint32_t p = t.param_nodes[i];
        if (p >= n) {
          issue(ti, VerifyIssue::kNoNode,
                "param_nodes[" + std::to_string(i) + "] = " + std::to_string(p) +
                    " out of range");
          continue;
        }
        if (t.nodes[p].kind != NodeKind::kParam) {
          issue(ti, p, "param_nodes[" + std::to_string(i) + "] is not a kParam node");
        } else if (t.nodes[p].param_index != i) {
          issue(ti, p,
                "param_index " + std::to_string(t.nodes[p].param_index) +
                    " disagrees with param_nodes position " + std::to_string(i));
        }
      }
    }

    // Slot layout: dense, in node order, totalling value_slots.
    uint32_t running = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (t.nodes[i].input_offset != running) {
        issue(ti, i,
              "input_offset " + std::to_string(t.nodes[i].input_offset) +
                  " breaks dense slot numbering (expected " + std::to_string(running) + ")");
      }
      running += t.nodes[i].num_inputs;
    }
    if (running != t.value_slots) {
      issue(ti, VerifyIssue::kNoNode,
            "value_slots = " + std::to_string(t.value_slots) + " but inputs sum to " +
                std::to_string(running));
    }

    // Consumer edges: in-range targets, exactly one producer per port.
    std::vector<uint32_t> producer_count;
    std::vector<uint32_t> in_degree(n, 0);
    producer_count.assign(running, 0);
    for (uint32_t i = 0; i < n; ++i) {
      for (const PortRef& c : t.nodes[i].consumers) {
        if (c.node >= n) {
          issue(ti, i, "consumer edge targets node #" + std::to_string(c.node) + " (out of range)");
          continue;
        }
        if (c.port >= t.nodes[c.node].num_inputs) {
          issue(ti, i,
                "consumer edge targets port " + std::to_string(c.port) + " of node #" +
                    std::to_string(c.node) + ", which has " +
                    std::to_string(t.nodes[c.node].num_inputs) + " inputs");
          continue;
        }
        const uint32_t slot = t.nodes[c.node].input_offset + c.port;
        if (slot < producer_count.size()) ++producer_count[slot];
        ++in_degree[c.node];
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      for (uint16_t port = 0; port < t.nodes[i].num_inputs; ++port) {
        const uint32_t slot = t.nodes[i].input_offset + port;
        if (slot >= producer_count.size()) continue;  // layout issue reported above
        if (producer_count[slot] != 1) {
          issue(ti, i,
                "input port " + std::to_string(port) + " has " +
                    std::to_string(producer_count[slot]) + " producers (want exactly 1)");
        }
      }
    }

    for (uint32_t i = 0; i < n; ++i) check_node(ti, t, i);

    check_acyclic(ti, t, in_degree);
  }

  void check_node(uint32_t ti, const Template& t, uint32_t i) {
    const Node& node = t.nodes[i];

    // Kind-specific arity of the node itself.
    auto want_inputs = [&](uint16_t want) {
      if (node.num_inputs != want) {
        issue(ti, i,
              std::string("expected ") + std::to_string(want) + " inputs, has " +
                  std::to_string(node.num_inputs));
      }
    };
    switch (node.kind) {
      case NodeKind::kConst:
      case NodeKind::kParam:
        want_inputs(0);
        break;
      case NodeKind::kReturn:
      case NodeKind::kTupleGet:
        want_inputs(1);
        break;
      case NodeKind::kIfDispatch:
        want_inputs(3);
        break;
      case NodeKind::kParMap:
        want_inputs(2);
        break;
      case NodeKind::kCallClosure:
        if (node.num_inputs < 1) {
          issue(ti, i, "kCallClosure needs at least the closure input");
        }
        break;
      case NodeKind::kOperator:
      case NodeKind::kTupleMake:
      case NodeKind::kMakeClosure:
      case NodeKind::kCall:
      case NodeKind::kFused:
        break;
    }

    // Call targets.
    if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
      if (node.target_template >= program_.templates.size()) {
        issue(ti, i,
              "target_template " + std::to_string(node.target_template) + " out of range");
      } else {
        const Template& target = *program_.templates[node.target_template];
        if (node.kind == NodeKind::kCall && node.num_inputs != target.num_params) {
          issue(ti, i,
                "kCall passes " + std::to_string(node.num_inputs) + " values; target '" +
                    target.name + "' takes " + std::to_string(target.num_params));
        }
        if (node.kind == NodeKind::kMakeClosure && node.num_inputs != target.num_captures) {
          issue(ti, i,
                "kMakeClosure captures " + std::to_string(node.num_inputs) + " values; target '" +
                    target.name + "' expects " + std::to_string(target.num_captures));
        }
      }
    }

    // Operator consistency with the registry.
    if (node.kind == NodeKind::kOperator) {
      const OperatorInfo* info = operators_.lookup(node.op_name);
      if (info == nullptr) {
        issue(ti, i, "operator '" + node.op_name + "' is not in the operator table");
      } else {
        if (node.op_index < 0 || node.op_index != operators_.index_of(node.op_name)) {
          issue(ti, i,
                "op_index " + std::to_string(node.op_index) + " disagrees with the table (" +
                    std::to_string(operators_.index_of(node.op_name)) + ")");
        }
        if (!info->variadic && node.num_inputs != static_cast<uint16_t>(info->arity)) {
          issue(ti, i,
                "operator '" + node.op_name + "' takes " + std::to_string(info->arity) +
                    " arguments, node has " + std::to_string(node.num_inputs));
        }
        if (info->pure && info->any_destructive()) {
          issue(ti, i,
                "operator '" + node.op_name +
                    "' is registered both pure and destructive — purity promises no "
                    "argument mutation");
        }
      }
    }

    // Fused chains: every member must be a registered *pure* operator
    // with a consistent registry index and arity — the dispatch loop
    // retries members with shallow snapshots, which is only sound
    // without destructive arguments. Slot-coverage structure is checked
    // by validate_graph; this layer owns the operator-table contracts.
    if (node.kind == NodeKind::kFused) {
      if (node.fused.empty()) issue(ti, i, "kFused node has no members");
      for (size_t m = 0; m < node.fused.size(); ++m) {
        const FusedMember& member = node.fused[m];
        const std::string who = "fused member #" + std::to_string(m) + " ('" +
                                member.op_name + "')";
        const OperatorInfo* info = operators_.lookup(member.op_name);
        if (info == nullptr) {
          issue(ti, i, who + " is not in the operator table");
          continue;
        }
        if (!info->pure) {
          issue(ti, i, who + " is impure — fusion may only chain pure operators");
        }
        if (member.op_index < 0 || member.op_index != operators_.index_of(member.op_name)) {
          issue(ti, i,
                who + " op_index " + std::to_string(member.op_index) +
                    " disagrees with the table (" +
                    std::to_string(operators_.index_of(member.op_name)) + ")");
        }
        if (!info->variadic &&
            member.inputs.size() != static_cast<size_t>(info->arity)) {
          issue(ti, i,
                who + " takes " + std::to_string(info->arity) + " arguments, has " +
                    std::to_string(member.inputs.size()));
        }
      }
    }

    // Priority classification (§7) must match the recursion structure.
    PriorityClass expected = PriorityClass::kNormal;
    switch (node.kind) {
      case NodeKind::kCall:
        if (node.target_template < program_.templates.size()) {
          expected = (program_.templates[node.target_template]->recursive ||
                      on_cycle_[node.target_template])
                         ? PriorityClass::kRecursiveCallClosure
                         : PriorityClass::kCallClosure;
        } else {
          expected = node.priority;  // target defect already reported
        }
        break;
      case NodeKind::kCallClosure:
      case NodeKind::kIfDispatch:
      case NodeKind::kParMap:
        // Closure targets are dynamic; the builder conservatively uses the
        // middle class. kRecursiveCallClosure is also sound here (a
        // dispatch known to re-enter, e.g. a loop back-edge, may demote).
        expected = node.priority == PriorityClass::kRecursiveCallClosure
                       ? PriorityClass::kRecursiveCallClosure
                       : PriorityClass::kCallClosure;
        break;
      default:
        expected = PriorityClass::kNormal;
        break;
    }
    if (node.priority != expected) {
      auto name = [](PriorityClass p) {
        switch (p) {
          case PriorityClass::kNormal: return "kNormal";
          case PriorityClass::kCallClosure: return "kCallClosure";
          case PriorityClass::kRecursiveCallClosure: return "kRecursiveCallClosure";
        }
        return "?";
      };
      issue(ti, i,
            std::string("priority ") + name(node.priority) + " is stale; recursion structure " +
                "requires " + name(expected));
    }

    // Tail flags: only call-like nodes feeding the return directly.
    if (node.is_tail) {
      const bool call_like = node.kind == NodeKind::kCall || node.kind == NodeKind::kCallClosure ||
                             node.kind == NodeKind::kIfDispatch || node.kind == NodeKind::kParMap;
      if (!call_like) {
        issue(ti, i, "is_tail set on a non-call node");
      } else if (node.consumers.size() != 1 || node.consumers[0].node != t.return_node) {
        issue(ti, i, "is_tail set but the node does not feed the return node exclusively");
      }
    }

    // Consume classes: absent, or exactly one per input.
    if (!node.input_classes.empty() && node.input_classes.size() != node.num_inputs) {
      issue(ti, i,
            "input_classes has " + std::to_string(node.input_classes.size()) + " entries for " +
                std::to_string(node.num_inputs) + " inputs");
    }
  }

  /// Kahn's algorithm over intra-template consumer edges. Data edges in a
  /// restricted dataflow graph must be acyclic — a cycle deadlocks the
  /// activation (no node can ever fire).
  void check_acyclic(uint32_t ti, const Template& t, std::vector<uint32_t> in_degree) {
    const uint32_t n = static_cast<uint32_t>(t.nodes.size());
    std::vector<uint32_t> ready;
    for (uint32_t i = 0; i < n; ++i) {
      if (in_degree[i] == 0) ready.push_back(i);
    }
    uint32_t processed = 0;
    while (!ready.empty()) {
      const uint32_t i = ready.back();
      ready.pop_back();
      ++processed;
      for (const PortRef& c : t.nodes[i].consumers) {
        if (c.node >= n) continue;  // reported above
        if (--in_degree[c.node] == 0) ready.push_back(c.node);
      }
    }
    if (processed != n) {
      for (uint32_t i = 0; i < n; ++i) {
        if (in_degree[i] > 0) {
          issue(ti, i, "node is on a data-edge cycle; the activation can never fire it");
        }
      }
    }
  }

  /// Promote the facts engine's strandedness facts to diagnostics
  /// (§7's "every node fires exactly once" makes an unconditional call
  /// cycle statically detectable). The facts list is already ordered
  /// template-major then by node id, so the report is deterministic.
  void check_strandedness() {
    if (facts_ == nullptr) return;
    for (const StrandedFact& fact : facts_->stranded) {
      if (fact.tmpl >= program_.templates.size()) continue;
      const uint32_t node = fact.node == StrandedFact::kNoNode ? VerifyIssue::kNoNode : fact.node;
      if (node != VerifyIssue::kNoNode && node >= program_.templates[fact.tmpl]->nodes.size()) {
        continue;
      }
      issue(fact.tmpl, node, "statically stranded: " + fact.reason);
    }
  }

  const CompiledProgram& program_;
  const OperatorTable& operators_;
  const AnalysisResult* analysis_;
  const GraphFacts* facts_;
  std::vector<VerifyIssue> issues_;
  std::vector<bool> on_cycle_;
};

}  // namespace

std::vector<VerifyIssue> verify_graphs(const CompiledProgram& program,
                                       const OperatorTable& operators,
                                       const AnalysisResult* analysis, const GraphFacts* facts) {
  return Verifier(program, operators, analysis, facts).run();
}

std::string verify_report(const std::vector<VerifyIssue>& issues) {
  std::string out;
  for (const VerifyIssue& issue : issues) {
    if (!out.empty()) out += '\n';
    out += issue.message;
  }
  return out;
}

}  // namespace delirium
