// Implementation of src/graph/graph_opt.h.
//
// Lives in the analysis library because the fact-driven rewrites
// (constant folding, dead-parameter pruning) read the GraphFacts tables,
// which are layered above the graph structures. The pass runs rewrite
// rounds until a round reports no changes, which makes optimize_graphs
// idempotent by construction: the terminating round *is* the proof that
// a second invocation finds nothing to do.

#include "src/graph/graph_opt.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/analysis/facts.h"
#include "src/support/env.h"

namespace delirium {

namespace {

/// The uniform kill-switch convention, via the shared parser in
/// src/support/env.h (matches the facts engine's and the runtime's env
/// handling; bad spellings are rejected with the variable named).
bool env_off(const char* name) { return !env_flag(name, true); }

/// Producer of each input port, from the consumer lists:
/// result[node][port] = producer node id.
std::vector<std::vector<uint32_t>> build_producers(const Template& tmpl) {
  const size_t n = tmpl.nodes.size();
  std::vector<std::vector<uint32_t>> producers(n);
  for (size_t i = 0; i < n; ++i) producers[i].assign(tmpl.nodes[i].num_inputs, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (const PortRef& c : tmpl.nodes[i].consumers) {
      producers[c.node][c.port] = i;
    }
  }
  return producers;
}

/// Renumber input slots densely in node order. Every structural rewrite
/// (input removal, node removal) ends with this so the verifier's dense
/// layout invariant holds between rounds.
void relayout_slots(Template& tmpl) {
  uint32_t slots = 0;
  for (Node& node : tmpl.nodes) {
    node.input_offset = slots;
    slots += node.num_inputs;
  }
  tmpl.value_slots = slots;
}

/// A node's execution can matter even if its result is unused: impure
/// operators have effects, and subgraph expansions (calls, dispatches)
/// may contain them.
bool always_needed(const Node& node, const OperatorTable& operators) {
  switch (node.kind) {
    case NodeKind::kReturn:
    case NodeKind::kCall:
    case NodeKind::kCallClosure:
    case NodeKind::kIfDispatch:
    case NodeKind::kParMap:
      return true;
    case NodeKind::kParam:
      // Parameters are slots of the activation interface; they stay.
      return true;
    case NodeKind::kOperator: {
      const OperatorInfo* info = operators.lookup(node.op_name);
      return info == nullptr || !info->pure;
    }
    case NodeKind::kConst:
    case NodeKind::kTupleMake:
    case NodeKind::kTupleGet:
    case NodeKind::kMakeClosure:
      return false;
    case NodeKind::kFused:
      // Members are pure by construction; an unconsumed chain has no
      // observable effect.
      return false;
  }
  return true;
}

size_t remove_dead_nodes(Template& tmpl, const OperatorTable& operators) {
  const size_t n = tmpl.nodes.size();
  const std::vector<std::vector<uint32_t>> producers = build_producers(tmpl);

  // Mark needed nodes: seeds + transitive producers.
  std::vector<uint8_t> needed(n, 0);
  std::vector<uint32_t> work;
  for (uint32_t i = 0; i < n; ++i) {
    if (always_needed(tmpl.nodes[i], operators)) {
      needed[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const uint32_t node = work.back();
    work.pop_back();
    for (uint32_t producer : producers[node]) {
      if (!needed[producer]) {
        needed[producer] = 1;
        work.push_back(producer);
      }
    }
  }

  size_t removed = 0;
  for (uint8_t flag : needed) removed += flag == 0 ? 1 : 0;
  if (removed == 0) return 0;

  // Compact: old id -> new id; drop dead nodes and edges into them.
  std::vector<uint32_t> remap(n, 0);
  std::vector<Node> kept;
  kept.reserve(n - removed);
  for (uint32_t i = 0; i < n; ++i) {
    if (needed[i]) {
      remap[i] = static_cast<uint32_t>(kept.size());
      kept.push_back(std::move(tmpl.nodes[i]));
    }
  }
  for (Node& node : kept) {
    std::vector<PortRef> consumers;
    consumers.reserve(node.consumers.size());
    for (const PortRef& c : node.consumers) {
      if (needed[c.node]) consumers.push_back(PortRef{remap[c.node], c.port});
    }
    node.consumers = std::move(consumers);
  }
  tmpl.nodes = std::move(kept);
  relayout_slots(tmpl);
  tmpl.return_node = remap[tmpl.return_node];
  for (uint32_t& p : tmpl.param_nodes) p = remap[p];
  return removed;
}

/// Templates whose whole reachable subgraph (kCall / kMakeClosure
/// targets, transitively) is free of reference cycles. Folding a kCall
/// to such a template can never erase a cycle edge — so the verifier's
/// priority pinning (which is recomputed from the reference graph)
/// stays valid, and no nonterminating pure recursion is "folded into"
/// a value.
std::vector<uint8_t> acyclic_reach(const CompiledProgram& program) {
  const uint32_t count = static_cast<uint32_t>(program.templates.size());
  std::vector<std::vector<uint32_t>> edges(count);
  for (uint32_t t = 0; t < count; ++t) {
    for (const Node& node : program.templates[t]->nodes) {
      if ((node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) &&
          node.target_template < count) {
        edges[t].push_back(node.target_template);
      }
    }
  }
  // acyclic[t] = 1 iff the DFS from t completes without hitting an open
  // (on-stack) template. Iterative three-color DFS; a gray hit taints
  // every template still on the stack and, transitively, everything
  // that reaches them — handled by rerooting from each template.
  std::vector<uint8_t> acyclic(count, 0);
  std::vector<uint8_t> state(count, 0);  // 0 new, 1 open, 2 done-acyclic, 3 done-cyclic
  for (uint32_t root = 0; root < count; ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<uint32_t, uint32_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [t, next] = stack.back();
      if (next < edges[t].size()) {
        const uint32_t u = edges[t][next++];
        if (state[u] == 0) {
          state[u] = 1;
          stack.emplace_back(u, 0);
        } else if (state[u] == 1 || state[u] == 3) {
          // Back edge (cycle) or edge into a known-cyclic region: this
          // template, and everything still open beneath it, is tainted.
          for (auto& frame : stack) state[frame.first] = 3;
        }
      } else {
        if (state[t] == 1) state[t] = 2;
        stack.pop_back();
      }
    }
  }
  for (uint32_t t = 0; t < count; ++t) acyclic[t] = state[t] == 2 ? 1 : 0;
  return acyclic;
}

/// Rewrite provably-constant operator and call nodes to kConst. Gated
/// per node on `arrives` (a value downstream of a diverging call must
/// not materialize) and, for calls, on the callee being pure (effects
/// survive), delivering, and cycle-free (see acyclic_reach).
size_t fold_constants(CompiledProgram& program, const OperatorTable& operators,
                      const GraphFacts& facts, GraphOptStats& stats) {
  const uint32_t count = static_cast<uint32_t>(program.templates.size());
  const std::vector<uint8_t> acyclic = acyclic_reach(program);
  size_t folded = 0;
  for (uint32_t t = 0; t < count; ++t) {
    Template& tmpl = *program.templates[t];
    const uint32_t before_slots = tmpl.value_slots;
    bool touched = false;
    for (uint32_t i = 0; i < tmpl.nodes.size(); ++i) {
      Node& node = tmpl.nodes[i];
      if (node.kind != NodeKind::kOperator && node.kind != NodeKind::kCall) continue;
      if (!facts.constants[t][i].has_value() || !facts.arrives[t][i]) continue;
      if (node.kind == NodeKind::kOperator) {
        const OperatorInfo* info = operators.lookup(node.op_name);
        if (info == nullptr || !info->pure) continue;
      } else {
        if (node.target_template >= count || !facts.pure_templates[node.target_template] ||
            !facts.delivers[node.target_template] || !acyclic[node.target_template]) {
          continue;
        }
      }
      // Detach from the producers; their results are no longer read here.
      for (uint16_t p = 0; p < node.num_inputs; ++p) {
        const uint32_t q = facts.producers[t][i][p];
        auto& consumers = tmpl.nodes[q].consumers;
        for (size_t k = 0; k < consumers.size(); ++k) {
          if (consumers[k].node == i && consumers[k].port == p) {
            consumers.erase(consumers.begin() + k);
            break;
          }
        }
      }
      node.kind = NodeKind::kConst;
      node.literal = *facts.constants[t][i];
      node.num_inputs = 0;
      node.op_index = -1;
      node.op_name.clear();
      node.target_template = 0;
      node.priority = PriorityClass::kNormal;
      node.is_tail = false;
      node.input_classes.clear();
      if (!node.debug_label.empty()) node.debug_label = "folded:" + node.debug_label;
      ++folded;
      touched = true;
    }
    if (touched) {
      relayout_slots(tmpl);
      stats.slots_reclaimed += before_slots - tmpl.value_slots;
    }
  }
  return folded;
}

/// Remove parameters the liveness facts prove unobservable. Explicit
/// parameters are only removable on call-only templates (their full
/// invocation set is static); captures are removable on any anonymous
/// template. Named templates keep their signature — it is the
/// run_function ABI. All argument and capture edges feeding a dead
/// parameter are dropped at every site in one synchronized pass; the
/// parameter node itself becomes a consumer-less constant the next
/// dead-node sweep deletes.
size_t prune_dead_params(CompiledProgram& program, const GraphFacts& facts,
                         GraphOptStats& stats) {
  const uint32_t count = static_cast<uint32_t>(program.templates.size());
  std::vector<uint8_t> named(count, 0);
  for (const auto& [name, index] : program.by_name) {
    if (index < count) named[index] = 1;
  }
  if (program.entry < count) named[program.entry] = 1;

  // Dead parameter positions per template, ascending.
  std::vector<std::vector<uint32_t>> dead(count);
  size_t pruned = 0;
  for (uint32_t t = 0; t < count; ++t) {
    if (named[t]) continue;
    const Template& tmpl = *program.templates[t];
    const uint32_t explicit_params = tmpl.explicit_params();
    for (uint32_t i = 0; i < tmpl.num_params && i < facts.param_live[t].size(); ++i) {
      if (facts.param_live[t][i]) continue;
      if (i < explicit_params && !facts.call_only[t]) continue;
      dead[t].push_back(i);
    }
    pruned += dead[t].size();
  }
  if (pruned == 0) return 0;

  // Pass 1: shrink every call and closure-creation site. An edge into a
  // dropped port disappears; surviving ports renumber densely.
  for (uint32_t ct = 0; ct < count; ++ct) {
    Template& tmpl = *program.templates[ct];
    const uint32_t n = static_cast<uint32_t>(tmpl.nodes.size());
    std::vector<std::vector<uint8_t>> drop(n);
    bool any = false;
    for (uint32_t i = 0; i < n; ++i) {
      const Node& node = tmpl.nodes[i];
      if (node.kind != NodeKind::kCall && node.kind != NodeKind::kMakeClosure) continue;
      if (node.target_template >= count || dead[node.target_template].empty()) continue;
      const uint32_t explicit_params = program.templates[node.target_template]->explicit_params();
      drop[i].assign(node.num_inputs, 0);
      for (uint32_t param : dead[node.target_template]) {
        // kCall ports mirror parameter positions; kMakeClosure ports
        // mirror capture positions (parameter position - explicits).
        const uint32_t port = node.kind == NodeKind::kCall
                                  ? param
                                  : (param >= explicit_params ? param - explicit_params
                                                              : node.num_inputs);
        if (port < node.num_inputs) {
          drop[i][port] = 1;
          any = true;
        }
      }
    }
    if (!any) continue;
    std::vector<std::vector<uint16_t>> new_port(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (drop[i].empty()) continue;
      new_port[i].resize(drop[i].size());
      uint16_t next = 0;
      for (size_t p = 0; p < drop[i].size(); ++p) {
        new_port[i][p] = next;
        if (!drop[i][p]) ++next;
      }
    }
    for (Node& producer : tmpl.nodes) {
      auto& consumers = producer.consumers;
      size_t write = 0;
      for (size_t r = 0; r < consumers.size(); ++r) {
        PortRef c = consumers[r];
        if (!drop[c.node].empty() && c.port < drop[c.node].size()) {
          if (drop[c.node][c.port]) continue;
          c.port = new_port[c.node][c.port];
        }
        consumers[write++] = c;
      }
      consumers.resize(write);
    }
    const uint32_t before_slots = tmpl.value_slots;
    for (uint32_t i = 0; i < n; ++i) {
      if (drop[i].empty()) continue;
      Node& node = tmpl.nodes[i];
      uint16_t removed = 0;
      for (uint8_t flag : drop[i]) removed += flag;
      if (removed == 0) continue;
      if (!node.input_classes.empty()) {
        std::vector<ConsumeClass> kept_classes;
        for (size_t p = 0; p < node.input_classes.size(); ++p) {
          if (p >= drop[i].size() || !drop[i][p]) kept_classes.push_back(node.input_classes[p]);
        }
        node.input_classes = std::move(kept_classes);
      }
      node.num_inputs -= removed;
    }
    relayout_slots(tmpl);
    stats.slots_reclaimed += before_slots - tmpl.value_slots;
  }

  // Pass 2: shrink the parameter rows. The dead kParam node turns into
  // an unconsumed NULL constant (its observing edges were all dropped
  // above or feed nodes that are themselves dead) for the next
  // dead-node sweep to collect.
  for (uint32_t t = 0; t < count; ++t) {
    if (dead[t].empty()) continue;
    Template& tmpl = *program.templates[t];
    const uint32_t explicit_params = tmpl.explicit_params();
    std::vector<uint8_t> is_dead(tmpl.num_params, 0);
    uint32_t dead_captures = 0;
    for (uint32_t param : dead[t]) {
      is_dead[param] = 1;
      if (param >= explicit_params) ++dead_captures;
    }
    std::vector<uint32_t> kept_params;
    kept_params.reserve(tmpl.param_nodes.size() - dead[t].size());
    uint32_t next_index = 0;
    for (uint32_t i = 0; i < tmpl.num_params && i < tmpl.param_nodes.size(); ++i) {
      Node& node = tmpl.nodes[tmpl.param_nodes[i]];
      if (is_dead[i]) {
        node.kind = NodeKind::kConst;
        node.literal = ConstValue{};
        node.param_index = 0;
        if (!node.debug_label.empty()) node.debug_label = "dead:" + node.debug_label;
      } else {
        node.param_index = next_index++;
        kept_params.push_back(tmpl.param_nodes[i]);
      }
    }
    tmpl.param_nodes = std::move(kept_params);
    tmpl.num_params -= static_cast<uint32_t>(dead[t].size());
    tmpl.num_captures -= dead_captures;
  }
  return pruned;
}

/// Tuple-plumbing elision: a kTupleMake whose every consumer is a
/// statically-matched, in-range kTupleGet never needs to exist — each
/// element producer is rewired straight to the matching gets' consumers,
/// promoting the runtime decomposition fast path (executor_core.h's
/// deliver) into a compile-time rewrite. Elements with no matching get
/// simply drop their edge, exactly like the runtime dropping the package
/// before forwarding. Makes with an out-of-range get are left alone:
/// that program faults with a precise runtime error, and eliding the
/// in-range siblings would change which error surfaces. The neutralized
/// make/get nodes become consumer-less constants for the same round's
/// dead-node sweep.
size_t elide_tuples(Template& tmpl, GraphOptStats& stats) {
  const uint32_t n = static_cast<uint32_t>(tmpl.nodes.size());
  std::vector<std::vector<uint32_t>> producers = build_producers(tmpl);
  const uint32_t before_slots = tmpl.value_slots;
  size_t elided = 0;
  for (uint32_t i = 0; i < n; ++i) {
    Node& make = tmpl.nodes[i];
    if (make.kind != NodeKind::kTupleMake || make.consumers.empty()) continue;
    bool all_gets = true;
    for (const PortRef& c : make.consumers) {
      const Node& get = tmpl.nodes[c.node];
      if (get.kind != NodeKind::kTupleGet || get.tuple_index >= make.num_inputs) {
        all_gets = false;
        break;
      }
    }
    if (!all_gets) continue;
    // Forwarded consumers per element, in deterministic order: gets in
    // make-consumer order, then each get's consumers in order.
    std::vector<std::vector<PortRef>> fwd(make.num_inputs);
    for (const PortRef& c : make.consumers) {
      const Node& get = tmpl.nodes[c.node];
      for (const PortRef& gc : get.consumers) fwd[get.tuple_index].push_back(gc);
    }
    for (uint16_t p = 0; p < make.num_inputs; ++p) {
      const uint32_t q = producers[i][p];
      auto& consumers = tmpl.nodes[q].consumers;
      for (size_t k = 0; k < consumers.size(); ++k) {
        if (consumers[k].node == i && consumers[k].port == p) {
          consumers.erase(consumers.begin() + k);
          consumers.insert(consumers.begin() + static_cast<ptrdiff_t>(k), fwd[p].begin(),
                           fwd[p].end());
          break;
        }
      }
      for (const PortRef& gc : fwd[p]) producers[gc.node][gc.port] = q;
    }
    for (const PortRef& c : make.consumers) {
      Node& get = tmpl.nodes[c.node];
      get.kind = NodeKind::kConst;
      get.literal = ConstValue{};
      get.num_inputs = 0;
      get.tuple_index = 0;
      get.consumers.clear();
      if (!get.debug_label.empty()) get.debug_label = "elided:" + get.debug_label;
    }
    make.kind = NodeKind::kConst;
    make.literal = ConstValue{};
    make.num_inputs = 0;
    make.consumers.clear();
    if (!make.debug_label.empty()) make.debug_label = "elided:" + make.debug_label;
    ++elided;
  }
  if (elided != 0) {
    relayout_slots(tmpl);
    stats.slots_reclaimed += before_slots - tmpl.value_slots;
  }
  return elided;
}

/// Chain fusion: collapse maximal linear chains of pure, single-consumer
/// operator nodes into one kFused node, so the executor pays dispatch,
/// scheduling, tracing, and delivery once per chain. The last chain node
/// is morphed in place (it keeps its consumers, and — node ids being
/// producers-first — every external producer has a smaller id, so
/// ascending-id topological order survives); the absorbed nodes are
/// compacted out with a dedicated remap so dead_nodes_removed stays an
/// honest DCE counter. Existing kFused nodes extend: a chain entering a
/// fused node's first member splices its members verbatim, which is what
/// makes repeated rounds (and a second optimize_graphs run) converge.
size_t fuse_chains(Template& tmpl, const OperatorTable& operators, GraphOptStats& stats) {
  const uint32_t n = static_cast<uint32_t>(tmpl.nodes.size());
  const std::vector<std::vector<uint32_t>> producers = build_producers(tmpl);

  auto candidate = [&](const Node& node) {
    if (node.kind == NodeKind::kFused) return true;
    if (node.kind != NodeKind::kOperator || node.op_index < 0) return false;
    const OperatorInfo* info = operators.lookup(node.op_name);
    return info != nullptr && info->pure;
  };
  // The chain entry of a kFused node must land on its first member: a
  // linear chain holds exactly one in-flight value, so only the head can
  // take a predecessor's result.
  auto entry_ok = [&](const Node& node, uint16_t port) {
    if (node.kind != NodeKind::kFused) return true;
    const std::vector<uint32_t>& head_inputs = node.fused.front().inputs;
    return std::find(head_inputs.begin(), head_inputs.end(),
                     static_cast<uint32_t>(port)) != head_inputs.end();
  };
  // Readiness preservation: fusing a into b makes b's *other* inputs
  // prerequisites of the whole chain's dispatch. Only link when those
  // inputs come from constants or parameters — ready the moment the
  // activation exists — so the fused node becomes runnable exactly when
  // the unfused head would have. Without this, fusion serialises
  // siblings that used to run in parallel with the head (and turns
  // concurrent faults into sequential ones).
  auto others_ready_at_start = [&](uint32_t b, uint16_t entry) {
    const Node& nb = tmpl.nodes[b];
    for (uint16_t q = 0; q < nb.num_inputs; ++q) {
      if (q == entry) continue;
      const NodeKind k = tmpl.nodes[producers[b][q]].kind;
      if (k != NodeKind::kConst && k != NodeKind::kParam) return false;
    }
    return true;
  };

  // succ[a] = b when a's only consumer is candidate b and b elects a as
  // its chain predecessor (the valid producer entering b's smallest
  // port — a deterministic tie-break when several chains converge).
  constexpr uint32_t kNone = UINT32_MAX;
  std::vector<uint32_t> succ(n, kNone), pred(n, kNone);
  for (uint32_t b = 0; b < n; ++b) {
    const Node& nb = tmpl.nodes[b];
    if (!candidate(nb)) continue;
    uint32_t best_a = kNone;
    for (uint16_t p = 0; p < nb.num_inputs; ++p) {
      const uint32_t a = producers[b][p];
      const Node& na = tmpl.nodes[a];
      if (!candidate(na) || na.consumers.size() != 1) continue;
      if (na.consumers[0].node != b || na.consumers[0].port != p) continue;
      if (!entry_ok(nb, p)) continue;
      if (!others_ready_at_start(b, p)) continue;
      best_a = a;
      break;  // ports ascend: the first valid producer wins
    }
    if (best_a != kNone) {
      pred[b] = best_a;
      succ[best_a] = b;
    }
  }

  size_t absorbed_total = 0;
  std::vector<uint8_t> keep(n, 1);
  for (uint32_t head = 0; head < n; ++head) {
    if (pred[head] != kNone || succ[head] == kNone) continue;
    // Collect the maximal chain head -> ... -> last.
    std::vector<uint32_t> chain{head};
    while (succ[chain.back()] != kNone) chain.push_back(succ[chain.back()]);
    const uint32_t last = chain.back();

    // Build the member list and the external slot renumbering. External
    // slots are assigned in (member, port) traversal order; each old
    // producer edge is rewired to the surviving node's new slot.
    std::vector<FusedMember> members;
    uint32_t ext = 0;
    auto rewire = [&](uint32_t producer, uint32_t old_node, uint16_t old_port,
                      uint32_t new_slot) {
      for (PortRef& c : tmpl.nodes[producer].consumers) {
        if (c.node == old_node && c.port == old_port) {
          c.node = last;
          c.port = static_cast<uint16_t>(new_slot);
          return;
        }
      }
    };
    for (size_t k = 0; k < chain.size(); ++k) {
      const uint32_t c = chain[k];
      const Node& node = tmpl.nodes[c];
      // Port of c fed by the chain predecessor (the predecessor's single
      // consumer edge), or none for the head.
      const uint16_t chain_port =
          k == 0 ? static_cast<uint16_t>(0xffff) : tmpl.nodes[chain[k - 1]].consumers[0].port;
      if (node.kind == NodeKind::kOperator) {
        FusedMember m;
        m.op_index = node.op_index;
        m.op_name = node.op_name;
        m.orig_node = c;
        m.range = node.range;
        m.debug_label = node.debug_label;
        m.inputs.reserve(node.num_inputs);
        for (uint16_t p = 0; p < node.num_inputs; ++p) {
          if (k != 0 && p == chain_port) {
            m.inputs.push_back(FusedMember::kChainInput);
          } else {
            rewire(producers[c][p], c, p, ext);
            m.inputs.push_back(ext++);
          }
        }
        members.push_back(std::move(m));
      } else {  // existing kFused: splice members, renumber externals
        std::vector<uint32_t> slot_map(node.num_inputs, FusedMember::kChainInput);
        for (uint16_t p = 0; p < node.num_inputs; ++p) {
          if (k != 0 && p == chain_port) continue;  // becomes the chain input
          rewire(producers[c][p], c, p, ext);
          slot_map[p] = ext++;
        }
        for (const FusedMember& old : node.fused) {
          FusedMember m = old;
          for (uint32_t& v : m.inputs) {
            if (v != FusedMember::kChainInput) v = slot_map[v];
          }
          members.push_back(std::move(m));
        }
      }
    }

    // Morph the last node in place; mark the rest for compaction.
    Node& fused = tmpl.nodes[last];
    fused.kind = NodeKind::kFused;
    fused.num_inputs = static_cast<uint16_t>(ext);
    fused.op_index = -1;
    fused.op_name.clear();
    fused.literal = ConstValue{};
    fused.tuple_index = 0;
    fused.target_template = 0;
    fused.priority = PriorityClass::kNormal;
    fused.is_tail = false;
    fused.input_classes.clear();
    std::string label;
    for (const FusedMember& m : members) {
      if (!label.empty()) label += "+";
      label += m.op_name;
    }
    fused.debug_label = "fused:" + label;
    fused.fused = std::move(members);
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      keep[chain[k]] = 0;
      tmpl.nodes[chain[k]].consumers.clear();
    }
    ++stats.chains_fused;
    stats.fused_nodes_absorbed += chain.size() - 1;
    absorbed_total += chain.size() - 1;
  }
  if (absorbed_total == 0) return 0;

  // Compact the absorbed nodes out (every edge touching them was rewired
  // or cleared above) with a dedicated remap.
  const uint32_t before_slots = tmpl.value_slots;
  std::vector<uint32_t> remap(n, 0);
  std::vector<Node> kept;
  kept.reserve(n - absorbed_total);
  for (uint32_t i = 0; i < n; ++i) {
    if (keep[i]) {
      remap[i] = static_cast<uint32_t>(kept.size());
      kept.push_back(std::move(tmpl.nodes[i]));
    }
  }
  for (Node& node : kept) {
    for (PortRef& c : node.consumers) c.node = remap[c.node];
  }
  tmpl.nodes = std::move(kept);
  relayout_slots(tmpl);
  stats.slots_reclaimed += before_slots - tmpl.value_slots;
  tmpl.return_node = remap[tmpl.return_node];
  for (uint32_t& p : tmpl.param_nodes) p = remap[p];
  return absorbed_total;
}

/// Prune unreachable anonymous templates. Named (global function)
/// templates stay: they are callable through run_function.
size_t prune_unreachable_templates(CompiledProgram& program) {
  const size_t count = program.templates.size();
  std::vector<uint8_t> reachable(count, 0);
  std::vector<uint32_t> work;
  for (const auto& [name, index] : program.by_name) {
    if (!reachable[index]) {
      reachable[index] = 1;
      work.push_back(index);
    }
  }
  if (program.entry < count && !reachable[program.entry]) {
    reachable[program.entry] = 1;
    work.push_back(program.entry);
  }
  while (!work.empty()) {
    const uint32_t t = work.back();
    work.pop_back();
    for (const Node& node : program.templates[t]->nodes) {
      if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
        if (!reachable[node.target_template]) {
          reachable[node.target_template] = 1;
          work.push_back(node.target_template);
        }
      }
    }
  }
  size_t pruned = 0;
  for (uint8_t flag : reachable) pruned += flag == 0 ? 1 : 0;
  if (pruned == 0) return 0;
  std::vector<uint32_t> remap(count, 0);
  std::vector<std::unique_ptr<Template>> kept;
  kept.reserve(count - pruned);
  for (uint32_t t = 0; t < count; ++t) {
    if (reachable[t]) {
      remap[t] = static_cast<uint32_t>(kept.size());
      kept.push_back(std::move(program.templates[t]));
    }
  }
  for (auto& tmpl : kept) {
    for (Node& node : tmpl->nodes) {
      if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
        node.target_template = remap[node.target_template];
      }
    }
  }
  program.templates = std::move(kept);
  for (auto& [name, index] : program.by_name) index = remap[index];
  program.entry = remap[program.entry];
  return pruned;
}

}  // namespace

GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators,
                              const GraphOptOptions& options, GraphFacts* final_facts) {
  GraphOptStats stats;
  GraphOptOptions opt = options;
  if (!graph_facts_enabled()) opt.facts = false;
  {
    const FactsOptions env = FactsOptions::from_env();
    opt.fold_constants = opt.fold_constants && env.constants;
    opt.prune_dead_params = opt.prune_dead_params && env.liveness;
    opt.elide_tuples = opt.elide_tuples && !env_off("DELIRIUM_FACTS_TUPLES");
    opt.fuse_chains = opt.fuse_chains && !env_off("DELIRIUM_FACTS_FUSE");
  }
  const bool rewrite = opt.facts && (opt.fold_constants || opt.prune_dead_params);

  // Rewrite rounds until a fixpoint: folding exposes dead nodes, dead
  // parameters expose dead argument chains, which expose more constants,
  // and tuple elision exposes folds the scalar constant lattice could
  // not see through packages. Every rewrite strictly shrinks the program
  // (node, input, parameter, or template count), so the loop terminates.
  for (;;) {
    ++stats.rounds;
    size_t round_changes = 0;

    if (rewrite) {
      FactsOptions wanted;
      wanted.constants = opt.fold_constants;
      wanted.liveness = opt.prune_dead_params;
      wanted.strandedness = true;  // `arrives` gates folding soundness
      wanted.heights = false;
      wanted.fresh_returns = false;
      const GraphFacts facts = compute_graph_facts(program, operators, wanted);
      if (opt.fold_constants) {
        const size_t folded = fold_constants(program, operators, facts, stats);
        stats.consts_folded += folded;
        round_changes += folded;
      }
      if (opt.prune_dead_params) {
        const size_t pruned = prune_dead_params(program, facts, stats);
        stats.dead_params_pruned += pruned;
        round_changes += pruned;
      }
    }

    if (opt.facts && opt.elide_tuples) {
      for (auto& tmpl : program.templates) {
        const size_t elided = elide_tuples(*tmpl, stats);
        stats.tuples_elided += elided;
        round_changes += elided;
      }
    }

    // Dead-node elimination + slot compaction, per template.
    for (auto& tmpl : program.templates) {
      const uint32_t before_slots = tmpl->value_slots;
      const size_t removed = remove_dead_nodes(*tmpl, operators);
      stats.dead_nodes_removed += removed;
      stats.slots_reclaimed += before_slots - tmpl->value_slots;
      round_changes += removed;
    }

    const size_t templates_pruned = prune_unreachable_templates(program);
    stats.templates_pruned += templates_pruned;
    round_changes += templates_pruned;

    if (round_changes != 0) continue;

    // Chain fusion runs only once every other rewrite is at its
    // fixpoint: a collapsed chain would otherwise hide constants that
    // the next round's facts were about to fold (the scalar lattice
    // cannot see inside a kFused node). Fusion itself exposes no new
    // work for the other passes — it changes no non-member consumer
    // counts, creates no constants, and the fused node is pure — but
    // each sweep strictly shrinks the node count, so the outer loop
    // still terminates.
    size_t fused_changes = 0;
    if (opt.facts && opt.fuse_chains) {
      for (auto& tmpl : program.templates) {
        fused_changes += fuse_chains(*tmpl, operators, stats);
      }
    }
    if (fused_changes == 0) break;
  }

  if (final_facts != nullptr) {
    *final_facts = compute_graph_facts(program, operators, FactsOptions::from_env());
  }
  return stats;
}

GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators) {
  return optimize_graphs(program, operators, GraphOptOptions(), nullptr);
}

}  // namespace delirium
