// Implementation of src/graph/graph_opt.h.
//
// Lives in the analysis library because the fact-driven rewrites
// (constant folding, dead-parameter pruning) read the GraphFacts tables,
// which are layered above the graph structures. The pass runs rewrite
// rounds until a round reports no changes, which makes optimize_graphs
// idempotent by construction: the terminating round *is* the proof that
// a second invocation finds nothing to do.

#include "src/graph/graph_opt.h"

#include <utility>
#include <vector>

#include "src/analysis/facts.h"

namespace delirium {

namespace {

/// Renumber input slots densely in node order. Every structural rewrite
/// (input removal, node removal) ends with this so the verifier's dense
/// layout invariant holds between rounds.
void relayout_slots(Template& tmpl) {
  uint32_t slots = 0;
  for (Node& node : tmpl.nodes) {
    node.input_offset = slots;
    slots += node.num_inputs;
  }
  tmpl.value_slots = slots;
}

/// A node's execution can matter even if its result is unused: impure
/// operators have effects, and subgraph expansions (calls, dispatches)
/// may contain them.
bool always_needed(const Node& node, const OperatorTable& operators) {
  switch (node.kind) {
    case NodeKind::kReturn:
    case NodeKind::kCall:
    case NodeKind::kCallClosure:
    case NodeKind::kIfDispatch:
    case NodeKind::kParMap:
      return true;
    case NodeKind::kParam:
      // Parameters are slots of the activation interface; they stay.
      return true;
    case NodeKind::kOperator: {
      const OperatorInfo* info = operators.lookup(node.op_name);
      return info == nullptr || !info->pure;
    }
    case NodeKind::kConst:
    case NodeKind::kTupleMake:
    case NodeKind::kTupleGet:
    case NodeKind::kMakeClosure:
      return false;
  }
  return true;
}

size_t remove_dead_nodes(Template& tmpl, const OperatorTable& operators) {
  const size_t n = tmpl.nodes.size();
  // Producer of each input port: port (node, index) -> producer node.
  // Built from the consumer lists.
  std::vector<std::vector<uint32_t>> producers(n);
  for (size_t i = 0; i < n; ++i) producers[i].assign(tmpl.nodes[i].num_inputs, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (const PortRef& c : tmpl.nodes[i].consumers) {
      producers[c.node][c.port] = i;
    }
  }

  // Mark needed nodes: seeds + transitive producers.
  std::vector<uint8_t> needed(n, 0);
  std::vector<uint32_t> work;
  for (uint32_t i = 0; i < n; ++i) {
    if (always_needed(tmpl.nodes[i], operators)) {
      needed[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const uint32_t node = work.back();
    work.pop_back();
    for (uint32_t producer : producers[node]) {
      if (!needed[producer]) {
        needed[producer] = 1;
        work.push_back(producer);
      }
    }
  }

  size_t removed = 0;
  for (uint8_t flag : needed) removed += flag == 0 ? 1 : 0;
  if (removed == 0) return 0;

  // Compact: old id -> new id; drop dead nodes and edges into them.
  std::vector<uint32_t> remap(n, 0);
  std::vector<Node> kept;
  kept.reserve(n - removed);
  for (uint32_t i = 0; i < n; ++i) {
    if (needed[i]) {
      remap[i] = static_cast<uint32_t>(kept.size());
      kept.push_back(std::move(tmpl.nodes[i]));
    }
  }
  for (Node& node : kept) {
    std::vector<PortRef> consumers;
    consumers.reserve(node.consumers.size());
    for (const PortRef& c : node.consumers) {
      if (needed[c.node]) consumers.push_back(PortRef{remap[c.node], c.port});
    }
    node.consumers = std::move(consumers);
  }
  tmpl.nodes = std::move(kept);
  relayout_slots(tmpl);
  tmpl.return_node = remap[tmpl.return_node];
  for (uint32_t& p : tmpl.param_nodes) p = remap[p];
  return removed;
}

/// Templates whose whole reachable subgraph (kCall / kMakeClosure
/// targets, transitively) is free of reference cycles. Folding a kCall
/// to such a template can never erase a cycle edge — so the verifier's
/// priority pinning (which is recomputed from the reference graph)
/// stays valid, and no nonterminating pure recursion is "folded into"
/// a value.
std::vector<uint8_t> acyclic_reach(const CompiledProgram& program) {
  const uint32_t count = static_cast<uint32_t>(program.templates.size());
  std::vector<std::vector<uint32_t>> edges(count);
  for (uint32_t t = 0; t < count; ++t) {
    for (const Node& node : program.templates[t]->nodes) {
      if ((node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) &&
          node.target_template < count) {
        edges[t].push_back(node.target_template);
      }
    }
  }
  // acyclic[t] = 1 iff the DFS from t completes without hitting an open
  // (on-stack) template. Iterative three-color DFS; a gray hit taints
  // every template still on the stack and, transitively, everything
  // that reaches them — handled by rerooting from each template.
  std::vector<uint8_t> acyclic(count, 0);
  std::vector<uint8_t> state(count, 0);  // 0 new, 1 open, 2 done-acyclic, 3 done-cyclic
  for (uint32_t root = 0; root < count; ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<uint32_t, uint32_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [t, next] = stack.back();
      if (next < edges[t].size()) {
        const uint32_t u = edges[t][next++];
        if (state[u] == 0) {
          state[u] = 1;
          stack.emplace_back(u, 0);
        } else if (state[u] == 1 || state[u] == 3) {
          // Back edge (cycle) or edge into a known-cyclic region: this
          // template, and everything still open beneath it, is tainted.
          for (auto& frame : stack) state[frame.first] = 3;
        }
      } else {
        if (state[t] == 1) state[t] = 2;
        stack.pop_back();
      }
    }
  }
  for (uint32_t t = 0; t < count; ++t) acyclic[t] = state[t] == 2 ? 1 : 0;
  return acyclic;
}

/// Rewrite provably-constant operator and call nodes to kConst. Gated
/// per node on `arrives` (a value downstream of a diverging call must
/// not materialize) and, for calls, on the callee being pure (effects
/// survive), delivering, and cycle-free (see acyclic_reach).
size_t fold_constants(CompiledProgram& program, const OperatorTable& operators,
                      const GraphFacts& facts, GraphOptStats& stats) {
  const uint32_t count = static_cast<uint32_t>(program.templates.size());
  const std::vector<uint8_t> acyclic = acyclic_reach(program);
  size_t folded = 0;
  for (uint32_t t = 0; t < count; ++t) {
    Template& tmpl = *program.templates[t];
    const uint32_t before_slots = tmpl.value_slots;
    bool touched = false;
    for (uint32_t i = 0; i < tmpl.nodes.size(); ++i) {
      Node& node = tmpl.nodes[i];
      if (node.kind != NodeKind::kOperator && node.kind != NodeKind::kCall) continue;
      if (!facts.constants[t][i].has_value() || !facts.arrives[t][i]) continue;
      if (node.kind == NodeKind::kOperator) {
        const OperatorInfo* info = operators.lookup(node.op_name);
        if (info == nullptr || !info->pure) continue;
      } else {
        if (node.target_template >= count || !facts.pure_templates[node.target_template] ||
            !facts.delivers[node.target_template] || !acyclic[node.target_template]) {
          continue;
        }
      }
      // Detach from the producers; their results are no longer read here.
      for (uint16_t p = 0; p < node.num_inputs; ++p) {
        const uint32_t q = facts.producers[t][i][p];
        auto& consumers = tmpl.nodes[q].consumers;
        for (size_t k = 0; k < consumers.size(); ++k) {
          if (consumers[k].node == i && consumers[k].port == p) {
            consumers.erase(consumers.begin() + k);
            break;
          }
        }
      }
      node.kind = NodeKind::kConst;
      node.literal = *facts.constants[t][i];
      node.num_inputs = 0;
      node.op_index = -1;
      node.op_name.clear();
      node.target_template = 0;
      node.priority = PriorityClass::kNormal;
      node.is_tail = false;
      node.input_classes.clear();
      if (!node.debug_label.empty()) node.debug_label = "folded:" + node.debug_label;
      ++folded;
      touched = true;
    }
    if (touched) {
      relayout_slots(tmpl);
      stats.slots_reclaimed += before_slots - tmpl.value_slots;
    }
  }
  return folded;
}

/// Remove parameters the liveness facts prove unobservable. Explicit
/// parameters are only removable on call-only templates (their full
/// invocation set is static); captures are removable on any anonymous
/// template. Named templates keep their signature — it is the
/// run_function ABI. All argument and capture edges feeding a dead
/// parameter are dropped at every site in one synchronized pass; the
/// parameter node itself becomes a consumer-less constant the next
/// dead-node sweep deletes.
size_t prune_dead_params(CompiledProgram& program, const GraphFacts& facts,
                         GraphOptStats& stats) {
  const uint32_t count = static_cast<uint32_t>(program.templates.size());
  std::vector<uint8_t> named(count, 0);
  for (const auto& [name, index] : program.by_name) {
    if (index < count) named[index] = 1;
  }
  if (program.entry < count) named[program.entry] = 1;

  // Dead parameter positions per template, ascending.
  std::vector<std::vector<uint32_t>> dead(count);
  size_t pruned = 0;
  for (uint32_t t = 0; t < count; ++t) {
    if (named[t]) continue;
    const Template& tmpl = *program.templates[t];
    const uint32_t explicit_params = tmpl.explicit_params();
    for (uint32_t i = 0; i < tmpl.num_params && i < facts.param_live[t].size(); ++i) {
      if (facts.param_live[t][i]) continue;
      if (i < explicit_params && !facts.call_only[t]) continue;
      dead[t].push_back(i);
    }
    pruned += dead[t].size();
  }
  if (pruned == 0) return 0;

  // Pass 1: shrink every call and closure-creation site. An edge into a
  // dropped port disappears; surviving ports renumber densely.
  for (uint32_t ct = 0; ct < count; ++ct) {
    Template& tmpl = *program.templates[ct];
    const uint32_t n = static_cast<uint32_t>(tmpl.nodes.size());
    std::vector<std::vector<uint8_t>> drop(n);
    bool any = false;
    for (uint32_t i = 0; i < n; ++i) {
      const Node& node = tmpl.nodes[i];
      if (node.kind != NodeKind::kCall && node.kind != NodeKind::kMakeClosure) continue;
      if (node.target_template >= count || dead[node.target_template].empty()) continue;
      const uint32_t explicit_params = program.templates[node.target_template]->explicit_params();
      drop[i].assign(node.num_inputs, 0);
      for (uint32_t param : dead[node.target_template]) {
        // kCall ports mirror parameter positions; kMakeClosure ports
        // mirror capture positions (parameter position - explicits).
        const uint32_t port = node.kind == NodeKind::kCall
                                  ? param
                                  : (param >= explicit_params ? param - explicit_params
                                                              : node.num_inputs);
        if (port < node.num_inputs) {
          drop[i][port] = 1;
          any = true;
        }
      }
    }
    if (!any) continue;
    std::vector<std::vector<uint16_t>> new_port(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (drop[i].empty()) continue;
      new_port[i].resize(drop[i].size());
      uint16_t next = 0;
      for (size_t p = 0; p < drop[i].size(); ++p) {
        new_port[i][p] = next;
        if (!drop[i][p]) ++next;
      }
    }
    for (Node& producer : tmpl.nodes) {
      auto& consumers = producer.consumers;
      size_t write = 0;
      for (size_t r = 0; r < consumers.size(); ++r) {
        PortRef c = consumers[r];
        if (!drop[c.node].empty() && c.port < drop[c.node].size()) {
          if (drop[c.node][c.port]) continue;
          c.port = new_port[c.node][c.port];
        }
        consumers[write++] = c;
      }
      consumers.resize(write);
    }
    const uint32_t before_slots = tmpl.value_slots;
    for (uint32_t i = 0; i < n; ++i) {
      if (drop[i].empty()) continue;
      Node& node = tmpl.nodes[i];
      uint16_t removed = 0;
      for (uint8_t flag : drop[i]) removed += flag;
      if (removed == 0) continue;
      if (!node.input_classes.empty()) {
        std::vector<ConsumeClass> kept_classes;
        for (size_t p = 0; p < node.input_classes.size(); ++p) {
          if (p >= drop[i].size() || !drop[i][p]) kept_classes.push_back(node.input_classes[p]);
        }
        node.input_classes = std::move(kept_classes);
      }
      node.num_inputs -= removed;
    }
    relayout_slots(tmpl);
    stats.slots_reclaimed += before_slots - tmpl.value_slots;
  }

  // Pass 2: shrink the parameter rows. The dead kParam node turns into
  // an unconsumed NULL constant (its observing edges were all dropped
  // above or feed nodes that are themselves dead) for the next
  // dead-node sweep to collect.
  for (uint32_t t = 0; t < count; ++t) {
    if (dead[t].empty()) continue;
    Template& tmpl = *program.templates[t];
    const uint32_t explicit_params = tmpl.explicit_params();
    std::vector<uint8_t> is_dead(tmpl.num_params, 0);
    uint32_t dead_captures = 0;
    for (uint32_t param : dead[t]) {
      is_dead[param] = 1;
      if (param >= explicit_params) ++dead_captures;
    }
    std::vector<uint32_t> kept_params;
    kept_params.reserve(tmpl.param_nodes.size() - dead[t].size());
    uint32_t next_index = 0;
    for (uint32_t i = 0; i < tmpl.num_params && i < tmpl.param_nodes.size(); ++i) {
      Node& node = tmpl.nodes[tmpl.param_nodes[i]];
      if (is_dead[i]) {
        node.kind = NodeKind::kConst;
        node.literal = ConstValue{};
        node.param_index = 0;
        if (!node.debug_label.empty()) node.debug_label = "dead:" + node.debug_label;
      } else {
        node.param_index = next_index++;
        kept_params.push_back(tmpl.param_nodes[i]);
      }
    }
    tmpl.param_nodes = std::move(kept_params);
    tmpl.num_params -= static_cast<uint32_t>(dead[t].size());
    tmpl.num_captures -= dead_captures;
  }
  return pruned;
}

/// Prune unreachable anonymous templates. Named (global function)
/// templates stay: they are callable through run_function.
size_t prune_unreachable_templates(CompiledProgram& program) {
  const size_t count = program.templates.size();
  std::vector<uint8_t> reachable(count, 0);
  std::vector<uint32_t> work;
  for (const auto& [name, index] : program.by_name) {
    if (!reachable[index]) {
      reachable[index] = 1;
      work.push_back(index);
    }
  }
  if (program.entry < count && !reachable[program.entry]) {
    reachable[program.entry] = 1;
    work.push_back(program.entry);
  }
  while (!work.empty()) {
    const uint32_t t = work.back();
    work.pop_back();
    for (const Node& node : program.templates[t]->nodes) {
      if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
        if (!reachable[node.target_template]) {
          reachable[node.target_template] = 1;
          work.push_back(node.target_template);
        }
      }
    }
  }
  size_t pruned = 0;
  for (uint8_t flag : reachable) pruned += flag == 0 ? 1 : 0;
  if (pruned == 0) return 0;
  std::vector<uint32_t> remap(count, 0);
  std::vector<std::unique_ptr<Template>> kept;
  kept.reserve(count - pruned);
  for (uint32_t t = 0; t < count; ++t) {
    if (reachable[t]) {
      remap[t] = static_cast<uint32_t>(kept.size());
      kept.push_back(std::move(program.templates[t]));
    }
  }
  for (auto& tmpl : kept) {
    for (Node& node : tmpl->nodes) {
      if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
        node.target_template = remap[node.target_template];
      }
    }
  }
  program.templates = std::move(kept);
  for (auto& [name, index] : program.by_name) index = remap[index];
  program.entry = remap[program.entry];
  return pruned;
}

}  // namespace

GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators,
                              const GraphOptOptions& options, GraphFacts* final_facts) {
  GraphOptStats stats;
  GraphOptOptions opt = options;
  if (!graph_facts_enabled()) opt.facts = false;
  {
    const FactsOptions env = FactsOptions::from_env();
    opt.fold_constants = opt.fold_constants && env.constants;
    opt.prune_dead_params = opt.prune_dead_params && env.liveness;
  }
  const bool rewrite = opt.facts && (opt.fold_constants || opt.prune_dead_params);

  // Rewrite rounds until a fixpoint: folding exposes dead nodes, dead
  // parameters expose dead argument chains, which expose more constants.
  // Every rewrite strictly shrinks the program (node, input, parameter,
  // or template count), so the loop terminates.
  for (;;) {
    ++stats.rounds;
    size_t round_changes = 0;

    if (rewrite) {
      FactsOptions wanted;
      wanted.constants = opt.fold_constants;
      wanted.liveness = opt.prune_dead_params;
      wanted.strandedness = true;  // `arrives` gates folding soundness
      wanted.heights = false;
      wanted.fresh_returns = false;
      const GraphFacts facts = compute_graph_facts(program, operators, wanted);
      if (opt.fold_constants) {
        const size_t folded = fold_constants(program, operators, facts, stats);
        stats.consts_folded += folded;
        round_changes += folded;
      }
      if (opt.prune_dead_params) {
        const size_t pruned = prune_dead_params(program, facts, stats);
        stats.dead_params_pruned += pruned;
        round_changes += pruned;
      }
    }

    // Dead-node elimination + slot compaction, per template.
    for (auto& tmpl : program.templates) {
      const uint32_t before_slots = tmpl->value_slots;
      const size_t removed = remove_dead_nodes(*tmpl, operators);
      stats.dead_nodes_removed += removed;
      stats.slots_reclaimed += before_slots - tmpl->value_slots;
      round_changes += removed;
    }

    const size_t templates_pruned = prune_unreachable_templates(program);
    stats.templates_pruned += templates_pruned;
    round_changes += templates_pruned;

    if (round_changes == 0) break;
  }

  if (final_facts != nullptr) {
    *final_facts = compute_graph_facts(program, operators, FactsOptions::from_env());
  }
  return stats;
}

GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators) {
  return optimize_graphs(program, operators, GraphOptOptions(), nullptr);
}

}  // namespace delirium
