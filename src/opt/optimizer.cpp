#include "src/opt/optimizer.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/lang/macro.h"

namespace delirium {

bool expr_to_const(const Expr* e, ConstValue& out) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kIntLit: out = e->int_value; return true;
    case ExprKind::kFloatLit: out = e->float_value; return true;
    case ExprKind::kStringLit: out = e->str_value; return true;
    case ExprKind::kNullLit: out = std::monostate{}; return true;
    default: return false;
  }
}

Expr* const_to_expr(const ConstValue& v, AstContext& ctx, SourceRange range) {
  if (std::holds_alternative<std::monostate>(v)) return ctx.make_null(range);
  if (const auto* i = std::get_if<int64_t>(&v)) return ctx.make_int(*i, range);
  if (const auto* d = std::get_if<double>(&v)) return ctx.make_float(*d, range);
  return ctx.make_string(std::get<std::string>(v), range);
}

bool const_truthy(const ConstValue& v) {
  if (std::holds_alternative<std::monostate>(v)) return false;
  if (const auto* i = std::get_if<int64_t>(&v)) return *i != 0;
  if (const auto* d = std::get_if<double>(&v)) return *d != 0.0;
  return true;  // strings are always true
}

bool is_pure_expr(const Expr* e, const OperatorTable& operators) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kStringLit:
    case ExprKind::kNullLit:
    case ExprKind::kVar:
      return true;
    case ExprKind::kTuple: {
      for (const Expr* a : e->args) {
        if (!is_pure_expr(a, operators)) return false;
      }
      return true;
    }
    case ExprKind::kApply: {
      if (e->callee == nullptr || e->callee->kind != ExprKind::kVar) return false;
      const OperatorInfo* info = operators.lookup(e->callee->str_value);
      if (info == nullptr || !info->pure) return false;
      for (const Expr* a : e->args) {
        if (!is_pure_expr(a, operators)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Constant propagation / folding.
// ---------------------------------------------------------------------------

class ConstFoldPass {
 public:
  ConstFoldPass(AstContext& ctx, const OperatorTable& operators, OptStats& stats)
      : ctx_(ctx), operators_(operators), stats_(stats) {}

  int run(Program& program) {
    rewrites_ = 0;
    for (FuncDecl* f : program.functions) {
      env_.clear();
      scope_stack_.clear();
      f->body = rewrite(f->body);
    }
    return rewrites_;
  }

 private:
  // Names currently bound to known constants. Shadowing is handled by
  // recording "unknown" entries for non-constant binders.
  struct EnvEntry {
    std::string name;
    bool known = false;
    ConstValue value;
  };

  void push_entry(const std::string& name, bool known, ConstValue value = {}) {
    env_.push_back(EnvEntry{name, known, std::move(value)});
  }

  const EnvEntry* find(const std::string& name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  size_t mark() const { return env_.size(); }
  void release(size_t m) { env_.resize(m); }

  Expr* rewrite(Expr* e) {
    if (e == nullptr) return nullptr;
    switch (e->kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kNullLit:
        return e;
      case ExprKind::kVar: {
        const EnvEntry* entry = find(e->str_value);
        if (entry != nullptr && entry->known) {
          ++rewrites_;
          ++stats_.constants_folded;
          return const_to_expr(entry->value, ctx_, e->range);
        }
        return e;
      }
      case ExprKind::kTuple: {
        for (Expr*& a : e->args) a = rewrite(a);
        return e;
      }
      case ExprKind::kApply: {
        for (Expr*& a : e->args) a = rewrite(a);
        if (e->callee != nullptr && e->callee->kind != ExprKind::kVar) {
          e->callee = rewrite(e->callee);
        }
        // Fold pure operator applications over constant arguments.
        if (e->callee != nullptr && e->callee->kind == ExprKind::kVar) {
          const OperatorInfo* info = operators_.lookup(e->callee->str_value);
          if (info != nullptr && info->pure && info->fold) {
            std::vector<ConstValue> consts(e->args.size());
            bool all_const = true;
            for (size_t i = 0; i < e->args.size(); ++i) {
              all_const = all_const && expr_to_const(e->args[i], consts[i]);
            }
            if (all_const) {
              if (auto folded = info->fold(consts)) {
                ++rewrites_;
                ++stats_.constants_folded;
                return const_to_expr(*folded, ctx_, e->range);
              }
            }
          }
        }
        return e;
      }
      case ExprKind::kIf: {
        e->cond = rewrite(e->cond);
        ConstValue cv;
        if (expr_to_const(e->cond, cv)) {
          ++rewrites_;
          ++stats_.branches_resolved;
          return rewrite(const_truthy(cv) ? e->then_branch : e->else_branch);
        }
        e->then_branch = rewrite(e->then_branch);
        e->else_branch = rewrite(e->else_branch);
        return e;
      }
      case ExprKind::kLet: {
        const size_t m = mark();
        for (Binding& b : e->bindings) {
          if (b.kind == Binding::Kind::kFunction) {
            // Constants from the enclosing scope remain valid inside the
            // local function body, except where shadowed by parameters.
            const size_t fm = mark();
            push_entry(b.names[0], false);
            for (const std::string& p : b.params) push_entry(p, false);
            b.value = rewrite(b.value);
            release(fm);
            push_entry(b.names[0], false);
            continue;
          }
          b.value = rewrite(b.value);
          if (b.kind == Binding::Kind::kValue) {
            ConstValue cv;
            if (expr_to_const(b.value, cv)) {
              push_entry(b.names[0], true, cv);
            } else {
              push_entry(b.names[0], false);
            }
          } else {
            for (const std::string& n : b.names) push_entry(n, false);
          }
        }
        e->body = rewrite(e->body);
        release(m);
        return e;
      }
      case ExprKind::kIterate: {
        for (LoopVar& lv : e->loop_vars) lv.init = rewrite(lv.init);
        const size_t m = mark();
        // Loop variables change across iterations: never constants.
        for (const LoopVar& lv : e->loop_vars) push_entry(lv.name, false);
        for (LoopVar& lv : e->loop_vars) lv.step = rewrite(lv.step);
        e->cond = rewrite(e->cond);
        release(m);
        return e;
      }
    }
    return e;
  }

  AstContext& ctx_;
  const OperatorTable& operators_;
  OptStats& stats_;
  std::vector<EnvEntry> env_;
  std::vector<size_t> scope_stack_;
  int rewrites_ = 0;
};

// ---------------------------------------------------------------------------
// Common sub-expression elimination.
// ---------------------------------------------------------------------------
//
// Within each function, a let binding of a pure expression makes later
// structurally-equal pure expressions redundant: they are replaced by a
// reference to the bound name. Scoping is respected by tracking which
// bindings are live and which names have been shadowed.

class CsePass {
 public:
  CsePass(const OperatorTable& operators, OptStats& stats)
      : operators_(operators), stats_(stats) {}

  int run(Program& program) {
    rewrites_ = 0;
    for (FuncDecl* f : program.functions) {
      available_.clear();
      visit(f->body);
    }
    return rewrites_;
  }

 private:
  struct Available {
    const Expr* value = nullptr;
    std::string name;
    std::unordered_set<std::string> refs;  // free names the value mentions
    bool valid = true;
  };

  static void collect_refs(const Expr* e, std::unordered_set<std::string>& refs) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kVar) refs.insert(e->str_value);
    for_each_child(e, [&refs](const Expr* c) { collect_refs(c, refs); });
  }

  /// A binder for `name` appears: every available expression whose name or
  /// referenced names collide is permanently invalidated. Conservative
  /// (inner scopes end) but sound.
  void binder_appears(const std::string& name) {
    for (Available& a : available_) {
      if (a.valid && (a.name == name || a.refs.count(name) > 0)) a.valid = false;
    }
  }

  std::string find_available(const Expr* e) const {
    for (auto it = available_.rbegin(); it != available_.rend(); ++it) {
      if (it->valid && expr_equal(it->value, e)) return it->name;
    }
    return {};
  }

  bool cse_candidate(const Expr* e) const {
    return (e->kind == ExprKind::kApply || e->kind == ExprKind::kTuple) &&
           is_pure_expr(e, operators_);
  }

  void visit(Expr*& e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::kLet: {
        const size_t mark = available_.size();
        for (Binding& b : e->bindings) {
          if (b.kind == Binding::Kind::kFunction) {
            // Function bodies execute per call; nothing inside can be
            // shared with the enclosing region. Fresh context.
            std::vector<Available> saved;
            saved.swap(available_);
            visit(b.value);
            available_.swap(saved);
            binder_appears(b.names[0]);
            continue;
          }
          visit(b.value);
          if (b.kind == Binding::Kind::kValue && cse_candidate(b.value)) {
            const std::string replacement = find_available(b.value);
            if (!replacement.empty()) {
              ++rewrites_;
              ++stats_.cse_replacements;
              b.value = make_var_like(b.value, replacement);
            }
          }
          for (const std::string& n : b.names) binder_appears(n);
          if (b.kind == Binding::Kind::kValue && cse_candidate(b.value)) {
            Available a;
            a.value = b.value;
            a.name = b.names[0];
            collect_refs(b.value, a.refs);
            available_.push_back(std::move(a));
          }
        }
        visit(e->body);
        available_.resize(mark);
        return;
      }
      case ExprKind::kApply:
      case ExprKind::kTuple: {
        for (Expr*& a : e->args) visit(a);
        if (e->callee != nullptr && e->callee->kind != ExprKind::kVar) visit(e->callee);
        if (cse_candidate(e)) {
          const std::string replacement = find_available(e);
          if (!replacement.empty()) {
            ++rewrites_;
            ++stats_.cse_replacements;
            e = make_var_like(e, replacement);
          }
        }
        return;
      }
      case ExprKind::kIf: {
        visit(e->cond);
        // Branches execute conditionally; expressions from one branch must
        // not serve the other or the continuation.
        const size_t m = available_.size();
        visit(e->then_branch);
        available_.resize(m);
        visit(e->else_branch);
        available_.resize(m);
        return;
      }
      case ExprKind::kIterate: {
        for (LoopVar& lv : e->loop_vars) visit(lv.init);
        // Loop variables are rebound each iteration. Within one iteration
        // all steps and the condition see the same bindings, so sharing
        // inside the loop region is fine once outer entries touching the
        // loop names are invalidated.
        for (const LoopVar& lv : e->loop_vars) binder_appears(lv.name);
        const size_t m = available_.size();
        for (LoopVar& lv : e->loop_vars) visit(lv.step);
        visit(e->cond);
        available_.resize(m);
        return;
      }
      default: {
        for_each_child_mut(e, [this](Expr*& child) { visit(child); });
        return;
      }
    }
  }

  static Expr* make_var_like(Expr* original, const std::string& name) {
    // Repurpose the node in place as a variable reference; the arena keeps
    // ownership either way.
    original->kind = ExprKind::kVar;
    original->str_value = name;
    original->callee = nullptr;
    original->args.clear();
    original->bindings.clear();
    original->body = original->cond = original->then_branch = original->else_branch = nullptr;
    original->loop_vars.clear();
    return original;
  }

  const OperatorTable& operators_;
  OptStats& stats_;
  std::vector<Available> available_;
  int rewrites_ = 0;
};

// ---------------------------------------------------------------------------
// Dead code elimination.
// ---------------------------------------------------------------------------

class DcePass {
 public:
  DcePass(const OperatorTable& operators, OptStats& stats)
      : operators_(operators), stats_(stats) {}

  int run(Program& program, const std::string& entry_point, bool remove_functions) {
    rewrites_ = 0;
    for (FuncDecl* f : program.functions) {
      bool changed = true;
      while (changed) {
        changed = false;
        visit(f->body, changed);
      }
    }
    if (remove_functions) remove_dead_functions(program, entry_point);
    return rewrites_;
  }

 private:
  static void count_uses(const Expr* e, std::unordered_map<std::string, int>& uses) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kVar) ++uses[e->str_value];
    for_each_child(e, [&uses](const Expr* c) { count_uses(c, uses); });
  }

  void visit(Expr* e, bool& changed) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kLet && e->bindings.empty() && e->body != nullptr) {
      // A let whose bindings were all removed collapses to its body.
      Expr* body = e->body;
      *e = *body;
      ++rewrites_;
      changed = true;
      visit(e, changed);
      return;
    }
    if (e->kind == ExprKind::kLet) {
      // Uses are counted across the rest of the let (later bindings and
      // body); an unused pure binding can be dropped. Shadowing by later
      // bindings of the same name is prevented upstream by the
      // single-assignment check.
      for (size_t i = 0; i < e->bindings.size();) {
        const Binding& b = e->bindings[i];
        std::unordered_map<std::string, int> uses;
        for (size_t j = i + 1; j < e->bindings.size(); ++j) {
          count_uses(e->bindings[j].value, uses);
        }
        count_uses(e->body, uses);
        bool referenced = false;
        for (const std::string& n : b.names) referenced = referenced || uses[n] > 0;
        const bool removable =
            !referenced && (b.kind == Binding::Kind::kFunction ||
                            is_pure_expr(b.value, operators_));
        if (removable) {
          e->bindings.erase(e->bindings.begin() + static_cast<long>(i));
          ++rewrites_;
          ++stats_.dead_bindings_removed;
          changed = true;
        } else {
          ++i;
        }
      }
      if (e->bindings.empty() && e->body != nullptr) {
        Expr* body = e->body;
        *e = *body;
        ++rewrites_;
        changed = true;
        visit(e, changed);
        return;
      }
    }
    for_each_child_mut(e, [this, &changed](Expr*& child) { visit(child, changed); });
  }

  void remove_dead_functions(Program& program, const std::string& entry_point) {
    std::unordered_map<std::string, const FuncDecl*> by_name;
    for (const FuncDecl* f : program.functions) by_name[f->name] = f;
    std::unordered_set<std::string> live;
    std::vector<std::string> work{entry_point};
    while (!work.empty()) {
      std::string cur = work.back();
      work.pop_back();
      if (!live.insert(cur).second) continue;
      auto it = by_name.find(cur);
      if (it == by_name.end()) continue;
      collect_names(it->second->body, by_name, work);
    }
    std::vector<FuncDecl*> kept;
    for (FuncDecl* f : program.functions) {
      if (live.count(f->name) > 0) {
        kept.push_back(f);
      } else {
        ++rewrites_;
        ++stats_.dead_functions_removed;
      }
    }
    program.functions = std::move(kept);
  }

  static void collect_names(const Expr* e,
                            const std::unordered_map<std::string, const FuncDecl*>& by_name,
                            std::vector<std::string>& out) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kVar && by_name.count(e->str_value) > 0) {
      out.push_back(e->str_value);
    }
    for_each_child(e, [&](const Expr* c) { collect_names(c, by_name, out); });
  }

  const OperatorTable& operators_;
  OptStats& stats_;
  int rewrites_ = 0;
};

// ---------------------------------------------------------------------------
// Inline function expansion.
// ---------------------------------------------------------------------------

class InlinePass {
 public:
  InlinePass(Program& program, AstContext& ctx, const AnalysisResult& analysis,
             const OptimizeOptions& options, OptStats& stats)
      : ctx_(ctx), analysis_(analysis), options_(options), stats_(stats) {
    for (FuncDecl* f : program.functions) by_name_[f->name] = f;
  }

  int run(Program& program) {
    rewrites_ = 0;
    for (FuncDecl* f : program.functions) {
      f->body = rewrite(f->body, 0);
    }
    return rewrites_;
  }

 private:
  bool inlinable(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) return false;
    if (it->second->body == nullptr) return false;  // signature-only stub
    if (analysis_.is_recursive(name)) return false;
    return subtree_weight(it->second->body) <= options_.inline_max_weight;
  }

  /// Rename every binder in a tree to a fresh name so that substituted
  /// caller expressions cannot be captured.
  Expr* alpha_rename(const Expr* e) {
    std::unordered_map<std::string, std::string> renames;
    return alpha_walk(e, renames);
  }

  std::string fresh(const std::string& base) {
    return "_r" + std::to_string(counter_++) + "_" + base;
  }

  Expr* alpha_walk(const Expr* e, std::unordered_map<std::string, std::string> renames) {
    if (e == nullptr) return nullptr;
    switch (e->kind) {
      case ExprKind::kVar: {
        auto it = renames.find(e->str_value);
        return ctx_.make_var(it != renames.end() ? it->second : e->str_value, e->range);
      }
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kNullLit:
        return ctx_.clone(e);
      case ExprKind::kTuple: {
        std::vector<Expr*> elems;
        for (const Expr* a : e->args) elems.push_back(alpha_walk(a, renames));
        return ctx_.make_tuple(std::move(elems), e->range);
      }
      case ExprKind::kApply: {
        Expr* callee = alpha_walk(e->callee, renames);
        std::vector<Expr*> args;
        for (const Expr* a : e->args) args.push_back(alpha_walk(a, renames));
        return ctx_.make_apply(callee, std::move(args), e->range);
      }
      case ExprKind::kIf:
        return ctx_.make_if(alpha_walk(e->cond, renames), alpha_walk(e->then_branch, renames),
                            alpha_walk(e->else_branch, renames), e->range);
      case ExprKind::kLet: {
        std::vector<Binding> bindings;
        for (const Binding& b : e->bindings) {
          Binding nb;
          nb.kind = b.kind;
          nb.range = b.range;
          if (b.kind == Binding::Kind::kFunction) {
            const std::string fname = fresh(b.names[0]);
            renames[b.names[0]] = fname;
            nb.names.push_back(fname);
            auto inner = renames;
            for (const std::string& p : b.params) {
              const std::string np = fresh(p);
              inner[p] = np;
              nb.params.push_back(np);
            }
            nb.value = alpha_walk(b.value, inner);
          } else {
            nb.value = alpha_walk(b.value, renames);
            for (const std::string& n : b.names) {
              const std::string nn = fresh(n);
              renames[n] = nn;
              nb.names.push_back(nn);
            }
          }
          bindings.push_back(std::move(nb));
        }
        Expr* body = alpha_walk(e->body, renames);
        return ctx_.make_let(std::move(bindings), body, e->range);
      }
      case ExprKind::kIterate: {
        Expr* out = ctx_.make(ExprKind::kIterate, e->range);
        std::vector<Expr*> inits;
        for (const LoopVar& lv : e->loop_vars) inits.push_back(alpha_walk(lv.init, renames));
        auto inner = renames;
        std::vector<std::string> new_names;
        for (const LoopVar& lv : e->loop_vars) {
          const std::string nn = fresh(lv.name);
          inner[lv.name] = nn;
          new_names.push_back(nn);
        }
        for (size_t i = 0; i < e->loop_vars.size(); ++i) {
          LoopVar nlv;
          nlv.name = new_names[i];
          nlv.range = e->loop_vars[i].range;
          nlv.init = inits[i];
          nlv.step = alpha_walk(e->loop_vars[i].step, inner);
          out->loop_vars.push_back(std::move(nlv));
        }
        out->cond = alpha_walk(e->cond, inner);
        auto it = inner.find(e->result_name);
        out->result_name = it != inner.end() ? it->second : e->result_name;
        return out;
      }
    }
    return ctx_.clone(e);
  }

  Expr* rewrite(Expr* e, int depth) {
    if (e == nullptr) return nullptr;
    for_each_child_mut(e, [this, depth](Expr*& child) { child = rewrite(child, depth); });
    if (depth >= options_.inline_max_depth) return e;
    if (e->kind != ExprKind::kApply || e->callee == nullptr ||
        e->callee->kind != ExprKind::kVar) {
      return e;
    }
    const std::string& name = e->callee->str_value;
    if (!inlinable(name)) return e;
    const FuncDecl* target = by_name_.at(name);
    if (target->params.size() != e->args.size()) return e;  // sema already reported

    Expr* body = alpha_rename(target->body);
    // Bind arguments: trivial arguments substitute directly; the rest go
    // through let bindings so they are still evaluated exactly once.
    std::unordered_map<std::string, const Expr*> subst;
    std::vector<Binding> arg_bindings;
    for (size_t i = 0; i < e->args.size(); ++i) {
      Expr* arg = e->args[i];
      const bool trivial = arg->is_literal() || arg->kind == ExprKind::kVar;
      if (trivial) {
        subst[target->params[i]] = arg;
      } else {
        Binding b;
        b.kind = Binding::Kind::kValue;
        const std::string tmp = fresh(target->params[i]);
        b.names.push_back(tmp);
        b.value = arg;
        b.range = arg->range;
        arg_bindings.push_back(std::move(b));
        subst[target->params[i]] = ctx_.make_var(tmp, arg->range);
      }
    }
    Expr* inlined = substitute(body, subst, ctx_);
    inlined = rewrite(inlined, depth + 1);
    ++rewrites_;
    ++stats_.calls_inlined;
    if (arg_bindings.empty()) return inlined;
    return ctx_.make_let(std::move(arg_bindings), inlined, e->range);
  }

  AstContext& ctx_;
  const AnalysisResult& analysis_;
  const OptimizeOptions& options_;
  OptStats& stats_;
  std::unordered_map<std::string, FuncDecl*> by_name_;
  int rewrites_ = 0;
  int counter_ = 0;
};

}  // namespace

int pass_constant_fold(Program& program, AstContext& ctx, const OperatorTable& operators,
                       OptStats& stats) {
  return ConstFoldPass(ctx, operators, stats).run(program);
}

int pass_cse(Program& program, const OperatorTable& operators, OptStats& stats) {
  return CsePass(operators, stats).run(program);
}

int pass_dce(Program& program, const OperatorTable& operators, const std::string& entry_point,
             OptStats& stats, bool remove_functions) {
  return DcePass(operators, stats).run(program, entry_point, remove_functions);
}

int pass_inline(Program& program, AstContext& ctx, const AnalysisResult& analysis,
                const OptimizeOptions& options, OptStats& stats) {
  return InlinePass(program, ctx, analysis, options, stats).run(program);
}

OptStats optimize_program(Program& program, AstContext& ctx, const OperatorTable& operators,
                          const AnalysisResult& analysis, const OptimizeOptions& options,
                          const std::string& entry_point) {
  OptStats stats;
  for (int round = 0; round < options.max_rounds; ++round) {
    int changes = 0;
    if (options.inline_expansion) changes += pass_inline(program, ctx, analysis, options, stats);
    if (options.constant_fold) changes += pass_constant_fold(program, ctx, operators, stats);
    if (options.cse) changes += pass_cse(program, operators, stats);
    if (options.dce) {
      changes += pass_dce(program, operators, entry_point, stats, options.dce_functions);
    }
    ++stats.rounds;
    if (changes == 0) break;
  }
  return stats;
}

}  // namespace delirium
