// The optimizing passes of the Delirium compiler (§6.1 of the paper):
// constant propagation/folding, common sub-expression elimination,
// dead-code elimination, and inline function expansion.
//
// All passes are semantics-preserving tree rewrites. Because the language
// is deterministic and operators declare purity, the legality conditions
// are simple: only pure expressions are folded, shared, or deleted.
#pragma once

#include <cstdint>
#include <string>

#include "src/lang/ast.h"
#include "src/sema/env_analysis.h"
#include "src/sema/operator_table.h"

namespace delirium {

struct OptimizeOptions {
  bool constant_fold = true;
  bool cse = true;
  bool dce = true;
  bool inline_expansion = true;
  /// Remove functions unreachable from the entry point. The parallel
  /// compiler case study disables this per group: reachability through
  /// signature-only stubs is invisible.
  bool dce_functions = true;
  /// Functions whose body weight (node count) is at most this are
  /// candidates for inlining.
  uint32_t inline_max_weight = 24;
  /// Maximum nesting of inline expansions.
  int inline_max_depth = 4;
  /// Re-run the pipeline until it reaches a fixed point, at most this
  /// many rounds.
  int max_rounds = 4;
};

struct OptStats {
  int constants_folded = 0;
  int branches_resolved = 0;
  int cse_replacements = 0;
  int dead_bindings_removed = 0;
  int dead_functions_removed = 0;
  int calls_inlined = 0;
  int rounds = 0;

  int total() const {
    return constants_folded + branches_resolved + cse_replacements + dead_bindings_removed +
           dead_functions_removed + calls_inlined;
  }
};

/// Optimize `program` in place. `analysis` supplies recursion facts used
/// to gate inlining. Entry point(s) are roots for dead-function removal.
OptStats optimize_program(Program& program, AstContext& ctx, const OperatorTable& operators,
                          const AnalysisResult& analysis, const OptimizeOptions& options = {},
                          const std::string& entry_point = "main");

/// Individual passes, exposed for targeted tests. Each returns the number
/// of rewrites applied.
int pass_constant_fold(Program& program, AstContext& ctx, const OperatorTable& operators,
                       OptStats& stats);
int pass_cse(Program& program, const OperatorTable& operators, OptStats& stats);
int pass_dce(Program& program, const OperatorTable& operators, const std::string& entry_point,
             OptStats& stats, bool remove_functions = true);
int pass_inline(Program& program, AstContext& ctx, const AnalysisResult& analysis,
                const OptimizeOptions& options, OptStats& stats);

/// True when evaluating `e` cannot have effects: literals, variables, and
/// pure-operator applications over pure arguments. Conservative for
/// global function calls, let/if/iterate.
bool is_pure_expr(const Expr* e, const OperatorTable& operators);

/// Convert between compile-time constants and literal nodes.
bool expr_to_const(const Expr* e, ConstValue& out);
Expr* const_to_expr(const ConstValue& v, AstContext& ctx, SourceRange range);

/// Truthiness shared between the optimizer and the runtime: NULL, integer
/// zero, and float zero are false; everything else is true.
bool const_truthy(const ConstValue& v);

}  // namespace delirium
