// The Delirium compiler driver: lex → parse → macro expansion →
// environment analysis → optimization → graph conversion. Each pass is
// timed individually, which is how Table 1 of the paper reports the
// compiler's own cost.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/facts.h"
#include "src/analysis/graph_verify.h"
#include "src/analysis/sole_consumer.h"
#include "src/graph/graph_opt.h"
#include "src/graph/template.h"
#include "src/lang/ast.h"
#include "src/opt/optimizer.h"
#include "src/sema/env_analysis.h"
#include "src/sema/operator_table.h"

namespace delirium {

struct CompileOptions {
  bool optimize = true;
  /// Run the graph-level cleanup after conversion (only meaningful when
  /// `optimize` is set; bench_graph_opt ablates it).
  bool graph_opt = true;
  /// Run the sole-consumer analysis and annotate kUnique destructive
  /// edges for the runtime fast path. Independent of `optimize`.
  bool analyze_unique = true;
  /// Force the structural graph verifier. Debug builds always run it;
  /// release builds only when this is set (delc --verify-graphs).
  bool verify = false;
  OptimizeOptions opt;
  AnalysisOptions sema;
};

/// Wall-clock milliseconds per pass, in the paper's Table 1 order.
struct PassTimings {
  double lex_ms = 0;
  double parse_ms = 0;
  double macro_ms = 0;
  double env_ms = 0;
  double opt_ms = 0;
  double graph_ms = 0;
  double analysis_ms = 0;  // graph verifier + sole-consumer analysis

  double total_ms() const {
    return lex_ms + parse_ms + macro_ms + env_ms + opt_ms + graph_ms + analysis_ms;
  }
};

struct CompileResult {
  bool ok = false;
  CompiledProgram program;       // valid when ok
  PassTimings timings;
  OptStats opt_stats;
  GraphOptStats graph_opt_stats;
  AnalysisResult analysis;
  std::string diagnostics;       // rendered diagnostics (errors/warnings)
  size_t ast_nodes = 0;          // after macro expansion + optimization
  /// Sole-consumer verdicts (populated when options.analyze_unique).
  /// Lint findings are kept out of `diagnostics`: a kShared warning is
  /// advice, not a compile problem. delc --lint renders them.
  SoleConsumerStats sole_consumer;
  std::vector<LintFinding> lint;
  /// Structural defects from the graph verifier (debug builds and
  /// options.verify). Non-empty means a graph-construction bug.
  std::vector<VerifyIssue> verify_issues;
  /// The facts table computed over the final graphs (src/analysis/
  /// facts.h), valid when `has_facts`. Computed exactly once per
  /// compile and shared by every downstream consumer: the optimizer's
  /// rewrites, the verifier's strandedness diagnostics, the sole-
  /// consumer upgrade, the executors' priority hints, and
  /// `delc --analyze`. Absent when DELIRIUM_GRAPH_FACTS=0.
  GraphFacts facts;
  bool has_facts = false;
  /// Nodes marked on_critical_path by apply_sched_hints (0 when facts
  /// or DELIRIUM_SCHED_HINTS are off).
  size_t sched_hint_nodes = 0;
};

/// Compile Delirium source text against an operator table. The returned
/// program references nothing from the source buffer; it can outlive it.
CompileResult compile_source(const std::string& file_name, const std::string& text,
                             const OperatorTable& operators, const CompileOptions& options = {});

/// Convenience for tests/examples: throws std::runtime_error with the
/// diagnostics on failure.
CompiledProgram compile_or_throw(const std::string& text, const OperatorTable& operators,
                                 const CompileOptions& options = {});

}  // namespace delirium
