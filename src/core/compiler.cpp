#include "src/core/compiler.h"

#include <sstream>
#include <stdexcept>

#include "src/graph/graph_builder.h"
#include "src/lang/lexer.h"
#include "src/lang/macro.h"
#include "src/lang/parser.h"
#include "src/support/clock.h"
#include "src/support/diagnostics.h"
#include "src/support/source.h"

namespace delirium {

namespace {
size_t count_program_nodes(const Program& program) {
  size_t n = 0;
  for (const FuncDecl* f : program.functions) n += subtree_weight(f->body);
  return n;
}
}  // namespace

CompileResult compile_source(const std::string& file_name, const std::string& text,
                             const OperatorTable& operators, const CompileOptions& options) {
  CompileResult result;
  DiagnosticEngine diags;
  AstContext ctx;

  // Lexing includes building the source line index (SourceFile), matching
  // what the parallel compiler's dcc_lex operator does.
  Stopwatch sw;
  SourceFile file(file_name, text);
  std::vector<Token> tokens = Lexer(file, diags).lex_all();
  result.timings.lex_ms = sw.elapsed_ms();

  sw.reset();
  Parser parser(std::move(tokens), ctx, diags);
  Program program = parser.parse_program();
  result.timings.parse_ms = sw.elapsed_ms();

  sw.reset();
  expand_macros(program, ctx, diags);
  result.timings.macro_ms = sw.elapsed_ms();

  sw.reset();
  result.analysis = analyze_environment(program, operators, diags, options.sema);
  result.timings.env_ms = sw.elapsed_ms();

  if (diags.has_errors()) {
    result.diagnostics = diags.summary(file);
    return result;
  }

  sw.reset();
  if (options.optimize) {
    result.opt_stats = optimize_program(program, ctx, operators, result.analysis, options.opt,
                                        options.sema.entry_point);
  }
  result.timings.opt_ms = sw.elapsed_ms();
  result.ast_nodes = count_program_nodes(program);

#ifndef NDEBUG
  constexpr bool kDebugVerify = true;
#else
  constexpr bool kDebugVerify = false;
#endif
  const bool verify = kDebugVerify || options.verify;

  auto run_verifier = [&](const char* phase, const GraphFacts* facts) {
    std::vector<VerifyIssue> issues =
        verify_graphs(result.program, operators, &result.analysis, facts);
    for (VerifyIssue& issue : issues) {
      diags.error(SourceRange{}, std::string("graph verifier (after ") + phase +
                                     "): " + issue.message);
      result.verify_issues.push_back(std::move(issue));
    }
  };

  sw.reset();
  result.program =
      build_graphs(program, result.analysis, operators, diags, options.sema.entry_point);
  const bool graphs_ok = !diags.has_errors();
  result.timings.graph_ms = sw.elapsed_ms();

  sw.reset();
  if (verify && graphs_ok) run_verifier("build_graphs", nullptr);
  result.timings.analysis_ms = sw.elapsed_ms();

  // The facts table is computed exactly once, over the final graphs:
  // optimize_graphs recomputes facts per rewrite round anyway and hands
  // back the table for its fixpoint; with optimization off the compiler
  // computes it directly. Every consumer below shares this one table.
  sw.reset();
  const bool ran_graph_opt = options.optimize && options.graph_opt && graphs_ok;
  if (ran_graph_opt) {
    result.graph_opt_stats =
        optimize_graphs(result.program, operators, GraphOptOptions{}, &result.facts);
    result.has_facts = graph_facts_enabled();
  } else if (graphs_ok && graph_facts_enabled()) {
    result.facts = compute_graph_facts(result.program, operators, FactsOptions::from_env());
    result.has_facts = true;
  }
  result.timings.graph_ms += sw.elapsed_ms();

  sw.reset();
  if (!diags.has_errors() && graphs_ok) {
    const GraphFacts* facts = result.has_facts ? &result.facts : nullptr;
    // Consumer: executors. Critical-path marks become ready-queue
    // sub-levels (ExecConfig::cost_hints); vacuous when heights are off.
    if (result.has_facts) {
      result.sched_hint_nodes = apply_sched_hints(result.program, result.facts);
    }
    // Consumer: verifier. Re-checks rewritten graphs and promotes
    // strandedness facts to compile-time diagnostics.
    if (verify && ran_graph_opt) {
      run_verifier("optimize_graphs", facts);
    } else if (verify && facts != nullptr) {
      run_verifier("graph facts", facts);
    }
    // Consumer: sole-consumer analysis. The interprocedural upgrade has
    // its own kill switch so CoW behavior can be A/B'd in isolation.
    if (options.analyze_unique && !diags.has_errors()) {
      const GraphFacts* sole_facts =
          (result.has_facts && FactsOptions::from_env().fresh_returns) ? facts : nullptr;
      result.sole_consumer =
          analyze_sole_consumers(result.program, operators, &result.lint, sole_facts);
    }
  }
  result.timings.analysis_ms += sw.elapsed_ms();

  result.diagnostics = diags.summary(file);
  result.ok = !diags.has_errors();
  return result;
}

CompiledProgram compile_or_throw(const std::string& text, const OperatorTable& operators,
                                 const CompileOptions& options) {
  CompileResult result = compile_source("<string>", text, operators, options);
  if (!result.ok) {
    throw std::runtime_error("Delirium compilation failed:\n" + result.diagnostics);
  }
  return std::move(result.program);
}

}  // namespace delirium
