#include "src/graph/graph_opt.h"

#include <vector>

namespace delirium {

namespace {

/// A node's execution can matter even if its result is unused: impure
/// operators have effects, and subgraph expansions (calls, dispatches)
/// may contain them.
bool always_needed(const Node& node, const OperatorTable& operators) {
  switch (node.kind) {
    case NodeKind::kReturn:
    case NodeKind::kCall:
    case NodeKind::kCallClosure:
    case NodeKind::kIfDispatch:
    case NodeKind::kParMap:
      return true;
    case NodeKind::kParam:
      // Parameters are slots of the activation interface; they stay.
      return true;
    case NodeKind::kOperator: {
      const OperatorInfo* info = operators.lookup(node.op_name);
      return info == nullptr || !info->pure;
    }
    case NodeKind::kConst:
    case NodeKind::kTupleMake:
    case NodeKind::kTupleGet:
    case NodeKind::kMakeClosure:
      return false;
  }
  return true;
}

size_t remove_dead_nodes(Template& tmpl, const OperatorTable& operators) {
  const size_t n = tmpl.nodes.size();
  // Producer of each input port: port (node, index) -> producer node.
  // Built from the consumer lists.
  std::vector<std::vector<uint32_t>> producers(n);
  for (size_t i = 0; i < n; ++i) producers[i].assign(tmpl.nodes[i].num_inputs, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (const PortRef& c : tmpl.nodes[i].consumers) {
      producers[c.node][c.port] = i;
    }
  }

  // Mark needed nodes: seeds + transitive producers.
  std::vector<uint8_t> needed(n, 0);
  std::vector<uint32_t> work;
  for (uint32_t i = 0; i < n; ++i) {
    if (always_needed(tmpl.nodes[i], operators)) {
      needed[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const uint32_t node = work.back();
    work.pop_back();
    for (uint32_t producer : producers[node]) {
      if (!needed[producer]) {
        needed[producer] = 1;
        work.push_back(producer);
      }
    }
  }

  size_t removed = 0;
  for (uint8_t flag : needed) removed += flag == 0 ? 1 : 0;
  if (removed == 0) return 0;

  // Compact: old id -> new id; drop dead nodes and edges into them.
  std::vector<uint32_t> remap(n, 0);
  std::vector<Node> kept;
  kept.reserve(n - removed);
  for (uint32_t i = 0; i < n; ++i) {
    if (needed[i]) {
      remap[i] = static_cast<uint32_t>(kept.size());
      kept.push_back(std::move(tmpl.nodes[i]));
    }
  }
  uint32_t slots = 0;
  for (Node& node : kept) {
    node.input_offset = slots;
    slots += node.num_inputs;
    std::vector<PortRef> consumers;
    consumers.reserve(node.consumers.size());
    for (const PortRef& c : node.consumers) {
      if (needed[c.node]) consumers.push_back(PortRef{remap[c.node], c.port});
    }
    node.consumers = std::move(consumers);
  }
  tmpl.nodes = std::move(kept);
  tmpl.value_slots = slots;
  tmpl.return_node = remap[tmpl.return_node];
  for (uint32_t& p : tmpl.param_nodes) p = remap[p];
  return removed;
}

}  // namespace

GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators) {
  GraphOptStats stats;

  // 1. Dead-node elimination + slot compaction, per template.
  for (auto& tmpl : program.templates) {
    const uint32_t before_slots = tmpl->value_slots;
    stats.dead_nodes_removed += remove_dead_nodes(*tmpl, operators);
    stats.slots_reclaimed += before_slots - tmpl->value_slots;
  }

  // 2. Prune unreachable anonymous templates. Named (global function)
  // templates stay: they are callable through run_function.
  const size_t count = program.templates.size();
  std::vector<uint8_t> reachable(count, 0);
  std::vector<uint32_t> work;
  for (const auto& [name, index] : program.by_name) {
    if (!reachable[index]) {
      reachable[index] = 1;
      work.push_back(index);
    }
  }
  while (!work.empty()) {
    const uint32_t t = work.back();
    work.pop_back();
    for (const Node& node : program.templates[t]->nodes) {
      if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
        if (!reachable[node.target_template]) {
          reachable[node.target_template] = 1;
          work.push_back(node.target_template);
        }
      }
    }
  }
  size_t pruned = 0;
  for (uint8_t flag : reachable) pruned += flag == 0 ? 1 : 0;
  if (pruned > 0) {
    std::vector<uint32_t> remap(count, 0);
    std::vector<std::unique_ptr<Template>> kept;
    kept.reserve(count - pruned);
    for (uint32_t t = 0; t < count; ++t) {
      if (reachable[t]) {
        remap[t] = static_cast<uint32_t>(kept.size());
        kept.push_back(std::move(program.templates[t]));
      }
    }
    for (auto& tmpl : kept) {
      for (Node& node : tmpl->nodes) {
        if (node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) {
          node.target_template = remap[node.target_template];
        }
      }
    }
    program.templates = std::move(kept);
    for (auto& [name, index] : program.by_name) index = remap[index];
    program.entry = remap[program.entry];
    stats.templates_pruned = pruned;
  }
  return stats;
}

}  // namespace delirium
