// Graph-level optimization.
//
// §6.1: "Unnecessary nodes in the graph translate into extra overhead at
// run-time, so the compiler uses a number of optimization techniques to
// improve the output." The AST passes (src/opt) remove most waste before
// conversion; this pass cleans the coordination graphs themselves. It
// runs rewrite rounds to a fixpoint, so a second invocation is always a
// no-op (stats report zero changes) — each round applies:
//
//   * constant folding — nodes whose value the facts engine
//     (src/analysis/facts.h) proves constant on every execution are
//     rewritten to kConst and their input edges dropped; pure calls with
//     constant results fold across template boundaries;
//   * dead-parameter pruning — parameters the liveness facts prove
//     unobservable (including loop-carried ones) are removed, with every
//     call and closure-creation site shrunk in the same synchronized
//     pass;
//   * tuple-plumbing elision — a kTupleMake whose every consumer is a
//     statically-matched kTupleGet is bypassed: producer outputs wire
//     directly to the gets' consumers, promoting the runtime
//     decomposition fast path into a compile-time rewrite;
//   * chain fusion — maximal linear chains of pure, single-consumer
//     operator nodes collapse into one kFused node, so the executor
//     dispatches, schedules, traces, and allocates input slots once per
//     chain instead of once per node;
//   * dead-node elimination — nodes whose result nobody consumes and
//     whose execution cannot have effects (constants, parameters, tuple
//     plumbing, closure creation, and *pure* operators) are deleted, and
//     their inputs released recursively;
//   * unreachable-template pruning — templates no longer referenced by
//     any call or closure-creation node are dropped;
//   * slot compaction — input slots are renumbered densely after every
//     structural change, shrinking every future activation.
//
// The implementation lives in src/analysis/graph_opt.cpp (it consumes
// the GraphFacts tables, which sit above this library).
#pragma once

#include "src/graph/template.h"
#include "src/sema/operator_table.h"

namespace delirium {

struct GraphFacts;

/// Which rewrite families to run. The DELIRIUM_GRAPH_FACTS /
/// DELIRIUM_FACTS_FOLD / DELIRIUM_FACTS_DEADPARAM /
/// DELIRIUM_FACTS_TUPLES / DELIRIUM_FACTS_FUSE kill switches are
/// applied on top of these inside optimize_graphs — the environment can
/// only disable a rewrite, never force one past an explicit `false`.
struct GraphOptOptions {
  /// Master: compute GraphFacts and run the fact-driven rewrites
  /// (folding, dead-parameter pruning, tuple elision, chain fusion).
  /// Off reproduces the pre-facts optimizer: dead-node elimination and
  /// template pruning only.
  bool facts = true;
  bool fold_constants = true;
  bool prune_dead_params = true;
  bool elide_tuples = true;
  bool fuse_chains = true;
};

struct GraphOptStats {
  size_t dead_nodes_removed = 0;
  size_t templates_pruned = 0;
  size_t slots_reclaimed = 0;
  size_t consts_folded = 0;
  size_t dead_params_pruned = 0;
  size_t tuples_elided = 0;        // kTupleMake/kTupleGet pairs bypassed
  size_t chains_fused = 0;         // kFused nodes created (or regrown)
  size_t fused_nodes_absorbed = 0; // operator nodes folded into chains
  /// Rewrite rounds run, including the final no-change round that
  /// proves the fixpoint. Not a change count: excluded from total().
  size_t rounds = 0;

  size_t total() const {
    return dead_nodes_removed + templates_pruned + slots_reclaimed + consts_folded +
           dead_params_pruned + tuples_elided + chains_fused + fused_nodes_absorbed;
  }
};

/// Optimize `program` in place, to a fixpoint. Safe by construction:
/// results, effects, and fault behavior are unchanged for any program
/// whose operators honor their purity annotations (the same contract
/// the AST optimizer relies on). When `final_facts` is non-null it
/// receives a fact table computed on the *optimized* program with the
/// full FactsOptions::from_env() analysis set — the one table the
/// compiler hands to every downstream consumer.
GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators,
                              const GraphOptOptions& options, GraphFacts* final_facts = nullptr);
GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators);

}  // namespace delirium
