// Graph-level optimization.
//
// §6.1: "Unnecessary nodes in the graph translate into extra overhead at
// run-time, so the compiler uses a number of optimization techniques to
// improve the output." The AST passes (src/opt) remove most waste before
// conversion; this pass cleans the coordination graphs themselves:
//
//   * dead-node elimination — nodes whose result nobody consumes and
//     whose execution cannot have effects (constants, parameters, tuple
//     plumbing, closure creation, and *pure* operators) are deleted, and
//     their inputs released recursively;
//   * unreachable-template pruning — templates no longer referenced by
//     any call or closure-creation node are dropped;
//   * slot compaction — input slots are renumbered densely after node
//     removal, shrinking every future activation of the template.
#pragma once

#include "src/graph/template.h"
#include "src/sema/operator_table.h"

namespace delirium {

struct GraphOptStats {
  size_t dead_nodes_removed = 0;
  size_t templates_pruned = 0;
  size_t slots_reclaimed = 0;

  size_t total() const { return dead_nodes_removed + templates_pruned + slots_reclaimed; }
};

/// Optimize `program` in place. Safe by construction: results are
/// unchanged for any program whose operators honor their purity
/// annotations (the same contract the AST optimizer relies on).
GraphOptStats optimize_graphs(CompiledProgram& program, const OperatorTable& operators);

}  // namespace delirium
