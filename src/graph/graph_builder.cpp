#include "src/graph/graph_builder.h"

#include <optional>
#include <unordered_set>

namespace delirium {

namespace {

constexpr uint32_t kInvalidNode = 0xffffffffu;

/// Collects free variables of an expression: names used but not bound
/// within it, filtered to names bound in the enclosing template (globals
/// and operators resolve without capture). Order of first occurrence.
class FreeVarCollector {
 public:
  explicit FreeVarCollector(std::function<bool(const std::string&)> is_enclosing_local)
      : is_enclosing_local_(std::move(is_enclosing_local)) {}

  /// Names listed in `pre_bound` are treated as bound for the whole walk.
  std::vector<std::string> collect(const Expr* e,
                                   const std::vector<std::string>& pre_bound = {}) {
    for (const std::string& n : pre_bound) ++bound_[n];
    walk(e);
    return std::move(result_);
  }

 private:
  void found(const std::string& name) {
    if (bound_.count(name) > 0) return;
    if (!is_enclosing_local_(name)) return;
    if (seen_.insert(name).second) result_.push_back(name);
  }

  void walk(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::kVar:
        found(e->str_value);
        return;
      case ExprKind::kLet: {
        std::vector<std::string> introduced;
        for (const Binding& b : e->bindings) {
          if (b.kind == Binding::Kind::kFunction) {
            introduce(b.names[0], introduced);
            std::vector<std::string> fn_introduced;
            for (const std::string& p : b.params) introduce(p, fn_introduced);
            walk(b.value);
            retract(fn_introduced);
          } else {
            walk(b.value);
            for (const std::string& n : b.names) introduce(n, introduced);
          }
        }
        walk(e->body);
        retract(introduced);
        return;
      }
      case ExprKind::kIterate: {
        for (const LoopVar& lv : e->loop_vars) walk(lv.init);
        std::vector<std::string> introduced;
        for (const LoopVar& lv : e->loop_vars) introduce(lv.name, introduced);
        for (const LoopVar& lv : e->loop_vars) walk(lv.step);
        walk(e->cond);
        retract(introduced);
        return;
      }
      default:
        if (e->callee != nullptr) walk(e->callee);
        for (const Expr* a : e->args) walk(a);
        if (e->cond != nullptr) walk(e->cond);
        if (e->then_branch != nullptr) walk(e->then_branch);
        if (e->else_branch != nullptr) walk(e->else_branch);
        return;
    }
  }

  void introduce(const std::string& name, std::vector<std::string>& log) {
    ++bound_[name];
    log.push_back(name);
  }
  void retract(const std::vector<std::string>& log) {
    for (const std::string& n : log) {
      auto it = bound_.find(n);
      if (--it->second == 0) bound_.erase(it);
    }
  }

  std::function<bool(const std::string&)> is_enclosing_local_;
  std::unordered_map<std::string, int> bound_;
  std::unordered_set<std::string> seen_;
  std::vector<std::string> result_;
};

class ProgramBuilder;

/// Builds one template. The environment maps names to producer nodes,
/// plus "self" entries for directly recursive local functions and loop
/// templates (a self-call compiles to a direct kCall passing the captured
/// values through as trailing arguments).
class TemplateBuilder {
 public:
  struct SelfInfo {
    uint32_t template_index = 0;
    /// Nodes (in *this* template) holding the values the recursive
    /// template expects as its trailing capture parameters.
    std::vector<uint32_t> capture_nodes;
  };

  TemplateBuilder(ProgramBuilder& owner, Template& tmpl) : owner_(owner), tmpl_(tmpl) {}

  uint32_t add_node(NodeKind kind, std::vector<uint32_t> inputs);
  uint32_t add_const(ConstValue v);
  uint32_t add_param(uint32_t index, const std::string& name);

  void bind(const std::string& name, uint32_t node) { env_.push_back({name, node, {}}); }
  void bind_self(const std::string& name, SelfInfo self) {
    env_.push_back({name, kInvalidNode, std::move(self)});
  }
  size_t env_mark() const { return env_.size(); }
  void env_release(size_t m) { env_.resize(m); }

  bool is_local(const std::string& name) const { return find(name) != nullptr; }

  uint32_t compile(const Expr* e, bool tail);
  void finish(uint32_t body_node);

  Template& tmpl() { return tmpl_; }

 private:
  struct EnvEntry {
    std::string name;
    uint32_t node = kInvalidNode;
    std::optional<SelfInfo> self;
  };

  /// How the free variables of a sub-expression are passed into an
  /// anonymous sub-template: a flat list of captured values (each becomes
  /// a trailing parameter of the sub-template), plus instructions to
  /// re-create value and self bindings inside the sub-template.
  struct CapturePlan {
    std::vector<uint32_t> parent_nodes;  // one per capture slot
    struct ValueBinding {
      std::string name;
      uint32_t slot;  // index into the capture slots
    };
    std::vector<ValueBinding> values;
    struct SelfBinding {
      std::string name;
      uint32_t template_index = 0;
      std::vector<uint32_t> slots;  // capture slots holding its captures
    };
    std::vector<SelfBinding> selves;

    size_t slot_count() const { return parent_nodes.size(); }
  };

  const EnvEntry* find(const std::string& name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  CapturePlan plan_captures(const std::vector<std::string>& free_names, SourceRange where);
  /// Adds capture parameters (starting at param index `first_index`) to a
  /// sub-builder and re-creates the planned bindings there.
  static void install_captures(TemplateBuilder& sub, const CapturePlan& plan,
                               uint32_t first_index);

  uint32_t compile_var(const Expr* e);
  uint32_t compile_apply(const Expr* e, bool tail);
  uint32_t compile_let(const Expr* e, bool tail);
  uint32_t compile_if(const Expr* e, bool tail);
  uint32_t compile_iterate(const Expr* e, bool tail);
  uint32_t compile_local_function(const Binding& b);
  uint32_t make_branch_closure(const Expr* branch, const char* label);

  ProgramBuilder& owner_;
  Template& tmpl_;
  std::vector<EnvEntry> env_;
};

class ProgramBuilder {
 public:
  ProgramBuilder(const Program& program, const AnalysisResult& analysis,
                 const OperatorTable& operators, DiagnosticEngine& diags)
      : program_(program), analysis_(analysis), operators_(operators), diags_(diags) {}

  CompiledProgram run(const std::string& entry_point) {
    // Pre-allocate a template per global function so calls can reference
    // them before their bodies are built.
    for (const FuncDecl* f : program_.functions) {
      const uint32_t index = new_template(f->name);
      out_.by_name[f->name] = index;
      out_.templates[index]->num_params = static_cast<uint32_t>(f->params.size());
      out_.templates[index]->recursive = analysis_.is_recursive(f->name);
    }
    for (const FuncDecl* f : program_.functions) {
      // Signature-only stubs (used by the parallel compiler case study to
      // resolve cross-group calls) keep their empty template shell.
      if (f->body == nullptr) continue;
      Template& tmpl = *out_.templates[out_.by_name[f->name]];
      TemplateBuilder builder(*this, tmpl);
      for (uint32_t i = 0; i < f->params.size(); ++i) {
        builder.bind(f->params[i], builder.add_param(i, f->params[i]));
      }
      const uint32_t body = builder.compile(f->body, /*tail=*/true);
      builder.finish(body);
    }
    auto it = out_.by_name.find(entry_point);
    if (it == out_.by_name.end()) {
      diags_.error({}, "graph conversion: missing entry point '" + entry_point + "'");
    } else {
      out_.entry = it->second;
    }
    return std::move(out_);
  }

  uint32_t new_template(std::string name) {
    auto tmpl = std::make_unique<Template>();
    tmpl->name = std::move(name);
    out_.templates.push_back(std::move(tmpl));
    return static_cast<uint32_t>(out_.templates.size() - 1);
  }

  Template& tmpl(uint32_t index) { return *out_.templates[index]; }

  std::optional<uint32_t> global_index(const std::string& name) const {
    auto it = out_.by_name.find(name);
    if (it == out_.by_name.end()) return std::nullopt;
    return it->second;
  }

  bool is_recursive_fn(const std::string& name) const { return analysis_.is_recursive(name); }
  const OperatorTable& operators() const { return operators_; }
  DiagnosticEngine& diags() { return diags_; }
  uint32_t anon_counter() { return anon_counter_++; }

 private:
  const Program& program_;
  const AnalysisResult& analysis_;
  const OperatorTable& operators_;
  DiagnosticEngine& diags_;
  CompiledProgram out_;
  uint32_t anon_counter_ = 0;
};

// --- TemplateBuilder implementation -----------------------------------

uint32_t TemplateBuilder::add_node(NodeKind kind, std::vector<uint32_t> inputs) {
  Node node;
  node.kind = kind;
  node.num_inputs = static_cast<uint16_t>(inputs.size());
  node.input_offset = tmpl_.value_slots;
  tmpl_.value_slots += node.num_inputs;
  const uint32_t id = static_cast<uint32_t>(tmpl_.nodes.size());
  tmpl_.nodes.push_back(std::move(node));
  for (uint16_t port = 0; port < inputs.size(); ++port) {
    tmpl_.nodes[inputs[port]].consumers.push_back(PortRef{id, port});
  }
  return id;
}

uint32_t TemplateBuilder::add_const(ConstValue v) {
  const uint32_t id = add_node(NodeKind::kConst, {});
  tmpl_.nodes[id].literal = std::move(v);
  tmpl_.nodes[id].debug_label = "const";
  return id;
}

uint32_t TemplateBuilder::add_param(uint32_t index, const std::string& name) {
  const uint32_t id = add_node(NodeKind::kParam, {});
  tmpl_.nodes[id].param_index = index;
  tmpl_.nodes[id].debug_label = name;
  if (tmpl_.param_nodes.size() <= index) tmpl_.param_nodes.resize(index + 1, kInvalidNode);
  tmpl_.param_nodes[index] = id;
  return id;
}

void TemplateBuilder::finish(uint32_t body_node) {
  const uint32_t ret = add_node(NodeKind::kReturn, {body_node});
  tmpl_.nodes[ret].debug_label = "return";
  tmpl_.return_node = ret;
}

TemplateBuilder::CapturePlan TemplateBuilder::plan_captures(
    const std::vector<std::string>& free_names, SourceRange where) {
  CapturePlan plan;
  for (const std::string& name : free_names) {
    const EnvEntry* entry = find(name);
    if (entry == nullptr) {
      owner_.diags().error(where, "graph conversion: cannot capture unknown name '" + name + "'");
      continue;
    }
    if (entry->self.has_value()) {
      // Re-export a recursive function: pass its captured values along
      // and re-create the self binding inside the sub-template.
      CapturePlan::SelfBinding sb;
      sb.name = name;
      sb.template_index = entry->self->template_index;
      for (uint32_t node : entry->self->capture_nodes) {
        sb.slots.push_back(static_cast<uint32_t>(plan.parent_nodes.size()));
        plan.parent_nodes.push_back(node);
      }
      plan.selves.push_back(std::move(sb));
    } else {
      plan.values.push_back(
          {name, static_cast<uint32_t>(plan.parent_nodes.size())});
      plan.parent_nodes.push_back(entry->node);
    }
  }
  return plan;
}

void TemplateBuilder::install_captures(TemplateBuilder& sub, const CapturePlan& plan,
                                       uint32_t first_index) {
  std::vector<uint32_t> slot_params(plan.slot_count());
  for (uint32_t i = 0; i < plan.slot_count(); ++i) {
    slot_params[i] = sub.add_param(first_index + i, "_cap" + std::to_string(i));
  }
  for (const CapturePlan::ValueBinding& v : plan.values) {
    sub.tmpl().nodes[slot_params[v.slot]].debug_label = v.name;
    sub.bind(v.name, slot_params[v.slot]);
  }
  for (const CapturePlan::SelfBinding& s : plan.selves) {
    SelfInfo self;
    self.template_index = s.template_index;
    for (uint32_t slot : s.slots) self.capture_nodes.push_back(slot_params[slot]);
    sub.bind_self(s.name, std::move(self));
  }
}

uint32_t TemplateBuilder::compile(const Expr* e, bool tail) {
  switch (e->kind) {
    case ExprKind::kIntLit: return add_const(ConstValue{e->int_value});
    case ExprKind::kFloatLit: return add_const(ConstValue{e->float_value});
    case ExprKind::kStringLit: return add_const(ConstValue{e->str_value});
    case ExprKind::kNullLit: return add_const(ConstValue{std::monostate{}});
    case ExprKind::kVar: return compile_var(e);
    case ExprKind::kTuple: {
      std::vector<uint32_t> inputs;
      inputs.reserve(e->args.size());
      for (const Expr* a : e->args) inputs.push_back(compile(a, false));
      const uint32_t id = add_node(NodeKind::kTupleMake, std::move(inputs));
      tmpl_.nodes[id].debug_label = "tuple";
      return id;
    }
    case ExprKind::kApply: return compile_apply(e, tail);
    case ExprKind::kLet: return compile_let(e, tail);
    case ExprKind::kIf: return compile_if(e, tail);
    case ExprKind::kIterate: return compile_iterate(e, tail);
  }
  owner_.diags().error(e->range, "graph conversion: unhandled expression");
  return add_const(ConstValue{std::monostate{}});
}

uint32_t TemplateBuilder::compile_var(const Expr* e) {
  if (const EnvEntry* entry = find(e->str_value)) {
    if (entry->self.has_value()) {
      owner_.diags().error(e->range, "recursive local function '" + e->str_value +
                                         "' cannot be used as a first-class value");
      return add_const(ConstValue{std::monostate{}});
    }
    return entry->node;
  }
  if (auto index = owner_.global_index(e->str_value)) {
    // A global function used as a value: a closure with no captures.
    const uint32_t id = add_node(NodeKind::kMakeClosure, {});
    tmpl_.nodes[id].target_template = *index;
    tmpl_.nodes[id].debug_label = "closure:" + e->str_value;
    return id;
  }
  owner_.diags().error(e->range, "graph conversion: unresolved name '" + e->str_value + "'");
  return add_const(ConstValue{std::monostate{}});
}

uint32_t TemplateBuilder::compile_apply(const Expr* e, bool tail) {
  std::vector<uint32_t> arg_nodes;
  arg_nodes.reserve(e->args.size());
  for (const Expr* a : e->args) arg_nodes.push_back(compile(a, false));

  if (e->callee != nullptr && e->callee->kind == ExprKind::kVar) {
    const std::string& name = e->callee->str_value;
    if (const EnvEntry* entry = find(name)) {
      if (entry->self.has_value()) {
        // Direct self-recursion: call own template, passing captures
        // through unchanged.
        std::vector<uint32_t> inputs = std::move(arg_nodes);
        for (uint32_t cap : entry->self->capture_nodes) inputs.push_back(cap);
        const uint32_t id = add_node(NodeKind::kCall, std::move(inputs));
        tmpl_.nodes[id].target_template = entry->self->template_index;
        tmpl_.nodes[id].priority = PriorityClass::kRecursiveCallClosure;
        tmpl_.nodes[id].is_tail = tail;
        tmpl_.nodes[id].range = e->range;
        tmpl_.nodes[id].debug_label = "call:" + name;
        return id;
      }
      // Closure call through a local value.
      std::vector<uint32_t> inputs{entry->node};
      for (uint32_t a : arg_nodes) inputs.push_back(a);
      const uint32_t id = add_node(NodeKind::kCallClosure, std::move(inputs));
      tmpl_.nodes[id].priority = PriorityClass::kCallClosure;
      tmpl_.nodes[id].is_tail = tail;
      tmpl_.nodes[id].range = e->range;
      tmpl_.nodes[id].debug_label = "callc:" + name;
      return id;
    }
    if (auto target = owner_.global_index(name)) {
      if (arg_nodes.size() != owner_.tmpl(*target).num_params) {
        // Arity disagrees with the target — possible only when the
        // optimizer substituted a function value into the callee slot
        // (sema rejects written-out direct calls). The language defines
        // this as a *runtime* error, so keep the dynamic closure-call
        // form instead of emitting a kCall the verifier would reject.
        const uint32_t clo = add_node(NodeKind::kMakeClosure, {});
        tmpl_.nodes[clo].target_template = *target;
        tmpl_.nodes[clo].debug_label = "closure:" + name;
        std::vector<uint32_t> inputs{clo};
        for (uint32_t a : arg_nodes) inputs.push_back(a);
        const uint32_t id = add_node(NodeKind::kCallClosure, std::move(inputs));
        tmpl_.nodes[id].priority = PriorityClass::kCallClosure;
        tmpl_.nodes[id].is_tail = tail;
        tmpl_.nodes[id].range = e->range;
        tmpl_.nodes[id].debug_label = "callc:" + name;
        return id;
      }
      const uint32_t id = add_node(NodeKind::kCall, std::move(arg_nodes));
      tmpl_.nodes[id].target_template = *target;
      tmpl_.nodes[id].priority = owner_.is_recursive_fn(name)
                                     ? PriorityClass::kRecursiveCallClosure
                                     : PriorityClass::kCallClosure;
      tmpl_.nodes[id].is_tail = tail;
      tmpl_.nodes[id].range = e->range;
      tmpl_.nodes[id].debug_label = "call:" + name;
      return id;
    }
    if (name == "parmap" && arg_nodes.size() == 2 &&
        owner_.operators().index_of(name) < 0) {
      // Built-in special form: dynamic fan-out over a package. A global
      // function or registered operator of the same name wins (checked
      // above / below), mirroring sema's resolution order.
      const uint32_t id = add_node(NodeKind::kParMap, std::move(arg_nodes));
      tmpl_.nodes[id].priority = PriorityClass::kCallClosure;
      tmpl_.nodes[id].is_tail = tail;
      tmpl_.nodes[id].range = e->range;
      tmpl_.nodes[id].debug_label = "parmap";
      return id;
    }
    const int op_index = owner_.operators().index_of(name);
    if (op_index >= 0) {
      const uint32_t id = add_node(NodeKind::kOperator, std::move(arg_nodes));
      tmpl_.nodes[id].op_index = op_index;
      tmpl_.nodes[id].op_name = name;
      tmpl_.nodes[id].range = e->range;
      tmpl_.nodes[id].debug_label = name;
      return id;
    }
    owner_.diags().error(e->range, "graph conversion: unresolved callee '" + name + "'");
    return add_const(ConstValue{std::monostate{}});
  }

  // Computed callee: evaluate it, then call through the closure.
  const uint32_t callee_node = compile(e->callee, false);
  std::vector<uint32_t> inputs{callee_node};
  for (uint32_t a : arg_nodes) inputs.push_back(a);
  const uint32_t id = add_node(NodeKind::kCallClosure, std::move(inputs));
  tmpl_.nodes[id].priority = PriorityClass::kCallClosure;
  tmpl_.nodes[id].is_tail = tail;
  tmpl_.nodes[id].range = e->range;
  tmpl_.nodes[id].debug_label = "callc";
  return id;
}

uint32_t TemplateBuilder::compile_local_function(const Binding& b) {
  auto is_enclosing = [this](const std::string& n) { return is_local(n); };
  std::vector<std::string> pre_bound = b.params;
  pre_bound.push_back(b.names[0]);
  std::vector<std::string> free_names =
      FreeVarCollector(is_enclosing).collect(b.value, pre_bound);
  CapturePlan plan = plan_captures(free_names, b.range);

  const uint32_t index =
      owner_.new_template(tmpl_.name + "$" + b.names[0] + std::to_string(owner_.anon_counter()));
  Template& sub = owner_.tmpl(index);
  sub.num_params = static_cast<uint32_t>(b.params.size() + plan.slot_count());
  sub.num_captures = static_cast<uint32_t>(plan.slot_count());

  {
    TemplateBuilder builder(owner_, sub);
    for (uint32_t i = 0; i < b.params.size(); ++i) {
      builder.bind(b.params[i], builder.add_param(i, b.params[i]));
    }
    install_captures(builder, plan, static_cast<uint32_t>(b.params.size()));
    // Self binding: the function's own captures are its capture params.
    SelfInfo self;
    self.template_index = index;
    for (uint32_t i = 0; i < plan.slot_count(); ++i) {
      self.capture_nodes.push_back(sub.param_nodes[b.params.size() + i]);
    }
    builder.bind_self(b.names[0], std::move(self));
    const uint32_t body = builder.compile(b.value, /*tail=*/true);
    builder.finish(body);
  }
  for (const Node& n : sub.nodes) {
    if (n.kind == NodeKind::kCall && n.target_template == index) sub.recursive = true;
  }

  const uint32_t id = add_node(NodeKind::kMakeClosure, std::move(plan.parent_nodes));
  tmpl_.nodes[id].target_template = index;
  tmpl_.nodes[id].debug_label = "closure:" + b.names[0];
  return id;
}

uint32_t TemplateBuilder::compile_let(const Expr* e, bool tail) {
  const size_t mark = env_mark();
  for (const Binding& b : e->bindings) {
    switch (b.kind) {
      case Binding::Kind::kValue: {
        const uint32_t node = compile(b.value, false);
        bind(b.names[0], node);
        break;
      }
      case Binding::Kind::kDecompose: {
        const uint32_t pkg = compile(b.value, false);
        for (uint32_t i = 0; i < b.names.size(); ++i) {
          const uint32_t get = add_node(NodeKind::kTupleGet, {pkg});
          tmpl_.nodes[get].tuple_index = i;
          tmpl_.nodes[get].debug_label = "get:" + b.names[i];
          bind(b.names[i], get);
        }
        break;
      }
      case Binding::Kind::kFunction: {
        const uint32_t clo = compile_local_function(b);
        bind(b.names[0], clo);
        break;
      }
    }
  }
  const uint32_t body = compile(e->body, tail);
  env_release(mark);
  return body;
}

uint32_t TemplateBuilder::make_branch_closure(const Expr* branch, const char* label) {
  auto is_enclosing = [this](const std::string& n) { return is_local(n); };
  std::vector<std::string> free_names = FreeVarCollector(is_enclosing).collect(branch);
  CapturePlan plan = plan_captures(free_names, branch->range);

  const uint32_t index =
      owner_.new_template(tmpl_.name + "$" + label + std::to_string(owner_.anon_counter()));
  Template& sub = owner_.tmpl(index);
  sub.num_params = static_cast<uint32_t>(plan.slot_count());
  sub.num_captures = sub.num_params;  // a branch takes no explicit args
  {
    TemplateBuilder builder(owner_, sub);
    install_captures(builder, plan, 0);
    const uint32_t body = builder.compile(branch, /*tail=*/true);
    builder.finish(body);
  }

  const uint32_t id = add_node(NodeKind::kMakeClosure, std::move(plan.parent_nodes));
  tmpl_.nodes[id].target_template = index;
  tmpl_.nodes[id].debug_label = std::string("closure:") + label;
  return id;
}

uint32_t TemplateBuilder::compile_if(const Expr* e, bool tail) {
  const uint32_t cond = compile(e->cond, false);
  const uint32_t then_clo = make_branch_closure(e->then_branch, "then");
  const uint32_t else_clo = make_branch_closure(e->else_branch, "else");
  const uint32_t id = add_node(NodeKind::kIfDispatch, {cond, then_clo, else_clo});
  tmpl_.nodes[id].priority = PriorityClass::kCallClosure;
  tmpl_.nodes[id].is_tail = tail;
  tmpl_.nodes[id].debug_label = "if";
  return id;
}

uint32_t TemplateBuilder::compile_iterate(const Expr* e, bool tail) {
  // Free names of the loop interior (steps + condition), beyond the loop
  // variables, are passed into the loop template as trailing parameters.
  auto is_enclosing = [this](const std::string& n) { return is_local(n); };
  std::vector<std::string> loop_names;
  for (const LoopVar& lv : e->loop_vars) loop_names.push_back(lv.name);
  std::vector<std::string> free_names;
  {
    std::unordered_set<std::string> seen;
    auto add_from = [&](const Expr* part) {
      for (const std::string& n : FreeVarCollector(is_enclosing).collect(part, loop_names)) {
        if (seen.insert(n).second) free_names.push_back(n);
      }
    };
    for (const LoopVar& lv : e->loop_vars) add_from(lv.step);
    add_from(e->cond);
  }
  CapturePlan plan = plan_captures(free_names, e->range);

  const uint32_t n_loop = static_cast<uint32_t>(e->loop_vars.size());
  const uint32_t n_caps = static_cast<uint32_t>(plan.slot_count());

  const uint32_t loop_index =
      owner_.new_template(tmpl_.name + "$loop" + std::to_string(owner_.anon_counter()));
  Template& loop = owner_.tmpl(loop_index);
  loop.num_params = n_loop + n_caps;
  loop.num_captures = n_caps;
  loop.recursive = true;

  {
    TemplateBuilder lb(owner_, loop);
    std::vector<uint32_t> loop_params;
    for (uint32_t i = 0; i < n_loop; ++i) {
      const uint32_t p = lb.add_param(i, e->loop_vars[i].name);
      lb.bind(e->loop_vars[i].name, p);
      loop_params.push_back(p);
    }
    install_captures(lb, plan, n_loop);
    std::vector<uint32_t> cap_params;
    for (uint32_t i = 0; i < n_caps; ++i) cap_params.push_back(loop.param_nodes[n_loop + i]);

    const uint32_t cond = lb.compile(e->cond, false);

    // Then-branch: compute the steps and tail-call the loop template.
    // Its captures are all loop params + capture params, in order.
    const uint32_t then_index = owner_.new_template(loop.name + "$step");
    Template& then_tmpl = owner_.tmpl(then_index);
    then_tmpl.num_params = n_loop + n_caps;
    then_tmpl.num_captures = then_tmpl.num_params;
    {
      TemplateBuilder tb(owner_, then_tmpl);
      for (uint32_t i = 0; i < n_loop; ++i) {
        tb.bind(e->loop_vars[i].name, tb.add_param(i, e->loop_vars[i].name));
      }
      install_captures(tb, plan, n_loop);
      std::vector<uint32_t> call_inputs;
      for (uint32_t i = 0; i < n_loop; ++i) {
        call_inputs.push_back(tb.compile(e->loop_vars[i].step, false));
      }
      for (uint32_t i = 0; i < n_caps; ++i) {
        call_inputs.push_back(then_tmpl.param_nodes[n_loop + i]);
      }
      const uint32_t call = tb.add_node(NodeKind::kCall, std::move(call_inputs));
      tb.tmpl().nodes[call].target_template = loop_index;
      tb.tmpl().nodes[call].priority = PriorityClass::kRecursiveCallClosure;
      tb.tmpl().nodes[call].is_tail = true;
      tb.tmpl().nodes[call].debug_label = "loop-step";
      tb.finish(call);
    }
    // Else-branch: return the result loop variable.
    const uint32_t else_index = owner_.new_template(loop.name + "$done");
    Template& else_tmpl = owner_.tmpl(else_index);
    else_tmpl.num_params = 1;
    else_tmpl.num_captures = 1;
    {
      TemplateBuilder eb(owner_, else_tmpl);
      const uint32_t p = eb.add_param(0, e->result_name);
      eb.finish(p);
    }

    std::vector<uint32_t> then_caps;
    for (uint32_t p : loop_params) then_caps.push_back(p);
    for (uint32_t p : cap_params) then_caps.push_back(p);
    const uint32_t then_clo = lb.add_node(NodeKind::kMakeClosure, std::move(then_caps));
    lb.tmpl().nodes[then_clo].target_template = then_index;
    lb.tmpl().nodes[then_clo].debug_label = "closure:step";

    uint32_t result_param = kInvalidNode;
    for (uint32_t i = 0; i < n_loop; ++i) {
      if (e->loop_vars[i].name == e->result_name) result_param = loop_params[i];
    }
    if (result_param == kInvalidNode) {
      owner_.diags().error(e->range, "graph conversion: iterate result is not a loop variable");
      result_param = loop_params.empty() ? lb.add_const(std::monostate{}) : loop_params[0];
    }
    const uint32_t else_clo = lb.add_node(NodeKind::kMakeClosure, {result_param});
    lb.tmpl().nodes[else_clo].target_template = else_index;
    lb.tmpl().nodes[else_clo].debug_label = "closure:done";

    const uint32_t dispatch = lb.add_node(NodeKind::kIfDispatch, {cond, then_clo, else_clo});
    lb.tmpl().nodes[dispatch].priority = PriorityClass::kCallClosure;
    lb.tmpl().nodes[dispatch].is_tail = true;
    lb.tmpl().nodes[dispatch].debug_label = "loop-if";
    lb.finish(dispatch);
  }

  // At the iterate site: call the loop with initializers + captures.
  std::vector<uint32_t> call_inputs;
  for (const LoopVar& lv : e->loop_vars) call_inputs.push_back(compile(lv.init, false));
  for (uint32_t node : plan.parent_nodes) call_inputs.push_back(node);
  const uint32_t id = add_node(NodeKind::kCall, std::move(call_inputs));
  tmpl_.nodes[id].target_template = loop_index;
  tmpl_.nodes[id].priority = PriorityClass::kRecursiveCallClosure;
  tmpl_.nodes[id].is_tail = tail;
  tmpl_.nodes[id].debug_label = "iterate";
  return id;
}

}  // namespace

CompiledProgram build_graphs(const Program& program, const AnalysisResult& analysis,
                             const OperatorTable& operators, DiagnosticEngine& diags,
                             const std::string& entry_point) {
  return ProgramBuilder(program, analysis, operators, diags).run(entry_point);
}

std::string validate_graph(const CompiledProgram& program) {
  for (size_t ti = 0; ti < program.templates.size(); ++ti) {
    const Template& t = *program.templates[ti];
    const std::string where = "template '" + t.name + "': ";
    if (t.nodes.empty()) return where + "no nodes";
    if (t.return_node >= t.nodes.size()) return where + "return node out of range";
    if (t.nodes[t.return_node].kind != NodeKind::kReturn) return where + "return node wrong kind";
    if (t.param_nodes.size() != t.num_params) return where + "param node count mismatch";
    if (t.num_captures > t.num_params) return where + "captures exceed params";
    uint32_t slots = 0;
    std::vector<int> port_seen(t.value_slots, 0);
    for (size_t ni = 0; ni < t.nodes.size(); ++ni) {
      const Node& n = t.nodes[ni];
      if (n.input_offset != slots) return where + "bad slot layout";
      slots += n.num_inputs;
      for (const PortRef& c : n.consumers) {
        if (c.node >= t.nodes.size()) return where + "consumer node out of range";
        const Node& consumer = t.nodes[c.node];
        if (c.port >= consumer.num_inputs) return where + "consumer port out of range";
        ++port_seen[consumer.input_offset + c.port];
      }
      if ((n.kind == NodeKind::kCall || n.kind == NodeKind::kMakeClosure) &&
          n.target_template >= program.templates.size()) {
        return where + "call target out of range";
      }
      if (n.kind == NodeKind::kOperator && n.op_index < 0) {
        return where + "operator node without registry index";
      }
      if (n.kind == NodeKind::kIfDispatch && n.num_inputs != 3) {
        return where + "if-dispatch must have 3 inputs";
      }
      if (n.kind == NodeKind::kParMap && n.num_inputs != 2) {
        return where + "parmap must have 2 inputs";
      }
      if (n.kind == NodeKind::kReturn && n.num_inputs != 1) {
        return where + "return must have 1 input";
      }
      if (n.kind == NodeKind::kFused) {
        // Fused-chain invariants: a non-empty member list, the chain
        // input only on members past the head (exactly one each), and
        // external slots covering 0..num_inputs-1 exactly once across
        // all member ports.
        if (n.fused.empty()) return where + "fused node has no members";
        std::vector<int> slot_used(n.num_inputs, 0);
        for (size_t mi = 0; mi < n.fused.size(); ++mi) {
          const FusedMember& member = n.fused[mi];
          if (member.op_index < 0) {
            return where + "fused member without registry index";
          }
          size_t chain_inputs = 0;
          for (uint32_t v : member.inputs) {
            if (v == FusedMember::kChainInput) {
              ++chain_inputs;
            } else if (v < slot_used.size()) {
              ++slot_used[v];
            } else {
              return where + "fused member external slot out of range";
            }
          }
          if (chain_inputs != (mi == 0 ? 0u : 1u)) {
            return where + "fused member " + std::to_string(mi) + " has " +
                   std::to_string(chain_inputs) + " chain inputs";
          }
        }
        for (uint16_t s = 0; s < n.num_inputs; ++s) {
          if (slot_used[s] != 1) {
            return where + "fused external slot " + std::to_string(s) + " consumed by " +
                   std::to_string(slot_used[s]) + " member ports";
          }
        }
      }
    }
    if (slots != t.value_slots) return where + "slot total mismatch";
    for (size_t ni = 0; ni < t.nodes.size(); ++ni) {
      const Node& n = t.nodes[ni];
      for (uint16_t p = 0; p < n.num_inputs; ++p) {
        if (port_seen[n.input_offset + p] != 1) {
          return where + "input port of node " + std::to_string(ni) + " has " +
                 std::to_string(port_seen[n.input_offset + p]) + " producers";
        }
      }
    }
  }
  return {};
}

}  // namespace delirium
