// Coordination graphs and templates (§7 of the paper).
//
// The compiler converts each Delirium function into a *template*: a
// dataflow subgraph whose nodes are sequential operators and whose edges
// are data paths. The runtime executes *template activations* — small
// records with buffer space for one evaluation of the template.
//
// Execution obeys the paper's two simplifying assumptions:
//   1. each node executes exactly once per activation, and
//   2. once data is present on an input it is consumed exactly once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sema/operator_table.h"
#include "src/support/source.h"

namespace delirium {

enum class NodeKind : uint8_t {
  kConst,        // produces a literal value
  kParam,        // produces the activation's i-th parameter
  kOperator,     // applies an embedded sequential operator
  kTupleMake,    // builds a multiple-value package
  kTupleGet,     // extracts element i of a package
  kMakeClosure,  // builds a closure over a template + captured values
  kCall,         // direct call: expand a statically-known subgraph
  kCallClosure,  // call through a closure value (input 0)
  kIfDispatch,   // input 0: condition; 1: then-closure; 2: else-closure
  kReturn,       // delivers the activation result to its continuation
  // Dynamic-degree parallelism (the §9.2 extension; the paper's sequel
  // generalizes the notation the same way): input 0 is a one-argument
  // function value, input 1 a multiple-value package; one subgraph is
  // expanded per element and the results join into a new package.
  kParMap,
  // A maximal linear chain of pure, single-consumer operator nodes
  // collapsed into one node by the fusion pass (src/analysis/graph_opt).
  // Members run in order inside one activation step — dispatched,
  // scheduled, and traced once per chain — with each member's chain
  // input forwarded directly from its predecessor's result instead of
  // round-tripping through the activation buffer. Payload: Node::fused.
  kFused,
};

/// Ready-queue priority classes, in decreasing priority (§7): normal
/// operators first, then non-recursive subgraph expansions, then
/// recursive ones. The ordering frees template activations for reuse as
/// early as possible.
enum class PriorityClass : uint8_t {
  kNormal = 0,
  kCallClosure = 1,
  kRecursiveCallClosure = 2,
};

struct PortRef {
  uint32_t node = 0;
  uint16_t port = 0;
};

/// Static classification of the value arriving on a declared-destructive
/// input port, computed by the sole-consumer analysis (src/analysis).
enum class ConsumeClass : uint8_t {
  kUnknown = 0,  // no static knowledge; runtime checks the refcount
  kUnique = 1,   // provably sole reader: mutate in place, skip the clone
  kShared = 2,   // provably shared at this use: the clone is guaranteed
};

/// One operator of a kFused chain. Members execute in order; the chain
/// input of member k (k > 0) is member k-1's result, every other input
/// comes from the fused node's external slot range. Members are pure by
/// construction (the fusion pass only chains pure operators), so each
/// is independently retry-eligible with shallow value snapshots.
struct FusedMember {
  /// Marks an input port wired to the previous member's result.
  static constexpr uint32_t kChainInput = UINT32_MAX;

  int op_index = -1;     // index into the registry
  std::string op_name;   // for diagnostics, timings, and injection specs
  /// Node id this member had before fusion — the stable identity behind
  /// deterministic fault sequencing and injection hashing, so a fault
  /// inside member k reports exactly what the unfused graph would.
  uint32_t orig_node = 0;
  /// Per input port: kChainInput, or a 0-based offset into the fused
  /// node's external slot range (relative to Node::input_offset).
  std::vector<uint32_t> inputs;
  /// Source range of the member's original apply expression, preserved
  /// for fault provenance.
  SourceRange range;
  std::string debug_label;
};

struct Node {
  NodeKind kind = NodeKind::kConst;
  PriorityClass priority = PriorityClass::kNormal;
  /// Result of this node is the template's result: the runtime forwards
  /// the continuation instead of nesting, which is what makes tail
  /// recursion run in constant activation space.
  bool is_tail = false;
  /// Static scheduling hint from the facts engine (src/analysis/facts.h):
  /// this node lies on a maximal-height dependency chain of its template.
  /// When ExecConfig::cost_hints is on, the executors run critical nodes
  /// ahead of off-path work within the same priority class.
  bool on_critical_path = false;
  /// The critical-path mark above came from a measured cost profile
  /// (apply_sched_hints cost overload, docs/PROFILING.md) rather than
  /// unit heights. Splits the promotion tally and lets the executors
  /// bias affinity toward keeping the measured long pole local.
  bool cost_hinted = false;
  uint16_t num_inputs = 0;
  uint32_t input_offset = 0;  // first input slot in the activation buffer

  // Kind-specific payload.
  ConstValue literal;           // kConst
  uint32_t param_index = 0;     // kParam
  int op_index = -1;            // kOperator: index into the registry
  std::string op_name;          // kOperator: for diagnostics and timings
  uint32_t tuple_index = 0;     // kTupleGet
  uint32_t target_template = 0; // kCall / kMakeClosure
  std::vector<FusedMember> fused;  // kFused: ordered member chain

  /// Where this node's output goes: (consumer node, input port) pairs.
  std::vector<PortRef> consumers;

  /// Per-input consume classification. Empty (the common case) means all
  /// inputs are kUnknown; otherwise sized exactly num_inputs. Only
  /// operator nodes with declared-destructive arguments carry this.
  std::vector<ConsumeClass> input_classes;

  /// Source range of the expression this node came from (operator and
  /// call-like nodes only); used by lint diagnostics.
  SourceRange range;

  /// Human-readable label for node timings and DOT output.
  std::string debug_label;
};

struct Template {
  std::string name;
  /// Total parameters. For closure templates this counts the explicit
  /// parameters first, then the captured values.
  uint32_t num_params = 0;
  /// How many of num_params are captured values (trailing).
  uint32_t num_captures = 0;
  std::vector<Node> nodes;
  std::vector<uint32_t> param_nodes;  // node id for each parameter
  uint32_t return_node = 0;
  uint32_t value_slots = 0;  // total input slots across all nodes
  /// True when this template can (transitively) re-enter itself.
  bool recursive = false;

  uint32_t explicit_params() const { return num_params - num_captures; }
};

/// The output of graph conversion: every template in the program plus the
/// entry point. Global function templates are listed in `by_name`;
/// anonymous templates (branches, loops, closures) are reachable only via
/// kCall / kMakeClosure target indices.
struct CompiledProgram {
  std::vector<std::unique_ptr<Template>> templates;
  std::unordered_map<std::string, uint32_t> by_name;
  uint32_t entry = 0;

  const Template& entry_template() const { return *templates[entry]; }
  const Template* find(const std::string& name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : templates[it->second].get();
  }

  /// Total node count across all templates (the paper's "unnecessary
  /// nodes translate into extra overhead" metric).
  size_t total_nodes() const {
    size_t n = 0;
    for (const auto& t : templates) n += t->nodes.size();
    return n;
  }
};

/// Structural validity check used by tests: port indices in range, input
/// counts consistent with consumer lists, slot layout non-overlapping.
/// Returns an empty string when valid, else a description of the defect.
std::string validate_graph(const CompiledProgram& program);

}  // namespace delirium
