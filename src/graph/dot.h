// Graphviz export of coordination graphs — the reproduction of the
// paper's "visualization tool for coordination frameworks" (§1).
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/template.h"

namespace delirium {

/// Write one template as a DOT digraph cluster.
void write_template_dot(std::ostream& os, const Template& tmpl, uint32_t index);

/// Write the whole program as a DOT file: one cluster per template, with
/// dashed inter-template edges for calls and closure creation.
void write_program_dot(std::ostream& os, const CompiledProgram& program);

std::string program_to_dot(const CompiledProgram& program);

}  // namespace delirium
