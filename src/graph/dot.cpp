#include "src/graph/dot.h"

#include <ostream>
#include <sstream>

namespace delirium {

namespace {

const char* node_shape(NodeKind kind) {
  switch (kind) {
    case NodeKind::kConst: return "plaintext";
    case NodeKind::kParam: return "invtriangle";
    case NodeKind::kOperator: return "box";
    case NodeKind::kTupleMake:
    case NodeKind::kTupleGet: return "hexagon";
    case NodeKind::kMakeClosure: return "note";
    case NodeKind::kCall:
    case NodeKind::kCallClosure: return "doubleoctagon";
    case NodeKind::kIfDispatch: return "diamond";
    case NodeKind::kParMap: return "tripleoctagon";
    case NodeKind::kReturn: return "triangle";
    case NodeKind::kFused: return "box3d";
  }
  return "box";
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string const_label(const ConstValue& v) {
  if (std::holds_alternative<std::monostate>(v)) return "NULL";
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return std::to_string(*d);
  return "\\\"" + std::get<std::string>(v) + "\\\"";
}

std::string node_id(uint32_t tmpl, uint32_t node) {
  return "t" + std::to_string(tmpl) + "_n" + std::to_string(node);
}

}  // namespace

void write_template_dot(std::ostream& os, const Template& tmpl, uint32_t index) {
  os << "  subgraph cluster_" << index << " {\n";
  os << "    label=\"" << escape(tmpl.name) << (tmpl.recursive ? " (recursive)" : "")
     << "\";\n";
  os << "    style=rounded;\n";
  for (uint32_t ni = 0; ni < tmpl.nodes.size(); ++ni) {
    const Node& n = tmpl.nodes[ni];
    std::string label = n.debug_label;
    if (n.kind == NodeKind::kConst) label = const_label(n.literal);
    if (label.empty()) label = "n" + std::to_string(ni);
    if (n.is_tail) label += " [tail]";
    os << "    " << node_id(index, ni) << " [shape=" << node_shape(n.kind) << ",label=\""
       << escape(label) << "\"];\n";
  }
  for (uint32_t ni = 0; ni < tmpl.nodes.size(); ++ni) {
    for (const PortRef& c : tmpl.nodes[ni].consumers) {
      os << "    " << node_id(index, ni) << " -> " << node_id(index, c.node)
         << " [label=\"" << c.port << "\"];\n";
    }
  }
  os << "  }\n";
}

void write_program_dot(std::ostream& os, const CompiledProgram& program) {
  os << "digraph delirium {\n";
  os << "  rankdir=TB;\n";
  os << "  node [fontsize=10];\n";
  for (uint32_t ti = 0; ti < program.templates.size(); ++ti) {
    write_template_dot(os, *program.templates[ti], ti);
  }
  // Inter-template references: calls and closure creation.
  for (uint32_t ti = 0; ti < program.templates.size(); ++ti) {
    const Template& t = *program.templates[ti];
    for (uint32_t ni = 0; ni < t.nodes.size(); ++ni) {
      const Node& n = t.nodes[ni];
      if (n.kind == NodeKind::kCall || n.kind == NodeKind::kMakeClosure) {
        const Template& target = *program.templates[n.target_template];
        if (!target.nodes.empty()) {
          os << "  " << node_id(ti, ni) << " -> " << node_id(n.target_template, 0)
             << " [style=dashed,color=gray,lhead=cluster_" << n.target_template << "];\n";
        }
      }
    }
  }
  os << "}\n";
}

std::string program_to_dot(const CompiledProgram& program) {
  std::ostringstream os;
  write_program_dot(os, program);
  return os.str();
}

}  // namespace delirium
