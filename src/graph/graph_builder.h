// Graph conversion — the "Graph Conversion" pass of Table 1.
//
// Converts each macro-expanded, analyzed Delirium function into a
// template (coordination subgraph). Conditionals compile each arm into an
// anonymous sub-template invoked through a closure, so the untaken arm is
// never expanded — this is what makes recursive coordination (the eight
// queens program of §3) terminate. `iterate` compiles into a synthetic
// tail-recursive function, which the runtime executes in constant
// activation space.
#pragma once

#include "src/graph/template.h"
#include "src/lang/ast.h"
#include "src/sema/env_analysis.h"
#include "src/sema/operator_table.h"
#include "src/support/diagnostics.h"

namespace delirium {

/// Convert a whole program. `analysis` provides recursion facts used to
/// classify call nodes into priority levels. Reports internal
/// inconsistencies (which sema should have caught) as errors.
CompiledProgram build_graphs(const Program& program, const AnalysisResult& analysis,
                             const OperatorTable& operators, DiagnosticEngine& diags,
                             const std::string& entry_point = "main");

}  // namespace delirium
