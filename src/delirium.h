// Umbrella header: the public API of the Delirium reproduction.
//
// Typical embedding (see examples/quickstart.cpp):
//
//   delirium::OperatorRegistry registry;
//   delirium::register_builtin_operators(registry);
//   registry.add("convolve", 2, my_convolve_fn).pure();
//
//   delirium::CompiledProgram program =
//       delirium::compile_or_throw(source_text, registry);
//
//   delirium::Runtime runtime(registry, {.num_workers = 4});
//   delirium::Value result = runtime.run(program);
#pragma once

#include "src/core/compiler.h"       // compile_source / compile_or_throw
#include "src/graph/dot.h"           // coordination-framework visualization
#include "src/graph/template.h"      // CompiledProgram / Template
#include "src/lang/parser.h"         // lower-level front-end access
#include "src/lang/pretty.h"         // AST printing
#include "src/opt/optimizer.h"       // optimization passes
#include "src/runtime/fault.h"       // FaultInfo / FaultError / FaultPlan
#include "src/runtime/registry.h"    // OperatorRegistry / OpContext
#include "src/runtime/runtime.h"     // Runtime / RuntimeConfig
#include "src/runtime/value.h"       // Value / blocks
#include "src/sema/env_analysis.h"   // environment analysis
