// Shared parsing for the DELIRIUM_* environment knobs.
//
// Every runtime and analysis kill switch used to parse its own getenv()
// result, each with slightly different (and mostly silent) failure
// behavior: DELIRIUM_TRACE treated any non-"0" string as on,
// DELIRIUM_TRACE_CAPACITY swallowed garbage via strtoll, and
// DELIRIUM_SCHEDULER ignored unknown names outright — so a typo like
// DELIRIUM_SCHEDULER=work-stealing silently benchmarked the wrong
// scheduler. PR 4 fixed this for DELIRIUM_INJECT_FAULTS only; these
// helpers extend the same contract to every knob: a malformed value
// throws EnvError naming the variable and the offending text, and an
// unset variable falls back to the caller's default.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

namespace delirium {

/// Thrown on a malformed DELIRIUM_* value. what() always names the
/// variable and quotes the offending text, so the error is actionable
/// no matter how far from the shell it surfaces.
class EnvError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Raw value of an environment variable, or nullopt when unset. An
/// empty string counts as unset: `DELIRIUM_X= ./prog` is the idiomatic
/// way to neutralize a knob exported earlier in a script.
std::optional<std::string> env_raw(const char* name);

/// Boolean knob: "0"/"false"/"off" -> false, "1"/"true"/"on" -> true
/// (case-sensitive, matching the documented forms). Unset -> fallback;
/// anything else throws EnvError.
bool env_flag(const char* name, bool fallback);

/// Integer knob parsed in full (no silently-ignored trailing text).
/// Unset -> fallback; out of [min, max] or malformed throws EnvError.
int64_t env_int(const char* name, int64_t fallback,
                int64_t min = std::numeric_limits<int64_t>::min(),
                int64_t max = std::numeric_limits<int64_t>::max());

/// Enumerated knob: returns the index of the matching choice, or
/// `fallback` when unset. An unrecognized value throws EnvError listing
/// the accepted spellings.
size_t env_choice(const char* name, std::initializer_list<const char*> choices,
                  size_t fallback);

}  // namespace delirium
