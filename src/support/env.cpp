#include "src/support/env.h"

#include <charconv>
#include <cstdlib>
#include <string_view>

namespace delirium {

std::optional<std::string> env_raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

bool env_flag(const char* name, bool fallback) {
  const std::optional<std::string> v = env_raw(name);
  if (!v.has_value()) return fallback;
  const std::string_view s = *v;
  if (s == "0" || s == "false" || s == "off") return false;
  if (s == "1" || s == "true" || s == "on") return true;
  throw EnvError(std::string(name) + ": invalid value '" + *v +
                 "' (expected 0/1, true/false, or on/off)");
}

int64_t env_int(const char* name, int64_t fallback, int64_t min, int64_t max) {
  const std::optional<std::string> v = env_raw(name);
  if (!v.has_value()) return fallback;
  int64_t value = 0;
  const char* begin = v->data();
  const char* end = begin + v->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw EnvError(std::string(name) + ": invalid value '" + *v +
                   "' (expected an integer)");
  }
  if (value < min || value > max) {
    throw EnvError(std::string(name) + ": value " + *v + " out of range [" +
                   std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return value;
}

size_t env_choice(const char* name, std::initializer_list<const char*> choices,
                  size_t fallback) {
  const std::optional<std::string> v = env_raw(name);
  if (!v.has_value()) return fallback;
  size_t index = 0;
  for (const char* choice : choices) {
    if (*v == choice) return index;
    ++index;
  }
  std::string expected;
  for (const char* choice : choices) {
    if (!expected.empty()) expected += ", ";
    expected += choice;
  }
  throw EnvError(std::string(name) + ": invalid value '" + *v + "' (expected one of: " +
                 expected + ")");
}

}  // namespace delirium
