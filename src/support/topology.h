// Memory topology: the machine-model description of NUMA domains.
//
// The paper's §9.3 Butterfly experiments model remote references as a
// flat per-KiB charge between workers. This generalizes that into a
// MemoryTopology: workers are striped over NUMA domains, block pulls
// are charged per KiB at intra- or inter-domain rates, and migrating a
// block's home across a domain boundary pays a fixed cost on top.
// Topology is a *performance model only* — it may change makespans and
// scheduler counters, never values, faults, or deterministic traces.
//
// The old flat model (ExecConfig::remote_penalty_ns_per_kb) is the
// degenerate one-worker-per-domain case (`MemoryTopology::flat`), so
// pre-topology benches reproduce byte-identically.
#pragma once

#include <cstdint>
#include <string>

namespace delirium {

/// A NUMA-domain description consumed by both machine models.
///
/// `num_domains` selects the worker→domain map:
///   * 1  — one domain holding every worker (UMA; the default),
///   * 0  — one domain *per worker* (the degenerate flat model the old
///          per-KiB penalty described: every other worker is remote),
///   * N>1 — workers striped round-robin, domain_of(w) = w % N.
struct MemoryTopology {
  std::string name = "uma";
  int num_domains = 1;
  /// Per-KiB charge for pulling a block homed on another worker in the
  /// *same* domain (0 on real NUMA boxes: same socket, same memory).
  int64_t intra_kib_cost_ns = 0;
  /// Per-KiB charge for pulling a block homed in a *different* domain.
  int64_t inter_kib_cost_ns = 0;
  /// Flat surcharge for migrating a block's home across domains, paid
  /// once per cross-domain pull on top of the per-KiB transfer.
  int64_t migration_cost_ns = 0;

  /// Domain of `worker` under the striping rule above; -1 for an
  /// unplaced worker id (-1).
  int domain_of(int worker) const {
    if (worker < 0) return -1;
    if (num_domains <= 0) return worker;
    if (num_domains == 1) return 0;
    return worker % num_domains;
  }

  /// True when any charge is nonzero — the executors skip the pull
  /// accounting entirely otherwise (the UMA fast path).
  bool models_cost() const {
    return intra_kib_cost_ns > 0 || inter_kib_cost_ns > 0 || migration_cost_ns > 0;
  }

  /// True for the single-domain (UMA) map, under which every pull is
  /// intra-domain and the steal order has nothing to bias.
  bool single_domain() const { return num_domains == 1; }

  friend bool operator==(const MemoryTopology&, const MemoryTopology&) = default;

  /// Presets (also the spellings `parse_topology` accepts).
  static MemoryTopology uma() { return MemoryTopology{}; }
  static MemoryTopology numa2();
  static MemoryTopology numa4();
  static MemoryTopology cluster();
  /// The degenerate pre-topology model: one domain per worker, every
  /// other worker remote at `per_kib` ns/KiB, no migration surcharge —
  /// byte-identical to the old flat remote_penalty_ns_per_kb charge.
  static MemoryTopology flat(int64_t per_kib);
};

/// Parse "preset" or "preset:key=value,..." (keys: domains, intra,
/// inter, migrate) into a MemoryTopology. Presets: uma, numa2, numa4,
/// cluster, flat. Malformed specs throw EnvError naming `what` (the
/// flag or environment variable being parsed) and the offending text.
MemoryTopology parse_topology(const std::string& spec, const std::string& what);

}  // namespace delirium
