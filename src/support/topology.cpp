#include "src/support/topology.h"

#include <cstdlib>

#include "src/support/env.h"

namespace delirium {
namespace {

[[noreturn]] void bad_spec(const std::string& what, const std::string& spec,
                           const std::string& why) {
  throw EnvError(what + ": bad topology '" + spec + "': " + why +
                 " (preset[:key=value,...]; presets uma|numa2|numa4|cluster|flat; "
                 "keys domains|intra|inter|migrate)");
}

int64_t parse_cost(const std::string& what, const std::string& spec,
                   const std::string& text) {
  if (text.empty()) bad_spec(what, spec, "empty value");
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || v < 0) {
    bad_spec(what, spec, "'" + text + "' is not a non-negative integer");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

// Preset charges are virtual-ns figures in the spirit of the §9.3
// Butterfly numbers: zero within a domain, growing per-KiB cost and
// migration surcharge as the "interconnect" gets worse. They exist to
// give the sweep in EXPERIMENTS.md stable named points, not to model a
// specific machine.
MemoryTopology MemoryTopology::numa2() {
  return MemoryTopology{"numa2", 2, 0, 64, 500};
}

MemoryTopology MemoryTopology::numa4() {
  return MemoryTopology{"numa4", 4, 0, 128, 1000};
}

MemoryTopology MemoryTopology::cluster() {
  return MemoryTopology{"cluster", 4, 0, 2048, 16384};
}

MemoryTopology MemoryTopology::flat(int64_t per_kib) {
  return MemoryTopology{"flat", 0, 0, per_kib, 0};
}

MemoryTopology parse_topology(const std::string& spec, const std::string& what) {
  const size_t colon = spec.find(':');
  const std::string preset = spec.substr(0, colon);
  MemoryTopology topo;
  if (preset == "uma") {
    topo = MemoryTopology::uma();
  } else if (preset == "numa2") {
    topo = MemoryTopology::numa2();
  } else if (preset == "numa4") {
    topo = MemoryTopology::numa4();
  } else if (preset == "cluster") {
    topo = MemoryTopology::cluster();
  } else if (preset == "flat") {
    topo = MemoryTopology::flat(0);
  } else {
    bad_spec(what, spec, "unknown preset '" + preset + "'");
  }
  if (colon == std::string::npos) return topo;

  size_t pos = colon + 1;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec(what, spec, "part '" + part + "' is not key=value");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "domains") {
      const int64_t v = parse_cost(what, spec, value);
      topo.num_domains = static_cast<int>(v);
    } else if (key == "intra") {
      topo.intra_kib_cost_ns = parse_cost(what, spec, value);
    } else if (key == "inter") {
      topo.inter_kib_cost_ns = parse_cost(what, spec, value);
    } else if (key == "migrate") {
      topo.migration_cost_ns = parse_cost(what, spec, value);
    } else {
      bad_spec(what, spec, "unknown key '" + key + "'");
    }
    pos = comma + 1;
  }
  return topo;
}

}  // namespace delirium
