#include "src/support/source.h"

#include <algorithm>

namespace delirium {

SourceFile::SourceFile(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_starts_.push_back(0);
  for (uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

uint32_t SourceFile::line_index(SourceLoc loc) const {
  const uint32_t offset = std::min<uint32_t>(loc.offset, static_cast<uint32_t>(text_.size()));
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<uint32_t>(it - line_starts_.begin()) - 1;
}

LineCol SourceFile::line_col(SourceLoc loc) const {
  const uint32_t offset = std::min<uint32_t>(loc.offset, static_cast<uint32_t>(text_.size()));
  const uint32_t line = line_index(loc);
  return LineCol{line + 1, offset - line_starts_[line] + 1};
}

std::string_view SourceFile::line_text(SourceLoc loc) const {
  const uint32_t line = line_index(loc);
  const uint32_t begin = line_starts_[line];
  uint32_t end = line + 1 < line_starts_.size() ? line_starts_[line + 1]
                                                : static_cast<uint32_t>(text_.size());
  while (end > begin && (text_[end - 1] == '\n' || text_[end - 1] == '\r')) --end;
  return std::string_view(text_).substr(begin, end - begin);
}

}  // namespace delirium
