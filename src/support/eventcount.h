// A condvar-backed eventcount: the park/unpark primitive of the
// work-stealing scheduler.
//
// A waiter calls prepare_wait(), rechecks its work sources, and either
// cancel()s or commit_wait()s; a producer calls notify() after
// publishing work. The epoch counter closes the classic race: a notify
// that lands between prepare and commit bumps the epoch, so the commit
// returns without sleeping. The epoch is bumped under the mutex so a
// notify cannot slip between the condvar's predicate check and its
// sleep.
//
// Wake throttling lives in the *caller*: the scheduler tracks which
// workers are parked and calls notify() only on a parked worker's
// eventcount, so the hot enqueue path costs one atomic load — not a
// futex syscall — when everyone is busy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace delirium {

class EventCount {
 public:
  /// Waiter: snapshot the epoch *before* rechecking work sources.
  uint64_t prepare_wait() const { return epoch_.load(std::memory_order_acquire); }

  /// Waiter: sleep until the epoch moves past `epoch`. Returns
  /// immediately when a notify already landed after prepare_wait().
  void commit_wait(uint64_t epoch) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return epoch_.load(std::memory_order_relaxed) != epoch; });
  }

  /// Producer: wake the waiter (if any). Callers gate this on the
  /// waiter's parked flag; see the class comment.
  void notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_one();
  }

 private:
  std::atomic<uint64_t> epoch_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace delirium
