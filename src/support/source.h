// Source-text bookkeeping shared by the Delirium front end: byte offsets,
// line/column mapping, and half-open source ranges used in diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace delirium {

/// A position in a source buffer, as a byte offset. Offsets are cheap to
/// carry around; line/column are computed on demand by SourceFile.
struct SourceLoc {
  uint32_t offset = 0;

  friend bool operator==(SourceLoc, SourceLoc) = default;
  friend auto operator<=>(SourceLoc, SourceLoc) = default;
};

/// Half-open range [begin, end) in a source buffer.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend bool operator==(SourceRange, SourceRange) = default;
};

/// 1-based human-facing position.
struct LineCol {
  uint32_t line = 1;
  uint32_t col = 1;

  friend bool operator==(LineCol, LineCol) = default;
};

/// Owns one source buffer and its line-start index. The buffer is stable
/// for the lifetime of the SourceFile, so string_views into it are safe.
class SourceFile {
 public:
  SourceFile(std::string name, std::string text);

  const std::string& name() const { return name_; }
  std::string_view text() const { return text_; }

  /// Map a byte offset to a 1-based line/column pair. Offsets past the end
  /// of the buffer clamp to the final position.
  LineCol line_col(SourceLoc loc) const;

  /// The full text of the (1-based) line containing `loc`, without the
  /// trailing newline. Used for diagnostic snippets.
  std::string_view line_text(SourceLoc loc) const;

  uint32_t line_count() const { return static_cast<uint32_t>(line_starts_.size()); }

 private:
  uint32_t line_index(SourceLoc loc) const;  // 0-based

  std::string name_;
  std::string text_;
  std::vector<uint32_t> line_starts_;  // byte offset of each line start
};

}  // namespace delirium
