// Diagnostic reporting for the Delirium compiler. All front-end and
// middle-end phases report through a DiagnosticEngine instead of throwing,
// so a single compile collects every error with source positions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/support/source.h"

namespace delirium {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceRange range;
  std::string message;
};

/// Collects diagnostics for one compilation. Phases append; the driver
/// renders them against the SourceFile at the end.
class DiagnosticEngine {
 public:
  void error(SourceRange range, std::string message) {
    add(Severity::kError, range, std::move(message));
  }
  void warning(SourceRange range, std::string message) {
    add(Severity::kWarning, range, std::move(message));
  }
  void note(SourceRange range, std::string message) {
    add(Severity::kNote, range, std::move(message));
  }
  void add(Severity severity, SourceRange range, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// Render all diagnostics with a `file:line:col: severity: message` line
  /// plus a source snippet and caret.
  void print(std::ostream& os, const SourceFile& file) const;

  /// All messages joined with newlines; convenient for tests.
  std::string summary(const SourceFile& file) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
};

}  // namespace delirium
