#include "src/support/diagnostics.h"

#include <ostream>
#include <sstream>

namespace delirium {

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}
}  // namespace

void DiagnosticEngine::add(Severity severity, SourceRange range, std::string message) {
  if (severity == Severity::kError) ++error_count_;
  diagnostics_.push_back(Diagnostic{severity, range, std::move(message)});
}

void DiagnosticEngine::print(std::ostream& os, const SourceFile& file) const {
  for (const Diagnostic& d : diagnostics_) {
    const LineCol lc = file.line_col(d.range.begin);
    os << file.name() << ':' << lc.line << ':' << lc.col << ": "
       << severity_name(d.severity) << ": " << d.message << '\n';
    const std::string_view line = file.line_text(d.range.begin);
    os << "  " << line << '\n';
    os << "  ";
    for (uint32_t i = 1; i < lc.col; ++i) os << ' ';
    os << "^\n";
  }
}

std::string DiagnosticEngine::summary(const SourceFile& file) const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    const LineCol lc = file.line_col(d.range.begin);
    os << lc.line << ':' << lc.col << ": " << severity_name(d.severity) << ": " << d.message
       << '\n';
  }
  return os.str();
}

}  // namespace delirium
