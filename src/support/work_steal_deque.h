// Bounded Chase–Lev work-stealing deque.
//
// One owner thread pushes and pops at the bottom (LIFO); any other
// thread steals from the top (FIFO). Lock-free: the owner synchronizes
// with thieves only through the `top` CAS and a store-load fence on the
// single-element race. Memory orderings follow Lê, Pop, Cohen &
// Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP '13), restricted to a fixed-capacity ring: push fails
// when the ring is full instead of growing, and the caller falls back
// to its (unbounded) injection queue.
//
// Elements are stored behind heap pointers because the slots must be
// single-word atomics — a thief reads a slot speculatively and only the
// CAS winner may dereference it. The owner recycles cells it popped
// through a private freelist, so the steady-state push/pop cycle does
// not touch the allocator (only stolen cells are freed by thieves).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace delirium {

template <typename T>
class WorkStealDeque {
 public:
  /// `capacity` must be a power of two.
  explicit WorkStealDeque(size_t capacity = 8192)
      : capacity_(static_cast<int64_t>(capacity)), mask_(capacity - 1),
        slots_(std::make_unique<std::atomic<T*>[]>(capacity)) {}

  ~WorkStealDeque() {
    // Queues drain before teardown (a run completes only when its
    // outstanding-work count reaches zero); this sweep is defensive.
    T leftover;
    while (pop(leftover)) {
    }
    for (T* cell : free_) delete cell;
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only. Returns false (value untouched) when the ring is full.
  bool push(T&& value) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= capacity_) return false;
    T* cell;
    if (!free_.empty()) {
      cell = free_.back();
      free_.pop_back();
      *cell = std::move(value);
    } else {
      cell = new T(std::move(value));
    }
    slots_[b & mask_].store(cell, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: LIFO pop from the bottom.
  bool pop(T& out) {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    T* item = slots_[b & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Single element left: race any thief for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return false;
    }
    out = std::move(*item);
    recycle(item);
    return true;
  }

  /// Any thread: FIFO steal from the top. Retries internally on CAS
  /// contention (top only advances, so the loop is wait-free in the
  /// number of concurrent thieves).
  bool steal(T& out) {
    for (;;) {
      int64_t t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) return false;
      T* item = slots_[t & mask_].load(std::memory_order_relaxed);
      if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        out = std::move(*item);
        delete item;
        return true;
      }
      // Lost to another thief (or the owner's last-element pop); retry.
    }
  }

  /// Approximate (racy) — used only for park/unpark rechecks, where a
  /// false "empty" is repaired by the enqueuer's wakeup.
  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  /// Owner only: cache a popped cell for the next push. The moved-from
  /// payload is cleared eagerly so it cannot pin resources (e.g. an
  /// activation's reference count) while idling in the cache.
  void recycle(T* cell) {
    if (static_cast<int64_t>(free_.size()) < capacity_) {
      *cell = T();
      free_.push_back(cell);
    } else {
      delete cell;
    }
  }

  const int64_t capacity_;
  const int64_t mask_;
  std::unique_ptr<std::atomic<T*>[]> slots_;
  std::vector<T*> free_;  // owner-private cell cache
  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
};

}  // namespace delirium
