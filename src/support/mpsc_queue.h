// Unbounded lock-free multi-producer single-consumer FIFO (Vyukov's
// MPSC node queue, value-owning "travelling stub" variant).
//
// Producers link nodes with one exchange + one store; the consumer pops
// with one load. `tail_` always points at an already-consumed
// placeholder node (initially the stub); popping moves the value out of
// `tail_->next`, promotes that node to placeholder, and frees the old
// one. A producer that has exchanged `head_` but not yet published
// `next` leaves the queue momentarily "blocked": pop() then reports
// empty even though an element is in flight. That is safe here because
// every producer signals the consumer's eventcount *after* the
// publishing store, so an element can never be silently stranded.
#pragma once

#include <atomic>
#include <utility>

namespace delirium {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      if (n != &stub_) delete n;
      n = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Any thread.
  void push(T&& value) {
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer only. False when empty (or momentarily blocked; see above).
  bool pop(T& out) {
    Node* placeholder = tail_;
    Node* next = placeholder->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    tail_ = next;  // `next` becomes the new placeholder
    if (placeholder != &stub_) delete placeholder;
    return true;
  }

  /// Consumer-side approximation for park rechecks: false negatives only
  /// while a producer is mid-push, and that producer signals afterwards.
  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node stub_;
  alignas(64) std::atomic<Node*> head_;  // producers exchange here
  Node* tail_;                           // consumer-private placeholder
};

}  // namespace delirium
