// Tick clock used for node timings and pass timings. The paper reports
// Cray clock "ticks"; we report steady_clock nanoseconds, since only
// relative magnitudes matter for the reproduced experiments.
#pragma once

#include <chrono>
#include <cstdint>

namespace delirium {

using Clock = std::chrono::steady_clock;
using Ticks = int64_t;  // nanoseconds

inline Ticks now_ticks() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

/// Scoped stopwatch; reads elapsed nanoseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ticks()) {}
  Ticks elapsed() const { return now_ticks() - start_; }
  double elapsed_ms() const { return static_cast<double>(elapsed()) / 1e6; }
  void reset() { start_ = now_ticks(); }

 private:
  Ticks start_;
};

}  // namespace delirium
