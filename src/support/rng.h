// Deterministic pseudo-random number generation used by workload
// generators (scenes, netlists, synthetic programs) and property tests.
// Everything in this repo that consumes randomness takes an explicit seed
// so results are reproducible across runs and worker counts.
#pragma once

#include <cstdint>

namespace delirium {

/// splitmix64: tiny, fast, and good enough for workload shaping. Not a
/// cryptographic generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  uint64_t state_;
};

}  // namespace delirium
