// Case study #2 (§6): the Delirium compiler, parallelized in Delirium.
//
// Each compiler pass becomes a fork-join over *function groups*: the
// program's functions are partitioned by subtree weight (the paper's
// tree-crown clipping, applied at function granularity — generated
// workloads have many functions, so functions are the natural subtrees),
// each group is processed by an embedded operator, and a merge operator
// reassembles the program. Lexing stays sequential, exactly as in
// Table 1 (91ms / 91ms).
//
// Pass structure (one fork-join each):
//   dcc_lex                          (sequential)
//   parse_split  / parse_piece  / parse_merge
//   macro_split  / macro_piece  / macro_merge
//   env_split    / env_piece    / env_merge
//   opt_split    / opt_piece    / opt_merge
//   graph_split  / graph_piece  / graph_merge
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/graph/template.h"
#include "src/lang/ast.h"
#include "src/lang/token.h"
#include "src/runtime/registry.h"
#include "src/sema/env_analysis.h"
#include "src/support/source.h"

namespace delirium::dcc {

/// Number of pieces each pass forks into. More pieces than processors
/// (the paper's clipping produces sets of subtrees per processor) gives
/// the dynamic scheduler room to balance.
constexpr int kPieces = 12;

/// Signature-only view of a function, shared across groups so that every
/// group can resolve names and arities of functions it does not own.
struct FuncStub {
  std::string name;
  std::vector<std::string> params;
};

/// Bookkeeping shared by every piece of the pipeline. Mutated only in
/// merge operators (which execute exclusively), read everywhere else.
struct DccShared {
  std::shared_ptr<SourceFile> file;
  /// Keeps every AstContext alive: trees freely reference nodes from the
  /// context of the pass that created them.
  std::vector<std::shared_ptr<AstContext>> keep_alive;
  std::vector<FuncDecl*> all_macros;
  std::vector<FuncStub> stubs;  // global function order
  AnalysisResult analysis;      // merged after env analysis
  std::vector<std::string> errors;
};

/// One group of functions owned by a parallel piece.
struct FuncGroup {
  std::shared_ptr<AstContext> ctx;  // where this group allocates
  std::vector<FuncDecl*> funcs;
};

// --- blocks flowing through the coordination framework -------------------

struct SourceBlock {
  std::string text;
};

struct TokensBlock {
  std::shared_ptr<SourceFile> file;
  std::vector<Token> tokens;
};

struct ParsePiece {
  int index = 0;
  std::shared_ptr<SourceFile> file;
  /// Pieces share the token buffer; each copies only its slice (in
  /// parallel) inside parse_piece. The split itself is near-free, like
  /// the paper's pointer-returning merges.
  std::shared_ptr<const std::vector<Token>> all_tokens;
  size_t begin = 0, end = 0;
};

struct GroupPiece {
  int index = 0;
  std::shared_ptr<SourceFile> file;       // set by parse_piece
  FuncGroup group;
  std::vector<FuncDecl*> macros;          // only set right after parsing
  std::shared_ptr<DccShared> shared;      // null until parse_merge
  AnalysisResult analysis;                // this group's env-analysis slice
  std::vector<std::string> errors;
};

struct AstBlock {
  std::shared_ptr<DccShared> shared;
  std::vector<FuncGroup> groups;  // exactly kPieces groups
};

struct GraphPiece {
  int index = 0;
  std::shared_ptr<CompiledProgram> program;  // full shell, own bodies built
  std::shared_ptr<DccShared> shared;
  std::vector<std::string> errors;
};

struct DccOutput {
  std::shared_ptr<CompiledProgram> program;
  std::shared_ptr<DccShared> shared;
  bool ok = false;
  std::string diagnostics;
  size_t total_nodes = 0;
  size_t num_templates = 0;
};

// --- embedding ------------------------------------------------------------

/// Register the dcc_* operators. `source` is the program to compile (the
/// operator dcc_source produces it, mirroring how the paper's compiler
/// reads its input before the timed passes).
void register_dcc_operators(OperatorRegistry& registry, std::string source);

/// The coordination program: main() chains the passes; lex_pass(),
/// parse_pass(toks), macro_pass(ast), env_pass(ast), opt_pass(ast) and
/// graph_pass(ast) expose each pass for per-pass timing (Table 1).
std::string dcc_coordination_source();

/// Partition functions into `pieces` groups of roughly equal tree weight
/// (greedy accumulation toward total/pieces, the paper's clipping rule at
/// function granularity). Always returns exactly `pieces` groups; later
/// ones may be empty.
std::vector<std::vector<FuncDecl*>> partition_by_weight(const std::vector<FuncDecl*>& funcs,
                                                        int pieces);

}  // namespace delirium::dcc
