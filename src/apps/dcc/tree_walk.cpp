#include "src/apps/dcc/tree_walk.h"

#include <algorithm>
#include <unordered_set>

namespace delirium::dcc {

namespace detail {

void collect_children(Expr* e, std::vector<Expr*>& out) {
  if (e == nullptr) return;
  if (e->callee != nullptr) out.push_back(e->callee);
  for (Expr* a : e->args) out.push_back(a);
  for (Binding& b : e->bindings) {
    if (b.value != nullptr) out.push_back(b.value);
  }
  if (e->body != nullptr) out.push_back(e->body);
  if (e->cond != nullptr) out.push_back(e->cond);
  if (e->then_branch != nullptr) out.push_back(e->then_branch);
  if (e->else_branch != nullptr) out.push_back(e->else_branch);
  for (LoopVar& lv : e->loop_vars) {
    if (lv.init != nullptr) out.push_back(lv.init);
    if (lv.step != nullptr) out.push_back(lv.step);
  }
}

bool is_clipped_root(const Expr* node, const std::vector<Expr*>& subtrees) {
  for (const Expr* s : subtrees) {
    if (s == node) return true;
  }
  return false;
}

namespace {

uint64_t weigh(Expr* node, std::unordered_map<const Expr*, uint64_t>& weights) {
  uint64_t total = 1;
  std::vector<Expr*> children;
  collect_children(node, children);
  for (Expr* child : children) total += weigh(child, weights);
  weights.emplace(node, total);
  return total;
}

}  // namespace
}  // namespace detail

CrownClip clip_crown(Expr* root, int pieces) {
  CrownClip clip;
  if (root == nullptr) return clip;
  std::unordered_map<const Expr*, uint64_t> weights;
  clip.total_weight = detail::weigh(root, weights);
  const uint64_t desired =
      std::max<uint64_t>(1, clip.total_weight / static_cast<uint64_t>(std::max(pieces, 1)));

  // Preorder crown traversal: descend while a subtree is heavier than the
  // desired piece weight; otherwise clip it.
  std::vector<Expr*> stack{root};
  while (!stack.empty()) {
    Expr* node = stack.back();
    stack.pop_back();
    if (weights.at(node) <= desired) {
      clip.subtrees.push_back(node);
      continue;
    }
    ++clip.crown_weight;
    std::vector<Expr*> children;
    detail::collect_children(node, children);
    // Reverse so preorder order is preserved with a LIFO stack.
    for (auto it = children.rbegin(); it != children.rend(); ++it) stack.push_back(*it);
  }
  return clip;
}

std::vector<std::vector<Expr*>> assign_subtrees(const CrownClip& clip, int pieces) {
  std::vector<std::vector<Expr*>> bins(std::max(pieces, 1));
  std::vector<uint64_t> bin_weight(bins.size(), 0);
  // Greedy into the lightest bin, preserving the preorder sequence of
  // each bin's subtrees (the paper: "sets of subtrees are allocated to
  // each processor").
  std::unordered_map<const Expr*, uint64_t> weights;
  for (Expr* subtree : clip.subtrees) {
    if (weights.count(subtree) == 0) detail::weigh(subtree, weights);
    size_t lightest = 0;
    for (size_t b = 1; b < bins.size(); ++b) {
      if (bin_weight[b] < bin_weight[lightest]) lightest = b;
    }
    bins[lightest].push_back(subtree);
    bin_weight[lightest] += weights.at(subtree);
  }
  return bins;
}

PieceExecutor sequential_executor() {
  return [](int pieces, const std::function<void(int)>& fn) {
    for (int p = 0; p < pieces; ++p) fn(p);
  };
}

void top_down_walk(Expr* root, int pieces, const PieceExecutor& executor,
                   const std::function<void(Expr*)>& update) {
  const CrownClip clip = clip_crown(root, pieces);
  std::unordered_set<const Expr*> clipped(clip.subtrees.begin(), clip.subtrees.end());

  // Sequential crown pass: every clipped root's ancestors update first.
  const std::function<void(Expr*)> crown = [&](Expr* node) {
    if (clipped.count(node) > 0) return;
    update(node);
    std::vector<Expr*> children;
    detail::collect_children(node, children);
    for (Expr* child : children) crown(child);
  };
  crown(root);

  // Parallel subtree passes (full preorder within each subtree).
  auto bins = assign_subtrees(clip, pieces);
  executor(static_cast<int>(bins.size()), [&](int piece) {
    const std::function<void(Expr*)> walk = [&](Expr* node) {
      update(node);
      std::vector<Expr*> children;
      detail::collect_children(node, children);
      for (Expr* child : children) walk(child);
    };
    for (Expr* subtree : bins[piece]) walk(subtree);
  });
}

}  // namespace delirium::dcc
