#include "src/apps/dcc/program_gen.h"

#include <sstream>
#include <vector>

namespace delirium::dcc {

namespace {

/// Emits one random integer-valued expression with a node budget.
class ExprGen {
 public:
  ExprGen(SplitMix64& rng, const GenParams& params, int self_index, std::ostringstream& os)
      : rng_(rng), params_(params), self_index_(self_index), os_(os) {}

  void emit(int budget, std::vector<std::string>& scope) {
    if (budget <= 1) {
      emit_leaf(scope);
      return;
    }
    const double roll = rng_.next_double();
    if (roll < 0.30) {
      emit_binary(budget, scope);
    } else if (roll < 0.45) {
      emit_let(budget, scope);
    } else if (roll < 0.60) {
      emit_if(budget, scope);
    } else if (roll < 0.60 + params_.call_density && self_index_ + 1 < params_.num_functions) {
      emit_call(budget, scope);
    } else if (roll < 0.92) {
      emit_binary(budget, scope);
    } else {
      emit_macro_use(budget, scope);
    }
  }

 private:
  void emit_leaf(std::vector<std::string>& scope) {
    const double roll = rng_.next_double();
    if (roll < 0.4 && !scope.empty()) {
      os_ << scope[rng_.next_below(scope.size())];
    } else if (roll < 0.7 && params_.num_macros > 0) {
      os_ << "M" << rng_.next_below(static_cast<uint64_t>(params_.num_macros));
    } else {
      os_ << rng_.next_range(-50, 50);
    }
  }

  void emit_binary(int budget, std::vector<std::string>& scope) {
    static const char* kOps[] = {"add", "sub", "min", "max"};
    os_ << kOps[rng_.next_below(4)] << "(";
    emit((budget - 1) / 2, scope);
    os_ << ", ";
    emit((budget - 1) / 2, scope);
    os_ << ")";
  }

  void emit_let(int budget, std::vector<std::string>& scope) {
    const std::string var = "v" + std::to_string(var_counter_++);
    os_ << "let " << var << " = ";
    emit((budget - 1) / 2, scope);
    os_ << " in ";
    scope.push_back(var);
    emit((budget - 1) / 2, scope);
    scope.pop_back();
  }

  void emit_if(int budget, std::vector<std::string>& scope) {
    os_ << "if is_equal(mod(abs(";
    emit(2, scope);
    os_ << "), 3), 0) then ";
    emit((budget - 4) / 2, scope);
    os_ << " else ";
    emit((budget - 4) / 2, scope);
  }

  void emit_call(int budget, std::vector<std::string>& scope) {
    // Only call later functions (acyclic call graph), and keep execution
    // cost bounded: at most two call sites per function, each targeting
    // the upper half of the remaining range, so the dynamic call tree is
    // O(num_functions) rather than exponential.
    if (calls_emitted_ >= 2) {
      emit_binary(budget, scope);
      return;
    }
    ++calls_emitted_;
    const int lo = self_index_ + 1 + (params_.num_functions - self_index_ - 1) / 2;
    const int target =
        lo + static_cast<int>(rng_.next_below(static_cast<uint64_t>(params_.num_functions - lo)));
    os_ << "f" << target << "(";
    emit((budget - 1) / 2, scope);
    os_ << ", ";
    emit((budget - 1) / 2, scope);
    os_ << ")";
  }

  void emit_macro_use(int budget, std::vector<std::string>& scope) {
    if (params_.num_macros == 0) {
      emit_binary(budget, scope);
      return;
    }
    // Function-like macros FM<k>(x) are generated alongside constants.
    os_ << "FM" << rng_.next_below(static_cast<uint64_t>(params_.num_macros)) << "(";
    emit(budget - 1, scope);
    os_ << ")";
  }

  SplitMix64& rng_;
  const GenParams& params_;
  int self_index_;
  std::ostringstream& os_;
  int var_counter_ = 0;
  int calls_emitted_ = 0;
};

}  // namespace

std::string generate_program(const GenParams& params) {
  SplitMix64 rng(params.seed);
  std::ostringstream os;

  // Symbolic constants and function-like macros.
  for (int m = 0; m < params.num_macros; ++m) {
    os << "define M" << m << " = " << rng.next_range(1, 99) << "\n";
    os << "define FM" << m << "(x) = " << (m % 2 == 0 ? "add(x, " : "sub(x, ")
       << rng.next_range(1, 9) << ")\n";
  }
  os << "\n";

  // Helper functions f0..fN-1; fi only calls fj with j > i.
  for (int i = 0; i < params.num_functions; ++i) {
    os << "f" << i << "(a, b)\n  mod(abs(";
    std::vector<std::string> scope = {"a", "b"};
    ExprGen gen(rng, params, i, os);
    gen.emit(params.body_size, scope);
    os << "), 9973)\n\n";
  }

  // Entry point: combine a handful of top-level calls.
  os << "main()\n  ";
  const int roots = std::min(params.num_functions, 6);
  for (int i = 0; i < roots - 1; ++i) os << "add(";
  for (int i = 0; i < roots; ++i) {
    if (i > 0) os << ", ";
    os << "f" << i << "(" << rng.next_range(1, 20) << ", " << rng.next_range(1, 20) << ")";
    if (i > 0) os << ")";
  }
  os << "\n";
  return os.str();
}

size_t count_lines(const std::string& source) {
  size_t lines = 1;
  for (char c : source) {
    if (c == '\n') ++lines;
  }
  return lines;
}

}  // namespace delirium::dcc
