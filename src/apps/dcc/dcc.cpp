#include "src/apps/dcc/dcc.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/graph/graph_builder.h"
#include "src/lang/lexer.h"
#include "src/lang/macro.h"
#include "src/lang/parser.h"
#include "src/opt/optimizer.h"
#include "src/runtime/value.h"

namespace delirium::dcc {

namespace {

/// Render a diagnostic engine's output into a piece's error list.
void collect_errors(const DiagnosticEngine& diags, const SourceFile& file,
                    std::vector<std::string>& errors) {
  if (!diags.has_errors()) return;
  errors.push_back(diags.summary(file));
}

/// Build the program view a group operates on: its own functions plus
/// signature-only stubs for everyone else's. With `global_order`, the
/// view lists every function in the global stub order (required by graph
/// conversion so template indices align across groups).
Program group_view(const GroupPiece& piece, bool global_order) {
  Program view;
  std::unordered_map<std::string, FuncDecl*> own;
  for (FuncDecl* f : piece.group.funcs) own[f->name] = f;
  if (global_order) {
    for (const FuncStub& stub : piece.shared->stubs) {
      auto it = own.find(stub.name);
      if (it != own.end()) {
        view.functions.push_back(it->second);
      } else {
        view.functions.push_back(
            piece.group.ctx->make_func(stub.name, stub.params, nullptr));
      }
    }
  } else {
    for (FuncDecl* f : piece.group.funcs) view.functions.push_back(f);
    for (const FuncStub& stub : piece.shared->stubs) {
      if (own.count(stub.name) == 0) {
        view.functions.push_back(
            piece.group.ctx->make_func(stub.name, stub.params, nullptr));
      }
    }
  }
  return view;
}

Value make_group_tuple(std::vector<GroupPiece> pieces) {
  std::vector<Value> values;
  values.reserve(pieces.size());
  for (GroupPiece& p : pieces) values.push_back(Value::block(std::move(p)));
  return Value::tuple(std::move(values));
}

/// Split an AstBlock into kPieces GroupPieces (free: groups move).
Value split_ast(AstBlock ast) {
  std::vector<GroupPiece> pieces(kPieces);
  for (int i = 0; i < kPieces; ++i) {
    pieces[i].index = i;
    pieces[i].group = std::move(ast.groups[i]);
    pieces[i].shared = ast.shared;
  }
  return make_group_tuple(std::move(pieces));
}

/// Merge kPieces GroupPieces back into an AstBlock.
AstBlock merge_ast(OpContext& ctx) {
  AstBlock ast;
  ast.groups.resize(kPieces);
  for (int i = 0; i < kPieces; ++i) {
    GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(i);
    ast.shared = piece.shared;
    ast.groups[piece.index] = std::move(piece.group);
    for (std::string& e : piece.errors) ast.shared->errors.push_back(std::move(e));
  }
  return ast;
}

}  // namespace

std::vector<std::vector<FuncDecl*>> partition_by_weight(const std::vector<FuncDecl*>& funcs,
                                                        int pieces) {
  std::vector<std::vector<FuncDecl*>> groups(pieces);
  std::vector<uint64_t> weights(funcs.size());
  uint64_t total = 0;
  for (size_t i = 0; i < funcs.size(); ++i) {
    weights[i] = funcs[i]->weight != 0 ? funcs[i]->weight : subtree_weight(funcs[i]->body);
    total += weights[i];
  }
  const uint64_t desired = std::max<uint64_t>(1, total / static_cast<uint64_t>(pieces));
  int g = 0;
  uint64_t acc = 0;
  for (size_t i = 0; i < funcs.size(); ++i) {
    groups[g].push_back(funcs[i]);
    acc += weights[i];
    if (acc >= desired && g + 1 < pieces) {
      ++g;
      acc = 0;
    }
  }
  return groups;
}

void register_dcc_operators(OperatorRegistry& registry, std::string source) {
  const OperatorRegistry* reg = &registry;

  registry.add("dcc_source", 0, [source](OpContext&) {
    return Value::block(SourceBlock{source});
  });

  // --- lexing (sequential, as in Table 1) --------------------------------
  registry.add("dcc_lex", 1, [](OpContext& ctx) {
    SourceBlock& src = ctx.arg_block_mut<SourceBlock>(0);
    TokensBlock out;
    out.file = std::make_shared<SourceFile>("<dcc>", std::move(src.text));
    DiagnosticEngine diags;
    out.tokens = Lexer(*out.file, diags).lex_all();
    return Value::block(std::move(out));
  }).destructive(0);

  // --- parsing -------------------------------------------------------------
  registry.add("parse_split", 1, [](OpContext& ctx) {
    TokensBlock& toks = ctx.arg_block_mut<TokensBlock>(0);
    auto shared_tokens =
        std::make_shared<const std::vector<Token>>(std::move(toks.tokens));
    const std::vector<Token>& tokens = *shared_tokens;
    // Top-level declarations start at column 1 (i.e. right after a
    // newline); split only there. The token buffer is shared; pieces
    // record index ranges.
    const std::string_view text = toks.file->text();
    std::vector<size_t> boundaries;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (!t.is(TokenKind::kIdent) && !t.is(TokenKind::kDefine)) continue;
      const uint32_t off = t.range.begin.offset;
      if (off == 0 || text[off - 1] == '\n') boundaries.push_back(i);
    }
    boundaries.push_back(tokens.empty() ? 0 : tokens.size() - 1);  // before EOF
    std::vector<ParsePiece> pieces(kPieces);
    for (int i = 0; i < kPieces; ++i) {
      pieces[i].index = i;
      pieces[i].file = toks.file;
      pieces[i].all_tokens = shared_tokens;
    }
    if (boundaries.size() > 1) {
      const size_t decls = boundaries.size() - 1;
      const size_t per = (decls + kPieces - 1) / kPieces;
      for (int i = 0; i < kPieces; ++i) {
        const size_t first = std::min(static_cast<size_t>(i) * per, decls);
        const size_t last = std::min(first + per, decls);
        pieces[i].begin = boundaries[first];
        pieces[i].end = boundaries[last];
      }
    }
    std::vector<Value> values;
    for (ParsePiece& p : pieces) values.push_back(Value::block(std::move(p)));
    return Value::tuple(std::move(values));
  }).destructive(0);

  registry.add("parse_piece", 1, [](OpContext& ctx) {
    ParsePiece& p = ctx.arg_block_mut<ParsePiece>(0);
    GroupPiece out;
    out.index = p.index;
    out.file = p.file;
    out.group.ctx = std::make_shared<AstContext>();
    std::vector<Token> tokens(p.all_tokens->begin() + static_cast<long>(p.begin),
                              p.all_tokens->begin() + static_cast<long>(p.end));
    Token eof;
    eof.kind = TokenKind::kEof;
    tokens.push_back(eof);
    DiagnosticEngine diags;
    Parser parser(std::move(tokens), *out.group.ctx, diags);
    Program parsed = parser.parse_program();
    out.group.funcs = std::move(parsed.functions);
    out.macros = std::move(parsed.macros);
    // Annotate subtree weights here, in parallel, so the (sequential)
    // partitioning in parse_merge is cheap — the §6.3 lesson.
    for (FuncDecl* f : out.group.funcs) f->weight = subtree_weight(f->body);
    collect_errors(diags, *p.file, out.errors);
    return Value::block(std::move(out));
  }).destructive(0);

  {
    auto entry = registry.add("parse_merge", kPieces, [](OpContext& ctx) {
      auto shared = std::make_shared<DccShared>();
      std::vector<FuncDecl*> all_funcs;
      for (int i = 0; i < kPieces; ++i) {
        GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(i);
        if (shared->file == nullptr) shared->file = piece.file;
        shared->keep_alive.push_back(piece.group.ctx);
        for (FuncDecl* m : piece.macros) shared->all_macros.push_back(m);
        for (FuncDecl* f : piece.group.funcs) all_funcs.push_back(f);
        for (std::string& e : piece.errors) shared->errors.push_back(std::move(e));
      }
      for (const FuncDecl* f : all_funcs) {
        shared->stubs.push_back(FuncStub{f->name, f->params});
      }
      // Re-partition by tree weight (the paper's clipping rule) and give
      // each group a fresh context to allocate into.
      AstBlock ast;
      ast.shared = shared;
      auto groups = partition_by_weight(all_funcs, kPieces);
      ast.groups.resize(kPieces);
      for (int i = 0; i < kPieces; ++i) {
        ast.groups[i].ctx = std::make_shared<AstContext>();
        ast.groups[i].funcs = std::move(groups[i]);
        shared->keep_alive.push_back(ast.groups[i].ctx);
      }
      return Value::block(std::move(ast));
    });
    for (int i = 0; i < kPieces; ++i) entry.destructive(i);
  }

  // --- generic split/merge pairs over AstBlock ------------------------------
  auto add_ast_split = [&registry](const std::string& name) {
    registry.add(name, 1, [](OpContext& ctx) {
      return split_ast(std::move(ctx.arg_block_mut<AstBlock>(0)));
    }).destructive(0);
  };
  auto add_ast_merge = [&registry](const std::string& name) {
    auto entry = registry.add(name, kPieces, [](OpContext& ctx) {
      return Value::block(merge_ast(ctx));
    });
    for (int i = 0; i < kPieces; ++i) entry.destructive(i);
  };

  // --- macro expansion ---------------------------------------------------------
  add_ast_split("macro_split");
  registry.add("macro_piece", 1, [](OpContext& ctx) {
    GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(0);
    Program view;
    view.functions = piece.group.funcs;
    view.macros = piece.shared->all_macros;
    DiagnosticEngine diags;
    expand_macros(view, *piece.group.ctx, diags);
    collect_errors(diags, *piece.shared->file, piece.errors);
    return ctx.take(0);
  }).destructive(0);
  add_ast_merge("macro_merge");

  // --- environment analysis -------------------------------------------------------
  add_ast_split("env_split");
  registry.add("env_piece", 1, [reg](OpContext& ctx) {
    GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(0);
    Program view = group_view(piece, /*global_order=*/false);
    DiagnosticEngine diags;
    AnalysisOptions options;
    options.require_main = false;  // checked globally in env_merge
    piece.analysis = analyze_environment(view, *reg, diags, options);
    collect_errors(diags, *piece.shared->file, piece.errors);
    return ctx.take(0);
  }).destructive(0);
  {
    auto entry = registry.add("env_merge", kPieces, [](OpContext& ctx) {
      AstBlock ast;
      ast.groups.resize(kPieces);
      AnalysisResult merged;
      for (int i = 0; i < kPieces; ++i) {
        GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(i);
        ast.shared = piece.shared;
        for (auto& [fn, callees] : piece.analysis.callgraph) {
          merged.callgraph[fn].insert(callees.begin(), callees.end());
        }
        for (auto& [op, count] : piece.analysis.operator_uses) {
          merged.operator_uses[op] += count;
        }
        ast.groups[piece.index] = std::move(piece.group);
        for (std::string& e : piece.errors) piece.shared->errors.push_back(std::move(e));
      }
      compute_recursive_functions(merged);
      // Global checks that no single group can perform.
      std::unordered_set<std::string> names;
      bool has_main = false;
      for (const FuncStub& stub : ast.shared->stubs) {
        if (!names.insert(stub.name).second) {
          ast.shared->errors.push_back("duplicate function definition '" + stub.name + "'");
        }
        has_main = has_main || stub.name == "main";
      }
      if (!has_main) ast.shared->errors.push_back("program has no entry point 'main'");
      merged.ok = ast.shared->errors.empty();
      ast.shared->analysis = std::move(merged);
      return Value::block(std::move(ast));
    });
    for (int i = 0; i < kPieces; ++i) entry.destructive(i);
  }

  // --- optimization ------------------------------------------------------------------
  // Inline expansion needs the whole program (callee bodies live in other
  // groups), so it runs as a sequential stage — the rest of the
  // optimizations then fork per group.
  registry.add("opt_inline", 1, [reg](OpContext& ctx) {
    AstBlock& ast = ctx.arg_block_mut<AstBlock>(0);
    Program view;
    for (const FuncGroup& g : ast.groups) {
      view.functions.insert(view.functions.end(), g.funcs.begin(), g.funcs.end());
    }
    auto inline_ctx = std::make_shared<AstContext>();
    ast.shared->keep_alive.push_back(inline_ctx);
    OptStats stats;
    OptimizeOptions options;
    pass_inline(view, *inline_ctx, ast.shared->analysis, options, stats);
    return ctx.take(0);
  }).destructive(0);
  add_ast_split("opt_split");
  registry.add("opt_piece", 1, [reg](OpContext& ctx) {
    GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(0);
    Program view = group_view(piece, /*global_order=*/false);
    OptimizeOptions options;
    options.dce_functions = false;   // cross-group reachability is invisible
    options.inline_expansion = false;  // done globally by opt_inline
    optimize_program(view, *piece.group.ctx, *reg, piece.shared->analysis, options, "main");
    return ctx.take(0);
  }).destructive(0);
  add_ast_merge("opt_merge");

  // --- graph conversion -----------------------------------------------------------------
  add_ast_split("graph_split");
  registry.add("graph_piece", 1, [reg](OpContext& ctx) {
    GroupPiece& piece = ctx.arg_block_mut<GroupPiece>(0);
    Program view = group_view(piece, /*global_order=*/true);
    DiagnosticEngine diags;
    GraphPiece out;
    out.index = piece.index;
    out.shared = piece.shared;
    out.program = std::make_shared<CompiledProgram>(
        build_graphs(view, piece.shared->analysis, *reg, diags, "main"));
    collect_errors(diags, *piece.shared->file, out.errors);
    out.errors.insert(out.errors.end(), piece.errors.begin(), piece.errors.end());
    return Value::block(std::move(out));
  }).destructive(0);
  {
    auto entry = registry.add("graph_merge", kPieces, [](OpContext& ctx) {
      std::shared_ptr<DccShared> shared;
      std::vector<std::shared_ptr<CompiledProgram>> parts(kPieces);
      for (int i = 0; i < kPieces; ++i) {
        GraphPiece& piece = ctx.arg_block_mut<GraphPiece>(i);
        shared = piece.shared;
        parts[piece.index] = piece.program;
        for (std::string& e : piece.errors) shared->errors.push_back(std::move(e));
      }
      const size_t num_funcs = shared->stubs.size();
      auto merged = std::make_shared<CompiledProgram>();
      merged->templates.resize(num_funcs);

      // Function templates: take the built version (non-empty nodes).
      // Anonymous templates: append per group, remembering the offset so
      // call targets can be remapped.
      std::vector<uint32_t> anon_base(kPieces, 0);
      for (int g = 0; g < kPieces; ++g) {
        anon_base[g] = static_cast<uint32_t>(merged->templates.size());
        CompiledProgram& part = *parts[g];
        for (size_t t = num_funcs; t < part.templates.size(); ++t) {
          merged->templates.push_back(std::move(part.templates[t]));
        }
      }
      std::vector<int> owner(num_funcs, -1);
      for (int g = 0; g < kPieces; ++g) {
        CompiledProgram& part = *parts[g];
        for (size_t t = 0; t < num_funcs && t < part.templates.size(); ++t) {
          if (part.templates[t] != nullptr && !part.templates[t]->nodes.empty()) {
            merged->templates[t] = std::move(part.templates[t]);
            owner[t] = g;
          }
        }
      }
      // Remap inter-template references from group-local to merged ids.
      auto remap_template = [&](Template& tmpl, int g) {
        for (Node& node : tmpl.nodes) {
          if ((node.kind == NodeKind::kCall || node.kind == NodeKind::kMakeClosure) &&
              node.target_template >= num_funcs) {
            node.target_template =
                anon_base[g] + (node.target_template - static_cast<uint32_t>(num_funcs));
          }
        }
      };
      for (size_t t = 0; t < num_funcs; ++t) {
        if (merged->templates[t] != nullptr && owner[t] >= 0) {
          remap_template(*merged->templates[t], owner[t]);
        }
      }
      {
        size_t cursor = num_funcs;
        for (int g = 0; g < kPieces; ++g) {
          const size_t count = parts[g]->templates.size() > num_funcs
                                   ? parts[g]->templates.size() - num_funcs
                                   : 0;
          for (size_t k = 0; k < count; ++k) {
            remap_template(*merged->templates[cursor + k], g);
          }
          cursor += count;
        }
      }
      for (size_t t = 0; t < num_funcs; ++t) {
        if (merged->templates[t] == nullptr) {
          // A stub nobody built (error path): keep a placeholder shell.
          merged->templates[t] = std::make_unique<Template>();
          merged->templates[t]->name = shared->stubs[t].name;
        }
        merged->by_name[shared->stubs[t].name] = static_cast<uint32_t>(t);
      }
      auto it = merged->by_name.find("main");
      merged->entry = it != merged->by_name.end() ? it->second : 0;

      DccOutput out;
      out.program = merged;
      out.shared = shared;
      out.ok = shared->errors.empty();
      std::ostringstream diag_stream;
      for (const std::string& e : shared->errors) diag_stream << e << '\n';
      out.diagnostics = diag_stream.str();
      out.total_nodes = merged->total_nodes();
      out.num_templates = merged->templates.size();
      return Value::block(std::move(out));
    });
    for (int i = 0; i < kPieces; ++i) entry.destructive(i);
  }

  registry.add("dcc_report", 1, [](OpContext& ctx) { return ctx.take(0); }).destructive(0);
}

std::string dcc_coordination_source() {
  std::ostringstream os;
  auto fork_join = [&os](const std::string& fn, const std::string& arg,
                         const std::string& split, const std::string& piece,
                         const std::string& merge) {
    os << fn << "(" << arg << ")\n  let <";
    for (int i = 0; i < kPieces; ++i) os << (i > 0 ? ", " : "") << "p" << i;
    os << "> = " << split << "(" << arg << ")\n";
    for (int i = 0; i < kPieces; ++i) {
      os << "      a" << i << " = " << piece << "(p" << i << ")\n";
    }
    os << "  in " << merge << "(";
    for (int i = 0; i < kPieces; ++i) os << (i > 0 ? ", " : "") << "a" << i;
    os << ")\n\n";
  };

  os << "main()\n"
        "  let src = dcc_source()\n"
        "      toks = dcc_lex(src)\n"
        "      ast1 = parse_pass(toks)\n"
        "      ast2 = macro_pass(ast1)\n"
        "      ast3 = env_pass(ast2)\n"
        "      ast4 = opt_pass(ast3)\n"
        "      out = graph_pass(ast4)\n"
        "  in dcc_report(out)\n\n";
  os << "lex_pass(src)\n  dcc_lex(src)\n\n";
  fork_join("parse_pass", "toks", "parse_split", "parse_piece", "parse_merge");
  fork_join("macro_pass", "ast", "macro_split", "macro_piece", "macro_merge");
  fork_join("env_pass", "ast", "env_split", "env_piece", "env_merge");
  os << "opt_pass(ast)\n  opt_local(opt_inline(ast))\n\n";
  fork_join("opt_local", "ast", "opt_split", "opt_piece", "opt_merge");
  fork_join("graph_pass", "ast", "graph_split", "graph_piece", "graph_merge");
  return os.str();
}

}  // namespace delirium::dcc
