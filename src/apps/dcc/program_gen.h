// Synthetic Delirium program generator.
//
// Case study #2 compiles the authors' own 5500-line compiler; that source
// is not available, so Table 1 is reproduced over generated programs of
// controlled size and shape (see DESIGN.md's substitution table). The
// generator is also the workload source for the optimizer's property
// tests: generated programs always compile cleanly and evaluate to a
// deterministic value.
#pragma once

#include <cstdint>
#include <string>

#include "src/support/rng.h"

namespace delirium::dcc {

struct GenParams {
  int num_functions = 100;
  int num_macros = 10;
  /// Approximate expression-tree size per function body.
  int body_size = 40;
  /// Fraction of call sites that target other generated functions (the
  /// rest call pure builtins).
  double call_density = 0.3;
  uint64_t seed = 1;
};

/// Generate a well-formed program: `main()` plus num_functions helpers
/// (f0..fN-1, where fi only calls fj with j > i, so there is no
/// recursion), and num_macros `define`s used throughout. Every function
/// computes integers only; the program always terminates and its result
/// is deterministic.
std::string generate_program(const GenParams& params);

/// Approximate line count of a generated source (for reporting scale).
size_t count_lines(const std::string& source);

}  // namespace delirium::dcc
