// Parallel tree walking (§6.2 of the paper).
//
// "We examined each of the passes over the tree, and realized that with
// some work they can all be cast into one of three kinds of tree walk":
//
//   1. top-down update        — update each node; ancestors first
//   2. inherited-attribute    — compute an attribute moving down; each
//                               node receives the package computed on
//                               the way from the root
//   3. synthesized-attribute  — bottom-up; each node's update sees its
//                               children's results
//
// The parallelization strategy is the paper's: "Each walk is
// accomplished by traversing the crown of the tree, clipping off
// sub-trees" whose weight falls below one third of (total weight /
// pieces); the clipped subtree sets are processed independently, and for
// synthesized walks a sequential pass "run[s] over the crown of the tree
// finishing the pass now that the values for the subtrees have been
// computed."
//
// The workers here are pluggable: pieces can run on a ForkJoinPool, as
// Delirium operators (what dcc does at function granularity), or
// sequentially in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"

namespace delirium::dcc {

/// The crown decomposition of one tree: subtree roots clipped off for
/// parallel processing, and (implicitly) the crown — every node above
/// them.
struct CrownClip {
  std::vector<Expr*> subtrees;   // roots of the clipped subtrees
  uint64_t total_weight = 0;     // nodes in the whole tree
  uint64_t crown_weight = 0;     // nodes in the crown (not in any subtree)
};

/// Clip subtrees per the paper's rule: "We divide the total weight of the
/// tree by the number of processors we will be using. The tree traversal
/// runs until we find a subtree that is less than one-third of the
/// desired weight." Subtrees appear in preorder, so sequential
/// re-traversal matches a full walk's order.
CrownClip clip_crown(Expr* root, int pieces);

/// Assign clipped subtrees to `pieces` bins of roughly equal weight
/// (greedy, preserving preorder inside each bin).
std::vector<std::vector<Expr*>> assign_subtrees(const CrownClip& clip, int pieces);

/// Executor: runs fn(piece_index) for each piece, possibly in parallel,
/// returning after all complete. Tests pass a sequential loop; apps pass
/// a ForkJoinPool adapter or run pieces as Delirium operators.
using PieceExecutor = std::function<void(int pieces, const std::function<void(int)>& fn)>;

/// A sequential executor (baseline / tests).
PieceExecutor sequential_executor();

// --- walk 1: top-down update -----------------------------------------------
//
// `update` may mutate the node; it sees every ancestor already updated.
// The crown is updated sequentially first, then the clipped subtrees in
// parallel.
void top_down_walk(Expr* root, int pieces, const PieceExecutor& executor,
                   const std::function<void(Expr*)>& update);

// --- walk 2: inherited-attribute update -----------------------------------
//
// `Inherit` is the attribute package handed down; `step(node, in)`
// computes the package the node's children receive, and may update the
// node. The crown runs sequentially (computing each clipped subtree's
// incoming package); subtrees then run in parallel.
template <typename Inherit>
using InheritStep = std::function<Inherit(Expr*, const Inherit&)>;

template <typename Inherit>
void inherited_walk(Expr* root, int pieces, const PieceExecutor& executor,
                    const Inherit& root_value, const InheritStep<Inherit>& step);

// --- walk 3: synthesized-attribute update -----------------------------------
//
// `Synth` is computed bottom-up: `combine(node, child_values)` returns
// the node's value (and may update the node). Clipped subtrees compute
// their values in parallel; the crown then finishes sequentially using
// the subtree results.
template <typename Synth>
using SynthCombine = std::function<Synth(Expr*, const std::vector<Synth>&)>;

template <typename Synth>
Synth synthesized_walk(Expr* root, int pieces, const PieceExecutor& executor,
                       const SynthCombine<Synth>& combine);

// --- template implementations ------------------------------------------------

namespace detail {

void collect_children(Expr* e, std::vector<Expr*>& out);

template <typename Synth>
Synth synth_recurse(Expr* node, const SynthCombine<Synth>& combine,
                    const std::unordered_map<const Expr*, Synth>* precomputed) {
  if (precomputed != nullptr) {
    auto it = precomputed->find(node);
    if (it != precomputed->end()) return it->second;
  }
  std::vector<Expr*> children;
  collect_children(node, children);
  std::vector<Synth> values;
  values.reserve(children.size());
  for (Expr* child : children) {
    values.push_back(synth_recurse<Synth>(child, combine, precomputed));
  }
  return combine(node, values);
}

template <typename Inherit>
void inherit_recurse(Expr* node, const Inherit& incoming,
                     const InheritStep<Inherit>& step) {
  const Inherit down = step(node, incoming);
  std::vector<Expr*> children;
  collect_children(node, children);
  for (Expr* child : children) inherit_recurse<Inherit>(child, down, step);
}

/// Is `node` inside any of the clipped subtrees? Crown traversals stop at
/// clipped roots.
bool is_clipped_root(const Expr* node, const std::vector<Expr*>& subtrees);

}  // namespace detail

template <typename Inherit>
void inherited_walk(Expr* root, int pieces, const PieceExecutor& executor,
                    const Inherit& root_value, const InheritStep<Inherit>& step) {
  const CrownClip clip = clip_crown(root, pieces);
  // Sequential crown pass: compute every clipped subtree's incoming
  // attribute while updating crown nodes.
  std::unordered_map<const Expr*, Inherit> incoming;
  const std::function<void(Expr*, const Inherit&)> crown =
      [&](Expr* node, const Inherit& in) {
        if (detail::is_clipped_root(node, clip.subtrees)) {
          incoming.emplace(node, in);
          return;
        }
        const Inherit down = step(node, in);
        std::vector<Expr*> children;
        detail::collect_children(node, children);
        for (Expr* child : children) crown(child, down);
      };
  crown(root, root_value);
  // Parallel subtree passes.
  auto bins = assign_subtrees(clip, pieces);
  executor(static_cast<int>(bins.size()), [&](int piece) {
    for (Expr* subtree : bins[piece]) {
      detail::inherit_recurse<Inherit>(subtree, incoming.at(subtree), step);
    }
  });
}

template <typename Synth>
Synth synthesized_walk(Expr* root, int pieces, const PieceExecutor& executor,
                       const SynthCombine<Synth>& combine) {
  const CrownClip clip = clip_crown(root, pieces);
  auto bins = assign_subtrees(clip, pieces);
  // Parallel: compute each clipped subtree's value. Distinct pieces touch
  // distinct subtrees, so the map can be pre-sized and written racelessly
  // via per-piece locals merged after the join.
  std::vector<std::vector<std::pair<const Expr*, Synth>>> partial(bins.size());
  executor(static_cast<int>(bins.size()), [&](int piece) {
    for (Expr* subtree : bins[piece]) {
      partial[piece].emplace_back(subtree,
                                  detail::synth_recurse<Synth>(subtree, combine, nullptr));
    }
  });
  std::unordered_map<const Expr*, Synth> precomputed;
  for (auto& piece : partial) {
    for (auto& [node, value] : piece) precomputed.emplace(node, std::move(value));
  }
  // Sequential crown finish, consuming the subtree values.
  return detail::synth_recurse<Synth>(root, combine, &precomputed);
}

}  // namespace delirium::dcc
