#include "src/apps/grid/grid.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/support/rng.h"

namespace delirium::grid {

Grid make_grid(const GridParams& params) {
  if (params.height % params.bands != 0) {
    throw std::invalid_argument("grid: height must be divisible by bands");
  }
  Grid grid;
  grid.width = params.width;
  grid.height = params.height;
  grid.rows.assign(static_cast<size_t>(params.height),
                   std::vector<float>(static_cast<size_t>(params.width), 0.0f));
  SplitMix64 rng(params.seed);
  // Hot rectangular blobs in the interior; boundary stays cold (0).
  const int blobs = 4 + static_cast<int>(rng.next_below(4));
  for (int b = 0; b < blobs; ++b) {
    const int cx = 2 + static_cast<int>(rng.next_below(static_cast<uint64_t>(params.width - 4)));
    const int cy =
        2 + static_cast<int>(rng.next_below(static_cast<uint64_t>(params.height - 4)));
    const int radius = 2 + static_cast<int>(rng.next_below(6));
    const float heat = 50.0f + static_cast<float>(rng.next_double() * 50.0);
    for (int y = std::max(1, cy - radius); y < std::min(params.height - 1, cy + radius); ++y) {
      for (int x = std::max(1, cx - radius); x < std::min(params.width - 1, cx + radius);
           ++x) {
        grid.at(x, y) = heat;
      }
    }
  }
  return grid;
}

namespace {

/// One output row of the Jacobi stencil. The three input rows come from
/// wherever the caller keeps them (grid, band, or halo).
void relax_one_row(const float* above, const float* row, const float* below, int width,
                   int y, int height, std::vector<float>& out) {
  out.resize(static_cast<size_t>(width));
  if (y == 0 || y == height - 1) {
    std::copy(row, row + width, out.begin());
    return;
  }
  out[0] = row[0];
  for (int x = 1; x < width - 1; ++x) {
    out[static_cast<size_t>(x)] =
        0.25f * (row[x - 1] + row[x + 1] + above[x] + below[x]);
  }
  out[static_cast<size_t>(width - 1)] = row[width - 1];
}

}  // namespace

void relax_rows(const Grid& from, int row0, int row1,
                std::vector<std::vector<float>>& into_rows) {
  into_rows.resize(static_cast<size_t>(row1 - row0));
  for (int y = row0; y < row1; ++y) {
    const float* above = y > 0 ? from.rows[static_cast<size_t>(y - 1)].data() : nullptr;
    const float* below =
        y < from.height - 1 ? from.rows[static_cast<size_t>(y + 1)].data() : nullptr;
    relax_one_row(above, from.rows[static_cast<size_t>(y)].data(), below, from.width, y,
                  from.height, into_rows[static_cast<size_t>(y - row0)]);
  }
}

void relax_band(Band& band, int width, int height) {
  const int count = band.row1 - band.row0;
  std::vector<std::vector<float>> out(static_cast<size_t>(count));
  auto row_ptr = [&](int y) -> const float* {
    if (y < band.row0) return band.halo_above.data();
    if (y >= band.row1) return band.halo_below.data();
    return band.rows[static_cast<size_t>(y - band.row0)].data();
  };
  for (int y = band.row0; y < band.row1; ++y) {
    const float* above = y > 0 ? row_ptr(y - 1) : nullptr;
    const float* below = y < height - 1 ? row_ptr(y + 1) : nullptr;
    relax_one_row(above, row_ptr(y), below, width, y, height,
                  out[static_cast<size_t>(y - band.row0)]);
  }
  band.rows = std::move(out);
}

Grid sequential_run(const GridParams& params) {
  Grid grid = make_grid(params);
  std::vector<std::vector<float>> next;
  for (int step = 0; step < params.steps; ++step) {
    relax_rows(grid, 0, grid.height, next);
    grid.rows.swap(next);
  }
  return grid;
}

double checksum(const Grid& grid) {
  double total = 0;
  size_t i = 0;
  for (const auto& row : grid.rows) {
    for (float v : row) {
      total += static_cast<double>(v) * static_cast<double>(1 + i % 7);
      ++i;
    }
  }
  return total;
}

namespace {

std::vector<Value> split_into_bands(Grid grid, int bands) {
  const int rows = grid.height / bands;
  std::vector<Band> pieces(static_cast<size_t>(bands));
  for (int b = 0; b < bands; ++b) {
    Band& band = pieces[static_cast<size_t>(b)];
    band.index = b;
    band.row0 = b * rows;
    band.row1 = (b + 1) * rows;
    // Halo rows are the only copies; the band's own rows move below.
    if (band.row0 > 0) band.halo_above = grid.rows[static_cast<size_t>(band.row0 - 1)];
    if (band.row1 < grid.height) band.halo_below = grid.rows[static_cast<size_t>(band.row1)];
  }
  for (int b = 0; b < bands; ++b) {
    Band& band = pieces[static_cast<size_t>(b)];
    band.rows.reserve(static_cast<size_t>(rows));
    for (int y = band.row0; y < band.row1; ++y) {
      band.rows.push_back(std::move(grid.rows[static_cast<size_t>(y)]));
    }
  }
  pieces[0].carrier = std::move(grid);
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(bands));
  for (Band& band : pieces) out.push_back(Value::block(std::move(band)));
  return out;
}

Grid merge_bands(OpContext& ctx, size_t count) {
  Band& first = ctx.arg_block_mut<Band>(0);
  if (!first.carrier.has_value()) {
    throw RuntimeError("band_merge: band 0 does not carry the grid");
  }
  Grid grid = std::move(*first.carrier);
  first.carrier.reset();
  for (size_t i = 0; i < count; ++i) {
    Band& band = ctx.arg_block_mut<Band>(i);
    for (int y = band.row0; y < band.row1; ++y) {
      grid.rows[static_cast<size_t>(y)] =
          std::move(band.rows[static_cast<size_t>(y - band.row0)]);
    }
  }
  return grid;
}

/// Merge for a single package argument (the parmap program). The package
/// normally arrives uniquely held, so bands move out without copies; a
/// shared package degrades to copying (same values either way).
Grid merge_band_package(OpContext& ctx) {
  Value pkg = ctx.take(0);
  if (MultiValue* mv = pkg.tuple_mut()) {
    Grid grid;
    bool have_carrier = false;
    for (Value& v : mv->elems) {
      Band& band = v.block_mut<Band>();
      if (band.carrier.has_value()) {
        grid = std::move(*band.carrier);
        band.carrier.reset();
        have_carrier = true;
      }
    }
    if (!have_carrier) throw RuntimeError("band_merge_pkg: no band carries the grid");
    for (Value& v : mv->elems) {
      Band& band = v.block_mut<Band>();
      for (int y = band.row0; y < band.row1; ++y) {
        grid.rows[static_cast<size_t>(y)] =
            std::move(band.rows[static_cast<size_t>(y - band.row0)]);
      }
    }
    return grid;
  }
  // Shared package: read-only elements, copy.
  const MultiValue& mv = pkg.as_tuple();
  Grid grid;
  bool have_carrier = false;
  for (const Value& v : mv.elems) {
    const Band& band = v.block_as<Band>();
    if (band.carrier.has_value()) {
      grid = *band.carrier;
      have_carrier = true;
    }
  }
  if (!have_carrier) throw RuntimeError("band_merge_pkg: no band carries the grid");
  for (const Value& v : mv.elems) {
    const Band& band = v.block_as<Band>();
    for (int y = band.row0; y < band.row1; ++y) {
      grid.rows[static_cast<size_t>(y)] = band.rows[static_cast<size_t>(y - band.row0)];
    }
  }
  return grid;
}

}  // namespace

void register_grid_operators(OperatorRegistry& registry, const GridParams& params) {
  registry.add("make_field", 0, [params](OpContext&) {
    return Value::block(make_grid(params));
  });

  registry.add("band_split", 1, [params](OpContext& ctx) {
    Grid grid = std::move(ctx.arg_block_mut<Grid>(0));
    return Value::tuple(split_into_bands(std::move(grid), params.bands));
  }).destructive(0);

  registry.add("relax_band_op", 1, [params](OpContext& ctx) {
    Band& band = ctx.arg_block_mut<Band>(0);
    relax_band(band, params.width, params.height);
    return ctx.take(0);
  }).destructive(0);

  {
    auto entry = registry.add("band_merge", params.bands, [params](OpContext& ctx) {
      return Value::block(merge_bands(ctx, static_cast<size_t>(params.bands)));
    });
    for (int i = 0; i < params.bands; ++i) entry.destructive(i);
  }

  registry.add("band_merge_pkg", 1, [](OpContext& ctx) {
    return Value::block(merge_band_package(ctx));
  }).destructive(0);

  registry.add("grid_checksum", 1, [](OpContext& ctx) {
    return Value::of(checksum(ctx.arg_block<Grid>(0)));
  }).pure();
}

std::string grid_source(const GridParams& params) {
  std::ostringstream os;
  os << "define STEPS = " << params.steps << "\n\n";
  os << "main()\n  iterate\n  {\n    t = 0, incr(t)\n    g = make_field(),\n      let\n"
     << "        <";
  for (int b = 0; b < params.bands; ++b) os << (b > 0 ? ", " : "") << "b" << b;
  os << "> = band_split(g)\n";
  for (int b = 0; b < params.bands; ++b) {
    os << "        r" << b << " = relax_band_op(b" << b << ")\n";
  }
  os << "      in band_merge(";
  for (int b = 0; b < params.bands; ++b) os << (b > 0 ? ", " : "") << "r" << b;
  os << ")\n  } while is_not_equal(t, STEPS),\n  result g\n";
  return os.str();
}

std::string grid_source_parmap(const GridParams& params) {
  std::ostringstream os;
  os << "define STEPS = " << params.steps << "\n\n";
  os << R"(relax_one(b) relax_band_op(b)

main()
  iterate
  {
    t = 0, incr(t)
    g = make_field(),
      let pkg = band_split(g)
      in band_merge_pkg(parmap(relax_one, pkg))
  } while is_not_equal(t, STEPS),
  result g
)";
  return os.str();
}

}  // namespace delirium::grid
