// Iterative grid relaxation (Jacobi heat diffusion) under Delirium
// coordination — the classic scientific array kernel the paper's
// introduction motivates ("the majority of scientific applications ...
// contain sub-computations which vectorize extremely well").
//
// The grid is split into row bands. Each timestep every band needs its
// neighbours' boundary rows, so the coordination framework makes the
// halo exchange explicit: band_split hands each band its halo rows from
// the previous step (the §2.1 idiom — "the Delirium code must arrange to
// split the data and pass only the relevant parts to each operator"),
// relax_band updates interior cells, and band_merge reassembles. The
// fork width is a compile-time constant in the classic program and
// dynamic (parmap over any number of bands) in the extended one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/registry.h"

namespace delirium::grid {

struct GridParams {
  int width = 128;
  int height = 128;    // divisible by bands
  int bands = 4;       // hard-wired fork width (classic program)
  int steps = 16;
  uint64_t seed = 7;
};

/// The field plus a fixed boundary (Dirichlet): boundary cells never
/// change; interior cells relax toward the average of their neighbours.
/// Rows are separate vectors so a band split *moves* them into pieces —
/// the paper's "merging is free" idiom (only halo rows are copied).
struct Grid {
  int width = 0;
  int height = 0;
  std::vector<std::vector<float>> rows;  // height vectors of width floats

  float at(int x, int y) const { return rows[static_cast<size_t>(y)][static_cast<size_t>(x)]; }
  float& at(int x, int y) { return rows[static_cast<size_t>(y)][static_cast<size_t>(x)]; }
};

inline size_t delirium_block_size(const Grid& g) {
  return sizeof(Grid) + static_cast<size_t>(g.width) * g.height * sizeof(float);
}

/// One band: rows [row0, row1) plus one halo row on each side (when it
/// exists). The carrier rides in band 0, as in the other apps.
struct Band {
  int index = 0;
  int row0 = 0, row1 = 0;
  std::vector<std::vector<float>> rows;  // this band's rows (moved in/out)
  std::vector<float> halo_above;  // row row0-1 of the previous step (may be empty)
  std::vector<float> halo_below;  // row row1 of the previous step (may be empty)
  std::optional<Grid> carrier;
};

inline size_t delirium_block_size(const Band& b) {
  size_t cells = b.halo_above.size() + b.halo_below.size();
  for (const auto& row : b.rows) cells += row.size();
  return sizeof(Band) + cells * sizeof(float) +
         (b.carrier ? delirium_block_size(*b.carrier) : 0);
}

/// Deterministic initial field: hot blobs from the seed, cold boundary.
Grid make_grid(const GridParams& params);

/// One Jacobi update of rows [row0, row1) of `from` into `into_rows`
/// (row1-row0 vectors of width floats). Rows outside [1, height-1) and
/// boundary columns copy through unchanged.
void relax_rows(const Grid& from, int row0, int row1,
                std::vector<std::vector<float>>& into_rows);

/// Band-local variant used by the operator: the band's own rows plus
/// halos stand in for `from`.
void relax_band(Band& band, int width, int height);

/// Sequential reference: `steps` Jacobi sweeps (band-structured, so the
/// arithmetic matches the parallel version bitwise).
Grid sequential_run(const GridParams& params);

/// Deterministic checksum.
double checksum(const Grid& grid);

/// Register make_field / band_split / relax_band_op / band_merge /
/// grid_checksum against `params`.
void register_grid_operators(OperatorRegistry& registry, const GridParams& params);

/// The classic coordination program: hard-wired `params.bands`-way
/// fork-join inside an iterate over steps.
std::string grid_source(const GridParams& params);

/// The §9.2 variant: the same computation with parmap — the band count
/// comes from the data, so one program serves any decomposition.
std::string grid_source_parmap(const GridParams& params);

}  // namespace delirium::grid
