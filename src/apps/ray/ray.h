// A compact Whitted-style ray tracer, coordinated by Delirium.
//
// The paper lists a 10,000-line ray tracer among the applications ported
// to the environment (§4); its source is not available, so this module
// provides a from-scratch tracer exercising the same coordination shape:
// the scene is built once, shared read-only, and the image is split into
// a fixed number of row bands traced in parallel and assembled at a join
// (the §9.2 "hard-wired parallelism" pattern).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/registry.h"

namespace delirium::ray {

struct Vec3 {
  float x = 0, y = 0, z = 0;

  Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  Vec3 operator*(Vec3 o) const { return {x * o.x, y * o.y, z * o.z}; }
};

float dot(Vec3 a, Vec3 b);
Vec3 normalize(Vec3 v);
Vec3 reflect(Vec3 v, Vec3 n);

struct Material {
  Vec3 color{0.8f, 0.8f, 0.8f};
  float diffuse = 0.8f;
  float specular = 0.3f;
  float reflectivity = 0.0f;
  float shininess = 32.0f;
};

struct Sphere {
  Vec3 center;
  float radius = 1.0f;
  Material material;
};

struct Plane {
  Vec3 point;
  Vec3 normal{0, 1, 0};
  Material material;
  bool checker = false;  // checkerboard albedo
};

struct Triangle {
  Vec3 a, b, c;
  Material material;
};

struct Light {
  Vec3 position;
  Vec3 color{1, 1, 1};
};

struct Camera {
  Vec3 origin{0, 1.5f, -6};
  float fov_deg = 60.0f;
};

/// Bounding volume hierarchy over spheres and triangles. Flat array
/// layout; leaves reference primitive indices. Built once per scene,
/// shared read-only among the parallel bands.
struct BvhNode {
  Vec3 lo, hi;          // axis-aligned bounds
  int left = -1;        // internal: child indices
  int right = -1;
  int first_prim = 0;   // leaf: range into primitive index list
  int prim_count = 0;   // 0 for internal nodes
};

struct Bvh {
  std::vector<BvhNode> nodes;
  std::vector<int> prims;  // indices: [0, S) spheres, [S, S+T) triangles
  int root = -1;
};

struct Scene {
  std::vector<Sphere> spheres;
  std::vector<Triangle> triangles;
  std::vector<Plane> planes;
  std::vector<Light> lights;
  Camera camera;
  Vec3 background{0.15f, 0.18f, 0.25f};
  int max_depth = 4;
  /// Samples per pixel axis (1 = no anti-aliasing, 2 = 4 samples, ...).
  int samples_per_axis = 1;
  /// Acceleration structure; when empty, intersection falls back to the
  /// brute-force loops (tests compare the two paths).
  Bvh bvh;
  bool use_bvh = false;
};

struct RayParams {
  int width = 160;
  int height = 120;
  int num_spheres = 12;
  int num_pyramids = 4;  // triangle meshes
  int bands = 8;         // hard-wired parallel bands
  int samples_per_axis = 1;
  bool use_bvh = true;
  uint64_t seed = 1;
};

/// Möller–Trumbore ray/triangle intersection; returns the distance or
/// nothing.
bool intersect_triangle(const Triangle& tri, const Vec3& origin, const Vec3& dir, float* t_out);

/// Build the BVH for the scene's spheres and triangles (median split on
/// the longest axis, leaf size <= 4).
Bvh build_bvh(const Scene& scene);

/// RGB image, row-major, floats in [0, 1].
struct Image {
  int width = 0, height = 0;
  std::vector<Vec3> pix;
};

/// Deterministic random scene: spheres above a checkered floor plane,
/// two lights.
Scene build_scene(const RayParams& params);

struct Ray {
  Vec3 origin;
  Vec3 dir;
};

/// Trace one ray to a color (Whitted: Phong shading, hard shadows,
/// mirror reflections up to scene.max_depth).
Vec3 trace(const Scene& scene, const Ray& r, int depth);

/// Render rows [row0, row1) into `out` (sized (row1-row0)*width).
void render_rows(const Scene& scene, int width, int height, int row0, int row1,
                 std::vector<Vec3>& out);

/// Full sequential render.
Image render_sequential(const RayParams& params);

/// Deterministic image checksum.
double image_checksum(const Image& image);

/// Write a binary PPM (P6) file; returns false on I/O failure.
bool write_ppm(const Image& image, const std::string& path);

/// Register make_scene / band_split / trace_band / assemble against the
/// given parameters, and return the Delirium coordination source.
void register_ray_operators(OperatorRegistry& registry, const RayParams& params);
std::string ray_source(const RayParams& params);

}  // namespace delirium::ray
