#include "src/apps/ray/ray.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <cstdio>
#include <optional>
#include <sstream>

#include "src/support/rng.h"

namespace delirium::ray {

float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

Vec3 normalize(Vec3 v) {
  const float len = std::sqrt(dot(v, v));
  return len > 0 ? v * (1.0f / len) : v;
}

Vec3 reflect(Vec3 v, Vec3 n) { return v - n * (2.0f * dot(v, n)); }

Scene build_scene(const RayParams& params) {
  Scene scene;
  SplitMix64 rng(params.seed);
  Plane floor;
  floor.point = {0, 0, 0};
  floor.normal = {0, 1, 0};
  floor.checker = true;
  floor.material.color = {0.9f, 0.9f, 0.9f};
  floor.material.reflectivity = 0.1f;
  scene.planes.push_back(floor);

  for (int i = 0; i < params.num_spheres; ++i) {
    Sphere s;
    s.radius = 0.3f + static_cast<float>(rng.next_double()) * 0.7f;
    s.center = {static_cast<float>(rng.next_double() * 8.0 - 4.0), s.radius,
                static_cast<float>(rng.next_double() * 8.0 - 1.0)};
    s.material.color = {0.3f + static_cast<float>(rng.next_double()) * 0.7f,
                        0.3f + static_cast<float>(rng.next_double()) * 0.7f,
                        0.3f + static_cast<float>(rng.next_double()) * 0.7f};
    s.material.reflectivity = rng.next_bool(0.4) ? 0.5f : 0.0f;
    scene.spheres.push_back(s);
  }

  // Triangle meshes: four-sided pyramids scattered on the floor.
  for (int p = 0; p < params.num_pyramids; ++p) {
    const float cx = static_cast<float>(rng.next_double() * 8.0 - 4.0);
    const float cz = static_cast<float>(rng.next_double() * 8.0 - 1.0);
    const float half = 0.4f + static_cast<float>(rng.next_double()) * 0.6f;
    const float height = 0.8f + static_cast<float>(rng.next_double()) * 1.2f;
    Material mat;
    mat.color = {0.4f + static_cast<float>(rng.next_double()) * 0.6f,
                 0.4f + static_cast<float>(rng.next_double()) * 0.6f,
                 0.4f + static_cast<float>(rng.next_double()) * 0.6f};
    mat.specular = 0.4f;
    const Vec3 apex{cx, height, cz};
    const Vec3 base[4] = {{cx - half, 0, cz - half},
                          {cx + half, 0, cz - half},
                          {cx + half, 0, cz + half},
                          {cx - half, 0, cz + half}};
    for (int side = 0; side < 4; ++side) {
      scene.triangles.push_back(Triangle{base[side], base[(side + 1) % 4], apex, mat});
    }
  }

  scene.lights.push_back(Light{{-5, 8, -4}, {1.0f, 0.95f, 0.9f}});
  scene.lights.push_back(Light{{6, 5, -2}, {0.35f, 0.35f, 0.45f}});
  scene.samples_per_axis = std::max(1, params.samples_per_axis);
  if (params.use_bvh) {
    scene.bvh = build_bvh(scene);
    scene.use_bvh = true;
  }
  return scene;
}

bool intersect_triangle(const Triangle& tri, const Vec3& origin, const Vec3& dir,
                        float* t_out) {
  // Möller–Trumbore.
  const Vec3 e1 = tri.b - tri.a;
  const Vec3 e2 = tri.c - tri.a;
  const Vec3 p{dir.y * e2.z - dir.z * e2.y, dir.z * e2.x - dir.x * e2.z,
               dir.x * e2.y - dir.y * e2.x};
  const float det = dot(e1, p);
  if (std::fabs(det) < 1e-8f) return false;
  const float inv_det = 1.0f / det;
  const Vec3 s = origin - tri.a;
  const float u = dot(s, p) * inv_det;
  if (u < 0.0f || u > 1.0f) return false;
  const Vec3 q{s.y * e1.z - s.z * e1.y, s.z * e1.x - s.x * e1.z, s.x * e1.y - s.y * e1.x};
  const float v = dot(dir, q) * inv_det;
  if (v < 0.0f || u + v > 1.0f) return false;
  const float t = dot(e2, q) * inv_det;
  if (t < 1e-3f) return false;
  *t_out = t;
  return true;
}

namespace {

struct PrimBounds {
  Vec3 lo, hi, centroid;
};

PrimBounds sphere_bounds(const Sphere& s) {
  const Vec3 r{s.radius, s.radius, s.radius};
  return PrimBounds{s.center - r, s.center + r, s.center};
}

PrimBounds triangle_bounds(const Triangle& t) {
  PrimBounds b;
  b.lo = {std::min({t.a.x, t.b.x, t.c.x}), std::min({t.a.y, t.b.y, t.c.y}),
          std::min({t.a.z, t.b.z, t.c.z})};
  b.hi = {std::max({t.a.x, t.b.x, t.c.x}), std::max({t.a.y, t.b.y, t.c.y}),
          std::max({t.a.z, t.b.z, t.c.z})};
  b.centroid = (b.lo + b.hi) * 0.5f;
  return b;
}

bool ray_box(const Vec3& lo, const Vec3& hi, const Vec3& origin, const Vec3& inv_dir,
             float t_max) {
  float t0 = 1e-4f, t1 = t_max;
  for (int axis = 0; axis < 3; ++axis) {
    const float o = axis == 0 ? origin.x : axis == 1 ? origin.y : origin.z;
    const float inv = axis == 0 ? inv_dir.x : axis == 1 ? inv_dir.y : inv_dir.z;
    const float lo_a = axis == 0 ? lo.x : axis == 1 ? lo.y : lo.z;
    const float hi_a = axis == 0 ? hi.x : axis == 1 ? hi.y : hi.z;
    float near = (lo_a - o) * inv;
    float far = (hi_a - o) * inv;
    if (near > far) std::swap(near, far);
    t0 = std::max(t0, near);
    t1 = std::min(t1, far);
    if (t0 > t1) return false;
  }
  return true;
}

}  // namespace

Bvh build_bvh(const Scene& scene) {
  Bvh bvh;
  const int num_spheres = static_cast<int>(scene.spheres.size());
  const int total = num_spheres + static_cast<int>(scene.triangles.size());
  if (total == 0) return bvh;
  std::vector<PrimBounds> bounds(total);
  for (int i = 0; i < num_spheres; ++i) bounds[i] = sphere_bounds(scene.spheres[i]);
  for (size_t i = 0; i < scene.triangles.size(); ++i) {
    bounds[num_spheres + i] = triangle_bounds(scene.triangles[i]);
  }
  bvh.prims.resize(total);
  for (int i = 0; i < total; ++i) bvh.prims[i] = i;

  constexpr int kLeafSize = 4;
  const std::function<int(int, int)> build = [&](int first, int count) -> int {
    BvhNode node;
    node.lo = bounds[bvh.prims[first]].lo;
    node.hi = bounds[bvh.prims[first]].hi;
    for (int i = first; i < first + count; ++i) {
      const PrimBounds& b = bounds[bvh.prims[i]];
      node.lo = {std::min(node.lo.x, b.lo.x), std::min(node.lo.y, b.lo.y),
                 std::min(node.lo.z, b.lo.z)};
      node.hi = {std::max(node.hi.x, b.hi.x), std::max(node.hi.y, b.hi.y),
                 std::max(node.hi.z, b.hi.z)};
    }
    if (count <= kLeafSize) {
      node.first_prim = first;
      node.prim_count = count;
      bvh.nodes.push_back(node);
      return static_cast<int>(bvh.nodes.size()) - 1;
    }
    // Median split on the longest axis of the centroid bounds.
    const Vec3 extent = node.hi - node.lo;
    const int axis = extent.x > extent.y ? (extent.x > extent.z ? 0 : 2)
                                         : (extent.y > extent.z ? 1 : 2);
    auto key = [&](int prim) {
      const Vec3& c = bounds[prim].centroid;
      return axis == 0 ? c.x : axis == 1 ? c.y : c.z;
    };
    std::nth_element(bvh.prims.begin() + first, bvh.prims.begin() + first + count / 2,
                     bvh.prims.begin() + first + count,
                     [&](int a, int b) { return key(a) < key(b); });
    const int mid = count / 2;
    const int left = build(first, mid);
    const int right = build(first + mid, count - mid);
    node.left = left;
    node.right = right;
    bvh.nodes.push_back(node);
    return static_cast<int>(bvh.nodes.size()) - 1;
  };
  bvh.root = build(0, total);
  return bvh;
}

namespace {

struct Hit {
  float t = 0;
  Vec3 point;
  Vec3 normal;
  Material material;
};

std::optional<float> intersect_sphere(const Sphere& s, const Ray& r) {
  const Vec3 oc = r.origin - s.center;
  const float b = dot(oc, r.dir);
  const float c = dot(oc, oc) - s.radius * s.radius;
  const float disc = b * b - c;
  if (disc < 0) return std::nullopt;
  const float sq = std::sqrt(disc);
  float t = -b - sq;
  if (t < 1e-3f) t = -b + sq;
  if (t < 1e-3f) return std::nullopt;
  return t;
}

std::optional<float> intersect_plane(const Plane& p, const Ray& r) {
  const float denom = dot(p.normal, r.dir);
  if (std::fabs(denom) < 1e-6f) return std::nullopt;
  const float t = dot(p.point - r.origin, p.normal) / denom;
  if (t < 1e-3f) return std::nullopt;
  return t;
}

std::optional<Hit> closest_hit(const Scene& scene, const Ray& r) {
  std::optional<Hit> best;
  const int num_spheres = static_cast<int>(scene.spheres.size());

  auto consider_sphere = [&](const Sphere& s) {
    if (auto t = intersect_sphere(s, r)) {
      if (!best || *t < best->t) {
        Hit h;
        h.t = *t;
        h.point = r.origin + r.dir * *t;
        h.normal = normalize(h.point - s.center);
        h.material = s.material;
        best = h;
      }
    }
  };
  auto consider_triangle = [&](const Triangle& tri) {
    float t = 0;
    if (intersect_triangle(tri, r.origin, r.dir, &t)) {
      if (!best || t < best->t) {
        Hit h;
        h.t = t;
        h.point = r.origin + r.dir * t;
        const Vec3 e1 = tri.b - tri.a;
        const Vec3 e2 = tri.c - tri.a;
        Vec3 n = normalize(Vec3{e1.y * e2.z - e1.z * e2.y, e1.z * e2.x - e1.x * e2.z,
                                e1.x * e2.y - e1.y * e2.x});
        if (dot(n, r.dir) > 0) n = n * -1.0f;
        h.normal = n;
        h.material = tri.material;
        best = h;
      }
    }
  };

  if (scene.use_bvh && scene.bvh.root >= 0) {
    const Vec3 inv_dir{1.0f / r.dir.x, 1.0f / r.dir.y, 1.0f / r.dir.z};
    int stack[64];
    int top = 0;
    stack[top++] = scene.bvh.root;
    while (top > 0) {
      const BvhNode& node = scene.bvh.nodes[stack[--top]];
      const float t_max = best ? best->t : 1e30f;
      if (!ray_box(node.lo, node.hi, r.origin, inv_dir, t_max)) continue;
      if (node.prim_count > 0) {
        for (int i = node.first_prim; i < node.first_prim + node.prim_count; ++i) {
          const int prim = scene.bvh.prims[i];
          if (prim < num_spheres) {
            consider_sphere(scene.spheres[prim]);
          } else {
            consider_triangle(scene.triangles[prim - num_spheres]);
          }
        }
      } else {
        stack[top++] = node.left;
        stack[top++] = node.right;
      }
    }
  } else {
    for (const Sphere& s : scene.spheres) consider_sphere(s);
    for (const Triangle& tri : scene.triangles) consider_triangle(tri);
  }
  for (const Plane& p : scene.planes) {
    if (auto t = intersect_plane(p, r)) {
      if (!best || *t < best->t) {
        Hit h;
        h.t = *t;
        h.point = r.origin + r.dir * *t;
        h.normal = dot(p.normal, r.dir) < 0 ? p.normal : p.normal * -1.0f;
        h.material = p.material;
        if (p.checker) {
          const int cx = static_cast<int>(std::floor(h.point.x));
          const int cz = static_cast<int>(std::floor(h.point.z));
          const float shade = ((cx + cz) & 1) != 0 ? 1.0f : 0.35f;
          h.material.color = h.material.color * shade;
        }
        best = h;
      }
    }
  }
  return best;
}

bool in_shadow(const Scene& scene, Vec3 point, Vec3 to_light, float light_dist) {
  Ray shadow{point + to_light * 1e-3f, to_light};
  if (scene.use_bvh && scene.bvh.root >= 0) {
    const int num_spheres = static_cast<int>(scene.spheres.size());
    const Vec3 inv_dir{1.0f / shadow.dir.x, 1.0f / shadow.dir.y, 1.0f / shadow.dir.z};
    int stack[64];
    int top = 0;
    stack[top++] = scene.bvh.root;
    while (top > 0) {
      const BvhNode& node = scene.bvh.nodes[stack[--top]];
      if (!ray_box(node.lo, node.hi, shadow.origin, inv_dir, light_dist)) continue;
      if (node.prim_count > 0) {
        for (int i = node.first_prim; i < node.first_prim + node.prim_count; ++i) {
          const int prim = scene.bvh.prims[i];
          if (prim < num_spheres) {
            if (auto t = intersect_sphere(scene.spheres[prim], shadow)) {
              if (*t < light_dist) return true;
            }
          } else {
            float t = 0;
            if (intersect_triangle(scene.triangles[prim - num_spheres], shadow.origin,
                                   shadow.dir, &t) &&
                t < light_dist) {
              return true;
            }
          }
        }
      } else {
        stack[top++] = node.left;
        stack[top++] = node.right;
      }
    }
    return false;
  }
  for (const Sphere& s : scene.spheres) {
    if (auto t = intersect_sphere(s, shadow)) {
      if (*t < light_dist) return true;
    }
  }
  for (const Triangle& tri : scene.triangles) {
    float t = 0;
    if (intersect_triangle(tri, shadow.origin, shadow.dir, &t) && t < light_dist) return true;
  }
  return false;
}

}  // namespace

Vec3 trace(const Scene& scene, const Ray& r, int depth) {
  const auto hit = closest_hit(scene, r);
  if (!hit) return scene.background;

  Vec3 color{0, 0, 0};
  for (const Light& light : scene.lights) {
    const Vec3 to_light_vec = light.position - hit->point;
    const float light_dist = std::sqrt(dot(to_light_vec, to_light_vec));
    const Vec3 to_light = to_light_vec * (1.0f / light_dist);
    if (in_shadow(scene, hit->point, to_light, light_dist)) continue;
    const float lambert = std::max(0.0f, dot(hit->normal, to_light));
    color = color + hit->material.color * light.color * (hit->material.diffuse * lambert);
    const Vec3 half = normalize(to_light - r.dir);
    const float spec = std::pow(std::max(0.0f, dot(hit->normal, half)),
                                hit->material.shininess);
    color = color + light.color * (hit->material.specular * spec);
  }
  // Ambient floor so shadowed areas are not black.
  color = color + hit->material.color * 0.08f;

  if (hit->material.reflectivity > 0 && depth < scene.max_depth) {
    Ray bounce{hit->point + hit->normal * 1e-3f, normalize(reflect(r.dir, hit->normal))};
    const Vec3 reflected = trace(scene, bounce, depth + 1);
    color = color * (1.0f - hit->material.reflectivity) +
            reflected * hit->material.reflectivity;
  }
  return color;
}

void render_rows(const Scene& scene, int width, int height, int row0, int row1,
                 std::vector<Vec3>& out) {
  const float aspect = static_cast<float>(width) / static_cast<float>(height);
  const float scale = std::tan(scene.camera.fov_deg * 0.5f * 3.14159265f / 180.0f);
  const int spa = std::max(1, scene.samples_per_axis);
  const float inv_samples = 1.0f / static_cast<float>(spa * spa);
  for (int y = row0; y < row1; ++y) {
    for (int x = 0; x < width; ++x) {
      Vec3 accum{0, 0, 0};
      for (int sy = 0; sy < spa; ++sy) {
        for (int sx = 0; sx < spa; ++sx) {
          // Deterministic stratified offsets within the pixel.
          const float ox = (static_cast<float>(sx) + 0.5f) / static_cast<float>(spa);
          const float oy = (static_cast<float>(sy) + 0.5f) / static_cast<float>(spa);
          const float px =
              (2.0f * (static_cast<float>(x) + ox) / static_cast<float>(width) - 1.0f) *
              aspect * scale;
          const float py =
              (1.0f - 2.0f * (static_cast<float>(y) + oy) / static_cast<float>(height)) *
              scale;
          Ray r{scene.camera.origin, normalize(Vec3{px, py, 1.0f})};
          accum = accum + trace(scene, r, 0);
        }
      }
      out[static_cast<size_t>(y - row0) * width + x] = accum * inv_samples;
    }
  }
}

Image render_sequential(const RayParams& params) {
  const Scene scene = build_scene(params);
  Image image;
  image.width = params.width;
  image.height = params.height;
  image.pix.assign(static_cast<size_t>(params.width) * params.height, Vec3{});
  render_rows(scene, params.width, params.height, 0, params.height, image.pix);
  return image;
}

double image_checksum(const Image& image) {
  double sum = 0;
  for (const Vec3& p : image.pix) {
    sum += static_cast<double>(p.x) + 2.0 * p.y + 3.0 * p.z;
  }
  return sum;
}

bool write_ppm(const Image& image, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P6\n%d %d\n255\n", image.width, image.height);
  for (const Vec3& p : image.pix) {
    const auto to_byte = [](float v) {
      return static_cast<unsigned char>(std::min(255.0f, std::max(0.0f, v * 255.0f)));
    };
    const unsigned char rgb[3] = {to_byte(p.x), to_byte(p.y), to_byte(p.z)};
    std::fwrite(rgb, 1, 3, f);
  }
  std::fclose(f);
  return true;
}

// --- Delirium embedding ----------------------------------------------------

namespace {

struct Band {
  int index = 0;
  int row0 = 0, row1 = 0;
  int width = 0, height = 0;
  std::shared_ptr<const Scene> scene;  // read-only shared
  std::vector<Vec3> pixels;
};

}  // namespace

void register_ray_operators(OperatorRegistry& registry, const RayParams& params) {
  registry.add("make_scene", 0, [params](OpContext&) {
    return Value::block(std::make_shared<const Scene>(build_scene(params)));
  });

  registry.add("band_split", 1, [params](OpContext& ctx) {
    const auto& scene = ctx.arg_block<std::shared_ptr<const Scene>>(0);
    std::vector<Value> bands;
    const int rows = (params.height + params.bands - 1) / params.bands;
    for (int i = 0; i < params.bands; ++i) {
      Band band;
      band.index = i;
      band.row0 = std::min(i * rows, params.height);
      band.row1 = std::min((i + 1) * rows, params.height);
      band.width = params.width;
      band.height = params.height;
      band.scene = scene;
      band.pixels.assign(static_cast<size_t>(band.row1 - band.row0) * params.width, Vec3{});
      bands.push_back(Value::block(std::move(band)));
    }
    return Value::tuple(std::move(bands));
  }).pure();

  registry.add("trace_band", 1, [](OpContext& ctx) {
    Band& band = ctx.arg_block_mut<Band>(0);
    render_rows(*band.scene, band.width, band.height, band.row0, band.row1, band.pixels);
    return ctx.take(0);
  }).destructive(0);

  {
    auto entry = registry.add("assemble", params.bands, [params](OpContext& ctx) {
      Image image;
      image.width = params.width;
      image.height = params.height;
      image.pix.assign(static_cast<size_t>(params.width) * params.height, Vec3{});
      for (size_t i = 0; i < ctx.arg_count(); ++i) {
        Band& band = ctx.arg_block_mut<Band>(i);
        std::copy(band.pixels.begin(), band.pixels.end(),
                  image.pix.begin() + static_cast<long>(band.row0) * params.width);
      }
      return Value::block(std::move(image));
    });
    for (int i = 0; i < params.bands; ++i) entry.destructive(i);
  }

  registry.add("image_checksum", 1, [](OpContext& ctx) {
    return Value::of(image_checksum(ctx.arg_block<Image>(0)));
  }).pure();
}

std::string ray_source(const RayParams& params) {
  std::ostringstream os;
  os << "main()\n  let scene = make_scene()\n      <";
  for (int i = 0; i < params.bands; ++i) os << (i > 0 ? ", " : "") << "b" << i;
  os << "> = band_split(scene)\n";
  for (int i = 0; i < params.bands; ++i) {
    os << "      t" << i << " = trace_band(b" << i << ")\n";
  }
  os << "  in assemble(";
  for (int i = 0; i < params.bands; ++i) os << (i > 0 ? ", " : "") << "t" << i;
  os << ")\n";
  return os.str();
}

}  // namespace delirium::ray
