// The retina case study's embedded operators and coordination programs
// (§5 of the paper). Two coordination versions exist:
//
//   kV1Imbalanced — the paper's first attempt: post_up merges the bands
//     and runs the (expensive, on odd slabs) bipolar/motion update
//     sequentially. Node timings show post_up alternating between
//     negligible and convolution-sized costs, capping speedup below 2.
//
//   kV2Balanced — the fix of §5.2: the update phase is itself a four-way
//     fork-join (update_split / update_bite / done_up), giving almost
//     perfect balance.
//
// Both versions compute bitwise-identical results to sequential_run().
#pragma once

#include <string>

#include "src/apps/retina/retina_model.h"
#include "src/runtime/registry.h"
#include "src/runtime/runtime.h"

namespace delirium::retina {

enum class RetinaVersion { kV1Imbalanced, kV2Balanced };

/// Register set_up/target_split/.../done_up against `params` (the
/// operators capture the simulation parameters, the way the paper's
/// pre-processor bakes in symbolic constants).
void register_retina_operators(OperatorRegistry& registry, const RetinaParams& params);

/// The Delirium coordination program (§5.1 / §5.2), with NUM_ITER /
/// START_SLAB / FINAL_SLAB provided as `define`s.
std::string retina_source(RetinaVersion version, const RetinaParams& params);

/// Compile and run the model through Delirium on the given runtime;
/// returns the final model (moved out of the result block).
RetinaModel delirium_run(const RetinaParams& params, RetinaVersion version, Runtime& runtime);

}  // namespace delirium::retina
