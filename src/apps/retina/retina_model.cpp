#include "src/apps/retina/retina_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace delirium::retina {

const std::array<std::array<float, kKernelSize>, kKernelSize>& kernel() {
  static const auto k = [] {
    std::array<std::array<float, kKernelSize>, kKernelSize> out{};
    const int c = kKernelSize / 2;
    float total = 0;
    for (int y = 0; y < kKernelSize; ++y) {
      for (int x = 0; x < kKernelSize; ++x) {
        const float dy = static_cast<float>(y - c);
        const float dx = static_cast<float>(x - c);
        const float w = std::exp(-(dx * dx + dy * dy) / (2.0f * 4.0f));
        out[y][x] = w;
        total += w;
      }
    }
    for (auto& row : out) {
      for (float& w : row) w /= total;
    }
    return out;
  }();
  return k;
}

RetinaModel make_model(const RetinaParams& params) {
  if (params.height % kQuarters != 0) {
    throw std::invalid_argument("retina: height must be divisible by 4");
  }
  RetinaModel model;
  model.params = params;
  SplitMix64 rng(params.seed);
  model.targets.reserve(params.num_targets);
  for (int i = 0; i < params.num_targets; ++i) {
    Target t;
    t.x = static_cast<float>(rng.next_double() * params.width);
    t.y = static_cast<float>(rng.next_double() * params.height);
    t.vx = static_cast<float>(rng.next_double() * 4.0 - 2.0);
    t.vy = static_cast<float>(rng.next_double() * 4.0 - 2.0);
    model.targets.push_back(t);
  }
  model.photo = render_scene(model.targets, params.width, params.height);
  const size_t quarter_pixels =
      static_cast<size_t>(params.width) * (params.height / kQuarters);
  for (int q = 0; q < kQuarters; ++q) {
    model.accum[q].assign(quarter_pixels, 0.0f);
    model.bipolar[q].assign(quarter_pixels, 0.0f);
    model.prev_bipolar[q].assign(quarter_pixels, 0.0f);
    model.motion[q].assign(quarter_pixels, 0.0f);
  }
  return model;
}

void advance_targets(std::vector<Target>& targets, int width, int height) {
  for (Target& t : targets) {
    t.x += t.vx;
    t.y += t.vy;
    if (t.x < 0) {
      t.x = -t.x;
      t.vx = -t.vx;
    }
    if (t.y < 0) {
      t.y = -t.y;
      t.vy = -t.vy;
    }
    if (t.x >= static_cast<float>(width)) {
      t.x = 2.0f * static_cast<float>(width) - t.x;
      t.vx = -t.vx;
    }
    if (t.y >= static_cast<float>(height)) {
      t.y = 2.0f * static_cast<float>(height) - t.y;
      t.vy = -t.vy;
    }
  }
}

std::shared_ptr<const ImageLayer> render_scene(const std::vector<Target>& targets, int width,
                                               int height) {
  auto img = std::make_shared<ImageLayer>();
  img->width = width;
  img->height = height;
  img->pix.assign(static_cast<size_t>(width) * height, 0.0f);
  constexpr int kRadius = 5;
  for (const Target& t : targets) {
    const int cx = static_cast<int>(t.x);
    const int cy = static_cast<int>(t.y);
    for (int dy = -kRadius; dy <= kRadius; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= height) continue;
      for (int dx = -kRadius; dx <= kRadius; ++dx) {
        const int x = cx + dx;
        if (x < 0 || x >= width) continue;
        const float d2 = static_cast<float>(dx * dx + dy * dy);
        const float intensity = 1.0f - d2 / static_cast<float>(kRadius * kRadius + 1);
        if (intensity > 0) {
          img->pix[static_cast<size_t>(y) * width + x] += intensity;
        }
      }
    }
  }
  return img;
}

void convolve_slab_rows(const ImageLayer& input, int slab, int row0, int row1,
                        std::vector<float>& band) {
  const int width = input.width;
  const int height = input.height;
  const int c = kKernelSize / 2;
  const auto& krow = kernel()[slab];
  for (int y = row0; y < row1; ++y) {
    const int sy = y + slab - c;
    if (sy < 0 || sy >= height) continue;
    const float* in_row = input.pix.data() + static_cast<size_t>(sy) * width;
    float* out_row = band.data() + static_cast<size_t>(y - row0) * width;
    for (int x = 0; x < width; ++x) {
      float acc = 0;
      for (int k = 0; k < kKernelSize; ++k) {
        int sx = x + k - c;
        sx = std::clamp(sx, 0, width - 1);
        acc += krow[k] * in_row[sx];
      }
      out_row[x] += acc;
    }
  }
}

void heavy_update_rows(const ImageLayer& photo, int slab, int row0, int row1, int width,
                       std::vector<float>& accum, std::vector<float>& bipolar,
                       std::vector<float>& prev_bipolar, std::vector<float>& motion) {
  const float inv = 1.0f / static_cast<float>(slab + 1);
  const size_t n = static_cast<size_t>(row1 - row0) * width;
  const float* photo_base = photo.pix.data() + static_cast<size_t>(row0) * width;
  for (size_t i = 0; i < n; ++i) {
    const float b = accum[i] * inv - 0.5f * photo_base[i];
    motion[i] = 0.9f * motion[i] + std::fabs(b - prev_bipolar[i]);
    prev_bipolar[i] = bipolar[i];
    bipolar[i] = b;
  }
  // Lateral (within-row) smoothing of the motion layer — the second half
  // of the update. Rows are independent, so a row-quarter split computes
  // bitwise-identical results.
  static constexpr float kTaps[5] = {0.05f, 0.2f, 0.5f, 0.2f, 0.05f};
  std::vector<float> row_buf(static_cast<size_t>(width));
  for (int y = row0; y < row1; ++y) {
    float* row = motion.data() + static_cast<size_t>(y - row0) * width;
    for (int x = 0; x < width; ++x) {
      float acc = 0;
      for (int d = -2; d <= 2; ++d) {
        const int sx = std::clamp(x + d, 0, width - 1);
        acc += kTaps[d + 2] * row[sx];
      }
      row_buf[x] = acc;
    }
    std::copy(row_buf.begin(), row_buf.end(), row);
  }
}

void sequential_timestep(RetinaModel& model) {
  const int width = model.params.width;
  const int height = model.params.height;
  const int rows = model.rows_per_quarter();

  // Target phase (target_bite over the four quarters).
  advance_targets(model.targets, width, height);
  ++model.timestep;
  model.photo = render_scene(model.targets, width, height);
  for (int q = 0; q < kQuarters; ++q) {
    std::fill(model.accum[q].begin(), model.accum[q].end(), 0.0f);
  }

  // Convolution slabs (the do_convol loop).
  for (int slab = 0; slab < kKernelSize; ++slab) {
    for (int q = 0; q < kQuarters; ++q) {
      convolve_slab_rows(*model.photo, slab, q * rows, (q + 1) * rows, model.accum[q]);
    }
    if (is_heavy_slab(slab)) {
      for (int q = 0; q < kQuarters; ++q) {
        heavy_update_rows(*model.photo, slab, q * rows, (q + 1) * rows, width, model.accum[q],
                          model.bipolar[q], model.prev_bipolar[q], model.motion[q]);
      }
    }
  }
}

RetinaModel sequential_run(const RetinaParams& params) {
  RetinaModel model = make_model(params);
  for (int t = 0; t < params.num_iter; ++t) {
    sequential_timestep(model);
  }
  return model;
}

double checksum(const RetinaModel& model) {
  double total = 0;
  for (int q = 0; q < kQuarters; ++q) {
    for (float v : model.motion[q]) total += v;
    for (float v : model.bipolar[q]) total += 0.5 * v;
  }
  return total;
}

}  // namespace delirium::retina
