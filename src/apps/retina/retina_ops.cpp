#include "src/apps/retina/retina_ops.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/compiler.h"

namespace delirium::retina {

namespace {

RetinaModel take_carrier(std::optional<RetinaModel>& carrier, const char* who) {
  if (!carrier.has_value()) {
    throw RuntimeError(std::string(who) + ": quarter 0 does not carry the model");
  }
  RetinaModel model = std::move(*carrier);
  carrier.reset();
  return model;
}

}  // namespace

void register_retina_operators(OperatorRegistry& registry, const RetinaParams& params) {
  registry.add("set_up", 0, [params](OpContext&) {
    return Value::block(make_model(params));
  });

  // --- target phase ------------------------------------------------------
  registry.add("target_split", 1, [](OpContext& ctx) {
    RetinaModel& model = ctx.arg_block_mut<RetinaModel>(0);
    const int width = model.params.width;
    const int height = model.params.height;
    const size_t per = (model.targets.size() + kQuarters - 1) / kQuarters;
    std::vector<Value> chunks;
    RetinaModel carried = std::move(model);
    for (int q = 0; q < kQuarters; ++q) {
      TargetChunk chunk;
      chunk.width = width;
      chunk.height = height;
      const size_t begin = std::min(per * q, carried.targets.size());
      const size_t end = std::min(per * (q + 1), carried.targets.size());
      chunk.targets.assign(carried.targets.begin() + begin, carried.targets.begin() + end);
      // The last chunk carries the rest of the model (it must move after
      // all quarters have copied their targets out).
      if (q == kQuarters - 1) chunk.carrier = std::move(carried);
      chunks.push_back(Value::block(std::move(chunk)));
    }
    return Value::tuple(std::move(chunks));
  }).destructive(0);

  registry.add("target_bite", 1, [](OpContext& ctx) {
    TargetChunk& chunk = ctx.arg_block_mut<TargetChunk>(0);
    advance_targets(chunk.targets, chunk.width, chunk.height);
    return ctx.take(0);
  }).destructive(0);

  registry.add("pre_update", kQuarters, [](OpContext& ctx) {
    // Join: reassemble the targets, advance the timestep, render the new
    // scene, and clear the convolution accumulator.
    RetinaModel model = take_carrier(ctx.arg_block_mut<TargetChunk>(kQuarters - 1).carrier,
                                     "pre_update");
    model.targets.clear();
    for (int q = 0; q < kQuarters; ++q) {
      TargetChunk& chunk = ctx.arg_block_mut<TargetChunk>(q);
      model.targets.insert(model.targets.end(), chunk.targets.begin(), chunk.targets.end());
    }
    ++model.timestep;
    model.photo = render_scene(model.targets, model.params.width, model.params.height);
    for (int q = 0; q < kQuarters; ++q) {
      std::fill(model.accum[q].begin(), model.accum[q].end(), 0.0f);
    }
    return Value::block(std::move(model));
  }).destructive(0).destructive(1).destructive(2).destructive(3);

  // --- convolution phase ---------------------------------------------------
  registry.add("convol_split", 1, [](OpContext& ctx) {
    RetinaModel model = std::move(ctx.arg_block_mut<RetinaModel>(0));
    const int rows = model.rows_per_quarter();
    // Pull out everything the pieces need before the model moves into
    // the carrier.
    std::shared_ptr<const ImageLayer> photo = model.photo;
    QuarterLayers bands;
    for (int q = 0; q < kQuarters; ++q) bands[q] = std::move(model.accum[q]);
    std::vector<Value> pieces;
    for (int q = 0; q < kQuarters; ++q) {
      ConvolPiece piece;
      piece.quarter = q;
      piece.row0 = q * rows;
      piece.row1 = (q + 1) * rows;
      piece.input = photo;                // shared read-only
      piece.band = std::move(bands[q]);   // moved, not copied
      if (q == 0) piece.carrier = std::move(model);
      pieces.push_back(Value::block(std::move(piece)));
    }
    return Value::tuple(std::move(pieces));
  }).destructive(0);

  registry.add("convol_bite", 2, [](OpContext& ctx) {
    ConvolPiece& piece = ctx.arg_block_mut<ConvolPiece>(0);
    const int slab = static_cast<int>(ctx.arg_int(1));
    convolve_slab_rows(*piece.input, slab, piece.row0, piece.row1, piece.band);
    return ctx.take(0);
  }).destructive(0);

  // --- v1: sequential merge-and-update -------------------------------------
  registry.add("post_up", 1 + kQuarters, [](OpContext& ctx) {
    const int slab = static_cast<int>(ctx.arg_int(0));
    RetinaModel model = take_carrier(ctx.arg_block_mut<ConvolPiece>(1).carrier, "post_up");
    for (int q = 0; q < kQuarters; ++q) {
      ConvolPiece& piece = ctx.arg_block_mut<ConvolPiece>(1 + q);
      model.accum[q] = std::move(piece.band);  // merge is a pointer move
    }
    if (is_heavy_slab(slab)) {
      // The whole-image update, sequentially: the §5.2 load imbalance.
      const int rows = model.rows_per_quarter();
      for (int q = 0; q < kQuarters; ++q) {
        heavy_update_rows(*model.photo, slab, q * rows, (q + 1) * rows, model.params.width,
                          model.accum[q], model.bipolar[q], model.prev_bipolar[q],
                          model.motion[q]);
      }
    }
    return Value::block(std::move(model));
  }).destructive(1).destructive(2).destructive(3).destructive(4);

  // --- v2: parallel update phase --------------------------------------------
  registry.add("update_split", kQuarters, [](OpContext& ctx) {
    RetinaModel model = take_carrier(ctx.arg_block_mut<ConvolPiece>(0).carrier, "update_split");
    const int rows = model.rows_per_quarter();
    std::shared_ptr<const ImageLayer> photo = model.photo;
    QuarterLayers bipolar, prev, motion;
    for (int q = 0; q < kQuarters; ++q) {
      bipolar[q] = std::move(model.bipolar[q]);
      prev[q] = std::move(model.prev_bipolar[q]);
      motion[q] = std::move(model.motion[q]);
    }
    std::vector<Value> pieces;
    for (int q = 0; q < kQuarters; ++q) {
      ConvolPiece& cp = ctx.arg_block_mut<ConvolPiece>(q);
      UpdatePiece up;
      up.quarter = q;
      up.row0 = q * rows;
      up.row1 = (q + 1) * rows;
      up.input = photo;
      up.accum = std::move(cp.band);
      up.bipolar = std::move(bipolar[q]);
      up.prev_bipolar = std::move(prev[q]);
      up.motion = std::move(motion[q]);
      if (q == 0) up.carrier = std::move(model);
      pieces.push_back(Value::block(std::move(up)));
    }
    return Value::tuple(std::move(pieces));
  }).destructive(0).destructive(1).destructive(2).destructive(3);

  registry.add("update_bite", 2, [](OpContext& ctx) {
    UpdatePiece& piece = ctx.arg_block_mut<UpdatePiece>(0);
    const int slab = static_cast<int>(ctx.arg_int(1));
    if (is_heavy_slab(slab)) {
      heavy_update_rows(*piece.input, slab, piece.row0, piece.row1, piece.input->width,
                        piece.accum, piece.bipolar, piece.prev_bipolar, piece.motion);
    }
    return ctx.take(0);
  }).destructive(0);

  registry.add("done_up", 1 + kQuarters, [](OpContext& ctx) {
    RetinaModel model = take_carrier(ctx.arg_block_mut<UpdatePiece>(1).carrier, "done_up");
    for (int q = 0; q < kQuarters; ++q) {
      UpdatePiece& piece = ctx.arg_block_mut<UpdatePiece>(1 + q);
      model.accum[q] = std::move(piece.accum);
      model.bipolar[q] = std::move(piece.bipolar);
      model.prev_bipolar[q] = std::move(piece.prev_bipolar);
      model.motion[q] = std::move(piece.motion);
    }
    return Value::block(std::move(model));
  }).destructive(1).destructive(2).destructive(3).destructive(4);

  // --- inspection ---------------------------------------------------------------
  registry.add("retina_checksum", 1, [](OpContext& ctx) {
    return Value::of(checksum(ctx.arg_block<RetinaModel>(0)));
  }).pure();
  registry.add("retina_timestep", 1, [](OpContext& ctx) {
    return Value::of(static_cast<int64_t>(ctx.arg_block<RetinaModel>(0).timestep));
  }).pure();
}

std::string retina_source(RetinaVersion version, const RetinaParams& params) {
  std::string defines = "define NUM_ITER = " + std::to_string(params.num_iter) + "\n" +
                        "define START_SLAB = 0\n" +
                        "define FINAL_SLAB = " + std::to_string(kKernelSize) + "\n";
  // §5.1: the first version of the coordination framework.
  const std::string main_fn = R"(
main()
  iterate
  {
    timestep = 0, incr(timestep)
    scene = set_up(),
      let
        <a, b, c, d> = target_split(scene)
        ao = target_bite(a)
        bo = target_bite(b)
        co = target_bite(c)
        do = target_bite(d)
      in do_convol(ao, bo, co, do)
  } while is_not_equal(timestep, NUM_ITER),
  result scene
)";
  const std::string do_convol_v1 = R"(
do_convol(c1, c2, c3, c4)
  iterate
  {
    slab = START_SLAB, incr(slab)
    convolve_data = pre_update(c1, c2, c3, c4),
      let
        <a, b, c, d> = convol_split(convolve_data)
        ao = convol_bite(a, slab)
        bo = convol_bite(b, slab)
        co = convol_bite(c, slab)
        do = convol_bite(d, slab)
      in post_up(slab, ao, bo, co, do)
  } while is_not_equal(slab, FINAL_SLAB),
  result convolve_data
)";
  // §5.2: the final version, with the update phase decomposed four ways.
  const std::string do_convol_v2 = R"(
do_convol(c1, c2, c3, c4)
  iterate
  {
    slab = START_SLAB, incr(slab)
    convolve_data = pre_update(c1, c2, c3, c4),
      let
        <a, b, c, d> = convol_split(convolve_data)
        ao = convol_bite(a, slab)
        bo = convol_bite(b, slab)
        co = convol_bite(c, slab)
        do = convol_bite(d, slab)
      in let
           <u1, u2, u3, u4> = update_split(ao, bo, co, do)
           au = update_bite(u1, slab)
           bu = update_bite(u2, slab)
           cu = update_bite(u3, slab)
           du = update_bite(u4, slab)
         in done_up(slab, au, bu, cu, du)
  } while is_not_equal(slab, FINAL_SLAB),
  result convolve_data
)";
  return defines + main_fn +
         (version == RetinaVersion::kV1Imbalanced ? do_convol_v1 : do_convol_v2);
}

RetinaModel delirium_run(const RetinaParams& params, RetinaVersion version, Runtime& runtime) {
  CompiledProgram program =
      compile_or_throw(retina_source(version, params), runtime.registry());
  Value result = runtime.run(program);
  // The result block is uniquely held here, so this moves rather than
  // copies the model out.
  return std::move(result.block_mut<RetinaModel>());
}

}  // namespace delirium::retina
