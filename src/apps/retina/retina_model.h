// Case study #1 (§5): a convolution-based retina model for motion
// detection, rebuilt from the paper's description of the Eeckman/Andes
// code (the original Fortran is not available; see DESIGN.md).
//
// The model is a group of layers updated each timestep:
//   photoreceptor  P  — the rendered scene (moving targets)
//   horizontal     A  — K slab passes of a KxK kernel over P (the
//                       "convolutions"; one slab = one kernel row)
//   bipolar        B  — difference of A and P (computed on "heavy" slabs)
//   ganglion       M  — temporal difference of B (motion detection)
//
// Layers other than P are stored in four row-quarters so the Delirium
// coordination can move quarters in and out of operator pieces without
// copying — the paper's "merging is free" property on shared memory.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/support/rng.h"

namespace delirium::retina {

constexpr int kKernelSize = 9;   // K: number of convolution slabs
constexpr int kQuarters = 4;     // the paper targets 4-way parallelism

struct RetinaParams {
  int width = 256;
  int height = 256;     // must be divisible by 4
  int num_targets = 32;
  int num_iter = 4;     // NUM_ITER timesteps
  uint64_t seed = 42;
};

struct Target {
  float x = 0, y = 0;
  float vx = 0, vy = 0;
};

/// The rendered input image, shared read-only among convolution pieces.
struct ImageLayer {
  int width = 0;
  int height = 0;
  std::vector<float> pix;  // row-major

  float at(int x, int y) const { return pix[static_cast<size_t>(y) * width + x]; }
};

using QuarterLayers = std::array<std::vector<float>, kQuarters>;

/// The whole simulation state. This is the `scene` / `convolve_data`
/// value that flows through the paper's coordination framework.
struct RetinaModel {
  RetinaParams params;
  int timestep = 0;
  std::vector<Target> targets;
  std::shared_ptr<const ImageLayer> photo;  // P
  QuarterLayers accum;                      // A (being accumulated slab by slab)
  QuarterLayers bipolar;                    // B
  QuarterLayers prev_bipolar;
  QuarterLayers motion;                     // M

  int rows_per_quarter() const { return params.height / kQuarters; }
  int quarter_row0(int q) const { return q * rows_per_quarter(); }
};

/// Pieces handed to the parallel operators. Quarter 0 carries the rest of
/// the model through the fork-join (the paper's operators pass all shared
/// state explicitly).
struct TargetChunk {
  std::vector<Target> targets;
  int width = 0, height = 0;
  std::optional<RetinaModel> carrier;
};

struct ConvolPiece {
  int quarter = 0;
  int row0 = 0, row1 = 0;
  std::shared_ptr<const ImageLayer> input;  // read-only shared P
  std::vector<float> band;                  // this quarter's rows of A (moved)
  std::optional<RetinaModel> carrier;
};

struct UpdatePiece {
  int quarter = 0;
  int row0 = 0, row1 = 0;
  std::shared_ptr<const ImageLayer> input;
  std::vector<float> accum, bipolar, prev_bipolar, motion;  // moved quarters
  std::optional<RetinaModel> carrier;
};

// Block payload sizes for the NUMA model / data-affinity scheduler.
inline size_t delirium_block_size(const RetinaModel& m) {
  size_t bytes = sizeof(RetinaModel) + m.targets.size() * sizeof(Target);
  for (int q = 0; q < kQuarters; ++q) {
    bytes += (m.accum[q].size() + m.bipolar[q].size() + m.prev_bipolar[q].size() +
              m.motion[q].size()) *
             sizeof(float);
  }
  return bytes;
}
inline size_t delirium_block_size(const TargetChunk& c) {
  return sizeof(TargetChunk) + c.targets.size() * sizeof(Target) +
         (c.carrier ? delirium_block_size(*c.carrier) : 0);
}
inline size_t delirium_block_size(const ConvolPiece& p) {
  return sizeof(ConvolPiece) + p.band.size() * sizeof(float) +
         (p.carrier ? delirium_block_size(*p.carrier) : 0);
}
inline size_t delirium_block_size(const UpdatePiece& p) {
  return sizeof(UpdatePiece) +
         (p.accum.size() + p.bipolar.size() + p.prev_bipolar.size() + p.motion.size()) *
             sizeof(float) +
         (p.carrier ? delirium_block_size(*p.carrier) : 0);
}

// --- model math (shared by the sequential reference and the operators) ---

/// The KxK separable-ish convolution kernel (normalized blur).
const std::array<std::array<float, kKernelSize>, kKernelSize>& kernel();

/// Initialize a model: deterministic targets from the seed.
RetinaModel make_model(const RetinaParams& params);

/// Advance a span of targets one timestep (bounce at the walls).
void advance_targets(std::vector<Target>& targets, int width, int height);

/// Render the photoreceptor layer from target positions.
std::shared_ptr<const ImageLayer> render_scene(const std::vector<Target>& targets, int width,
                                               int height);

/// Apply kernel row `slab` of the convolution to output rows [row0, row1).
/// `band` holds those rows (band.size() == (row1-row0)*width).
void convolve_slab_rows(const ImageLayer& input, int slab, int row0, int row1,
                        std::vector<float>& band);

/// Whether this slab ends with the expensive bipolar/motion update. In the
/// paper's anecdote, roughly half of post_up's invocations were expensive.
inline bool is_heavy_slab(int slab) { return slab % 2 == 1; }

/// The heavy per-pixel update over rows [row0, row1) (quarter-local
/// vectors indexed from row0).
void heavy_update_rows(const ImageLayer& photo, int slab, int row0, int row1, int width,
                       std::vector<float>& accum, std::vector<float>& bipolar,
                       std::vector<float>& prev_bipolar, std::vector<float>& motion);

/// One full timestep, sequentially (the original program the case study
/// starts from). Bitwise-identical to the Delirium version.
void sequential_timestep(RetinaModel& model);

/// Run `params.num_iter` timesteps sequentially from a fresh model.
RetinaModel sequential_run(const RetinaParams& params);

/// Deterministic checksum over the motion and bipolar layers.
double checksum(const RetinaModel& model);

}  // namespace delirium::retina
