#include "src/apps/queens/queens.h"

#include <sstream>
#include <stdexcept>

namespace delirium::queens {

bool board_valid(const Board& board) {
  const int last = static_cast<int>(board.size()) - 1;
  if (last < 0) return true;
  for (int i = 0; i < last; ++i) {
    const int dr = last - i;
    if (board[i] == board[last] || board[i] == board[last] - dr ||
        board[i] == board[last] + dr) {
      return false;
    }
  }
  return true;
}

namespace {

void solve_rec(Board& board, int n, std::vector<Board>& out) {
  if (static_cast<int>(board.size()) == n) {
    out.push_back(board);
    return;
  }
  for (int8_t row = 1; row <= n; ++row) {
    board.push_back(row);
    if (board_valid(board)) solve_rec(board, n, out);
    board.pop_back();
  }
}

/// Solutions are collected into a list-of-boards block; merge flattens.
using BoardList = std::vector<Board>;

}  // namespace

std::vector<Board> solve_sequential(int n) {
  std::vector<Board> out;
  Board board;
  solve_rec(board, n, out);
  return out;
}

int64_t count_solutions_sequential(int n) {
  return static_cast<int64_t>(solve_sequential(n).size());
}

void register_queens_operators(OperatorRegistry& registry, int n) {
  if (n < 1 || n > 16) throw std::invalid_argument("queens: n must be in [1, 16]");

  registry.add("empty_board", 0, [](OpContext&) { return Value::block(Board{}); }).pure();

  registry.add("add_queen", 3, [](OpContext& ctx) {
    // The paper's operator may destructively extend the board; the
    // runtime's reference counting copies it when siblings still hold it.
    Board& board = ctx.arg_block_mut<Board>(0);
    (void)ctx.arg_int(1);  // queen number == column, implicit in size()
    board.push_back(static_cast<int8_t>(ctx.arg_int(2)));
    return ctx.take(0);
  }).destructive(0);

  registry.add("is_valid", 1, [](OpContext& ctx) {
    return Value::of(static_cast<int64_t>(board_valid(ctx.arg_block<Board>(0)) ? 1 : 0));
  }).pure();

  registry.add("merge", n, [](OpContext& ctx) {
    BoardList all;
    for (size_t i = 0; i < ctx.arg_count(); ++i) {
      const Value& v = ctx.arg(i);
      if (v.is_null()) continue;
      const auto& ptr = v.block_ptr();
      if (const auto* list = dynamic_cast<const TypedBlock<BoardList>*>(ptr.get())) {
        all.insert(all.end(), list->data.begin(), list->data.end());
      } else {
        all.push_back(v.block_as<Board>());
      }
    }
    return Value::block(std::move(all));
  }).pure().variadic();

  registry.add("show_solutions", 1, [](OpContext& ctx) {
    return Value::of(static_cast<int64_t>(ctx.arg_block<BoardList>(0).size()));
  }).pure();

  registry.add("solution_list", 1, [](OpContext& ctx) { return ctx.take(0); }).pure();
}

std::string queens_source(int n) {
  std::ostringstream os;
  os << "main()\n"
        "  let board = empty_board()\n"
        "  in show_solutions(do_it(board, 1))\n\n";
  os << "do_it(board, queen)\n  let\n";
  for (int i = 1; i <= n; ++i) {
    os << "    h" << i << " = try(board, queen, " << i << ")\n";
  }
  os << "  in merge(";
  for (int i = 1; i <= n; ++i) os << (i > 1 ? ", " : "") << "h" << i;
  os << ")\n\n";
  os << "try(board, queen, location)\n"
        "  let new_board = add_queen(board, queen, location)\n"
        "  in if is_valid(new_board)\n"
        "      then if is_equal(queen, "
     << n
     << ")\n"
        "            then new_board\n"
        "            else do_it(new_board, incr(queen))\n"
        "      else NULL\n";
  return os.str();
}

}  // namespace delirium::queens
