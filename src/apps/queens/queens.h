// The §3 example: parallel recursive backtracking N-queens.
//
// The Delirium program is the paper's, generalized from 8 to N: do_it
// forks one `try` per square of the current column; each valid partial
// board recurses. The operators are "roughly 100 lines of C" in the
// paper; here they are the C++ below.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/registry.h"

namespace delirium::queens {

using Board = std::vector<int8_t>;  // board[i] = row of the queen in column i

/// Register empty_board/add_queen/is_valid/merge/show_solutions for an
/// N×N board (N between 1 and 16).
void register_queens_operators(OperatorRegistry& registry, int n);

/// The coordination program for board size n — the paper's §3 text with
/// N try-branches per column.
std::string queens_source(int n);

/// Sequential reference solver: number of solutions.
int64_t count_solutions_sequential(int n);

/// Solution boards, sequentially, in lexicographic order (for tests).
std::vector<Board> solve_sequential(int n);

/// True when `board` places its queens without attacks.
bool board_valid(const Board& board);

}  // namespace delirium::queens
