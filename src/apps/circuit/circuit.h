// A gate-level circuit simulator, coordinated by Delirium.
//
// The paper mentions "a simple circuit simulator" among the ported
// applications (§4); no source survives, so this is a from-scratch
// levelized simulator exercising the iterate + fork-join coordination
// shape: each clock cycle, the netlist's output cones are partitioned
// into four groups, each cone group is evaluated independently (shared
// logic is re-evaluated — the classic cone-partitioning tradeoff, which
// keeps the pieces free of cross-dependencies and the results
// deterministic), and a join updates the registers and advances the
// input stimulus.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/registry.h"
#include "src/support/rng.h"

namespace delirium::circuit {

enum class GateKind : uint8_t { kAnd, kOr, kXor, kNand, kNot, kBuf };

struct Gate {
  GateKind kind = GateKind::kAnd;
  int a = -1;  // signal indices; b unused for kNot/kBuf
  int b = -1;
};

/// Signals are numbered: [0, num_inputs) primary inputs,
/// [num_inputs, num_inputs+num_regs) register outputs, then one signal
/// per gate. Gates only reference lower-numbered signals (levelized by
/// construction).
struct Netlist {
  int num_inputs = 0;
  int num_regs = 0;
  std::vector<Gate> gates;
  std::vector<int> reg_next;  // per register: signal feeding its D pin
  std::vector<int> outputs;   // observed signals

  int num_signals() const {
    return num_inputs + num_regs + static_cast<int>(gates.size());
  }
  int gate_signal(int gate_index) const { return num_inputs + num_regs + gate_index; }
};

struct CircuitParams {
  int num_inputs = 16;
  int num_regs = 32;
  int num_gates = 4000;
  int num_outputs = 64;
  int cycles = 32;
  uint64_t seed = 1;
};

/// Deterministic random netlist (acyclic combinational logic over inputs
/// and register outputs; registers fed from gate outputs).
Netlist generate_netlist(const CircuitParams& params);

/// A 4-bit ripple-carry adder with an accumulator register bank — a
/// structured netlist for unit tests.
Netlist build_adder_accumulator();

/// Evaluate one gate given signal values.
bool eval_gate(const Gate& gate, const std::vector<uint8_t>& signals);

/// Simulation state: register values + input stimulus generator +
/// running output signature.
struct SimState {
  std::shared_ptr<const Netlist> netlist;
  std::vector<uint8_t> regs;
  uint64_t stimulus = 0;  // LFSR state driving the primary inputs
  uint64_t signature = 0;
  int cycle = 0;
};

/// Evaluate the full combinational fabric for the given input/reg values;
/// returns all signal values.
std::vector<uint8_t> eval_all(const Netlist& netlist, const std::vector<uint8_t>& inputs,
                              const std::vector<uint8_t>& regs);

/// Run `cycles` clock cycles sequentially; returns the final state
/// (signature folds the outputs of every cycle).
SimState simulate_sequential(const CircuitParams& params);
SimState simulate_sequential(std::shared_ptr<const Netlist> netlist, int cycles,
                             uint64_t seed);

/// Sequential simulation over the same cone partition the parallel
/// version uses (evaluating each cone's fan-in in turn). Identical
/// signatures; the like-for-like baseline for the overhead measurement
/// (cone evaluation duplicates shared logic and skips unobserved logic,
/// so full-netlist evaluation is not comparable work).
SimState simulate_sequential_cones(const CircuitParams& params, int pieces = 4);

/// Register circ_init / cone_split / eval_cone / latch_update operators
/// and produce the coordination source.
void register_circuit_operators(OperatorRegistry& registry, const CircuitParams& params);
std::string circuit_source(const CircuitParams& params);

/// Fold `outputs` into a signature (order-independent across cones
/// because each output has a fixed position).
uint64_t fold_signature(uint64_t signature, const std::vector<uint8_t>& output_values);

/// Next LFSR state / input values derived from it.
uint64_t lfsr_next(uint64_t state);
std::vector<uint8_t> stimulus_inputs(uint64_t state, int num_inputs);

/// Cone partition: output indices → `pieces` groups; plus, per group,
/// the transitive fan-in gate list in topological order.
struct Cone {
  std::vector<int> outputs;       // positions into netlist.outputs
  std::vector<int> regs;          // register indices whose D-value it computes
  std::vector<int> gates;         // gate indices, ascending (= topo order)
};
std::vector<Cone> partition_cones(const Netlist& netlist, int pieces);

/// The state block the coordination framework threads through the cycle
/// loop: simulation state plus the (shared, immutable) cone partition.
struct CircuitBlock {
  SimState state;
  std::shared_ptr<const std::vector<Cone>> cones;
};

}  // namespace delirium::circuit
