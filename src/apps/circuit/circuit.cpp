#include "src/apps/circuit/circuit.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace delirium::circuit {

bool eval_gate(const Gate& gate, const std::vector<uint8_t>& signals) {
  const bool a = signals[gate.a] != 0;
  const bool b = gate.b >= 0 && signals[gate.b] != 0;
  switch (gate.kind) {
    case GateKind::kAnd: return a && b;
    case GateKind::kOr: return a || b;
    case GateKind::kXor: return a != b;
    case GateKind::kNand: return !(a && b);
    case GateKind::kNot: return !a;
    case GateKind::kBuf: return a;
  }
  return false;
}

Netlist generate_netlist(const CircuitParams& params) {
  Netlist net;
  net.num_inputs = params.num_inputs;
  net.num_regs = params.num_regs;
  SplitMix64 rng(params.seed);
  const int base = params.num_inputs + params.num_regs;
  for (int g = 0; g < params.num_gates; ++g) {
    Gate gate;
    gate.kind = static_cast<GateKind>(rng.next_below(6));
    const int avail = base + g;
    // Bias toward recent signals to build depth.
    auto pick = [&]() -> int {
      if (g > 8 && rng.next_bool(0.7)) {
        return base + static_cast<int>(rng.next_below(static_cast<uint64_t>(g)));
      }
      return static_cast<int>(rng.next_below(static_cast<uint64_t>(avail)));
    };
    gate.a = pick();
    if (gate.kind != GateKind::kNot && gate.kind != GateKind::kBuf) gate.b = pick();
    net.gates.push_back(gate);
  }
  for (int r = 0; r < params.num_regs; ++r) {
    net.reg_next.push_back(net.gate_signal(
        static_cast<int>(rng.next_below(static_cast<uint64_t>(params.num_gates)))));
  }
  for (int o = 0; o < params.num_outputs; ++o) {
    // Favor late gates so output cones are deep.
    const int lo = params.num_gates / 2;
    net.outputs.push_back(net.gate_signal(
        lo + static_cast<int>(rng.next_below(static_cast<uint64_t>(params.num_gates - lo)))));
  }
  return net;
}

Netlist build_adder_accumulator() {
  // 4-bit ripple-carry adder: acc' = acc + in. Inputs 0..3, registers
  // (accumulator bits) 4..7.
  Netlist net;
  net.num_inputs = 4;
  net.num_regs = 4;
  auto add_gate = [&net](GateKind kind, int a, int b = -1) {
    net.gates.push_back(Gate{kind, a, b});
    return net.gate_signal(static_cast<int>(net.gates.size()) - 1);
  };
  int carry = -1;
  for (int bit = 0; bit < 4; ++bit) {
    const int in = bit;        // input bit
    const int acc = 4 + bit;   // register bit
    const int axb = add_gate(GateKind::kXor, in, acc);
    if (bit == 0) {
      const int sum = add_gate(GateKind::kBuf, axb);
      carry = add_gate(GateKind::kAnd, in, acc);
      net.reg_next.push_back(sum);
    } else {
      const int sum = add_gate(GateKind::kXor, axb, carry);
      const int and1 = add_gate(GateKind::kAnd, in, acc);
      const int and2 = add_gate(GateKind::kAnd, axb, carry);
      carry = add_gate(GateKind::kOr, and1, and2);
      net.reg_next.push_back(sum);
    }
  }
  for (int r = 0; r < 4; ++r) net.outputs.push_back(net.reg_next[r]);
  net.outputs.push_back(carry);
  return net;
}

uint64_t lfsr_next(uint64_t state) {
  // 64-bit xorshift; never returns 0 for nonzero input.
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::vector<uint8_t> stimulus_inputs(uint64_t state, int num_inputs) {
  std::vector<uint8_t> inputs(num_inputs);
  for (int i = 0; i < num_inputs; ++i) {
    inputs[i] = static_cast<uint8_t>((state >> (i % 64)) & 1);
  }
  return inputs;
}

uint64_t fold_signature(uint64_t signature, const std::vector<uint8_t>& output_values) {
  for (uint8_t v : output_values) {
    signature = (signature ^ v) * 1099511628211ull + 0x9e3779b9ull;
  }
  return signature;
}

std::vector<uint8_t> eval_all(const Netlist& netlist, const std::vector<uint8_t>& inputs,
                              const std::vector<uint8_t>& regs) {
  std::vector<uint8_t> signals(static_cast<size_t>(netlist.num_signals()), 0);
  std::copy(inputs.begin(), inputs.end(), signals.begin());
  std::copy(regs.begin(), regs.end(), signals.begin() + netlist.num_inputs);
  for (size_t g = 0; g < netlist.gates.size(); ++g) {
    signals[netlist.num_inputs + netlist.num_regs + g] =
        eval_gate(netlist.gates[g], signals) ? 1 : 0;
  }
  return signals;
}

namespace {

void step_state(SimState& state, const std::vector<uint8_t>& all_signals) {
  std::vector<uint8_t> outputs;
  outputs.reserve(state.netlist->outputs.size());
  for (int sig : state.netlist->outputs) outputs.push_back(all_signals[sig]);
  state.signature = fold_signature(state.signature, outputs);
  for (size_t r = 0; r < state.regs.size(); ++r) {
    state.regs[r] = all_signals[state.netlist->reg_next[r]];
  }
  state.stimulus = lfsr_next(state.stimulus);
  ++state.cycle;
}

SimState make_state(std::shared_ptr<const Netlist> netlist, uint64_t seed) {
  SimState state;
  state.netlist = std::move(netlist);
  state.regs.assign(state.netlist->num_regs, 0);
  state.stimulus = seed | 1;  // LFSR must not start at 0
  return state;
}

}  // namespace

SimState simulate_sequential(std::shared_ptr<const Netlist> netlist, int cycles,
                             uint64_t seed) {
  SimState state = make_state(std::move(netlist), seed);
  for (int c = 0; c < cycles; ++c) {
    const std::vector<uint8_t> inputs =
        stimulus_inputs(state.stimulus, state.netlist->num_inputs);
    const std::vector<uint8_t> signals = eval_all(*state.netlist, inputs, state.regs);
    step_state(state, signals);
  }
  return state;
}

SimState simulate_sequential(const CircuitParams& params) {
  auto netlist = std::make_shared<const Netlist>(generate_netlist(params));
  return simulate_sequential(std::move(netlist), params.cycles, params.seed);
}

SimState simulate_sequential_cones(const CircuitParams& params, int pieces) {
  auto netlist = std::make_shared<const Netlist>(generate_netlist(params));
  const std::vector<Cone> cones = partition_cones(*netlist, pieces);
  SimState state = make_state(netlist, params.seed);
  const Netlist& net = *netlist;
  std::vector<uint8_t> signals(static_cast<size_t>(net.num_signals()), 0);
  std::vector<uint8_t> outputs(net.outputs.size(), 0);
  std::vector<uint8_t> next_regs(net.reg_next.size(), 0);
  for (int c = 0; c < params.cycles; ++c) {
    const std::vector<uint8_t> inputs = stimulus_inputs(state.stimulus, net.num_inputs);
    for (const Cone& cone : cones) {
      std::fill(signals.begin(), signals.end(), 0);
      std::copy(inputs.begin(), inputs.end(), signals.begin());
      std::copy(state.regs.begin(), state.regs.end(), signals.begin() + net.num_inputs);
      for (int g : cone.gates) {
        signals[net.num_inputs + net.num_regs + g] = eval_gate(net.gates[g], signals) ? 1 : 0;
      }
      for (int pos : cone.outputs) outputs[pos] = signals[net.outputs[pos]];
      for (int r : cone.regs) next_regs[r] = signals[net.reg_next[r]];
    }
    state.signature = fold_signature(state.signature, outputs);
    state.regs = next_regs;
    state.stimulus = lfsr_next(state.stimulus);
    ++state.cycle;
  }
  return state;
}

std::vector<Cone> partition_cones(const Netlist& netlist, int pieces) {
  // Sinks: every observed output and every register's next-value signal.
  // Distribute sink positions round-robin, then collect transitive
  // fan-in per cone (ascending gate order = topological order).
  struct Sink {
    bool is_output = true;
    int index = 0;  // output position or register index
    int signal = 0;
  };
  std::vector<Sink> sinks;
  for (size_t o = 0; o < netlist.outputs.size(); ++o) {
    sinks.push_back(Sink{true, static_cast<int>(o), netlist.outputs[o]});
  }
  for (size_t r = 0; r < netlist.reg_next.size(); ++r) {
    sinks.push_back(Sink{false, static_cast<int>(r), netlist.reg_next[r]});
  }
  std::vector<Cone> cones(pieces);
  const int gate_base = netlist.num_inputs + netlist.num_regs;
  std::vector<std::vector<uint8_t>> needed(pieces,
                                           std::vector<uint8_t>(netlist.gates.size(), 0));
  for (size_t s = 0; s < sinks.size(); ++s) {
    const int piece = static_cast<int>(s) % pieces;
    const Sink& sink = sinks[s];
    if (sink.is_output) {
      cones[piece].outputs.push_back(sink.index);
    } else {
      cones[piece].regs.push_back(sink.index);
    }
    // Mark the transitive fan-in.
    std::vector<int> stack;
    if (sink.signal >= gate_base) stack.push_back(sink.signal - gate_base);
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      if (needed[piece][g] != 0) continue;
      needed[piece][g] = 1;
      const Gate& gate = netlist.gates[g];
      if (gate.a >= gate_base) stack.push_back(gate.a - gate_base);
      if (gate.b >= gate_base) stack.push_back(gate.b - gate_base);
    }
  }
  for (int p = 0; p < pieces; ++p) {
    for (size_t g = 0; g < netlist.gates.size(); ++g) {
      if (needed[p][g] != 0) cones[p].gates.push_back(static_cast<int>(g));
    }
  }
  return cones;
}

// --- Delirium embedding --------------------------------------------------------

namespace {

constexpr int kCones = 4;

struct ConePiece {
  int index = 0;
  std::shared_ptr<const Netlist> netlist;
  std::shared_ptr<const std::vector<Cone>> cones;
  std::vector<uint8_t> inputs;  // this cycle's primary inputs
  std::vector<uint8_t> regs;    // this cycle's register values
  // Results:
  std::vector<std::pair<int, uint8_t>> output_values;  // (output pos, value)
  std::vector<std::pair<int, uint8_t>> reg_values;     // (register, next value)
  std::optional<CircuitBlock> carrier;
};

void eval_cone_piece(ConePiece& piece) {
  const Netlist& net = *piece.netlist;
  const Cone& cone = (*piece.cones)[piece.index];
  std::vector<uint8_t> signals(static_cast<size_t>(net.num_signals()), 0);
  std::copy(piece.inputs.begin(), piece.inputs.end(), signals.begin());
  std::copy(piece.regs.begin(), piece.regs.end(), signals.begin() + net.num_inputs);
  for (int g : cone.gates) {
    signals[net.num_inputs + net.num_regs + g] = eval_gate(net.gates[g], signals) ? 1 : 0;
  }
  for (int pos : cone.outputs) {
    piece.output_values.emplace_back(pos, signals[net.outputs[pos]]);
  }
  for (int r : cone.regs) {
    piece.reg_values.emplace_back(r, signals[net.reg_next[r]]);
  }
}

}  // namespace

void register_circuit_operators(OperatorRegistry& registry, const CircuitParams& params) {
  registry.add("circ_init", 0, [params](OpContext&) {
    CircuitBlock block;
    auto netlist = std::make_shared<const Netlist>(generate_netlist(params));
    block.cones = std::make_shared<const std::vector<Cone>>(
        partition_cones(*netlist, kCones));
    block.state = make_state(std::move(netlist), params.seed);
    return Value::block(std::move(block));
  });

  registry.add("cone_split", 1, [](OpContext& ctx) {
    CircuitBlock block = std::move(ctx.arg_block_mut<CircuitBlock>(0));
    // Snapshot everything the pieces need before the block moves into
    // the carrier.
    const std::shared_ptr<const Netlist> netlist = block.state.netlist;
    const auto cones = block.cones;
    const std::vector<uint8_t> inputs =
        stimulus_inputs(block.state.stimulus, netlist->num_inputs);
    const std::vector<uint8_t> regs = block.state.regs;
    std::vector<Value> pieces;
    for (int i = 0; i < kCones; ++i) {
      ConePiece piece;
      piece.index = i;
      piece.netlist = netlist;
      piece.cones = cones;
      piece.inputs = inputs;
      piece.regs = regs;
      if (i == 0) piece.carrier = std::move(block);
      pieces.push_back(Value::block(std::move(piece)));
    }
    return Value::tuple(std::move(pieces));
  }).destructive(0);

  registry.add("eval_cone", 1, [](OpContext& ctx) {
    ConePiece& piece = ctx.arg_block_mut<ConePiece>(0);
    eval_cone_piece(piece);
    return ctx.take(0);
  }).destructive(0);

  {
    auto entry = registry.add("latch_update", kCones, [](OpContext& ctx) {
      ConePiece& first = ctx.arg_block_mut<ConePiece>(0);
      if (!first.carrier.has_value()) {
        throw RuntimeError("latch_update: cone 0 does not carry the state");
      }
      CircuitBlock block = std::move(*first.carrier);
      first.carrier.reset();
      std::vector<uint8_t> outputs(block.state.netlist->outputs.size(), 0);
      for (int i = 0; i < kCones; ++i) {
        ConePiece& piece = ctx.arg_block_mut<ConePiece>(i);
        for (const auto& [pos, value] : piece.output_values) outputs[pos] = value;
        for (const auto& [reg, value] : piece.reg_values) block.state.regs[reg] = value;
      }
      block.state.signature = fold_signature(block.state.signature, outputs);
      block.state.stimulus = lfsr_next(block.state.stimulus);
      ++block.state.cycle;
      return Value::block(std::move(block));
    });
    for (int i = 0; i < kCones; ++i) entry.destructive(i);
  }

  registry.add("circ_signature", 1, [](OpContext& ctx) {
    return Value::of(static_cast<int64_t>(ctx.arg_block<CircuitBlock>(0).state.signature));
  }).pure();
  registry.add("circ_cycle", 1, [](OpContext& ctx) {
    return Value::of(static_cast<int64_t>(ctx.arg_block<CircuitBlock>(0).state.cycle));
  }).pure();
}

std::string circuit_source(const CircuitParams& params) {
  std::ostringstream os;
  os << "define NUM_CYCLES = " << params.cycles << "\n";
  os << R"(
main()
  iterate
  {
    cycle = 0, incr(cycle)
    st = circ_init(),
      let
        <a, b, c, d> = cone_split(st)
        ao = eval_cone(a)
        bo = eval_cone(b)
        co = eval_cone(c)
        do = eval_cone(d)
      in latch_update(ao, bo, co, do)
  } while is_not_equal(cycle, NUM_CYCLES),
  result st
)";
  return os.str();
}

}  // namespace delirium::circuit
