#include "src/lang/macro.h"

#include <unordered_set>

namespace delirium {

namespace {

/// Recursive substitution with a scope stack of shadowed names.
class Substituter {
 public:
  Substituter(const std::unordered_map<std::string, const Expr*>& subst, AstContext& ctx)
      : subst_(subst), ctx_(ctx) {}

  Expr* rewrite(const Expr* e) {
    if (e == nullptr) return nullptr;
    switch (e->kind) {
      case ExprKind::kVar: {
        if (!is_shadowed(e->str_value)) {
          auto it = subst_.find(e->str_value);
          if (it != subst_.end()) return ctx_.clone(it->second);
        }
        return ctx_.make_var(e->str_value, e->range);
      }
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kNullLit:
        return ctx_.clone(e);
      case ExprKind::kTuple: {
        std::vector<Expr*> elems;
        elems.reserve(e->args.size());
        for (const Expr* a : e->args) elems.push_back(rewrite(a));
        return ctx_.make_tuple(std::move(elems), e->range);
      }
      case ExprKind::kApply: {
        Expr* callee = rewrite(e->callee);
        std::vector<Expr*> args;
        args.reserve(e->args.size());
        for (const Expr* a : e->args) args.push_back(rewrite(a));
        return ctx_.make_apply(callee, std::move(args), e->range);
      }
      case ExprKind::kIf:
        return ctx_.make_if(rewrite(e->cond), rewrite(e->then_branch), rewrite(e->else_branch),
                            e->range);
      case ExprKind::kLet: {
        // Bindings introduce names scoped over later bindings and the
        // body (Delirium lets are sequential, like let* — the §5.1
        // examples depend on earlier bindings in later ones).
        std::vector<Binding> bindings;
        bindings.reserve(e->bindings.size());
        size_t pushed = 0;
        for (const Binding& b : e->bindings) {
          Binding nb = b;
          if (b.kind == Binding::Kind::kFunction) {
            // The function name is visible to its own body (recursion).
            push_shadow(b.names[0]);
            ++pushed;
            for (const std::string& p : b.params) push_shadow(p);
            nb.value = rewrite(b.value);
            for (size_t i = 0; i < b.params.size(); ++i) pop_shadow();
          } else {
            nb.value = rewrite(b.value);
            for (const std::string& n : b.names) {
              push_shadow(n);
              ++pushed;
            }
          }
          bindings.push_back(std::move(nb));
        }
        Expr* body = rewrite(e->body);
        for (size_t i = 0; i < pushed; ++i) pop_shadow();
        return ctx_.make_let(std::move(bindings), body, e->range);
      }
      case ExprKind::kIterate: {
        Expr* out = ctx_.make(ExprKind::kIterate, e->range);
        out->result_name = e->result_name;
        // Initializers are evaluated outside the loop-variable scope;
        // steps and the condition see all loop variables.
        std::vector<Expr*> inits;
        inits.reserve(e->loop_vars.size());
        for (const LoopVar& lv : e->loop_vars) inits.push_back(rewrite(lv.init));
        for (const LoopVar& lv : e->loop_vars) push_shadow(lv.name);
        for (size_t i = 0; i < e->loop_vars.size(); ++i) {
          LoopVar nlv;
          nlv.name = e->loop_vars[i].name;
          nlv.range = e->loop_vars[i].range;
          nlv.init = inits[i];
          nlv.step = rewrite(e->loop_vars[i].step);
          out->loop_vars.push_back(std::move(nlv));
        }
        out->cond = rewrite(e->cond);
        for (size_t i = 0; i < e->loop_vars.size(); ++i) pop_shadow();
        return out;
      }
    }
    return ctx_.clone(e);
  }

 private:
  bool is_shadowed(const std::string& name) const { return shadow_counts_.count(name) > 0; }
  void push_shadow(const std::string& name) {
    ++shadow_counts_[name];
    shadow_stack_.push_back(name);
  }
  void pop_shadow() {
    const std::string& name = shadow_stack_.back();
    auto it = shadow_counts_.find(name);
    if (--it->second == 0) shadow_counts_.erase(it);
    shadow_stack_.pop_back();
  }

  const std::unordered_map<std::string, const Expr*>& subst_;
  AstContext& ctx_;
  std::unordered_map<std::string, int> shadow_counts_;
  std::vector<std::string> shadow_stack_;
};

class MacroExpander {
 public:
  MacroExpander(Program& program, AstContext& ctx, DiagnosticEngine& diags)
      : ctx_(ctx), diags_(diags) {
    for (FuncDecl* m : program.macros) {
      if (macros_.count(m->name) > 0) {
        diags_.error(m->range, "duplicate macro definition '" + m->name + "'");
        continue;
      }
      macros_[m->name] = m;
    }
  }

  Expr* expand(const Expr* e, int depth) {
    if (e == nullptr) return nullptr;
    if (depth > kMaxDepth) {
      diags_.error(e->range, "macro expansion too deep (recursive macro?)");
      return ctx_.clone(e);
    }
    // Function-like macro call: NAME(args).
    if (e->kind == ExprKind::kApply && e->callee != nullptr &&
        e->callee->kind == ExprKind::kVar) {
      auto it = macros_.find(e->callee->str_value);
      if (it != macros_.end() && !it->second->params.empty()) {
        const FuncDecl* m = it->second;
        if (m->params.size() != e->args.size()) {
          diags_.error(e->range, "macro '" + m->name + "' expects " +
                                     std::to_string(m->params.size()) + " arguments, got " +
                                     std::to_string(e->args.size()));
          return ctx_.clone(e);
        }
        std::unordered_map<std::string, const Expr*> subst;
        std::vector<Expr*> expanded_args;
        expanded_args.reserve(e->args.size());
        for (const Expr* a : e->args) expanded_args.push_back(expand(a, depth + 1));
        for (size_t i = 0; i < m->params.size(); ++i) subst[m->params[i]] = expanded_args[i];
        Expr* body = substitute(m->body, subst, ctx_);
        return expand(body, depth + 1);
      }
    }
    // Symbolic constant: bare NAME.
    if (e->kind == ExprKind::kVar) {
      auto it = macros_.find(e->str_value);
      if (it != macros_.end() && it->second->params.empty()) {
        return expand(it->second->body, depth + 1);
      }
    }
    // Otherwise expand children structurally. Shallow clone: children
    // are replaced below, so deep-copying them here would make the pass
    // O(n * depth). Structural descent does not count toward the macro
    // recursion limit — only actual expansions do.
    Expr* out = ctx_.shallow_clone(e);
    for_each_child_mut(out, [this, depth](Expr*& child) { child = expand(child, depth); });
    return out;
  }

 private:
  static constexpr int kMaxDepth = 64;

  AstContext& ctx_;
  DiagnosticEngine& diags_;
  std::unordered_map<std::string, const FuncDecl*> macros_;
};

}  // namespace

Expr* substitute(const Expr* e, const std::unordered_map<std::string, const Expr*>& subst,
                 AstContext& ctx) {
  return Substituter(subst, ctx).rewrite(e);
}

void expand_macros(Program& program, AstContext& ctx, DiagnosticEngine& diags) {
  MacroExpander expander(program, ctx, diags);
  for (FuncDecl* f : program.functions) {
    f->body = expander.expand(f->body, 0);
  }
  program.macros.clear();
}

}  // namespace delirium
