// Pretty-printer for Delirium ASTs. Output round-trips through the
// parser (parse(print(tree)) is structurally equal to tree), which the
// test suite checks property-style on generated programs.
#pragma once

#include <iosfwd>
#include <string>

#include "src/lang/ast.h"

namespace delirium {

void print_expr(std::ostream& os, const Expr* e, int indent = 0);
void print_function(std::ostream& os, const FuncDecl* f);
void print_program(std::ostream& os, const Program& program);

std::string expr_to_string(const Expr* e);
std::string program_to_string(const Program& program);

}  // namespace delirium
