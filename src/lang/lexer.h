// Hand-written lexer for Delirium. Produces the full token vector up
// front; the input programs are small (coordination frameworks fit on a
// page) so there is no need for streaming.
#pragma once

#include <vector>

#include "src/lang/token.h"
#include "src/support/diagnostics.h"
#include "src/support/source.h"

namespace delirium {

class Lexer {
 public:
  Lexer(const SourceFile& file, DiagnosticEngine& diags) : file_(file), diags_(diags) {}

  /// Lex the whole buffer. The result always ends with a kEof token.
  /// Malformed input produces kError tokens plus diagnostics.
  std::vector<Token> lex_all();

 private:
  Token next_token();
  Token make(TokenKind kind, uint32_t begin);
  char peek(uint32_t ahead = 0) const;
  bool at_end() const { return pos_ >= file_.text().size(); }
  void skip_trivia();

  Token lex_number(uint32_t begin);
  Token lex_ident_or_keyword(uint32_t begin);
  Token lex_string(uint32_t begin);

  const SourceFile& file_;
  DiagnosticEngine& diags_;
  uint32_t pos_ = 0;
};

/// Convenience: lex a standalone string (used heavily in tests).
std::vector<Token> lex_string_to_tokens(const SourceFile& file, DiagnosticEngine& diags);

}  // namespace delirium
