// Abstract syntax tree for Delirium.
//
// One tagged node type (Expr) keeps tree walks — including the parallel
// tree walks of the compiler case study (§6.2 of the paper) — simple and
// uniform. Nodes are owned by an AstContext and referenced by raw pointer;
// passes rewrite trees functionally by allocating replacement nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/support/source.h"

namespace delirium {

class AstContext;

enum class ExprKind : uint8_t {
  kIntLit,
  kFloatLit,
  kStringLit,
  kNullLit,
  kVar,
  kTuple,    // multiple-value package construction: <e1, e2, ...>
  kApply,    // f(args...) — operator, function, or closure application
  kLet,      // let bindings in body
  kIf,       // if cond then a else b
  kIterate,  // iterate { var=init,step ... } while cond, result var
};

struct Expr;

/// One binding in a `let`. Three flavours per the paper: a single value,
/// a decomposition of a multiple-value package, or a function definition.
struct Binding {
  enum class Kind : uint8_t { kValue, kDecompose, kFunction };
  Kind kind = Kind::kValue;
  std::vector<std::string> names;   // kValue: 1 name; kDecompose: N; kFunction: [function name]
  std::vector<std::string> params;  // kFunction only
  Expr* value = nullptr;            // bound expression, or function body
  SourceRange range;
};

/// One loop variable in `iterate`: `name = init, step`.
struct LoopVar {
  std::string name;
  Expr* init = nullptr;
  Expr* step = nullptr;
  SourceRange range;
};

struct Expr {
  ExprKind kind = ExprKind::kNullLit;
  SourceRange range;

  // Literals / names. str_value doubles as the variable name for kVar.
  int64_t int_value = 0;
  double float_value = 0;
  std::string str_value;

  // kApply: callee + args. kTuple: args are the elements.
  Expr* callee = nullptr;
  std::vector<Expr*> args;

  // kLet: bindings + body. kIf: cond/then_branch/else_branch.
  std::vector<Binding> bindings;
  Expr* body = nullptr;
  Expr* cond = nullptr;
  Expr* then_branch = nullptr;
  Expr* else_branch = nullptr;

  // kIterate.
  std::vector<LoopVar> loop_vars;
  std::string result_name;

  bool is_literal() const {
    return kind == ExprKind::kIntLit || kind == ExprKind::kFloatLit ||
           kind == ExprKind::kStringLit || kind == ExprKind::kNullLit;
  }
};

/// A top-level declaration: a function, or (before macro expansion) a
/// macro introduced with `define`.
struct FuncDecl {
  std::string name;
  std::vector<std::string> params;
  Expr* body = nullptr;
  SourceRange range;
  bool is_macro = false;
  /// Cached subtree weight (paper §6.2: trees are annotated with subtree
  /// sizes so partitioning is cheap). 0 means "not computed".
  uint32_t weight = 0;
};

/// Owns every AST node for one compilation. Hands out raw pointers that
/// stay valid for the context's lifetime.
class AstContext {
 public:
  AstContext() = default;
  AstContext(const AstContext&) = delete;
  AstContext& operator=(const AstContext&) = delete;

  Expr* make(ExprKind kind, SourceRange range);
  Expr* make_int(int64_t v, SourceRange range = {});
  Expr* make_float(double v, SourceRange range = {});
  Expr* make_string(std::string v, SourceRange range = {});
  Expr* make_null(SourceRange range = {});
  Expr* make_var(std::string name, SourceRange range = {});
  Expr* make_tuple(std::vector<Expr*> elems, SourceRange range = {});
  Expr* make_apply(Expr* callee, std::vector<Expr*> args, SourceRange range = {});
  Expr* make_apply_named(const std::string& fn, std::vector<Expr*> args, SourceRange range = {});
  Expr* make_let(std::vector<Binding> bindings, Expr* body, SourceRange range = {});
  Expr* make_if(Expr* cond, Expr* then_branch, Expr* else_branch, SourceRange range = {});

  FuncDecl* make_func(std::string name, std::vector<std::string> params, Expr* body,
                      SourceRange range = {});

  /// Deep structural copy (used by macro expansion and inlining).
  Expr* clone(const Expr* e);

  /// Copy one node, keeping child *pointers* shared with the original.
  /// Passes that rewrite children afterwards use this to stay O(n).
  Expr* shallow_clone(const Expr* e);

  size_t node_count() const { return exprs_.size(); }

 private:
  std::vector<std::unique_ptr<Expr>> exprs_;
  std::vector<std::unique_ptr<FuncDecl>> funcs_;
};

/// A parsed program: macros (pre-expansion) and functions, plus the
/// context that owns their nodes.
struct Program {
  std::vector<FuncDecl*> functions;
  std::vector<FuncDecl*> macros;

  FuncDecl* find_function(const std::string& name) const;
};

/// Number of Expr nodes in a subtree. This is the "weight" annotation the
/// paper's parallel compiler uses to clip balanced sets of subtrees.
uint32_t subtree_weight(const Expr* e);

/// Visit every child expression of `e` exactly once (non-recursive over
/// the node itself). The callback may not be null.
void for_each_child(const Expr* e, const std::function<void(const Expr*)>& fn);
void for_each_child_mut(Expr* e, const std::function<void(Expr*&)>& fn);

/// Structural equality (ignores source ranges). Used by CSE and tests.
bool expr_equal(const Expr* a, const Expr* b);

/// Structural hash consistent with expr_equal.
size_t expr_hash(const Expr* e);

}  // namespace delirium
