// Macro expansion — the "Macro Expansion" pass of Table 1.
//
// `define NAME = expr` introduces a symbolic constant and
// `define NAME(a, b) = expr` a function-like macro. Expansion happens on
// the parsed tree: every use of a macro name is replaced by a clone of
// the macro body with parameters substituted. Substitution is hygienic
// with respect to shadowing (a let-bound or parameter name hides a macro
// parameter of the same name inside the macro body).
#pragma once

#include <string>
#include <unordered_map>

#include "src/lang/ast.h"
#include "src/support/diagnostics.h"

namespace delirium {

/// Expand all macros in `program` in place. On return,
/// program.macros is cleared and program.functions contain no macro
/// references. Reports errors (wrong arity, recursive macros) to diags.
void expand_macros(Program& program, AstContext& ctx, DiagnosticEngine& diags);

/// Substitute free occurrences of the given names in `e` by clones of the
/// mapped expressions, respecting shadowing. Returns a new tree; `e` is
/// not modified. Exposed for the inliner, which shares the machinery.
Expr* substitute(const Expr* e, const std::unordered_map<std::string, const Expr*>& subst,
                 AstContext& ctx);

}  // namespace delirium
