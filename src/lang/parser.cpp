#include "src/lang/parser.h"

#include <string>

#include "src/lang/lexer.h"

namespace delirium {

const Token& Parser::peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(TokenKind kind) {
  if (check(kind)) {
    advance();
    return true;
  }
  return false;
}

const Token* Parser::expect(TokenKind kind, const char* context) {
  if (check(kind)) return &advance();
  diags_.error(peek().range, std::string("expected ") + token_kind_name(kind) + " " + context +
                                 ", found " + token_kind_name(peek().kind));
  return nullptr;
}

SourceRange Parser::range_from(SourceLoc begin) const {
  SourceLoc end = pos_ > 0 ? tokens_[pos_ - 1].range.end : begin;
  return SourceRange{begin, end};
}

Expr* Parser::error_expr(SourceRange range) { return ctx_.make_null(range); }

Program Parser::parse_program() {
  Program program;
  while (!check(TokenKind::kEof)) {
    if (check(TokenKind::kDefine)) {
      if (FuncDecl* d = parse_define_decl()) program.macros.push_back(d);
    } else if (check(TokenKind::kIdent)) {
      if (FuncDecl* f = parse_function_decl()) program.functions.push_back(f);
    } else {
      diags_.error(peek().range, std::string("expected a function or 'define' at top level, found ") +
                                     token_kind_name(peek().kind));
      advance();  // guarantee progress
    }
  }
  return program;
}

std::vector<std::string> Parser::parse_param_list() {
  std::vector<std::string> params;
  expect(TokenKind::kLParen, "before parameter list");
  if (!check(TokenKind::kRParen)) {
    do {
      if (const Token* t = expect(TokenKind::kIdent, "in parameter list")) {
        params.emplace_back(t->text);
      } else {
        break;
      }
    } while (match(TokenKind::kComma));
  }
  expect(TokenKind::kRParen, "after parameter list");
  return params;
}

FuncDecl* Parser::parse_function_decl() {
  const SourceLoc begin = peek().range.begin;
  const Token* name = expect(TokenKind::kIdent, "as function name");
  if (name == nullptr) return nullptr;
  std::vector<std::string> params = parse_param_list();
  Expr* body = parse_expr();
  return ctx_.make_func(std::string(name->text), std::move(params), body, range_from(begin));
}

FuncDecl* Parser::parse_define_decl() {
  const SourceLoc begin = peek().range.begin;
  expect(TokenKind::kDefine, "at start of define");
  const Token* name = expect(TokenKind::kIdent, "as macro name");
  if (name == nullptr) return nullptr;
  std::vector<std::string> params;
  if (check(TokenKind::kLParen)) params = parse_param_list();
  match(TokenKind::kEquals);  // '=' is conventional but optional
  Expr* body = parse_expr();
  FuncDecl* d =
      ctx_.make_func(std::string(name->text), std::move(params), body, range_from(begin));
  d->is_macro = true;
  return d;
}

Expr* Parser::parse_expr() {
  switch (peek().kind) {
    case TokenKind::kLet: return parse_let();
    case TokenKind::kIf: return parse_if();
    case TokenKind::kIterate: return parse_iterate();
    default: return parse_application();
  }
}

Binding Parser::parse_binding() {
  Binding b;
  const SourceLoc begin = peek().range.begin;
  if (check(TokenKind::kLAngle)) {
    // <a, b, c> = expr
    advance();
    b.kind = Binding::Kind::kDecompose;
    do {
      if (const Token* t = expect(TokenKind::kIdent, "in decomposition binding")) {
        b.names.emplace_back(t->text);
      } else {
        break;
      }
    } while (match(TokenKind::kComma));
    expect(TokenKind::kRAngle, "after decomposition names");
    expect(TokenKind::kEquals, "in decomposition binding");
    b.value = parse_expr();
  } else {
    const Token* name = expect(TokenKind::kIdent, "at start of binding");
    if (name == nullptr) {
      b.kind = Binding::Kind::kValue;
      b.names.emplace_back("<error>");
      b.value = error_expr(peek().range);
      if (!check(TokenKind::kEof)) advance();
      return b;
    }
    b.names.emplace_back(name->text);
    if (check(TokenKind::kLParen)) {
      // Local function definition: name(params) body
      b.kind = Binding::Kind::kFunction;
      b.params = parse_param_list();
      b.value = parse_expr();
    } else {
      b.kind = Binding::Kind::kValue;
      expect(TokenKind::kEquals, "in binding");
      b.value = parse_expr();
    }
  }
  b.range = range_from(begin);
  return b;
}

Expr* Parser::parse_let() {
  const SourceLoc begin = peek().range.begin;
  expect(TokenKind::kLet, "at start of let");
  std::vector<Binding> bindings;
  while (!check(TokenKind::kIn) && !check(TokenKind::kEof)) {
    bindings.push_back(parse_binding());
    if (bindings.back().value == nullptr) break;
  }
  expect(TokenKind::kIn, "after let bindings");
  Expr* body = parse_expr();
  return ctx_.make_let(std::move(bindings), body, range_from(begin));
}

Expr* Parser::parse_if() {
  const SourceLoc begin = peek().range.begin;
  expect(TokenKind::kIf, "at start of conditional");
  Expr* cond = parse_expr();
  expect(TokenKind::kThen, "in conditional");
  Expr* then_branch = parse_expr();
  expect(TokenKind::kElse, "in conditional");
  Expr* else_branch = parse_expr();
  return ctx_.make_if(cond, then_branch, else_branch, range_from(begin));
}

Expr* Parser::parse_iterate() {
  const SourceLoc begin = peek().range.begin;
  expect(TokenKind::kIterate, "at start of iterate");
  expect(TokenKind::kLBrace, "after 'iterate'");
  Expr* e = ctx_.make(ExprKind::kIterate, {});
  while (check(TokenKind::kIdent)) {
    LoopVar lv;
    const SourceLoc lv_begin = peek().range.begin;
    lv.name = std::string(advance().text);
    expect(TokenKind::kEquals, "in iterate loop variable");
    lv.init = parse_expr();
    expect(TokenKind::kComma, "between loop-variable initializer and step");
    lv.step = parse_expr();
    lv.range = range_from(lv_begin);
    e->loop_vars.push_back(std::move(lv));
    // A loop variable ends when the next token is '}' or another
    // `IDENT =` pair. An optional comma may separate loop variables.
    match(TokenKind::kComma);
  }
  expect(TokenKind::kRBrace, "after iterate loop variables");
  expect(TokenKind::kWhile, "after iterate body");
  e->cond = parse_expr();
  match(TokenKind::kComma);
  expect(TokenKind::kResult, "in iterate");
  if (const Token* t = expect(TokenKind::kIdent, "after 'result'")) {
    e->result_name = std::string(t->text);
  }
  e->range = range_from(begin);
  if (e->loop_vars.empty()) {
    diags_.error(e->range, "iterate requires at least one loop variable");
  }
  return e;
}

Expr* Parser::parse_application() {
  Expr* e = parse_primary();
  while (check(TokenKind::kLParen)) {
    const SourceLoc begin = e->range.begin;
    advance();
    std::vector<Expr*> args;
    if (!check(TokenKind::kRParen)) {
      do {
        args.push_back(parse_expr());
      } while (match(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "after argument list");
    e = ctx_.make_apply(e, std::move(args), range_from(begin));
  }
  return e;
}

Expr* Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::kIntLit: advance(); return ctx_.make_int(t.int_value, t.range);
    case TokenKind::kFloatLit: advance(); return ctx_.make_float(t.float_value, t.range);
    case TokenKind::kStringLit: advance(); return ctx_.make_string(t.str_value, t.range);
    case TokenKind::kNull: advance(); return ctx_.make_null(t.range);
    case TokenKind::kIdent: advance(); return ctx_.make_var(std::string(t.text), t.range);
    case TokenKind::kLParen: {
      advance();
      Expr* inner = parse_expr();
      expect(TokenKind::kRParen, "after parenthesized expression");
      return inner;
    }
    case TokenKind::kLAngle: {
      const SourceLoc begin = t.range.begin;
      advance();
      std::vector<Expr*> elems;
      if (!check(TokenKind::kRAngle)) {
        do {
          elems.push_back(parse_expr());
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRAngle, "after multiple-value elements");
      return ctx_.make_tuple(std::move(elems), range_from(begin));
    }
    default:
      diags_.error(t.range,
                   std::string("expected an expression, found ") + token_kind_name(t.kind));
      if (!check(TokenKind::kEof)) advance();
      return error_expr(t.range);
  }
}

Expr* Parser::parse_single_expr() { return parse_expr(); }

Program parse_source(const SourceFile& file, AstContext& ctx, DiagnosticEngine& diags) {
  Lexer lexer(file, diags);
  Parser parser(lexer.lex_all(), ctx, diags);
  return parser.parse_program();
}

}  // namespace delirium
