// Token definitions for the Delirium coordination language.
//
// The surface language is tiny (the paper lists six constructs): atomic
// values, multiple-value packages, let bindings, conditionals, iteration,
// and application. The token set mirrors that economy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/source.h"

namespace delirium {

enum class TokenKind : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  kStringLit,
  // Keywords.
  kLet,
  kIn,
  kIf,
  kThen,
  kElse,
  kIterate,
  kWhile,
  kResult,
  kDefine,
  kNull,
  // Punctuation.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLAngle,
  kRAngle,
  kComma,
  kEquals,
  kError,
};

/// Printable name of a token kind, for diagnostics ("expected ')'").
const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  SourceRange range;
  std::string_view text;   // view into the SourceFile buffer
  int64_t int_value = 0;   // kIntLit
  double float_value = 0;  // kFloatLit
  std::string str_value;   // kStringLit, with escapes resolved

  bool is(TokenKind k) const { return kind == k; }
};

}  // namespace delirium
