#include "src/lang/pretty.h"

#include <ostream>
#include <sstream>

namespace delirium {

namespace {

void newline(std::ostream& os, int indent) {
  os << '\n';
  for (int i = 0; i < indent; ++i) os << ' ';
}

void print_string_lit(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      default: os << c; break;
    }
  }
  os << '"';
}

void print_float(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  std::string s = tmp.str();
  // Guarantee the literal re-lexes as a float, not an int.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  os << s;
}

}  // namespace

void print_expr(std::ostream& os, const Expr* e, int indent) {
  if (e == nullptr) {
    os << "NULL";
    return;
  }
  switch (e->kind) {
    case ExprKind::kIntLit: os << e->int_value; break;
    case ExprKind::kFloatLit: print_float(os, e->float_value); break;
    case ExprKind::kStringLit: print_string_lit(os, e->str_value); break;
    case ExprKind::kNullLit: os << "NULL"; break;
    case ExprKind::kVar: os << e->str_value; break;
    case ExprKind::kTuple: {
      os << '<';
      for (size_t i = 0; i < e->args.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr(os, e->args[i], indent);
      }
      os << '>';
      break;
    }
    case ExprKind::kApply: {
      const bool simple_callee = e->callee != nullptr && e->callee->kind == ExprKind::kVar;
      if (!simple_callee) os << '(';
      print_expr(os, e->callee, indent);
      if (!simple_callee) os << ')';
      os << '(';
      for (size_t i = 0; i < e->args.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr(os, e->args[i], indent);
      }
      os << ')';
      break;
    }
    case ExprKind::kLet: {
      os << "let";
      for (const Binding& b : e->bindings) {
        newline(os, indent + 4);
        switch (b.kind) {
          case Binding::Kind::kValue:
            os << b.names[0] << " = ";
            print_expr(os, b.value, indent + 4);
            break;
          case Binding::Kind::kDecompose:
            os << '<';
            for (size_t i = 0; i < b.names.size(); ++i) {
              if (i > 0) os << ", ";
              os << b.names[i];
            }
            os << "> = ";
            print_expr(os, b.value, indent + 4);
            break;
          case Binding::Kind::kFunction:
            os << b.names[0] << '(';
            for (size_t i = 0; i < b.params.size(); ++i) {
              if (i > 0) os << ", ";
              os << b.params[i];
            }
            os << ") ";
            print_expr(os, b.value, indent + 4);
            break;
        }
      }
      newline(os, indent + 2);
      os << "in ";
      print_expr(os, e->body, indent + 2);
      break;
    }
    case ExprKind::kIf: {
      os << "if ";
      print_expr(os, e->cond, indent);
      newline(os, indent + 2);
      os << "then ";
      print_expr(os, e->then_branch, indent + 2);
      newline(os, indent + 2);
      os << "else ";
      print_expr(os, e->else_branch, indent + 2);
      break;
    }
    case ExprKind::kIterate: {
      os << "iterate {";
      for (const LoopVar& lv : e->loop_vars) {
        newline(os, indent + 4);
        os << lv.name << " = ";
        print_expr(os, lv.init, indent + 4);
        os << ", ";
        print_expr(os, lv.step, indent + 4);
      }
      newline(os, indent + 2);
      os << "} while ";
      print_expr(os, e->cond, indent + 2);
      os << ", result " << e->result_name;
      break;
    }
  }
}

void print_function(std::ostream& os, const FuncDecl* f) {
  if (f->is_macro) {
    os << "define " << f->name;
    if (!f->params.empty()) {
      os << '(';
      for (size_t i = 0; i < f->params.size(); ++i) {
        if (i > 0) os << ", ";
        os << f->params[i];
      }
      os << ')';
    }
    os << " = ";
    print_expr(os, f->body, 2);
    os << '\n';
    return;
  }
  os << f->name << '(';
  for (size_t i = 0; i < f->params.size(); ++i) {
    if (i > 0) os << ", ";
    os << f->params[i];
  }
  os << ")\n  ";
  print_expr(os, f->body, 2);
  os << '\n';
}

void print_program(std::ostream& os, const Program& program) {
  for (const FuncDecl* m : program.macros) {
    print_function(os, m);
    os << '\n';
  }
  for (const FuncDecl* f : program.functions) {
    print_function(os, f);
    os << '\n';
  }
}

std::string expr_to_string(const Expr* e) {
  std::ostringstream os;
  print_expr(os, e);
  return os.str();
}

std::string program_to_string(const Program& program) {
  std::ostringstream os;
  print_program(os, program);
  return os.str();
}

}  // namespace delirium
