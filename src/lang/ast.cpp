#include "src/lang/ast.h"

#include <functional>

namespace delirium {

Expr* AstContext::make(ExprKind kind, SourceRange range) {
  auto node = std::make_unique<Expr>();
  node->kind = kind;
  node->range = range;
  Expr* raw = node.get();
  exprs_.push_back(std::move(node));
  return raw;
}

Expr* AstContext::make_int(int64_t v, SourceRange range) {
  Expr* e = make(ExprKind::kIntLit, range);
  e->int_value = v;
  return e;
}

Expr* AstContext::make_float(double v, SourceRange range) {
  Expr* e = make(ExprKind::kFloatLit, range);
  e->float_value = v;
  return e;
}

Expr* AstContext::make_string(std::string v, SourceRange range) {
  Expr* e = make(ExprKind::kStringLit, range);
  e->str_value = std::move(v);
  return e;
}

Expr* AstContext::make_null(SourceRange range) { return make(ExprKind::kNullLit, range); }

Expr* AstContext::make_var(std::string name, SourceRange range) {
  Expr* e = make(ExprKind::kVar, range);
  e->str_value = std::move(name);
  return e;
}

Expr* AstContext::make_tuple(std::vector<Expr*> elems, SourceRange range) {
  Expr* e = make(ExprKind::kTuple, range);
  e->args = std::move(elems);
  return e;
}

Expr* AstContext::make_apply(Expr* callee, std::vector<Expr*> args, SourceRange range) {
  Expr* e = make(ExprKind::kApply, range);
  e->callee = callee;
  e->args = std::move(args);
  return e;
}

Expr* AstContext::make_apply_named(const std::string& fn, std::vector<Expr*> args,
                                   SourceRange range) {
  return make_apply(make_var(fn, range), std::move(args), range);
}

Expr* AstContext::make_let(std::vector<Binding> bindings, Expr* body, SourceRange range) {
  Expr* e = make(ExprKind::kLet, range);
  e->bindings = std::move(bindings);
  e->body = body;
  return e;
}

Expr* AstContext::make_if(Expr* cond, Expr* then_branch, Expr* else_branch, SourceRange range) {
  Expr* e = make(ExprKind::kIf, range);
  e->cond = cond;
  e->then_branch = then_branch;
  e->else_branch = else_branch;
  return e;
}

FuncDecl* AstContext::make_func(std::string name, std::vector<std::string> params, Expr* body,
                                SourceRange range) {
  auto decl = std::make_unique<FuncDecl>();
  decl->name = std::move(name);
  decl->params = std::move(params);
  decl->body = body;
  decl->range = range;
  FuncDecl* raw = decl.get();
  funcs_.push_back(std::move(decl));
  return raw;
}

Expr* AstContext::shallow_clone(const Expr* e) {
  if (e == nullptr) return nullptr;
  Expr* out = make(e->kind, e->range);
  *out = *e;  // copies scalar fields and child pointers alike
  return out;
}

Expr* AstContext::clone(const Expr* e) {
  if (e == nullptr) return nullptr;
  Expr* out = make(e->kind, e->range);
  out->int_value = e->int_value;
  out->float_value = e->float_value;
  out->str_value = e->str_value;
  out->result_name = e->result_name;
  out->callee = clone(e->callee);
  out->args.reserve(e->args.size());
  for (const Expr* a : e->args) out->args.push_back(clone(a));
  out->bindings.reserve(e->bindings.size());
  for (const Binding& b : e->bindings) {
    Binding nb = b;
    nb.value = clone(b.value);
    out->bindings.push_back(std::move(nb));
  }
  out->body = clone(e->body);
  out->cond = clone(e->cond);
  out->then_branch = clone(e->then_branch);
  out->else_branch = clone(e->else_branch);
  out->loop_vars.reserve(e->loop_vars.size());
  for (const LoopVar& lv : e->loop_vars) {
    LoopVar nlv = lv;
    nlv.init = clone(lv.init);
    nlv.step = clone(lv.step);
    out->loop_vars.push_back(std::move(nlv));
  }
  return out;
}

FuncDecl* Program::find_function(const std::string& name) const {
  for (FuncDecl* f : functions) {
    if (f->name == name) return f;
  }
  return nullptr;
}

void for_each_child(const Expr* e, const std::function<void(const Expr*)>& fn) {
  if (e == nullptr) return;
  if (e->callee != nullptr) fn(e->callee);
  for (const Expr* a : e->args) fn(a);
  for (const Binding& b : e->bindings) {
    if (b.value != nullptr) fn(b.value);
  }
  if (e->body != nullptr) fn(e->body);
  if (e->cond != nullptr) fn(e->cond);
  if (e->then_branch != nullptr) fn(e->then_branch);
  if (e->else_branch != nullptr) fn(e->else_branch);
  for (const LoopVar& lv : e->loop_vars) {
    if (lv.init != nullptr) fn(lv.init);
    if (lv.step != nullptr) fn(lv.step);
  }
}

void for_each_child_mut(Expr* e, const std::function<void(Expr*&)>& fn) {
  if (e == nullptr) return;
  if (e->callee != nullptr) fn(e->callee);
  for (Expr*& a : e->args) fn(a);
  for (Binding& b : e->bindings) {
    if (b.value != nullptr) fn(b.value);
  }
  if (e->body != nullptr) fn(e->body);
  if (e->cond != nullptr) fn(e->cond);
  if (e->then_branch != nullptr) fn(e->then_branch);
  if (e->else_branch != nullptr) fn(e->else_branch);
  for (LoopVar& lv : e->loop_vars) {
    if (lv.init != nullptr) fn(lv.init);
    if (lv.step != nullptr) fn(lv.step);
  }
}

uint32_t subtree_weight(const Expr* e) {
  // Direct recursion (not via for_each_child): weight annotation runs
  // over whole programs in the parallel compiler's partitioning step, so
  // the per-node constant matters.
  if (e == nullptr) return 0;
  uint32_t total = 1;
  total += subtree_weight(e->callee);
  for (const Expr* a : e->args) total += subtree_weight(a);
  for (const Binding& b : e->bindings) total += subtree_weight(b.value);
  total += subtree_weight(e->body);
  total += subtree_weight(e->cond);
  total += subtree_weight(e->then_branch);
  total += subtree_weight(e->else_branch);
  for (const LoopVar& lv : e->loop_vars) {
    total += subtree_weight(lv.init);
    total += subtree_weight(lv.step);
  }
  return total;
}

bool expr_equal(const Expr* a, const Expr* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kIntLit:
      if (a->int_value != b->int_value) return false;
      break;
    case ExprKind::kFloatLit:
      if (a->float_value != b->float_value) return false;
      break;
    case ExprKind::kStringLit:
    case ExprKind::kVar:
      if (a->str_value != b->str_value) return false;
      break;
    default: break;
  }
  if (a->result_name != b->result_name) return false;
  if (!expr_equal(a->callee, b->callee)) return false;
  if (a->args.size() != b->args.size()) return false;
  for (size_t i = 0; i < a->args.size(); ++i) {
    if (!expr_equal(a->args[i], b->args[i])) return false;
  }
  if (a->bindings.size() != b->bindings.size()) return false;
  for (size_t i = 0; i < a->bindings.size(); ++i) {
    const Binding& ba = a->bindings[i];
    const Binding& bb = b->bindings[i];
    if (ba.kind != bb.kind || ba.names != bb.names || ba.params != bb.params) return false;
    if (!expr_equal(ba.value, bb.value)) return false;
  }
  if (!expr_equal(a->body, b->body)) return false;
  if (!expr_equal(a->cond, b->cond)) return false;
  if (!expr_equal(a->then_branch, b->then_branch)) return false;
  if (!expr_equal(a->else_branch, b->else_branch)) return false;
  if (a->loop_vars.size() != b->loop_vars.size()) return false;
  for (size_t i = 0; i < a->loop_vars.size(); ++i) {
    const LoopVar& la = a->loop_vars[i];
    const LoopVar& lb = b->loop_vars[i];
    if (la.name != lb.name) return false;
    if (!expr_equal(la.init, lb.init)) return false;
    if (!expr_equal(la.step, lb.step)) return false;
  }
  return true;
}

namespace {
void hash_combine(size_t& seed, size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}
}  // namespace

size_t expr_hash(const Expr* e) {
  if (e == nullptr) return 0;
  size_t h = static_cast<size_t>(e->kind) * 31;
  switch (e->kind) {
    case ExprKind::kIntLit: hash_combine(h, std::hash<int64_t>{}(e->int_value)); break;
    case ExprKind::kFloatLit: hash_combine(h, std::hash<double>{}(e->float_value)); break;
    case ExprKind::kStringLit:
    case ExprKind::kVar: hash_combine(h, std::hash<std::string>{}(e->str_value)); break;
    default: break;
  }
  hash_combine(h, std::hash<std::string>{}(e->result_name));
  hash_combine(h, expr_hash(e->callee));
  for (const Expr* a : e->args) hash_combine(h, expr_hash(a));
  for (const Binding& b : e->bindings) {
    hash_combine(h, static_cast<size_t>(b.kind));
    for (const std::string& n : b.names) hash_combine(h, std::hash<std::string>{}(n));
    for (const std::string& p : b.params) hash_combine(h, std::hash<std::string>{}(p));
    hash_combine(h, expr_hash(b.value));
  }
  hash_combine(h, expr_hash(e->body));
  hash_combine(h, expr_hash(e->cond));
  hash_combine(h, expr_hash(e->then_branch));
  hash_combine(h, expr_hash(e->else_branch));
  for (const LoopVar& lv : e->loop_vars) {
    hash_combine(h, std::hash<std::string>{}(lv.name));
    hash_combine(h, expr_hash(lv.init));
    hash_combine(h, expr_hash(lv.step));
  }
  return h;
}

}  // namespace delirium
