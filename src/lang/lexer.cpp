#include "src/lang/lexer.h"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace delirium {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kLet: return "'let'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kThen: return "'then'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kIterate: return "'iterate'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kResult: return "'result'";
    case TokenKind::kDefine: return "'define'";
    case TokenKind::kNull: return "'NULL'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kComma: return "','";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kError: return "invalid token";
  }
  return "unknown";
}

namespace {
const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"let", TokenKind::kLet},         {"in", TokenKind::kIn},
      {"if", TokenKind::kIf},           {"then", TokenKind::kThen},
      {"else", TokenKind::kElse},       {"iterate", TokenKind::kIterate},
      {"while", TokenKind::kWhile},     {"result", TokenKind::kResult},
      {"define", TokenKind::kDefine},   {"NULL", TokenKind::kNull},
  };
  return table;
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
}  // namespace

char Lexer::peek(uint32_t ahead) const {
  const size_t i = static_cast<size_t>(pos_) + ahead;
  return i < file_.text().size() ? file_.text()[i] : '\0';
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos_;
    } else if (c == '-' && peek(1) == '-') {
      while (!at_end() && peek() != '\n') ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') ++pos_;
    } else {
      break;
    }
  }
}

Token Lexer::make(TokenKind kind, uint32_t begin) {
  Token t;
  t.kind = kind;
  t.range = SourceRange{SourceLoc{begin}, SourceLoc{pos_}};
  t.text = file_.text().substr(begin, pos_ - begin);
  return t;
}

Token Lexer::lex_number(uint32_t begin) {
  while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
  bool is_float = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
  }
  if (peek() == 'e' || peek() == 'E') {
    uint32_t save = pos_;
    ++pos_;
    if (peek() == '+' || peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      is_float = true;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      pos_ = save;  // 'e' begins an identifier, not an exponent
    }
  }
  Token t = make(is_float ? TokenKind::kFloatLit : TokenKind::kIntLit, begin);
  const char* first = t.text.data();
  const char* last = t.text.data() + t.text.size();
  if (is_float) {
    t.float_value = std::strtod(std::string(t.text).c_str(), nullptr);
  } else {
    auto [ptr, ec] = std::from_chars(first, last, t.int_value);
    if (ec != std::errc()) {
      diags_.error(t.range, "integer literal out of range");
      t.kind = TokenKind::kError;
    }
  }
  return t;
}

Token Lexer::lex_ident_or_keyword(uint32_t begin) {
  while (is_ident_char(peek())) ++pos_;
  Token t = make(TokenKind::kIdent, begin);
  auto it = keyword_table().find(t.text);
  if (it != keyword_table().end()) t.kind = it->second;
  return t;
}

Token Lexer::lex_string(uint32_t begin) {
  ++pos_;  // opening quote
  std::string value;
  while (!at_end() && peek() != '"' && peek() != '\n') {
    char c = peek();
    if (c == '\\') {
      ++pos_;
      switch (peek()) {
        case 'n': value.push_back('\n'); break;
        case 't': value.push_back('\t'); break;
        case '\\': value.push_back('\\'); break;
        case '"': value.push_back('"'); break;
        default:
          diags_.error(SourceRange{SourceLoc{pos_}, SourceLoc{pos_ + 1}},
                       "unknown escape sequence in string literal");
          break;
      }
      ++pos_;
    } else {
      value.push_back(c);
      ++pos_;
    }
  }
  if (at_end() || peek() != '"') {
    Token t = make(TokenKind::kError, begin);
    diags_.error(t.range, "unterminated string literal");
    return t;
  }
  ++pos_;  // closing quote
  Token t = make(TokenKind::kStringLit, begin);
  t.str_value = std::move(value);
  return t;
}

Token Lexer::next_token() {
  skip_trivia();
  const uint32_t begin = pos_;
  if (at_end()) return make(TokenKind::kEof, begin);
  const char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(begin);
  if (is_ident_start(c)) return lex_ident_or_keyword(begin);
  if (c == '"') return lex_string(begin);
  ++pos_;
  switch (c) {
    case '(': return make(TokenKind::kLParen, begin);
    case ')': return make(TokenKind::kRParen, begin);
    case '{': return make(TokenKind::kLBrace, begin);
    case '}': return make(TokenKind::kRBrace, begin);
    case '<': return make(TokenKind::kLAngle, begin);
    case '>': return make(TokenKind::kRAngle, begin);
    case ',': return make(TokenKind::kComma, begin);
    case '=': return make(TokenKind::kEquals, begin);
    case '-':
      // Negative literals: '-' immediately followed by a digit. Delirium
      // has no infix operators, so this is unambiguous.
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        Token t = lex_number(begin + 1);
        t.range.begin = SourceLoc{begin};
        t.text = file_.text().substr(begin, pos_ - begin);
        t.int_value = -t.int_value;
        t.float_value = -t.float_value;
        return t;
      }
      break;
    default: break;
  }
  Token t = make(TokenKind::kError, begin);
  diags_.error(t.range, std::string("unexpected character '") + c + "'");
  return t;
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> tokens;
  for (;;) {
    Token t = next_token();
    const bool eof = t.is(TokenKind::kEof);
    tokens.push_back(std::move(t));
    if (eof) break;
  }
  return tokens;
}

std::vector<Token> lex_string_to_tokens(const SourceFile& file, DiagnosticEngine& diags) {
  return Lexer(file, diags).lex_all();
}

}  // namespace delirium
