// Recursive-descent parser for Delirium.
//
// Grammar (the paper's six constructs):
//   program   := (function | define)*
//   define    := 'define' IDENT ('(' params ')')? '='? expr
//   function  := IDENT '(' params? ')' expr
//   expr      := letexpr | ifexpr | iterexpr | appexpr
//   letexpr   := 'let' binding+ 'in' expr
//   binding   := IDENT '=' expr
//              | '<' IDENT (',' IDENT)* '>' '=' expr
//              | IDENT '(' params? ')' expr            (local function)
//   ifexpr    := 'if' expr 'then' expr 'else' expr
//   iterexpr  := 'iterate' '{' loopvar+ '}' 'while' expr ','? 'result' IDENT
//   loopvar   := IDENT '=' expr ',' expr               (init, step)
//   appexpr   := primary ('(' args? ')')*
//   primary   := INT | FLOAT | STRING | 'NULL' | IDENT
//              | '(' expr ')' | '<' args '>'
#pragma once

#include <vector>

#include "src/lang/ast.h"
#include "src/lang/token.h"
#include "src/support/diagnostics.h"

namespace delirium {

class Parser {
 public:
  Parser(std::vector<Token> tokens, AstContext& ctx, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), ctx_(ctx), diags_(diags) {}

  /// Parse the whole token stream into a Program. Errors are reported to
  /// the DiagnosticEngine; the returned Program may be partial.
  Program parse_program();

  /// Parse a single expression (used by tests and the macro system).
  Expr* parse_single_expr();

 private:
  const Token& peek(size_t ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const { return peek().is(kind); }
  bool match(TokenKind kind);
  const Token* expect(TokenKind kind, const char* context);
  SourceRange range_from(SourceLoc begin) const;

  FuncDecl* parse_function_decl();
  FuncDecl* parse_define_decl();
  std::vector<std::string> parse_param_list();

  Expr* parse_expr();
  Expr* parse_let();
  Expr* parse_if();
  Expr* parse_iterate();
  Expr* parse_application();
  Expr* parse_primary();
  Binding parse_binding();

  Expr* error_expr(SourceRange range);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  AstContext& ctx_;
  DiagnosticEngine& diags_;
};

/// Convenience front end: lex + parse a buffer.
Program parse_source(const SourceFile& file, AstContext& ctx, DiagnosticEngine& diags);

}  // namespace delirium
