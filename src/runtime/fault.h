// Deterministic fault handling shared by Runtime and SimRuntime.
//
// The paper's determinism promise (§8: "if there is a bug in the program
// it will recur in exactly the same way every execution") is extended
// here to *how* failures are reported. Every operator exception is
// captured as a FaultInfo record carrying full provenance — operator
// name, template, node id, source range, and a deterministic activation
// sequence id — plus a "coordination stack" rendered from continuation
// links. On drain the run rethrows the fault with the smallest sequence
// id, not the first one a worker happened to observe, so the reported
// error is identical across worker counts and across both executors.
//
// The same header defines the seeded fault-injection plan (delc
// --inject-faults / DELIRIUM_INJECT_FAULTS) used to exercise recovery
// paths identically in threaded and simulated execution.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/template.h"
#include "src/runtime/value.h"

namespace delirium {

// ---------------------------------------------------------------------------
// Deterministic activation sequence ids
// ---------------------------------------------------------------------------
//
// An activation's sequence id is a structural hash of its spawn path:
// the root gets a fixed id, and a child spawned at node `n` of a parent
// (with `index` distinguishing parmap siblings) mixes the parent's id
// with (n, index). The id therefore depends only on the coordination
// graph, never on the schedule — both executors compute identical ids
// for the same program, which is what makes "smallest sequence id"
// a schedule-independent tie-break between concurrent faults.

inline uint64_t fault_seq_root() { return 0x2545f4914f6cdd1dull; }

inline uint64_t fault_seq_child(uint64_t parent, uint32_t node, uint32_t index) {
  uint64_t z = parent + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(node) * 2 + 1) +
               (static_cast<uint64_t>(index) << 32);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Structured fault records
// ---------------------------------------------------------------------------

/// Everything the runtime knows about one captured failure. All fields
/// are schedule-independent for deterministic programs, so render()
/// produces byte-identical text across schedulers and worker counts.
struct FaultInfo {
  std::string op;       // operator name / node label at the fault site
  std::string tmpl;     // template whose activation faulted
  uint32_t node = 0;    // node id within the template
  uint64_t seq = 0;     // deterministic activation sequence id
  std::string message;  // what() of the underlying exception
  std::string location; // source byte range of the faulting node, or ""
  std::string stack;    // rendered coordination stack (may be "")
  bool injected = false;   // raised by the fault-injection plan
  bool stall = false;      // raised by the watchdog, not an exception
  /// The original exception, for embedders that need the concrete type.
  /// Never compared or rendered; may be null for watchdog faults.
  std::exception_ptr original;

  /// Deterministic multi-line error text: provenance header, original
  /// message, coordination stack.
  std::string render() const;
};

/// Total order used to pick the reported fault at drain time. Sequence
/// id first (schedule-independent), then node id (two faulting operators
/// inside one activation), then message text as a final tie-break.
bool fault_before(const FaultInfo& a, const FaultInfo& b);

/// Thrown by Runtime::run / SimRuntime::run when the drained run
/// captured at least one fault. what() is FaultInfo::render() of the
/// winning (smallest-sequence-id) fault; the full record — including the
/// original exception_ptr — is available via fault().
class FaultError : public RuntimeError {
 public:
  explicit FaultError(FaultInfo info)
      : RuntimeError(info.render()), info_(std::move(info)) {}

  const FaultInfo& fault() const { return info_; }

 private:
  FaultInfo info_;
};

/// Message text of an arbitrary exception (what() for std::exception,
/// a fixed string otherwise). Null pointers render as "unknown error".
std::string exception_message(std::exception_ptr ep);

/// Diagnostic label of a node: operator name, else debug label, else the
/// node-kind name.
std::string fault_node_label(const Node& n);

/// "bytes B..E" for a node with a recorded source range, "" otherwise.
/// (The runtime has no SourceFile, so offsets are reported raw; they are
/// deterministic and map back through the front end's line table.)
std::string fault_node_location(const Node& n);

/// Same formatting for a bare source range (fused-member provenance,
/// which carries ranges without a Node).
std::string fault_range_location(const SourceRange& range);

/// Render the coordination stack of a faulting activation by walking its
/// continuation links (tail calls forward continuations, so forwarded
/// frames are elided — exactly like a tail-call-optimized stack trace).
/// Works for both executors' activation types, which share the field
/// names `tmpl`, `cont_act`, `cont_node`, `collector`. The innermost
/// frame is caller-supplied so fused members can report their pre-fusion
/// node id and label.
template <typename Act>
std::string render_coordination_stack_from(const Act* act, uint32_t frame0_node,
                                           const std::string& frame0_label) {
  constexpr int kMaxFrames = 16;
  std::string out = "  #0 " + act->tmpl->name + " (node " + std::to_string(frame0_node) +
                    " '" + frame0_label + "')\n";
  const Act* cur = act;
  int frame = 1;
  while (true) {
    if (frame > kMaxFrames) {
      out += "  ... (truncated)\n";
      break;
    }
    const Act* next = nullptr;
    uint32_t node = 0;
    bool via_parmap = false;
    if (cur->collector != nullptr) {
      next = cur->collector->cont_act.get();
      node = cur->collector->cont_node;
      via_parmap = true;
    } else {
      next = cur->cont_act.get();
      node = cur->cont_node;
    }
    const char* suffix = via_parmap ? " [parmap]" : "";
    if (next == nullptr) {
      out += "  #" + std::to_string(frame) + " <run result>" + suffix + "\n";
      break;
    }
    out += "  #" + std::to_string(frame) + " " + next->tmpl->name + " (node " +
           std::to_string(node) + ")" + suffix + "\n";
    cur = next;
    ++frame;
  }
  return out;
}

template <typename Act>
std::string render_coordination_stack(const Act* act, uint32_t fault_node) {
  return render_coordination_stack_from(act, fault_node,
                                        fault_node_label(act->tmpl->nodes[fault_node]));
}

/// Build the FaultInfo for an exception raised while executing `node` of
/// `act`. Shared by both executors so the rendered text matches exactly.
template <typename Act>
FaultInfo make_fault(const Act& act, uint32_t node, std::exception_ptr ep,
                     bool injected = false) {
  const Node& n = act.tmpl->nodes[node];
  FaultInfo f;
  f.op = fault_node_label(n);
  f.tmpl = act.tmpl->name;
  f.node = node;
  f.seq = act.seq;
  f.message = exception_message(ep);
  f.location = fault_node_location(n);
  f.stack = render_coordination_stack(&act, node);
  f.injected = injected;
  f.original = std::move(ep);
  return f;
}

/// Fault provenance for one member of a fused chain: the record carries
/// the member's operator name, source range, and pre-fusion node id, so
/// a fault inside member k reports exactly what the unfused graph would
/// (modulo the optimizer's node renumbering) and the (seq, node) pair
/// stays schedule-independent.
template <typename Act>
FaultInfo make_member_fault(const Act& act, const FusedMember& member,
                            std::exception_ptr ep, bool injected = false) {
  FaultInfo f;
  f.op = member.op_name;
  f.tmpl = act.tmpl->name;
  f.node = member.orig_node;
  f.seq = act.seq;
  f.message = exception_message(ep);
  f.location = fault_range_location(member.range);
  f.stack = render_coordination_stack_from(&act, member.orig_node, member.op_name);
  f.injected = injected;
  f.original = std::move(ep);
  return f;
}

// ---------------------------------------------------------------------------
// Stranded-activation dumps (deadlock diagnostic, watchdog)
// ---------------------------------------------------------------------------

/// One node of a live activation that never fired.
struct StrandedNode {
  uint32_t node = 0;
  std::string label;
  int missing = 0;  // inputs that never arrived
  int total = 0;    // declared inputs
};

/// One live activation at deadlock / watchdog time.
struct StrandedActivation {
  uint64_t seq = 0;
  std::string tmpl;
  std::vector<StrandedNode> partial;  // partially fed join nodes
  size_t never_fed = 0;               // nodes with no input delivered yet
  /// Owning instance, for multi-instance dumps. 0 / empty in the
  /// single-run path, where the dump stays byte-identical to the
  /// pre-instance format.
  uint64_t instance = 0;
  std::string program;
};

/// Deterministic rendering: sorted by (instance, sequence id), capped at
/// `limit` activations with an elided-count tail line. Activations with a
/// non-empty `program` are attributed to their owning instance; a dump of
/// plain single-run activations renders exactly as before instances
/// existed. Empty input renders a one-line "(no live activations)".
std::string render_stranded(std::vector<StrandedActivation> acts, size_t limit = 20);

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

enum class FaultAction : uint8_t {
  kNone,
  kThrow,    // throw a RuntimeError before invoking the operator
  kStall,    // delay the operator (wall time / virtual time) by stall_ns
  kCorrupt,  // replace the operator's result with an empty package
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int64_t stall_ns = 0;
};

/// One clause of an injection spec.
struct FaultRule {
  std::string op;        // operator name; "*" matches every *pure* operator
  bool wildcard = false;
  FaultAction action = FaultAction::kThrow;
  int64_t stall_ns = 0;
  /// Selector: fire on the nth invocation in arrival order (1-based).
  /// Arrival order is deterministic in SimRuntime and with one worker;
  /// with several workers the nth arrival is schedule-dependent.
  uint64_t nth = 0;  // 0 = unset
  /// Selector: fire when hash(seed, activation seq, node) % every == 0.
  /// Structural, so identical across executors and worker counts.
  uint64_t every = 0;  // 0 = unset
  uint64_t seed = 0;
  /// The rule applies only to attempts < fail_attempts, so a retried
  /// operator recovers deterministically on attempt fail_attempts.
  uint32_t fail_attempts = 1;
};

/// A parsed --inject-faults specification. Grammar (clauses comma-
/// separated, fields colon-separated):
///
///   spec   := clause (',' clause)*
///   clause := op ':' field (':' field)*
///   op     := operator name | '*'            ('*' = every pure operator)
///   field  := 'throw' | 'stall=<ns>' | 'corrupt'
///           | 'nth=<n>' | 'every=<k>' | 'seed=<s>' | 'fail_attempts=<m>'
///
/// Example: "convolve:throw:every=7:seed=42,post_up:stall=1000000:nth=3"
class FaultPlan {
 public:
  /// Parse a spec. Throws std::invalid_argument with a description of
  /// the offending clause on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Plan from the DELIRIUM_INJECT_FAULTS environment variable, or null
  /// when unset/empty. A malformed env spec throws (fail loudly; a
  /// silently-ignored injection spec would fake coverage).
  static std::shared_ptr<const FaultPlan> from_env();

  /// Decide what happens to this invocation. `arrival` is the 0-based
  /// per-operator arrival index; `attempt` is 0 for the first try.
  FaultDecision decide(std::string_view op, bool op_pure, uint64_t seq, uint32_t node,
                       uint64_t arrival, uint32_t attempt) const;

  bool empty() const { return rules_.empty(); }
  const std::string& spec() const { return spec_; }
  const std::vector<FaultRule>& rules() const { return rules_; }

 private:
  std::vector<FaultRule> rules_;
  std::string spec_;
};

}  // namespace delirium
