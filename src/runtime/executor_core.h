// The shared executor core (docs/RUNTIME.md, DESIGN.md).
//
// The paper's central claim is that one coordination graph executes with
// identical semantics on any machine. This header makes that true *by
// construction*: everything that defines those semantics — the
// activation lifecycle (port fill, firing rule, continuation links), the
// copy-on-write block discipline and its kUnique fast path, fault
// capture / retry-with-snapshot / injection, and trace + RunStats
// emission — lives once, in ExecutorCore<Machine>. A `Machine` is a
// small policy class (the threaded Runtime or the virtual-time
// SimRuntime) that supplies only what genuinely differs between real and
// simulated hardware: the clock, the ready-queue dispatch, how stalls
// and backoff are charged, and where faults/traces/final results land.
//
// Adding a runtime feature therefore means editing this file once, not
// mirroring it into runtime.cpp and sim.cpp and hoping the
// *_equivalence_test suites catch the drift.
//
// The Machine policy (CRTP — `class Runtime : public ExecutorCore<Runtime>`)
// must provide:
//
//   static constexpr bool kVirtualTime;   // virtual clock? (sizes ready_at)
//   Ticks node_base_cost();               // per-node overhead (0 / node_overhead_ns)
//   void enqueue_ready(act, node, when);  // a node's inputs are complete
//   void deliver_final(run, Value v, Ticks when);
//   void trace_from_core(worker, ts, kind, op, arg);
//   void record_fault_from_core(run, FaultInfo, op_index, ts, worker);
//   void charge_remote(dom_from, dom_to, bytes, penalty_ns, cost);
//                                         // topology-charged block pull:
//                                         // calibrated spin (wall) or
//                                         // cost += penalty_ns (virtual)
//   int pick_worker_in_domain(domain, home_worker);
//                                         // data-affinity target inside a
//                                         // NUMA domain (multi-domain only)
//   void charge_stall(ns, cost);          // injected stall
//   void charge_backoff(ns, cost);        // retry backoff
//   void busy_begin(worker, def) / busy_end(worker);   // watchdog busy dump
//   Ticks op_clock_begin();               // start the operator cost clock
//   void op_note_success(t0, def, act, worker, virtual_start, arrival, cost);
//   uint64_t op_arrival(def, op_index, has_plan);  // per-op arrival counter
//   int last_affinity_worker(op_index);   // operator-affinity memory
//   void note_affinity(op_index, worker);
//   void on_activation_created(act) / on_activation_destroyed(act);  // ledger
//
// Results and faults are routed by the *activation's* opaque run token
// (Activation::run), not by any per-machine "current run" notion: the
// token is fixed at the root spawn and inherited by every child, so many
// independent instances can share one machine's worker pool and each
// fault or final value still lands in its own instance's state
// (src/runtime/instance.h).
//
// Scheduler choice (global-lock vs work-stealing), parking, and the
// drain/watchdog drivers stay Machine-side: they are machine models, not
// graph semantics.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/template.h"
#include "src/runtime/fault.h"
#include "src/runtime/registry.h"
#include "src/runtime/tracing.h"
#include "src/runtime/value.h"
#include "src/support/clock.h"
#include "src/support/env.h"
#include "src/support/topology.h"

namespace delirium {

/// Locality heuristics from §9.3. kOperator prefers the worker that last
/// ran the operator; kData prefers the home worker of the largest input
/// block. Neither affects computed values.
enum class AffinityMode { kNone, kOperator, kData };

/// Knobs shared by both executors. RuntimeConfig and SimConfig embed
/// this as a base, so a knob added here lands in both machines at once
/// (exec_config_test statically checks that no shared knob drifts back
/// into only one of them).
struct ExecConfig {
  /// Record per-node execution times (the case studies' "node timings").
  bool enable_node_timing = false;
  /// Use the three-level priority queue of §7; false degrades to a single
  /// FIFO (the ablation measured by bench_priority).
  bool use_priorities = true;
  /// Honor the facts engine's static critical-path marks
  /// (Node::on_critical_path, src/analysis/facts.h) as ready-queue
  /// sub-levels: within each §7 priority class, nodes on a
  /// maximal-height dependency chain run ahead of off-path work, so the
  /// chain that bounds the run's span is never starved by fan-out.
  /// Computed values are unaffected — only the schedule changes. Kill
  /// switch for A/B runs: DELIRIUM_COST_HINTS=0. No effect when
  /// use_priorities is off or the compiler published no marks.
  bool cost_hints = true;
  /// Forward continuations on tail calls (§7's early activation reuse);
  /// false nests every call — the ablation shows loops then consume
  /// activations proportional to their iteration count.
  bool enable_tail_calls = true;
  AffinityMode affinity = AffinityMode::kNone;
  /// Simulated NUMA: cost, in nanoseconds per KiB, of an operator touching
  /// a block whose home is another worker (models the BBN Butterfly's
  /// expensive remote references). 0 disables the model. Runtime spins
  /// for the penalty; SimRuntime charges it to the virtual clock.
  /// Kept as the legacy flat knob: when set and `topology` is the
  /// default UMA, the executors run under MemoryTopology::flat(penalty)
  /// — the degenerate one-worker-per-domain topology, byte-identical to
  /// the pre-topology charge. An explicit non-default `topology` wins.
  int64_t remote_penalty_ns_per_kb = 0;
  /// The NUMA-domain machine model (src/support/topology.h): worker→
  /// domain striping and intra/inter-domain per-KiB pull costs plus a
  /// cross-domain migration surcharge. Defaults to UMA (one domain,
  /// zero cost — the accounting is skipped entirely). Overridable via
  /// DELIRIUM_TOPOLOGY; a performance model only, never semantics.
  MemoryTopology topology;
  /// Let the schedulers *use* the topology: same-domain-first steal
  /// order and in-domain data-affinity placement. Off = locality-blind
  /// scheduling under the same cost model (the A/B ablation leg of
  /// bench_locality). No effect under a single- or per-worker-domain
  /// topology. Kill switch: DELIRIUM_LOCALITY=0.
  bool locality_scheduling = true;
  /// Honor kUnique consume-class annotations from the sole-consumer
  /// analysis: mutate such arguments in place without the uniqueness
  /// test or clone. Kill switch for A/B runs and debugging.
  bool unique_fastpath = true;
  /// Automatic retries of a faulting retry-eligible operator: pure
  /// operators, and destructive operators whose every destructive
  /// argument the sole-consumer analysis proved kUnique (a pre-image
  /// snapshot then makes the retry exact). 0 disables retry.
  /// Overridable via the DELIRIUM_RETRIES environment variable.
  int max_retries = 0;
  /// Base delay before a retry, doubled per attempt. Wall-clock in the
  /// threaded runtime; SimRuntime charges it to the virtual clock.
  int64_t retry_backoff_ns = 1000;
  /// Cancel the run on the first captured fault instead of draining.
  /// Fails faster, but the reported fault may then depend on the
  /// schedule (see docs/ROBUSTNESS.md for the determinism contract).
  bool fail_fast = false;
  /// Record the trace event stream (operator begin/end, scheduler and
  /// fault events); read it back with trace_events() and export with
  /// tools::write_trace_events. Off by default — the disabled path costs
  /// one predictable branch per hook (bench_trace_overhead). Overridable
  /// via the DELIRIUM_TRACE environment variable ("0"/"1").
  bool enable_tracing = false;
  /// Per-worker trace ring capacity in events (rounded up to a power of
  /// two). When a ring fills, the oldest events are overwritten and
  /// counted in trace_events_overwritten(). Overridable via
  /// DELIRIUM_TRACE_CAPACITY. SimRuntime records into one growable
  /// vector and never overwrites, so the capacity is ignored there.
  size_t trace_capacity = kDefaultTraceCapacity;
  /// Recycle Activation/Collector storage through the per-executor
  /// arena + freelist pool (RunStats.activations_pooled/_allocated;
  /// bench_activation_pool). Kill switch: DELIRIUM_ACTIVATION_POOL=0.
  bool activation_pool = true;
};

/// Apply the environment overrides every executor honors to an already-
/// populated config: DELIRIUM_TRACE, DELIRIUM_TRACE_CAPACITY,
/// DELIRIUM_ACTIVATION_POOL, DELIRIUM_COST_HINTS, DELIRIUM_AFFINITY,
/// DELIRIUM_TOPOLOGY, DELIRIUM_LOCALITY.
void apply_exec_env_overrides(ExecConfig& config);

/// Ready-queue levels: the three §7 priority classes, each split into a
/// critical-path sub-level and an off-path sub-level (ExecConfig::
/// cost_hints). Machines size their queue arrays with this.
inline constexpr int kQueueLevels = 6;

/// One operator execution, for the node-timing report.
struct NodeTiming {
  std::string label;     // operator name
  std::string tmpl;      // template it ran in
  Ticks duration = 0;    // nanoseconds
  int worker = 0;
  uint64_t seq = 0;      // global completion order
  /// When the operator started: wall-clock ns relative to the run start
  /// (Runtime) or exact virtual ns (SimRuntime). Lets trace export place
  /// slices with true gaps instead of packing durations end-to-end.
  Ticks start = 0;
};

struct RunStats {
  uint64_t activations_created = 0;
  uint64_t peak_live_activations = 0;
  /// Activation-pool traffic: allocations served by recycling a
  /// previously-retired object (pooled) vs. fresh arena/heap carves
  /// (allocated). Steady-state loops should be nearly all pooled; the
  /// split is schedule-dependent in the threaded runtime and exactly
  /// reproducible in SimRuntime.
  uint64_t activations_pooled = 0;
  uint64_t activations_allocated = 0;
  uint64_t nodes_executed = 0;
  uint64_t operator_invocations = 0;
  uint64_t cow_copies = 0;          // blocks copied to preserve determinism
  uint64_t cow_skipped = 0;         // clones elided via kUnique annotations
  uint64_t remote_block_moves = 0;  // NUMA-simulated block migrations
  uint64_t remote_bytes_pulled = 0; // payload bytes of cross-domain pulls
  Ticks operator_ticks = 0;         // total time inside operators

  // Scheduler counters. The global-lock scheduler fills only the enqueue
  // split (every enqueue is "local": one shared queue); SimRuntime
  // reports every virtual enqueue as local and the rest as zero, so
  // tooling sees one schema across all three executors.
  uint64_t sched_local_enqueues = 0;     // pushed to the enqueuer's own deque
  uint64_t sched_injected_enqueues = 0;  // crossed workers via an MPSC inbox
  uint64_t sched_steals = 0;             // items taken from a victim's deque
  uint64_t sched_failed_steals = 0;      // full victim scans that found nothing
  uint64_t sched_local_steals = 0;       // steals from a same-domain victim
  uint64_t sched_remote_steals = 0;      // steals that crossed a domain boundary
  uint64_t sched_parks = 0;              // times a worker slept on its eventcount
  uint64_t sched_wakeups = 0;            // notifications sent to parked workers
  uint64_t sched_hint_promotions = 0;    // critical-path nodes enqueued ahead
                                         // of their class (ExecConfig::cost_hints)
  uint64_t sched_cost_promotions = 0;    // promotions whose criticality came from
                                         // a measured cost profile (Node::cost_hinted)

  // Fault counters (docs/ROBUSTNESS.md), identical across executors
  // because capture/retry lives in ExecutorCore.
  uint64_t faults_raised = 0;      // faults captured and surfaced at drain
  uint64_t faults_injected = 0;    // injection-plan actions that fired
  uint64_t retries = 0;            // operator attempts re-run after a fault
  uint64_t retries_exhausted = 0;  // operators whose retry budget ran out
  uint64_t items_purged = 0;       // queued items discarded by cancellation
  uint64_t watchdog_fires = 0;     // stall-detector activations

  // Multi-instance counters (src/runtime/instance.h, docs/ROBUSTNESS.md
  // "Isolation model"). All zero for plain single-instance runs.
  uint64_t instances_admitted = 0;      // requests accepted by admission control
  uint64_t instances_completed = 0;     // instances that delivered a value
  uint64_t instances_faulted = 0;       // instances that drained to a fault
  uint64_t instances_budget_killed = 0; // instances cancelled by their budget
  uint64_t instances_shed = 0;          // requests rejected at admission (kOverload)
};

// ---------------------------------------------------------------------------
// Activation pool
// ---------------------------------------------------------------------------

/// Arena + freelist recycler for the per-activation hot-path storage:
/// Activation/Collector control blocks (via allocate_shared) and their
/// slot/pending vectors, plus the operator-argument scratch vectors.
/// Size-classed (powers of two, 16 B .. 16 KiB) over 64 KiB bump-arena
/// chunks; anything larger, or everything when disabled, falls through
/// to the global heap.
///
/// Two tiers keep the hot path lock-free: each thread holds a bounded
/// magazine of free objects per size class (plain pointer pushes and
/// pops, no atomics), and the shared freelists behind the mutex are
/// touched only in batches — a refill when a magazine runs dry, a
/// half-flush when one overflows. The mutex on the batched transfers
/// supplies the happens-before edge that makes recycled memory safe to
/// republish across threads; same-thread recycling needs none. A
/// thread's magazine binds to one pool at a time and flushes back
/// through a live-pool registry when it rebinds or the thread exits,
/// so multiple runtimes on one thread stay safe.
///
/// Debug builds poison freed objects and assert the poison is intact on
/// reuse, so a stale reference writing through a retired activation
/// fails loudly instead of corrupting its successor.
class ActivationPool {
 public:
  ActivationPool();
  ~ActivationPool();
  ActivationPool(const ActivationPool&) = delete;
  ActivationPool& operator=(const ActivationPool&) = delete;

  /// Must be called before the first allocation (toggling afterwards
  /// would send pooled memory to the heap deallocator, or vice versa).
  void set_enabled(bool enabled) {
    assert(chunks_.empty() && "pool enable flag must be set before first use");
    enabled_ = enabled;
  }
  bool enabled() const { return enabled_; }

  void* allocate(size_t bytes);
  void deallocate(void* p, size_t bytes) noexcept;

  /// Per-run counters (RunStats.activations_pooled/_allocated).
  void reset_counters() {
    pooled_.store(0, std::memory_order_relaxed);
    allocated_.store(0, std::memory_order_relaxed);
  }
  uint64_t pooled() const { return pooled_.load(std::memory_order_relaxed); }
  uint64_t allocated() const { return allocated_.load(std::memory_order_relaxed); }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr size_t kMinClassBytes = 16;   // >= sizeof(FreeNode), aligned
  static constexpr size_t kNumClasses = 11;      // 16 B .. 16 KiB
  static constexpr size_t kChunkBytes = 64 * 1024;
  /// Magazine bounds: a thread may hoard at most kCacheCap objects per
  /// class before half drain back to the shared lists; a dry magazine
  /// refills with up to kRefillBatch recycled objects in one lock.
  static constexpr uint32_t kCacheCap = 64;
  static constexpr uint32_t kRefillBatch = 32;

  /// One per thread, shared by every pool: plain singly-linked stacks
  /// the owning thread alone touches. Rebinds (and thread exit) flush
  /// the contents back to `owner` if it is still alive. The generation
  /// id guards against a new pool reusing a dead pool's address (stack
  /// runtimes constructed in a loop do exactly that): a bare pointer
  /// match would hand the new pool freed memory.
  struct TlsCache {
    ActivationPool* owner = nullptr;
    uint64_t owner_id = 0;
    std::array<FreeNode*, kNumClasses> free{};
    std::array<uint32_t, kNumClasses> count{};
    ~TlsCache();
  };

  /// Size class for a request, or -1 when it must go to the heap.
  static int size_class(size_t bytes);
  /// This thread's magazine, rebound to this pool (flushing any nodes
  /// held for a previous owner first).
  TlsCache& bound_cache();
  /// Slow path: batch-refill the magazine from the shared freelist, or
  /// carve one fresh object from the arena.
  void* refill_and_allocate(TlsCache& cache, int cls, size_t cls_bytes);
  /// Return half of an overflowing magazine class to the shared list.
  void flush_half(TlsCache& cache, int cls) noexcept;
  /// Return every cached node to `cache.owner` if that pool is still
  /// registered as live; otherwise drop the (already freed) pointers.
  static void flush_all(TlsCache& cache) noexcept;

  std::mutex mu_;
  std::array<FreeNode*, kNumClasses> free_{};
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  size_t chunk_used_ = kChunkBytes;  // "full": the first allocation opens a chunk
  bool enabled_ = true;
  const uint64_t id_;                   // process-unique generation (see TlsCache)
  std::atomic<uint64_t> pooled_{0};     // freelist hits (recycled objects)
  std::atomic<uint64_t> allocated_{0};  // fresh carves + heap passthroughs
};

/// Minimal std-allocator shim over ActivationPool, so standard vectors
/// and allocate_shared recycle through the pool.
template <class T>
struct PoolAllocator {
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ActivationPool* pool = nullptr;

  PoolAllocator() = default;
  explicit PoolAllocator(ActivationPool* p) : pool(p) {}
  template <class U>
  PoolAllocator(const PoolAllocator<U>& other) : pool(other.pool) {}

  T* allocate(size_t n) { return static_cast<T*>(pool->allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t n) noexcept { pool->deallocate(p, n * sizeof(T)); }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool == b.pool;
  }
};

// ---------------------------------------------------------------------------
// Shared counters
// ---------------------------------------------------------------------------

/// Atomic accumulators behind RunStats, owned by ExecutorCore. The
/// threaded runtime hits them from every worker; SimRuntime is
/// single-threaded, where relaxed atomics cost nothing.
struct StatCounters {
  std::atomic<uint64_t> activations_created{0};
  std::atomic<int64_t> live_activations{0};
  std::atomic<uint64_t> peak_live_activations{0};
  std::atomic<uint64_t> nodes_executed{0};
  std::atomic<uint64_t> operator_invocations{0};
  std::atomic<uint64_t> cow_copies{0};
  std::atomic<uint64_t> cow_skipped{0};
  std::atomic<uint64_t> remote_block_moves{0};
  std::atomic<uint64_t> remote_bytes_pulled{0};
  std::atomic<int64_t> operator_ticks{0};
  std::atomic<uint64_t> sched_local_enqueues{0};
  std::atomic<uint64_t> sched_injected_enqueues{0};
  std::atomic<uint64_t> sched_steals{0};
  std::atomic<uint64_t> sched_failed_steals{0};
  std::atomic<uint64_t> sched_local_steals{0};
  std::atomic<uint64_t> sched_remote_steals{0};
  std::atomic<uint64_t> sched_parks{0};
  std::atomic<uint64_t> sched_wakeups{0};
  std::atomic<uint64_t> sched_hint_promotions{0};
  std::atomic<uint64_t> sched_cost_promotions{0};
  std::atomic<uint64_t> faults_raised{0};
  std::atomic<uint64_t> faults_injected{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> retries_exhausted{0};
  std::atomic<uint64_t> items_purged{0};
  std::atomic<uint64_t> watchdog_fires{0};
  std::atomic<uint64_t> instances_admitted{0};
  std::atomic<uint64_t> instances_completed{0};
  std::atomic<uint64_t> instances_faulted{0};
  std::atomic<uint64_t> instances_budget_killed{0};
  std::atomic<uint64_t> instances_shed{0};

  /// Zero every per-run counter. live_activations is a gauge, not a
  /// per-run counter, and survives the reset.
  void reset();
  /// Copy the counters into the published per-run snapshot.
  void snapshot(RunStats& out) const;
};

// ---------------------------------------------------------------------------
// Shared run-driver helpers (non-template; defined in executor_core.cpp)
// ---------------------------------------------------------------------------

/// Index of the drain winner — the fault with the smallest deterministic
/// sequence id under fault_before() — or -1 when `faults` is empty.
int smallest_fault_index(const std::vector<FaultInfo>& faults);

/// The dataflow-deadlock diagnostic, byte-identical across executors up
/// to the "simulated " prefix.
std::string build_deadlock_message(bool simulated, const std::string& stranded);

/// The watchdog diagnostic. `budget_text` is "<N> ms" (threaded) or
/// "<N> virtual ns" (sim); `busy_section` is the threaded runtime's
/// "busy workers:" dump or empty; `instance_text` names the instance the
/// watchdog fired for (" (instance N: 'prog')" in manager mode, empty
/// otherwise — single-run output stays byte-identical).
std::string build_watchdog_message(const std::string& budget_text,
                                   const std::string& busy_section,
                                   const std::string& stranded,
                                   const std::string& instance_text = "");

// ---------------------------------------------------------------------------
// ExecutorCore
// ---------------------------------------------------------------------------

template <class Machine>
class ExecutorCore {
 protected:
  explicit ExecutorCore(const OperatorRegistry& registry) : registry_(registry) {}
  ~ExecutorCore() = default;

  // -- Activation ------------------------------------------------------------

  struct Collector;

  /// A template activation (§7): a pointer back to the template plus
  /// enough buffer space to evaluate the subgraph once. The tree of
  /// activations is the parallel generalization of the sequential call
  /// stack. Lifetime is managed by shared ownership: the ready queue and
  /// child activations (through their continuation) keep an activation
  /// alive exactly as long as it can still be referenced — and all of
  /// its storage recycles through the ActivationPool.
  struct Activation {
    Activation(Machine* owner_in, const CompiledProgram* prog_in, const Template* tmpl_in,
               void* run_in, uint64_t seq_in, ActivationPool* pool)
        : owner(owner_in), prog(prog_in), tmpl(tmpl_in), run(run_in), seq(seq_in),
          slots(tmpl_in->value_slots, PoolAllocator<Value>(pool)),
          pending(tmpl_in->nodes.size(), PoolAllocator<std::atomic<int32_t>>(pool)),
          ready_at(Machine::kVirtualTime ? tmpl_in->nodes.size() : 0,
                   PoolAllocator<Ticks>(pool)) {
      for (size_t i = 0; i < tmpl->nodes.size(); ++i) {
        pending[i].store(tmpl->nodes[i].num_inputs, std::memory_order_relaxed);
      }
      StatCounters& c = owner->counters_;
      c.activations_created.fetch_add(1, std::memory_order_relaxed);
      const int64_t live = c.live_activations.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t peak = c.peak_live_activations.load(std::memory_order_relaxed);
      while (static_cast<uint64_t>(live) > peak &&
             !c.peak_live_activations.compare_exchange_weak(peak, static_cast<uint64_t>(live),
                                                            std::memory_order_relaxed)) {
      }
      owner->on_activation_created(this);
    }

    ~Activation() {
      owner->on_activation_destroyed(this);
      owner->counters_.live_activations.fetch_sub(1, std::memory_order_relaxed);
    }

    Machine* owner;
    /// The program this activation's template belongs to. Carried per
    /// activation (not per machine) so concurrent instances of
    /// *different* programs can share one worker pool; kCall and
    /// kMakeClosure resolve their target templates through it.
    const CompiledProgram* prog;
    const Template* tmpl;
    /// Opaque run tag identifying the instance this activation belongs
    /// to (the threaded RunState / the simulator's instance record);
    /// fixed at the root spawn, inherited by every child, and used only
    /// by the Machine, never interpreted here.
    void* run;
    /// Deterministic structural sequence id (see fault.h): a hash of the
    /// spawn path, independent of the schedule and of the machine model,
    /// so fault reports match byte for byte across executors.
    uint64_t seq;
    std::vector<Value, PoolAllocator<Value>> slots;
    std::vector<std::atomic<int32_t>, PoolAllocator<std::atomic<int32_t>>> pending;
    /// Per node: when its last input arrived. Virtual-time machines only
    /// (sized zero otherwise).
    std::vector<Ticks, PoolAllocator<Ticks>> ready_at;
    /// Continuation: where this activation's result goes. When
    /// `collector` is set the result joins a parmap package instead;
    /// otherwise a null cont_act means "the final result of the run".
    std::shared_ptr<Activation> cont_act;
    uint32_t cont_node = 0;
    std::shared_ptr<Collector> collector;
    uint32_t collector_index = 0;
  };

  /// Join object for kParMap (§9.2 dynamic parallelism): one child
  /// activation per package element; the last returning child assembles
  /// the result package and forwards it to the parmap's continuation.
  /// `latest` tracks the latest child completion (virtual time only).
  struct Collector {
    std::vector<Value> results;  // one slot per element (Value::tuple takes ownership)
    std::atomic<int> remaining{0};
    Ticks latest = 0;
    std::shared_ptr<Activation> cont_act;  // null -> the run's final result
    uint32_t cont_node = 0;
  };

  // -- Setup -----------------------------------------------------------------

  /// Point the core at the Machine's resolved config (after its
  /// environment overrides) and arm the pool. Call once, from the
  /// Machine's constructor, before any activation exists.
  ///
  /// Resolves the *effective* topology here: the legacy flat knob
  /// (remote_penalty_ns_per_kb) with a default UMA topology maps onto
  /// MemoryTopology::flat(penalty) — one domain per worker, charging
  /// exactly the old per-KiB penalty — so pre-topology configs and
  /// benches reproduce byte-identically through the new path.
  void init_exec(const ExecConfig* config) {
    exec_config_ = config;
    pool_.set_enabled(config->activation_pool);
    topo_ = config->topology;
    if (topo_.single_domain() && !topo_.models_cost() &&
        config->remote_penalty_ns_per_kb > 0) {
      topo_ = MemoryTopology::flat(config->remote_penalty_ns_per_kb);
    }
    numa_active_ = topo_.models_cost();
  }

  const ExecConfig& exec_config() const { return *exec_config_; }

  /// The effective topology (see init_exec) both machines schedule and
  /// charge against.
  const MemoryTopology& topology() const { return topo_; }

  /// Ready-queue level for a node: the §7 priority class, split by the
  /// facts engine's critical-path mark when cost_hints is on. Lower
  /// level = drained first. Counts each promoted enqueue so RunStats
  /// can report how often the hint actually steered the schedule.
  int queue_level(const Node& n) {
    if (!exec_config().use_priorities) return 0;
    const int base = static_cast<int>(n.priority) * 2;
    if (!exec_config().cost_hints) return base;
    if (n.on_critical_path) {
      // Split the tally by the mark's provenance: static unit-height
      // marks vs marks recomputed from a measured cost profile
      // (apply_sched_hints cost overload, docs/PROFILING.md).
      (n.cost_hinted ? counters_.sched_cost_promotions : counters_.sched_hint_promotions)
          .fetch_add(1, std::memory_order_relaxed);
      return base;
    }
    return base + 1;
  }

  /// Resolve the per-run fault policy: an injection plan attached to the
  /// registry beats the environment spec; retries honor the same
  /// DELIRIUM_RETRIES override in both executors.
  void resolve_run_policy() {
    plan_ = registry_.fault_plan() != nullptr ? registry_.fault_plan()
                                              : FaultPlan::from_env();
    max_retries_ = static_cast<int>(
        env_int("DELIRIUM_RETRIES", exec_config().max_retries, 0, 1 << 20));
    retry_backoff_ns_ = exec_config().retry_backoff_ns > 0 ? exec_config().retry_backoff_ns : 0;
  }

  /// Zero the per-run counters (including the pool's).
  void reset_core_run_state() {
    counters_.reset();
    pool_.reset_counters();
  }

  /// Publish the core-owned counters into a RunStats snapshot.
  void snapshot_core_stats(RunStats& out) const {
    counters_.snapshot(out);
    out.activations_pooled = pool_.pooled();
    out.activations_allocated = pool_.allocated();
  }

  // -- Dataflow --------------------------------------------------------------

  /// Instantiate `tmpl`: seed constant and parameter nodes, enqueue any
  /// node with no inputs. `when` is the virtual arrival time (ignored by
  /// wall-clock machines).
  std::shared_ptr<Activation> spawn(const CompiledProgram* prog, const Template* tmpl,
                                    std::vector<Value> params,
                                    std::shared_ptr<Activation> cont_act, uint32_t cont_node,
                                    uint64_t seq, Ticks when, void* run,
                                    std::shared_ptr<Collector> collector = nullptr,
                                    uint32_t collector_index = 0) {
    if (params.size() != tmpl->num_params) {
      throw RuntimeError("activation of '" + tmpl->name + "' expects " +
                         std::to_string(tmpl->num_params) + " values, got " +
                         std::to_string(params.size()));
    }
    auto act = std::allocate_shared<Activation>(PoolAllocator<Activation>(&pool_),
                                                &machine(), prog, tmpl, run, seq, &pool_);
    act->cont_act = std::move(cont_act);
    act->cont_node = cont_node;
    act->collector = std::move(collector);
    act->collector_index = collector_index;
    for (uint32_t i = 0; i < tmpl->nodes.size(); ++i) {
      const Node& n = tmpl->nodes[i];
      switch (n.kind) {
        case NodeKind::kConst:
          deliver(act, i, Value::from_const(n.literal), when);
          break;
        case NodeKind::kParam:
          deliver(act, i, std::move(params[n.param_index]), when);
          break;
        default:
          if (n.num_inputs == 0) machine().enqueue_ready(act, i, when);
          break;
      }
    }
    return act;
  }

  /// Child spawn for kCall/kCallClosure/kIfDispatch. The structural child
  /// id uses the same formula under both call shapes, so it never depends
  /// on the tail-call state of anything *below* this node.
  void spawn_child(const std::shared_ptr<Activation>& act, uint32_t node,
                   const Template* target, std::vector<Value> params, Ticks when) {
    const Node& n = act->tmpl->nodes[node];
    const uint64_t seq = fault_seq_child(act->seq, node, 0);
    if (n.is_tail && exec_config().enable_tail_calls) {
      // Tail call: forward the *whole* continuation — including a parmap
      // collector, if this activation's result was to join one. This
      // activation can retire as soon as its remaining nodes finish (§7's
      // early activation reuse).
      spawn(act->prog, target, std::move(params), act->cont_act, act->cont_node, seq, when,
            act->run, act->collector, act->collector_index);
    } else {
      spawn(act->prog, target, std::move(params), act, node, seq, when, act->run);
    }
  }

  /// Route a produced value to the consumers of `node`.
  void deliver(const std::shared_ptr<Activation>& act, uint32_t node, Value v, Ticks when) {
    const Node& n = act->tmpl->nodes[node];
    const size_t k = n.consumers.size();

    // Decomposition fast path: kTupleGet consumers receive their element
    // directly, and the package itself is released *before* any element
    // is forwarded. This keeps reference counts exact, so an operator
    // with destructive access to an element does not see a transient
    // count from the package and copy needlessly.
    bool any_get = false;
    for (const PortRef& c : n.consumers) {
      any_get = any_get || act->tmpl->nodes[c.node].kind == NodeKind::kTupleGet;
    }
    if (any_get) {
      const MultiValue& mv = v.as_tuple();  // throws if not a package
      std::vector<std::pair<uint32_t, Value>> extracted;
      for (size_t i = 0; i < k; ++i) {
        const PortRef& c = n.consumers[i];
        const Node& consumer = act->tmpl->nodes[c.node];
        if (consumer.kind == NodeKind::kTupleGet) {
          if (consumer.tuple_index >= mv.elems.size()) {
            throw RuntimeError("decomposition in '" + act->tmpl->name + "' needs element " +
                               std::to_string(consumer.tuple_index) + " of a " +
                               std::to_string(mv.elems.size()) + "-element package");
          }
          extracted.emplace_back(c.node, mv.elems[consumer.tuple_index]);
        } else {
          write_slot(act, c, v, when);
        }
      }
      v = Value();  // drop the package before forwarding elements
      for (auto& [get_node, element] : extracted) {
        deliver(act, get_node, std::move(element), when);
      }
      return;
    }

    for (size_t i = 0; i < k; ++i) {
      const PortRef& c = n.consumers[i];
      Value copy = (i + 1 == k) ? std::move(v) : v;
      write_slot(act, c, std::move(copy), when);
    }
    // k == 0: the value has no consumers (e.g. an unused binding when
    // optimization is off) and is simply dropped.
  }

  /// Fill one input port; fire the node when its last input arrives.
  void write_slot(const std::shared_ptr<Activation>& act, const PortRef& c, Value v,
                  Ticks when) {
    const Node& consumer = act->tmpl->nodes[c.node];
    act->slots[consumer.input_offset + c.port] = std::move(v);
    if constexpr (Machine::kVirtualTime) {
      act->ready_at[c.node] = std::max(act->ready_at[c.node], when);
    }
    if (act->pending[c.node].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Ticks ready = 0;
      if constexpr (Machine::kVirtualTime) ready = act->ready_at[c.node];
      machine().enqueue_ready(act, c.node, ready);
    }
  }

  /// Affinity preference (§9.3) of a ready node, or -1. Shared by both
  /// machines' enqueue paths; the Machine owns the affinity memory.
  int affinity_preference(const Activation& act, const Node& n) {
    // Cost-profiled critical-path nodes pin to the producing worker's
    // own deque (no affinity routing, no cross-worker inbox hop): the
    // long pole either runs next locally or is stolen priority-major,
    // which is the cheapest path to "long-pole operators launch first".
    // Schedule-only — values/faults are unchanged (equivalence-tested).
    if (exec_config().cost_hints && n.cost_hinted && n.on_critical_path) return -1;
    if (exec_config().affinity == AffinityMode::kOperator) {
      if (n.kind == NodeKind::kOperator && n.op_index >= 0) {
        return machine().last_affinity_worker(n.op_index);
      }
      // A fused chain follows its first member: that is the operator
      // whose cached state the chain touches first.
      if (n.kind == NodeKind::kFused && !n.fused.empty()) {
        return machine().last_affinity_worker(n.fused.front().op_index);
      }
    }
    if (exec_config().affinity == AffinityMode::kData &&
        (n.kind == NodeKind::kOperator || n.kind == NodeKind::kFused)) {
      int target = -1;
      int target_domain = -1;
      size_t best_bytes = 0;
      for (uint16_t i = 0; i < n.num_inputs; ++i) {
        const Value& v = act.slots[n.input_offset + i];
        if (v.kind() == Value::Kind::kBlock) {
          const auto& blk = v.block_ptr();
          const size_t bytes = blk->byte_size();
          const int home = blk->home_worker();
          if (home >= 0 && bytes > best_bytes) {
            best_bytes = bytes;
            target = home;
            target_domain = blk->home_domain();
          }
        }
      }
      // Under a multi-domain topology, data affinity resolves to the
      // block's home *domain*: any worker there reads the block at
      // intra-domain cost, so the Machine spreads these nodes across the
      // domain's workers instead of serializing on the one home worker.
      if (target >= 0 && target_domain >= 0 && exec_config().locality_scheduling &&
          topo_.num_domains > 1) {
        return machine().pick_worker_in_domain(target_domain, target);
      }
      return target;
    }
    return -1;
  }

  /// NUMA model (§9.3), shared by kOperator and kFused argument
  /// gathering: pulling a block homed outside `worker`'s domain charges
  /// the inter-domain per-KiB transfer plus the migration surcharge
  /// (spun on the wall clock or added to the virtual clock, per the
  /// Machine) and re-homes the block to the puller; a same-domain pull
  /// from another worker charges the (usually zero) intra-domain rate.
  /// Under the degenerate flat topology this reproduces the old
  /// remote_penalty_ns_per_kb accounting byte for byte. A no-op — one
  /// predictable branch — when the topology models no cost.
  void pull_blocks(std::span<Value> args, int worker, Ticks& cost) {
    if (!numa_active_) return;
    const int dom = topo_.domain_of(worker);
    for (Value& v : args) {
      if (v.kind() != Value::Kind::kBlock) continue;
      BlockBase& blk = *v.block_ptr();
      const int home_w = blk.home_worker();
      if (home_w >= 0) {
        const int home_d = blk.home_domain();
        const int64_t kb = static_cast<int64_t>(blk.byte_size() / 1024) + 1;
        if (home_d != dom) {
          machine().charge_remote(home_d, dom, static_cast<int64_t>(blk.byte_size()),
                                  topo_.inter_kib_cost_ns * kb + topo_.migration_cost_ns,
                                  cost);
          counters_.remote_block_moves.fetch_add(1, std::memory_order_relaxed);
          counters_.remote_bytes_pulled.fetch_add(blk.byte_size(),
                                                  std::memory_order_relaxed);
        } else if (home_w != worker && topo_.intra_kib_cost_ns > 0) {
          machine().charge_remote(home_d, dom, static_cast<int64_t>(blk.byte_size()),
                                  topo_.intra_kib_cost_ns * kb, cost);
        }
      }
      blk.set_home(worker, dom);
    }
  }

  // -- Node execution --------------------------------------------------------

  /// Execute one ready node. Returns the node's cost on the Machine's
  /// clock (base overhead + operator time + charged stalls/backoff);
  /// wall-clock machines get 0 and ignore it. `start` is the node's
  /// virtual start time (0 on wall-clock machines).
  Ticks execute_node(const std::shared_ptr<Activation>& act_ptr, uint32_t node, int worker,
                     Ticks start) {
    Activation& act = *act_ptr;
    const Node& n = act.tmpl->nodes[node];
    counters_.nodes_executed.fetch_add(1, std::memory_order_relaxed);

    auto take_input = [&](uint16_t port) -> Value {
      return std::move(act.slots[n.input_offset + port]);
    };
    auto take_all_inputs = [&]() {
      std::vector<Value> values;
      values.reserve(n.num_inputs);
      for (uint16_t i = 0; i < n.num_inputs; ++i) values.push_back(take_input(i));
      return values;
    };

    Ticks cost = machine().node_base_cost();
    switch (n.kind) {
      case NodeKind::kConst:
      case NodeKind::kParam:
      case NodeKind::kTupleGet:
        // Seeded at spawn / decomposed eagerly in deliver(); never queued.
        throw RuntimeError("internal: node kind should not reach the ready queue");

      case NodeKind::kOperator: {
        const OperatorDef& def = registry_.at(static_cast<size_t>(n.op_index));
        // Operator arguments live in pool-backed scratch vectors: the
        // steady-state hot path allocates nothing from the global heap.
        using PooledValues = std::vector<Value, PoolAllocator<Value>>;
        PooledValues args{PoolAllocator<Value>(&pool_)};
        args.reserve(n.num_inputs);
        for (uint16_t i = 0; i < n.num_inputs; ++i) args.push_back(take_input(i));

        pull_blocks(std::span<Value>(args.data(), args.size()), worker, cost);
        counters_.operator_invocations.fetch_add(1, std::memory_order_relaxed);
        const std::span<const ConsumeClass> classes =
            exec_config().unique_fastpath ? std::span<const ConsumeClass>(n.input_classes)
                                          : std::span<const ConsumeClass>();
        const FaultPlan* plan = plan_.get();
        const uint64_t arrival = machine().op_arrival(def, n.op_index, plan != nullptr);

        // Retry eligibility: pure operators always qualify; destructive
        // operators only when the sole-consumer analysis proved every
        // destructive argument kUnique, so the pre-image snapshot below
        // captures the entire effect of a failed attempt. kUnknown
        // destructive arguments stay ineligible — their copy-on-write
        // behavior depends on live reference counts a snapshot would
        // perturb.
        int budget = 0;
        if (max_retries_ > 0) {
          bool eligible = true;
          for (size_t i = 0; i < args.size(); ++i) {
            if (def.is_destructive(i) &&
                !(i < n.input_classes.size() &&
                  n.input_classes[i] == ConsumeClass::kUnique)) {
              eligible = false;
              break;
            }
          }
          if (eligible) budget = max_retries_;
        }

        // Pre-image snapshot: shallow Value copies (a reference bump) for
        // read-only arguments, deep clones for destructive ones (the
        // kUnique path mutates those in place). Restores re-clone from the
        // snapshot so a second retry never sees the first retry's writes.
        ActivationPool* pool = &pool_;
        auto restore_from = [&def, pool](const PooledValues& from) {
          PooledValues to{PoolAllocator<Value>(pool)};
          to.reserve(from.size());
          for (size_t i = 0; i < from.size(); ++i) {
            if (def.is_destructive(i) && from[i].kind() == Value::Kind::kBlock) {
              to.push_back(Value::of_block(from[i].block_ptr()->clone()));
            } else {
              to.push_back(from[i]);
            }
          }
          return to;
        };
        PooledValues snapshot{PoolAllocator<Value>(&pool_)};
        if (budget > 0) snapshot = restore_from(args);

        Value result;
        bool ok = false;
        for (uint32_t attempt = 0;; ++attempt) {
          FaultDecision fd;
          if (plan != nullptr) {
            fd = plan->decide(def.info.name, def.info.pure, act.seq, node, arrival, attempt);
            if (fd.action != FaultAction::kNone) {
              counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
            }
          }
          bool injected = false;
          machine().busy_begin(worker, def);
          machine().trace_from_core(worker, start + cost, TraceEventKind::kOpBegin,
                                    n.op_index, attempt);
          try {
            if (fd.action == FaultAction::kThrow) {
              injected = true;
              throw RuntimeError("injected fault (attempt " + std::to_string(attempt) +
                                 ")");
            }
            if (fd.action == FaultAction::kStall) machine().charge_stall(fd.stall_ns, cost);
            const Ticks virtual_start = start + cost;
            const Ticks t0 = machine().op_clock_begin();
            OpContext ctx(def, std::span<Value>(args.data(), args.size()), worker, classes);
            result = def.fn(ctx);
            machine().busy_end(worker);
            // Cost, timings, and CoW stats come from the successful
            // attempt only; failed attempts contribute their backoff.
            machine().op_note_success(t0, def, act, worker, virtual_start, arrival, cost);
            counters_.cow_copies.fetch_add(ctx.cow_copies(), std::memory_order_relaxed);
            counters_.cow_skipped.fetch_add(ctx.cow_skipped(), std::memory_order_relaxed);
            if (fd.action == FaultAction::kCorrupt) {
              // Deterministically wrong-shaped result: consumers that
              // decompose it fault with exact provenance.
              result = Value::tuple({});
            }
            machine().trace_from_core(worker, start + cost, TraceEventKind::kOpEnd,
                                      n.op_index, attempt);
            ok = true;
          } catch (...) {
            machine().busy_end(worker);
            machine().trace_from_core(worker, start + cost, TraceEventKind::kOpEnd,
                                      n.op_index, attempt);
            if (attempt < static_cast<uint32_t>(budget)) {
              counters_.retries.fetch_add(1, std::memory_order_relaxed);
              machine().trace_from_core(worker, start + cost, TraceEventKind::kRetry,
                                        n.op_index, attempt + 1);
              const int shift = attempt < 20 ? static_cast<int>(attempt) : 20;
              machine().charge_backoff(retry_backoff_ns_ << shift, cost);
              args = restore_from(snapshot);
              continue;
            }
            if (budget > 0) {
              counters_.retries_exhausted.fetch_add(1, std::memory_order_relaxed);
            }
            machine().record_fault_from_core(
                act.run, make_fault(act, node, std::current_exception(), injected),
                n.op_index, start + cost, worker);
          }
          break;
        }
        // A recorded fault delivers nothing: the node's consumers starve,
        // the run drains, and the smallest-seq fault is rethrown at drain.
        if (!ok) break;
        if (exec_config().affinity == AffinityMode::kOperator && n.op_index >= 0) {
          machine().note_affinity(n.op_index, worker);
        }
        if (result.kind() == Value::Kind::kBlock) {
          result.block_ptr()->set_home(worker, topo_.domain_of(worker));
        }
        deliver(act_ptr, node, std::move(result), start + cost);
        break;
      }

      case NodeKind::kFused: {
        // A fused chain (src/analysis/graph_opt.cpp): members run in
        // order inside this one scheduling step, so the node base cost,
        // queue traffic, and delivery are paid once per chain. Each
        // member keeps its own fault provenance (pre-fusion node id and
        // source range), injection identity, retry budget, trace events,
        // and timing attribution — observably a sequence of operator
        // runs minus the per-node scheduling tax.
        using PooledValues = std::vector<Value, PoolAllocator<Value>>;
        const FaultPlan* plan = plan_.get();
        Value chain;
        bool chain_ok = true;
        // One argument buffer for the whole chain: members run strictly
        // in sequence, so reusing it trims the per-member allocation the
        // fusion exists to avoid.
        PooledValues args{PoolAllocator<Value>(&pool_)};
        PooledValues snapshot{PoolAllocator<Value>(&pool_)};
        for (const FusedMember& member : n.fused) {
          const OperatorDef& def = registry_.at(static_cast<size_t>(member.op_index));
          args.clear();
          args.reserve(member.inputs.size());
          for (uint32_t slot : member.inputs) {
            if (slot == FusedMember::kChainInput) {
              args.push_back(std::move(chain));
            } else {
              args.push_back(std::move(act.slots[n.input_offset + slot]));
            }
          }
          pull_blocks(std::span<Value>(args.data(), args.size()), worker, cost);
          counters_.operator_invocations.fetch_add(1, std::memory_order_relaxed);
          const uint64_t arrival = machine().op_arrival(def, member.op_index, plan != nullptr);
          // Members are pure by construction — the fusion pass only
          // chains pure operators — so every member is retry-eligible
          // and the pre-image snapshot is a shallow copy (no destructive
          // arguments to re-clone).
          const int budget = max_retries_;
          if (budget > 0) snapshot = args;
          Value result;
          bool ok = false;
          for (uint32_t attempt = 0;; ++attempt) {
            FaultDecision fd;
            if (plan != nullptr) {
              // Injection hashes the member's pre-fusion node id, so
              // structural specs (every=) land the same faults with
              // fusion on or off.
              fd = plan->decide(def.info.name, def.info.pure, act.seq, member.orig_node,
                               arrival, attempt);
              if (fd.action != FaultAction::kNone) {
                counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
              }
            }
            bool injected = false;
            machine().busy_begin(worker, def);
            machine().trace_from_core(worker, start + cost, TraceEventKind::kOpBegin,
                                      member.op_index, attempt);
            try {
              if (fd.action == FaultAction::kThrow) {
                injected = true;
                throw RuntimeError("injected fault (attempt " + std::to_string(attempt) +
                                   ")");
              }
              if (fd.action == FaultAction::kStall) machine().charge_stall(fd.stall_ns, cost);
              const Ticks virtual_start = start + cost;
              const Ticks t0 = machine().op_clock_begin();
              OpContext ctx(def, std::span<Value>(args.data(), args.size()), worker, {});
              result = def.fn(ctx);
              machine().busy_end(worker);
              machine().op_note_success(t0, def, act, worker, virtual_start, arrival, cost);
              counters_.cow_copies.fetch_add(ctx.cow_copies(), std::memory_order_relaxed);
              counters_.cow_skipped.fetch_add(ctx.cow_skipped(), std::memory_order_relaxed);
              if (fd.action == FaultAction::kCorrupt) result = Value::tuple({});
              machine().trace_from_core(worker, start + cost, TraceEventKind::kOpEnd,
                                        member.op_index, attempt);
              ok = true;
            } catch (...) {
              machine().busy_end(worker);
              machine().trace_from_core(worker, start + cost, TraceEventKind::kOpEnd,
                                        member.op_index, attempt);
              if (attempt < static_cast<uint32_t>(budget)) {
                counters_.retries.fetch_add(1, std::memory_order_relaxed);
                machine().trace_from_core(worker, start + cost, TraceEventKind::kRetry,
                                          member.op_index, attempt + 1);
                const int shift = attempt < 20 ? static_cast<int>(attempt) : 20;
                machine().charge_backoff(retry_backoff_ns_ << shift, cost);
                args = snapshot;
                continue;
              }
              if (budget > 0) {
                counters_.retries_exhausted.fetch_add(1, std::memory_order_relaxed);
              }
              machine().record_fault_from_core(
                  act.run, make_member_fault(act, member, std::current_exception(), injected),
                  member.op_index, start + cost, worker);
            }
            break;
          }
          if (!ok) {
            // Same contract as a faulted kOperator: nothing is delivered,
            // downstream starves, and the run drains to the fault.
            chain_ok = false;
            break;
          }
          if (exec_config().affinity == AffinityMode::kOperator) {
            machine().note_affinity(member.op_index, worker);
          }
          if (result.kind() == Value::Kind::kBlock) {
            result.block_ptr()->set_home(worker, topo_.domain_of(worker));
          }
          chain = std::move(result);
        }
        if (!chain_ok) break;
        deliver(act_ptr, node, std::move(chain), start + cost);
        break;
      }

      case NodeKind::kTupleMake:
        deliver(act_ptr, node, Value::tuple(take_all_inputs()), start + cost);
        break;

      case NodeKind::kMakeClosure: {
        const Template* target = act.prog->templates[n.target_template].get();
        deliver(act_ptr, node, Value::closure(target, take_all_inputs()), start + cost);
        break;
      }

      case NodeKind::kCall: {
        const Template* target = act.prog->templates[n.target_template].get();
        spawn_child(act_ptr, node, target, take_all_inputs(), start + cost);
        break;
      }

      case NodeKind::kCallClosure: {
        Value callee = take_input(0);
        const Template* target = callee.as_closure().tmpl;
        const uint32_t given = n.num_inputs - 1u;
        if (given != target->explicit_params()) {
          throw RuntimeError("closure '" + target->name + "' expects " +
                             std::to_string(target->explicit_params()) +
                             " argument(s), got " + std::to_string(given));
        }
        std::vector<Value> params;
        std::vector<Value> captures = callee.take_closure_captures();
        params.reserve(given + captures.size());
        for (uint16_t i = 1; i < n.num_inputs; ++i) params.push_back(take_input(i));
        for (Value& cap : captures) params.push_back(std::move(cap));
        callee = Value();  // release the closure before the child can run
        spawn_child(act_ptr, node, target, std::move(params), start + cost);
        break;
      }

      case NodeKind::kIfDispatch: {
        const bool cond = take_input(0).truthy();
        // Take *both* closures: the untaken branch must release its
        // captured values now, so reference counts stay exact for
        // copy-on-write.
        Value then_clo = take_input(1);
        Value else_clo = take_input(2);
        Value chosen = cond ? std::move(then_clo) : std::move(else_clo);
        then_clo = Value();
        else_clo = Value();
        const Template* target = chosen.as_closure().tmpl;
        if (target->explicit_params() != 0) {
          throw RuntimeError("internal: branch template '" + target->name +
                             "' must take no explicit arguments");
        }
        std::vector<Value> params = chosen.take_closure_captures();
        chosen = Value();  // release the closure before the child can run
        spawn_child(act_ptr, node, target, std::move(params), start + cost);
        break;
      }

      case NodeKind::kParMap: {
        Value fn = take_input(0);
        Value pkg = take_input(1);
        const Template* target = fn.as_closure().tmpl;
        if (target->explicit_params() != 1) {
          throw RuntimeError("parmap: '" + target->name +
                             "' must take exactly one argument, takes " +
                             std::to_string(target->explicit_params()));
        }
        const size_t k = pkg.as_tuple().elems.size();
        if (k == 0) {
          deliver(act_ptr, node, Value::tuple({}), start + cost);
          break;
        }
        // Prepare every child's parameters first, then release the package
        // and closure, so element reference counts are exact before any
        // child can run (the copy-on-write discipline).
        std::vector<std::vector<Value>> params_list;
        params_list.reserve(k);
        {
          const MultiValue& mv = pkg.as_tuple();
          const Closure& c = fn.as_closure();
          for (size_t i = 0; i < k; ++i) {
            std::vector<Value> params;
            params.reserve(1 + c.captures.size());
            params.push_back(mv.elems[i]);
            for (const Value& cap : c.captures) params.push_back(cap);
            params_list.push_back(std::move(params));
          }
        }
        pkg = Value();
        fn = Value();
        auto collector = std::allocate_shared<Collector>(PoolAllocator<Collector>(&pool_));
        collector->results.resize(k);
        collector->remaining.store(static_cast<int>(k), std::memory_order_relaxed);
        if (n.is_tail && exec_config().enable_tail_calls) {
          collector->cont_act = act.cont_act;
          collector->cont_node = act.cont_node;
        } else {
          collector->cont_act = act_ptr;
          collector->cont_node = node;
        }
        for (size_t i = 0; i < k; ++i) {
          spawn(act.prog, target, std::move(params_list[i]), nullptr, 0,
                fault_seq_child(act.seq, node, static_cast<uint32_t>(i) + 1), start + cost,
                act.run, collector, static_cast<uint32_t>(i));
        }
        break;
      }

      case NodeKind::kReturn: {
        Value v = take_input(0);
        if (act.collector != nullptr) {
          Collector& col = *act.collector;
          col.results[act.collector_index] = std::move(v);
          if constexpr (Machine::kVirtualTime) {
            col.latest = std::max(col.latest, start + cost);
          }
          if (col.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            const Ticks done = Machine::kVirtualTime ? col.latest : start + cost;
            Value package = Value::tuple(std::move(col.results));
            if (col.cont_act != nullptr) {
              deliver(col.cont_act, col.cont_node, std::move(package), done);
            } else {
              machine().deliver_final(act.run, std::move(package), done);
            }
          }
        } else if (act.cont_act != nullptr) {
          deliver(act.cont_act, act.cont_node, std::move(v), start + cost);
        } else {
          machine().deliver_final(act.run, std::move(v), start + cost);
        }
        break;
      }
    }
    return cost;
  }

  // -- Diagnostics -----------------------------------------------------------

  /// Summarize one live activation for the stranded dump (deadlock and
  /// watchdog diagnostics), if it has unfired nodes.
  static void append_stranded(const Activation& a, std::vector<StrandedActivation>& out) {
    StrandedActivation sa;
    sa.seq = a.seq;
    sa.tmpl = a.tmpl->name;
    for (uint32_t i = 0; i < a.tmpl->nodes.size(); ++i) {
      const Node& n = a.tmpl->nodes[i];
      if (n.num_inputs == 0) continue;
      const int32_t missing = a.pending[i].load(std::memory_order_relaxed);
      if (missing <= 0) continue;
      if (missing == n.num_inputs) {
        ++sa.never_fed;
      } else {
        sa.partial.push_back(StrandedNode{i, fault_node_label(n), missing, n.num_inputs});
      }
    }
    if (!sa.partial.empty() || sa.never_fed > 0) out.push_back(std::move(sa));
  }

  // -- Core state ------------------------------------------------------------

  Machine& machine() { return *static_cast<Machine*>(this); }

  const OperatorRegistry& registry_;
  const ExecConfig* exec_config_ = nullptr;
  /// Effective topology (init_exec) and whether it charges anything —
  /// the one branch the UMA hot path pays for the whole NUMA model.
  MemoryTopology topo_;
  bool numa_active_ = false;
  /// Declared before everything that allocates from it: a base-class
  /// subobject outlives all members of the derived Machine, so every
  /// pooled activation is freed before the pool goes away.
  ActivationPool pool_;
  StatCounters counters_;

  // Per-run state. The program is carried per activation (Activation::prog),
  // so a batch of instances may span several compiled programs.
  std::shared_ptr<const FaultPlan> plan_;
  int max_retries_ = 0;
  int64_t retry_backoff_ns_ = 0;
};

}  // namespace delirium
