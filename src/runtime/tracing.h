// Low-overhead event tracing shared by Runtime and SimRuntime — the
// §1 "tools for analyzing and improving execution speed", upgraded from
// per-node durations to a real event timeline (docs/OBSERVABILITY.md).
//
// Each worker records into its own fixed-capacity ring buffer with no
// locks and no atomics on the recording path; a global relaxed counter
// stamps every event with a sequence number so the merged stream has one
// deterministic order regardless of which ring an event landed in. The
// threaded runtime records wall-clock nanoseconds relative to the run
// start; SimRuntime records exact virtual nanoseconds under the same
// schema, so the same exporters serve both executors.
//
// Soundness of the lock-free design rests on one invariant: a ring is
// written only (a) by its owning worker between popping a work item and
// decrementing the run's outstanding counter, or (b) by the run's caller
// thread, which is also the only reader and reads only after the drain
// observed outstanding == 0. Events a worker would otherwise produce
// while idle (park intervals, dry steal scans) are kept in worker-local
// state and flushed at the next successful pop, which restores the
// invariant without losing the data. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace delirium {

/// One entry of the trace event stream. Operator and fault events carry
/// the operator's registry index (resolved to a name at export time, so
/// the hot path never touches a string); scheduler events use `arg` for
/// the kind-specific detail documented per enumerator.
enum class TraceEventKind : uint8_t {
  kOpBegin,     // operator attempt starts; arg = attempt number (0-based)
  kOpEnd,       // operator attempt ends (also on a throwing attempt)
  kSteal,       // item taken from a victim's deque; arg = victim worker
  kStealFail,   // full dry scans since the last pop; arg = scan count
  kPark,        // worker slept on its eventcount; arg = sleep duration ns
  kWake,        // notification sent to a parked worker; arg = target
  kInject,      // item pushed into another worker's inbox; arg = target
  kFaultRaise,  // fault captured (after retries were exhausted)
  kRetry,       // faulting operator about to re-run; arg = upcoming attempt
  kPurge,       // queued item discarded by cancellation
  kWatchdog,    // stall detector fired
};

/// Number of TraceEventKind enumerators (for per-kind count tables).
inline constexpr int kNumTraceEventKinds = 11;

/// Stable lower-case name of a kind ("op_begin", "steal", ...), used by
/// every exporter and by the multiset-equivalence helper.
std::string_view trace_event_kind_name(TraceEventKind kind);

struct TraceEvent {
  int64_t ts = 0;        // ns since run start (wall) / virtual ns (sim)
  uint64_t seq = 0;      // global record order; the merge key
  int64_t arg = 0;       // kind-specific detail (see TraceEventKind)
  int32_t op = -1;       // operator registry index, or -1
  int16_t worker = -1;   // recording worker / virtual processor
  TraceEventKind kind = TraceEventKind::kOpBegin;
};

/// Fixed-capacity single-writer ring. When full the oldest events are
/// overwritten (flight-recorder semantics: a bounded trace keeps the
/// most recent window); `overwritten()` reports how many were lost.
/// No internal synchronization — see the file comment for the
/// happens-before discipline that makes reads safe.
class TraceRing {
 public:
  /// Prepare `capacity` slots (rounded up to a power of two, min 16).
  /// Called once, before any recording.
  void init(size_t capacity);

  void push(const TraceEvent& e) {
    buf_[head_ & mask_] = e;
    ++head_;
  }

  void clear() { head_ = 0; }
  size_t size() const { return head_ < buf_.size() ? head_ : buf_.size(); }
  uint64_t overwritten() const { return head_ < buf_.size() ? 0 : head_ - buf_.size(); }

  /// Append the retained events (oldest first) to `out`.
  void collect(std::vector<TraceEvent>& out) const;

 private:
  std::vector<TraceEvent> buf_;
  uint64_t mask_ = 0;
  uint64_t head_ = 0;
};

/// Sort a merged event stream into its global record order.
void sort_trace_events(std::vector<TraceEvent>& events);

/// Default per-worker ring capacity; override with RuntimeConfig::
/// trace_capacity or the DELIRIUM_TRACE_CAPACITY environment variable.
inline constexpr size_t kDefaultTraceCapacity = 1 << 16;

}  // namespace delirium
