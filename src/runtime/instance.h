// Multi-instance execution: many independent activations of compiled
// programs sharing one worker pool, with per-instance isolation.
//
// This is the substrate the ROADMAP's resident `deld` service sits on
// (open item 1): a request becomes an *instance*, and the make-or-break
// property is robustness under co-tenancy. The InstanceManager provides
// (docs/ROBUSTNESS.md "Isolation model"):
//
//  - Fault containment. Every activation carries its instance's run
//    token (Activation::run), so cancellation, purge-on-pop, fault
//    capture, and the stranded dump are all scoped to one instance. A
//    faulting instance reports the same byte-identical FaultInfo its
//    solo run reports (all roots share fault_seq_root()); siblings run
//    to completion unperturbed.
//  - Per-instance budgets. Activation-count ceilings are enforced on
//    the live-activation ledger hook; time ceilings reuse the watchdog
//    machinery (wall ms in the threaded machine, exact virtual ns in
//    the simulator). A tripped budget cancels only that instance and is
//    reported as a structured kBudgetExhausted outcome, never process
//    death.
//  - Admission control. A bounded admission window with a deterministic
//    reject-newest shed policy: occupancy counts admitted-but-not-yet-
//    collected instances, so it changes only on caller-driven submit()
//    and wait() — shed decisions are a pure function of the caller's
//    call sequence, independent of worker timing.
//
// Threaded mode streams: submit() spawns the instance immediately and
// the draining worker finalizes it inline; wait() blocks the caller
// only. Sim mode batches: submit() queues, and the first wait() runs
// all pending instances on one virtual machine deterministically.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/runtime.h"
#include "src/runtime/sim.h"

namespace delirium {

/// Terminal state of one instance.
enum class InstanceOutcome : uint8_t {
  kCompleted,        // produced a value
  kFaulted,          // operator fault, spawn failure, or deadlock
  kBudgetExhausted,  // activation-count or time ceiling tripped
  kOverload,         // shed at admission (never ran)
};

const char* instance_outcome_name(InstanceOutcome o);

struct InstanceBudget {
  uint64_t max_activations = 0;  // 0 = unlimited
  /// Wall ns (threaded) / virtual ns (sim) from submission; 0 = none.
  /// Virtual-time ceilings are exactly deterministic; wall-clock ones
  /// trip deterministically only for genuinely-stalled instances.
  int64_t time_budget_ns = 0;
};

struct InstanceRequest {
  const CompiledProgram* program = nullptr;
  std::string function;  // empty = the program's entry template
  std::vector<Value> args;
  /// Per-request ceilings; zero fields fall back to the manager's
  /// default_budget.
  InstanceBudget budget;
  Ticks arrival = 0;  // virtual arrival time (sim mode only)
};

struct InstanceResult {
  uint64_t id = 0;
  InstanceOutcome outcome = InstanceOutcome::kCompleted;
  Value value;  // kCompleted only
  /// Diagnostic text otherwise: FaultInfo::render() (byte-identical to
  /// the solo run's FaultError::what()), the budget message, the shed
  /// message, or the deadlock dump.
  std::string error;
  bool have_fault = false;
  FaultInfo fault;  // the drain winner, when have_fault
  int64_t latency_ns = 0;  // wall (threaded) / virtual (sim) submit-to-finalize
  uint64_t activations = 0;  // tracked whenever the instance ran under a manager
};

/// Monotonic per-manager tallies (also published into RunStats /
/// MetricsRegistry as the instances_* counters).
struct InstanceCounters {
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t faulted = 0;
  uint64_t budget_killed = 0;
  uint64_t shed = 0;
  uint64_t live = 0;  // admitted, not yet finalized (gauge)
};

struct InstanceManagerConfig {
  /// Max admitted-but-not-collected instances; 0 = unbounded. The
  /// newest submission is shed (kOverload) when the window is full.
  size_t admission_capacity = 0;
  /// Ceilings applied where a request leaves its budget fields zero.
  InstanceBudget default_budget;
  /// Maintain the per-worker busy-op dump during the session so budget
  /// diagnostics can name wedged operators (threaded only; costs two
  /// uncontended locks per operator invocation).
  bool track_busy_workers = false;
  /// Poll cadence of the wall-time budget monitor (threaded only).
  int64_t budget_poll_ms = 2;
};

/// Runs many independent program instances over one shared machine.
/// One manager session at a time per Runtime (the session holds the
/// run lock, so plain run() calls block until the manager is
/// destroyed). Destroying the manager waits for every admitted
/// instance to finalize, then publishes session stats and traces
/// through the Runtime's usual accessors.
class InstanceManager {
 public:
  explicit InstanceManager(Runtime& rt, InstanceManagerConfig config = {});
  explicit InstanceManager(SimRuntime& sim, InstanceManagerConfig config = {});
  ~InstanceManager();
  InstanceManager(const InstanceManager&) = delete;
  InstanceManager& operator=(const InstanceManager&) = delete;

  /// Admit (or shed) one instance. Returns its id (1-based, dense).
  /// Threaded mode spawns it immediately; sim mode queues it for the
  /// next wait()/wait_all() flush.
  uint64_t submit(InstanceRequest req);

  /// Block until the instance finalizes and return its result. The
  /// first wait() per id releases its admission slot.
  InstanceResult wait(uint64_t id);

  /// Wait for every submitted instance, in id order.
  std::vector<InstanceResult> wait_all();

  InstanceCounters counters() const;

  /// Per-instance latencies in finalize order (wall ns threaded,
  /// virtual ns sim). Feed into a LogHistogram for percentiles — the
  /// manager stays below the tools layer, so it records raw values.
  std::vector<int64_t> latencies() const;

  /// Session stats so far: the machine's counter snapshot plus the
  /// authoritative instances_* tallies (including shed, which the
  /// machine never sees).
  RunStats stats() const;

 private:
  friend class Runtime;  // worker-side finalize callback

  struct Slot {
    std::unique_ptr<Runtime::RunState> rs;  // threaded mode, admitted only
    InstanceResult result;
    bool done = false;
    bool collected = false;
  };

  InstanceBudget effective_budget(const InstanceBudget& b) const;
  void launch_threaded(Slot* slot, uint64_t id, InstanceRequest req);
  void on_instance_drained(Runtime::RunState* rs);
  void monitor_loop();
  void ensure_monitor_locked();
  void flush_sim();

  Runtime* rt_ = nullptr;
  SimRuntime* sim_ = nullptr;
  InstanceManagerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signals slot completion
  std::vector<std::unique_ptr<Slot>> slots_;  // id = index + 1
  size_t occupancy_ = 0;  // admitted, not yet collected
  InstanceCounters counters_;
  std::vector<int64_t> latencies_;

  // Wall-time budget monitor (threaded; started on first timed submit).
  std::thread monitor_;
  std::condition_variable monitor_cv_;
  bool stop_monitor_ = false;

  // Sim mode: requests queued since the last flush, and the stats of
  // the batches run so far.
  std::vector<std::pair<uint64_t, InstanceRequest>> sim_pending_;
  RunStats sim_stats_;

  std::unique_lock<std::mutex> run_lock_;  // holds Runtime::run_mu_
};

}  // namespace delirium
