#include "src/runtime/registry.h"

#include <stdexcept>

namespace delirium {

OperatorRegistry::Entry OperatorRegistry::add(std::string name, int arity, OperatorFn fn) {
  if (by_name_.count(name) > 0) {
    throw std::invalid_argument("operator '" + name + "' registered twice");
  }
  auto def = std::make_unique<OperatorDef>();
  def->info.name = name;
  def->info.arity = arity;
  def->fn = std::move(fn);
  OperatorDef* raw = def.get();
  by_name_[name] = static_cast<int>(defs_.size());
  defs_.push_back(std::move(def));
  return Entry(raw);
}

const OperatorInfo* OperatorRegistry::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &defs_[it->second]->info;
}

int OperatorRegistry::index_of(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

}  // namespace delirium
