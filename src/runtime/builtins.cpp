// Built-in convenience operators. The paper's programs call tiny helper
// operators written in C (incr, is_equal, merge, ...); this module
// provides the generic ones so coordination frameworks need no extra
// boilerplate. Application-specific operators (convol_bite, add_queen,
// ...) live with the applications.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <mutex>

#include "src/runtime/registry.h"

namespace delirium {

namespace {

bool is_int(const ConstValue& v) { return std::holds_alternative<int64_t>(v); }
bool is_num(const ConstValue& v) {
  return std::holds_alternative<int64_t>(v) || std::holds_alternative<double>(v);
}
double num(const ConstValue& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return std::get<double>(v);
}

/// Numeric binary operator: int×int stays int, otherwise float.
template <typename IntOp, typename FloatOp>
void add_binary_numeric(OperatorRegistry& r, const std::string& name, IntOp iop, FloatOp fop) {
  r.add(name, 2,
        [name, iop, fop](OpContext& ctx) -> Value {
          const Value& a = ctx.arg(0);
          const Value& b = ctx.arg(1);
          if (a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt) {
            return Value::of(iop(a.as_int(), b.as_int()));
          }
          return Value::of(fop(a.as_float(), b.as_float()));
        })
      .pure()
      .fold([iop, fop](std::span<const ConstValue> args) -> std::optional<ConstValue> {
        if (args.size() != 2 || !is_num(args[0]) || !is_num(args[1])) return std::nullopt;
        if (is_int(args[0]) && is_int(args[1])) {
          return ConstValue{iop(std::get<int64_t>(args[0]), std::get<int64_t>(args[1]))};
        }
        return ConstValue{fop(num(args[0]), num(args[1]))};
      });
}

/// Numeric comparison: result is the integer 0 or 1.
template <typename Cmp>
void add_compare(OperatorRegistry& r, const std::string& name, Cmp cmp) {
  r.add(name, 2,
        [cmp](OpContext& ctx) -> Value {
          return Value::of(static_cast<int64_t>(cmp(ctx.arg_float(0), ctx.arg_float(1)) ? 1 : 0));
        })
      .pure()
      .fold([cmp](std::span<const ConstValue> args) -> std::optional<ConstValue> {
        if (args.size() != 2 || !is_num(args[0]) || !is_num(args[1])) return std::nullopt;
        return ConstValue{static_cast<int64_t>(cmp(num(args[0]), num(args[1])) ? 1 : 0)};
      });
}

bool const_equal(const ConstValue& a, const ConstValue& b) {
  if (is_num(a) && is_num(b)) return num(a) == num(b);
  if (std::holds_alternative<std::monostate>(a) && std::holds_alternative<std::monostate>(b)) {
    return true;
  }
  if (std::holds_alternative<std::string>(a) && std::holds_alternative<std::string>(b)) {
    return std::get<std::string>(a) == std::get<std::string>(b);
  }
  return false;
}

bool value_equal(const Value& a, const Value& b) { return deep_equal(a, b); }

bool const_truthy_local(const ConstValue& v) {
  if (std::holds_alternative<std::monostate>(v)) return false;
  if (const auto* i = std::get_if<int64_t>(&v)) return *i != 0;
  if (const auto* d = std::get_if<double>(&v)) return *d != 0.0;
  return true;
}

std::mutex& print_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void register_builtin_operators(OperatorRegistry& r) {
  // --- increments (the paper's loop steps use incr) --------------------
  r.add("incr", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0) + 1); })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 1 || !is_int(a[0])) return std::nullopt;
        return ConstValue{std::get<int64_t>(a[0]) + 1};
      });
  r.add("decr", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0) - 1); })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 1 || !is_int(a[0])) return std::nullopt;
        return ConstValue{std::get<int64_t>(a[0]) - 1};
      });

  // --- arithmetic -------------------------------------------------------
  add_binary_numeric(r, "add", [](int64_t a, int64_t b) { return a + b; },
                     [](double a, double b) { return a + b; });
  add_binary_numeric(r, "sub", [](int64_t a, int64_t b) { return a - b; },
                     [](double a, double b) { return a - b; });
  add_binary_numeric(r, "mul", [](int64_t a, int64_t b) { return a * b; },
                     [](double a, double b) { return a * b; });
  add_binary_numeric(r, "min", [](int64_t a, int64_t b) { return a < b ? a : b; },
                     [](double a, double b) { return a < b ? a : b; });
  add_binary_numeric(r, "max", [](int64_t a, int64_t b) { return a > b ? a : b; },
                     [](double a, double b) { return a > b ? a : b; });
  r.add("div", 2,
        [](OpContext& ctx) -> Value {
          const Value& a = ctx.arg(0);
          const Value& b = ctx.arg(1);
          if (a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt) {
            if (b.as_int() == 0) throw RuntimeError("div: division by zero");
            return Value::of(a.as_int() / b.as_int());
          }
          if (b.as_float() == 0.0) throw RuntimeError("div: division by zero");
          return Value::of(a.as_float() / b.as_float());
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2 || !is_num(a[0]) || !is_num(a[1])) return std::nullopt;
        if (is_int(a[0]) && is_int(a[1])) {
          const int64_t d = std::get<int64_t>(a[1]);
          if (d == 0) return std::nullopt;  // fold must not hide the error
          return ConstValue{std::get<int64_t>(a[0]) / d};
        }
        if (num(a[1]) == 0.0) return std::nullopt;
        return ConstValue{num(a[0]) / num(a[1])};
      });
  r.add("mod", 2,
        [](OpContext& ctx) -> Value {
          const int64_t b = ctx.arg_int(1);
          if (b == 0) throw RuntimeError("mod: division by zero");
          return Value::of(ctx.arg_int(0) % b);
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2 || !is_int(a[0]) || !is_int(a[1])) return std::nullopt;
        const int64_t d = std::get<int64_t>(a[1]);
        if (d == 0) return std::nullopt;
        return ConstValue{std::get<int64_t>(a[0]) % d};
      });
  r.add("neg", 1,
        [](OpContext& ctx) -> Value {
          const Value& a = ctx.arg(0);
          if (a.kind() == Value::Kind::kInt) return Value::of(-a.as_int());
          return Value::of(-a.as_float());
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 1 || !is_num(a[0])) return std::nullopt;
        if (is_int(a[0])) return ConstValue{-std::get<int64_t>(a[0])};
        return ConstValue{-num(a[0])};
      });
  r.add("abs", 1,
        [](OpContext& ctx) -> Value {
          const Value& a = ctx.arg(0);
          if (a.kind() == Value::Kind::kInt) return Value::of(std::abs(a.as_int()));
          return Value::of(std::fabs(a.as_float()));
        })
      .pure();
  r.add("sqrt", 1, [](OpContext& ctx) { return Value::of(std::sqrt(ctx.arg_float(0))); })
      .pure();
  r.add("floor", 1,
        [](OpContext& ctx) {
          return Value::of(static_cast<int64_t>(std::floor(ctx.arg_float(0))));
        })
      .pure();
  r.add("ceil", 1,
        [](OpContext& ctx) {
          return Value::of(static_cast<int64_t>(std::ceil(ctx.arg_float(0))));
        })
      .pure();

  // --- comparison ---------------------------------------------------------
  r.add("is_equal", 2,
        [](OpContext& ctx) {
          return Value::of(static_cast<int64_t>(value_equal(ctx.arg(0), ctx.arg(1)) ? 1 : 0));
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2) return std::nullopt;
        return ConstValue{static_cast<int64_t>(const_equal(a[0], a[1]) ? 1 : 0)};
      });
  r.add("is_not_equal", 2,
        [](OpContext& ctx) {
          return Value::of(static_cast<int64_t>(value_equal(ctx.arg(0), ctx.arg(1)) ? 0 : 1));
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2) return std::nullopt;
        return ConstValue{static_cast<int64_t>(const_equal(a[0], a[1]) ? 0 : 1)};
      });
  add_compare(r, "less_than", [](double a, double b) { return a < b; });
  add_compare(r, "less_equal", [](double a, double b) { return a <= b; });
  add_compare(r, "greater_than", [](double a, double b) { return a > b; });
  add_compare(r, "greater_equal", [](double a, double b) { return a >= b; });

  // --- logic (truthiness-based, results are 0/1) --------------------------
  r.add("not", 1,
        [](OpContext& ctx) { return Value::of(static_cast<int64_t>(ctx.arg(0).truthy() ? 0 : 1)); })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 1) return std::nullopt;
        return ConstValue{static_cast<int64_t>(const_truthy_local(a[0]) ? 0 : 1)};
      });
  r.add("and", 2,
        [](OpContext& ctx) {
          return Value::of(
              static_cast<int64_t>(ctx.arg(0).truthy() && ctx.arg(1).truthy() ? 1 : 0));
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2) return std::nullopt;
        return ConstValue{
            static_cast<int64_t>(const_truthy_local(a[0]) && const_truthy_local(a[1]) ? 1 : 0)};
      });
  r.add("or", 2,
        [](OpContext& ctx) {
          return Value::of(
              static_cast<int64_t>(ctx.arg(0).truthy() || ctx.arg(1).truthy() ? 1 : 0));
        })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2) return std::nullopt;
        return ConstValue{
            static_cast<int64_t>(const_truthy_local(a[0]) || const_truthy_local(a[1]) ? 1 : 0)};
      });

  // --- strings -------------------------------------------------------------
  r.add("concat", 2,
        [](OpContext& ctx) { return Value::of(ctx.arg_string(0) + ctx.arg_string(1)); })
      .pure()
      .fold([](std::span<const ConstValue> a) -> std::optional<ConstValue> {
        if (a.size() != 2 || !std::holds_alternative<std::string>(a[0]) ||
            !std::holds_alternative<std::string>(a[1])) {
          return std::nullopt;
        }
        return ConstValue{std::get<std::string>(a[0]) + std::get<std::string>(a[1])};
      });
  r.add("str_len", 1,
        [](OpContext& ctx) { return Value::of(static_cast<int64_t>(ctx.arg_string(0).size())); })
      .pure();
  r.add("to_string", 1,
        [](OpContext& ctx) { return Value::of(ctx.arg(0).to_display_string()); })
      .pure();

  // --- conversion ------------------------------------------------------------
  r.add("to_int", 1,
        [](OpContext& ctx) -> Value {
          const Value& a = ctx.arg(0);
          if (a.kind() == Value::Kind::kString) {
            return Value::of(static_cast<int64_t>(std::stoll(a.as_string())));
          }
          return Value::of(static_cast<int64_t>(a.as_float()));
        })
      .pure();
  r.add("to_float", 1,
        [](OpContext& ctx) -> Value {
          const Value& a = ctx.arg(0);
          if (a.kind() == Value::Kind::kString) return Value::of(std::stod(a.as_string()));
          return Value::of(a.as_float());
        })
      .pure();

  // --- multiple-value packages ---------------------------------------------
  // Package construction is syntax (<a, b, c>); these operators make
  // packages useful with parmap and data-driven fan-out. Indices are
  // 0-based.
  r.add("package_size", 1,
        [](OpContext& ctx) {
          return Value::of(static_cast<int64_t>(ctx.arg(0).as_tuple().elems.size()));
        })
      .pure();
  r.add("package_get", 2,
        [](OpContext& ctx) -> Value {
          const MultiValue& mv = ctx.arg(0).as_tuple();
          const int64_t i = ctx.arg_int(1);
          if (i < 0 || static_cast<size_t>(i) >= mv.elems.size()) {
            throw RuntimeError("package_get: index " + std::to_string(i) + " out of a " +
                               std::to_string(mv.elems.size()) + "-element package");
          }
          return mv.elems[static_cast<size_t>(i)];
        })
      .pure();
  r.add("package_append", 2,
        [](OpContext& ctx) {
          std::vector<Value> elems = ctx.arg(0).as_tuple().elems;
          elems.push_back(ctx.take(1));
          return Value::tuple(std::move(elems));
        })
      .pure();
  r.add("package_concat", 2,
        [](OpContext& ctx) {
          std::vector<Value> elems = ctx.arg(0).as_tuple().elems;
          const MultiValue& b = ctx.arg(1).as_tuple();
          elems.insert(elems.end(), b.elems.begin(), b.elems.end());
          return Value::tuple(std::move(elems));
        })
      .pure();
  r.add("package_reverse", 1,
        [](OpContext& ctx) {
          std::vector<Value> elems = ctx.arg(0).as_tuple().elems;
          std::reverse(elems.begin(), elems.end());
          return Value::tuple(std::move(elems));
        })
      .pure();
  r.add("package_slice", 3,
        [](OpContext& ctx) -> Value {
          const MultiValue& mv = ctx.arg(0).as_tuple();
          const int64_t begin = ctx.arg_int(1);
          const int64_t end = ctx.arg_int(2);
          if (begin < 0 || end < begin || static_cast<size_t>(end) > mv.elems.size()) {
            throw RuntimeError("package_slice: range [" + std::to_string(begin) + ", " +
                               std::to_string(end) + ") out of a " +
                               std::to_string(mv.elems.size()) + "-element package");
          }
          return Value::tuple(std::vector<Value>(
              mv.elems.begin() + begin, mv.elems.begin() + end));
        })
      .pure();
  r.add("range", 1,
        [](OpContext& ctx) -> Value {
          const int64_t n = ctx.arg_int(0);
          if (n < 0) throw RuntimeError("range: negative length");
          std::vector<Value> elems;
          elems.reserve(static_cast<size_t>(n));
          for (int64_t i = 0; i < n; ++i) elems.push_back(Value::of(i));
          return Value::tuple(std::move(elems));
        })
      .pure();

  // --- misc -------------------------------------------------------------------
  r.add("identity", 1, [](OpContext& ctx) { return ctx.take(0); }).pure();
  r.add("is_null", 1,
        [](OpContext& ctx) { return Value::of(static_cast<int64_t>(ctx.arg(0).is_null() ? 1 : 0)); })
      .pure();
  // print is the only impure builtin: it must not be folded or eliminated.
  r.add("print", 1, [](OpContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(print_mutex());
      std::cout << ctx.arg(0).to_display_string() << '\n';
    }
    return ctx.take(0);
  });
}

}  // namespace delirium
