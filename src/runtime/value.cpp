#include "src/runtime/value.h"

#include <sstream>

namespace delirium {

std::string Value::to_display_string() const {
  switch (kind()) {
    case Kind::kNull: return "NULL";
    case Kind::kInt: return std::to_string(std::get<int64_t>(v_));
    case Kind::kFloat: {
      std::ostringstream os;
      os << std::get<double>(v_);
      return os.str();
    }
    case Kind::kString: return as_string();
    case Kind::kBlock: {
      std::ostringstream os;
      os << "<block " << block_ptr()->type_name() << ", " << block_ptr()->byte_size()
         << " bytes>";
      return os.str();
    }
    case Kind::kTuple: {
      std::ostringstream os;
      os << '<';
      const MultiValue& mv = as_tuple();
      for (size_t i = 0; i < mv.elems.size(); ++i) {
        if (i > 0) os << ", ";
        os << mv.elems[i].to_display_string();
      }
      os << '>';
      return os.str();
    }
    case Kind::kClosure: {
      const Closure& c = as_closure();
      return "<closure " + (c.tmpl != nullptr ? c.tmpl->name : "?") + "/" +
             std::to_string(c.captures.size()) + ">";
    }
  }
  return "?";
}

bool deep_equal(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    // Allow int/float cross-comparison for convenience in tests.
    if ((a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kFloat) ||
        (a.kind() == Value::Kind::kFloat && b.kind() == Value::Kind::kInt)) {
      return a.as_float() == b.as_float();
    }
    return false;
  }
  switch (a.kind()) {
    case Value::Kind::kNull: return true;
    case Value::Kind::kInt: return a.as_int() == b.as_int();
    case Value::Kind::kFloat: return a.as_float() == b.as_float();
    case Value::Kind::kString: return a.as_string() == b.as_string();
    case Value::Kind::kBlock: return a.block_ptr() == b.block_ptr();
    case Value::Kind::kTuple: {
      const MultiValue& ta = a.as_tuple();
      const MultiValue& tb = b.as_tuple();
      if (ta.elems.size() != tb.elems.size()) return false;
      for (size_t i = 0; i < ta.elems.size(); ++i) {
        if (!deep_equal(ta.elems[i], tb.elems[i])) return false;
      }
      return true;
    }
    case Value::Kind::kClosure: {
      const Closure& ca = a.as_closure();
      const Closure& cb = b.as_closure();
      if (ca.tmpl != cb.tmpl || ca.captures.size() != cb.captures.size()) return false;
      for (size_t i = 0; i < ca.captures.size(); ++i) {
        if (!deep_equal(ca.captures[i], cb.captures[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace delirium
