// Runtime values for Delirium.
//
// The coordination model (§8) passes all shared memory explicitly between
// operators as *blocks*. A block may be destructively modified only by an
// operator holding the sole reference; the runtime maintains reference
// counts and copies a block when two or more operators need simultaneous
// write access (copy-on-write). Atomic values (integers, floats,
// strings), multiple-value packages, and closures round out the value
// kinds of the language.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <variant>
#include <vector>

#include "src/graph/template.h"

namespace delirium {

/// Any failure during graph execution: type mismatches, arity mismatches
/// on closure calls, operator-thrown errors. Deterministic programs fail
/// deterministically, which is the point of the model (§9.1).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Where a block's "local memory" currently lives (§9.3): the worker
/// that last produced or pulled it, and that worker's NUMA domain under
/// the run's MemoryTopology. Both coordinates are packed into one
/// atomic word so a reader never sees a worker from one placement and a
/// domain from another. (-1, -1) means unplaced. Purely a performance
/// model; never affects values.
class BlockHome {
 public:
  int worker() const { return unpack_hi(packed_.load(std::memory_order_relaxed)); }
  int domain() const { return unpack_lo(packed_.load(std::memory_order_relaxed)); }
  void store(int worker, int domain) {
    packed_.store(pack(worker, domain), std::memory_order_relaxed);
  }

 private:
  // Each coordinate is biased by +1 so the zero-initialized word reads
  // back as the unplaced (-1, -1) home.
  static uint64_t pack(int worker, int domain) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(worker + 1)) << 32) |
           static_cast<uint32_t>(domain + 1);
  }
  static int unpack_hi(uint64_t packed) {
    return static_cast<int>(static_cast<uint32_t>(packed >> 32)) - 1;
  }
  static int unpack_lo(uint64_t packed) {
    return static_cast<int>(static_cast<uint32_t>(packed)) - 1;
  }

  std::atomic<uint64_t> packed_{0};
};

/// Type-erased shared data block. Apps subclass via TypedBlock<T>.
class BlockBase {
 public:
  virtual ~BlockBase() = default;
  virtual std::shared_ptr<BlockBase> clone() const = 0;
  /// Approximate payload size, used by the simulated-NUMA cost model and
  /// the data-affinity scheduler.
  virtual size_t byte_size() const = 0;
  virtual const char* type_name() const = 0;

  /// The block's home placement (worker + NUMA domain). All reads and
  /// writes go through these accessors; raw member access is private so
  /// the two coordinates can never be torn apart.
  int home_worker() const { return home_.worker(); }
  int home_domain() const { return home_.domain(); }
  void set_home(int worker, int domain) { home_.store(worker, domain); }

 private:
  BlockHome home_;
};

namespace detail {
template <typename T>
concept SizedContainer = requires(const T& t) {
  { t.size() } -> std::convertible_to<size_t>;
  typename T::value_type;
};

template <typename T>
concept HasBlockSizeHook = requires(const T& t) {
  { delirium_block_size(t) } -> std::convertible_to<size_t>;
};

/// Payload size of a block, used by the NUMA cost model and the
/// data-affinity scheduler. Types can customize by providing a free
/// function `size_t delirium_block_size(const T&)` findable by ADL;
/// containers fall back to size()*sizeof(value_type), everything else to
/// sizeof(T).
template <typename T>
size_t payload_bytes(const T& v) {
  if constexpr (HasBlockSizeHook<T>) {
    return delirium_block_size(v);
  } else if constexpr (SizedContainer<T>) {
    return sizeof(T) + v.size() * sizeof(typename T::value_type);
  } else {
    return sizeof(T);
  }
}
}  // namespace detail

template <typename T>
class TypedBlock final : public BlockBase {
 public:
  explicit TypedBlock(T v) : data(std::move(v)) {}
  std::shared_ptr<BlockBase> clone() const override {
    return std::make_shared<TypedBlock<T>>(data);
  }
  size_t byte_size() const override { return detail::payload_bytes(data); }
  const char* type_name() const override { return typeid(T).name(); }

  T data;
};

class Value;

/// A multiple-value package (language construct 2).
struct MultiValue {
  std::vector<Value> elems;
};

/// A function value: template plus captured values. Where a function is
/// passed as an argument, "the run time system actually passes the
/// corresponding graph" (§3).
struct Closure {
  const Template* tmpl = nullptr;
  std::vector<Value> captures;
};

class Value {
 public:
  enum class Kind : uint8_t { kNull, kInt, kFloat, kString, kBlock, kTuple, kClosure };

  Value() = default;
  static Value null() { return Value(); }
  static Value of(int64_t v) { return Value(Storage{std::in_place_index<1>, v}); }
  static Value of(double v) { return Value(Storage{std::in_place_index<2>, v}); }
  static Value of(std::string v) {
    return Value(Storage{std::in_place_index<3>, std::make_shared<const std::string>(std::move(v))});
  }
  static Value of_block(std::shared_ptr<BlockBase> b) {
    return Value(Storage{std::in_place_index<4>, std::move(b)});
  }
  template <typename T>
  static Value block(T data) {
    return of_block(std::make_shared<TypedBlock<T>>(std::move(data)));
  }
  static Value tuple(std::vector<Value> elems) {
    auto mv = std::make_shared<MultiValue>();
    mv->elems = std::move(elems);
    return Value(Storage{std::in_place_index<5>, std::move(mv)});
  }
  static Value closure(const Template* tmpl, std::vector<Value> captures) {
    auto c = std::make_shared<Closure>();
    c->tmpl = tmpl;
    c->captures = std::move(captures);
    return Value(Storage{std::in_place_index<6>, std::move(c)});
  }

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }

  int64_t as_int() const {
    if (const auto* p = std::get_if<int64_t>(&v_)) return *p;
    throw RuntimeError(std::string("expected an integer value, got ") + kind_name());
  }
  double as_float() const {
    if (const auto* p = std::get_if<double>(&v_)) return *p;
    if (const auto* p = std::get_if<int64_t>(&v_)) return static_cast<double>(*p);
    throw RuntimeError(std::string("expected a float value, got ") + kind_name());
  }
  const std::string& as_string() const {
    if (const auto* p = std::get_if<std::shared_ptr<const std::string>>(&v_)) return **p;
    throw RuntimeError(std::string("expected a string value, got ") + kind_name());
  }
  const MultiValue& as_tuple() const {
    if (const auto* p = std::get_if<std::shared_ptr<MultiValue>>(&v_)) return **p;
    throw RuntimeError(std::string("expected a multiple-value package, got ") + kind_name());
  }

  /// Mutable access to a *uniquely held* package (e.g. to move elements
  /// out); nullptr when the package is shared and must be treated as
  /// read-only. Not a type error — callers fall back to copying.
  MultiValue* tuple_mut() {
    auto* p = std::get_if<std::shared_ptr<MultiValue>>(&v_);
    if (p == nullptr || p->use_count() != 1) return nullptr;
    return p->get();
  }
  const Closure& as_closure() const {
    if (const auto* p = std::get_if<std::shared_ptr<Closure>>(&v_)) return **p;
    throw RuntimeError(std::string("expected a function value, got ") + kind_name());
  }

  /// Extract a closure's captured values: moved out when this is the sole
  /// reference (the common case — avoids transient reference counts that
  /// would defeat the copy-on-write uniqueness test), copied otherwise.
  std::vector<Value> take_closure_captures() {
    auto* p = std::get_if<std::shared_ptr<Closure>>(&v_);
    if (p == nullptr) {
      throw RuntimeError(std::string("expected a function value, got ") + kind_name());
    }
    if (p->use_count() == 1) return std::move((*p)->captures);
    return (*p)->captures;
  }
  const std::shared_ptr<BlockBase>& block_ptr() const {
    if (const auto* p = std::get_if<std::shared_ptr<BlockBase>>(&v_)) return *p;
    throw RuntimeError(std::string("expected a data block, got ") + kind_name());
  }

  template <typename T>
  const T& block_as() const {
    const auto* typed = dynamic_cast<const TypedBlock<T>*>(block_ptr().get());
    if (typed == nullptr) {
      throw RuntimeError(std::string("data block holds ") + block_ptr()->type_name() +
                         ", not the requested type");
    }
    return typed->data;
  }

  /// Copy-on-write access: clones the block when the reference count
  /// shows other holders (the §2.1 contention rule). Returns whether a
  /// copy was made.
  template <typename T>
  T& block_mut(bool* copied = nullptr) {
    auto* slot = std::get_if<std::shared_ptr<BlockBase>>(&v_);
    if (slot == nullptr) {
      throw RuntimeError(std::string("expected a data block, got ") + kind_name());
    }
    if (slot->use_count() > 1) {
      *slot = (*slot)->clone();
      if (copied != nullptr) *copied = true;
    } else if (copied != nullptr) {
      *copied = false;
    }
    auto* typed = dynamic_cast<TypedBlock<T>*>(slot->get());
    if (typed == nullptr) {
      throw RuntimeError(std::string("data block holds ") + (*slot)->type_name() +
                         ", not the requested type");
    }
    return typed->data;
  }

  /// In-place mutable access for statically-proved sole consumers: no
  /// uniqueness check, no clone. Safe only when the sole-consumer
  /// analysis classified this use kUnique. `was_shared` reports whether
  /// the refcount would have forced a copy (counted as a skipped clone).
  template <typename T>
  T& block_mut_inplace(bool* was_shared = nullptr) {
    auto* slot = std::get_if<std::shared_ptr<BlockBase>>(&v_);
    if (slot == nullptr) {
      throw RuntimeError(std::string("expected a data block, got ") + kind_name());
    }
    if (was_shared != nullptr) *was_shared = slot->use_count() > 1;
    auto* typed = dynamic_cast<TypedBlock<T>*>(slot->get());
    if (typed == nullptr) {
      throw RuntimeError(std::string("data block holds ") + (*slot)->type_name() +
                         ", not the requested type");
    }
    return typed->data;
  }

  /// Truthiness (shared with the optimizer): NULL, 0, and 0.0 are false.
  bool truthy() const {
    switch (kind()) {
      case Kind::kNull: return false;
      case Kind::kInt: return std::get<int64_t>(v_) != 0;
      case Kind::kFloat: return std::get<double>(v_) != 0.0;
      default: return true;
    }
  }

  const char* kind_name() const {
    switch (kind()) {
      case Kind::kNull: return "NULL";
      case Kind::kInt: return "int";
      case Kind::kFloat: return "float";
      case Kind::kString: return "string";
      case Kind::kBlock: return "block";
      case Kind::kTuple: return "tuple";
      case Kind::kClosure: return "closure";
    }
    return "?";
  }

  /// Render for debugging / the print operator.
  std::string to_display_string() const;

  /// Deep structural equality (blocks compare by identity; tuples
  /// element-wise). Used by tests.
  friend bool deep_equal(const Value& a, const Value& b);

  static Value from_const(const ConstValue& c) {
    if (std::holds_alternative<std::monostate>(c)) return Value();
    if (const auto* i = std::get_if<int64_t>(&c)) return of(*i);
    if (const auto* d = std::get_if<double>(&c)) return of(*d);
    return of(std::get<std::string>(c));
  }

 private:
  using Storage = std::variant<std::monostate, int64_t, double,
                               std::shared_ptr<const std::string>,
                               std::shared_ptr<BlockBase>, std::shared_ptr<MultiValue>,
                               std::shared_ptr<Closure>>;
  explicit Value(Storage v) : v_(std::move(v)) {}
  Storage v_;
};

bool deep_equal(const Value& a, const Value& b);

}  // namespace delirium
