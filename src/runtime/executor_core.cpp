#include "src/runtime/executor_core.h"

#include <cstring>
#include <string_view>

namespace delirium {

// ---------------------------------------------------------------------------
// Environment overrides shared by both executors
// ---------------------------------------------------------------------------

void apply_exec_env_overrides(ExecConfig& config) {
  config.enable_tracing = env_flag("DELIRIUM_TRACE", config.enable_tracing);
  config.trace_capacity = static_cast<size_t>(
      env_int("DELIRIUM_TRACE_CAPACITY", static_cast<int64_t>(config.trace_capacity), 1,
              int64_t{1} << 32));
  config.activation_pool = env_flag("DELIRIUM_ACTIVATION_POOL", config.activation_pool);
  config.cost_hints = env_flag("DELIRIUM_COST_HINTS", config.cost_hints);
  const size_t current_affinity = static_cast<size_t>(config.affinity);
  config.affinity = static_cast<AffinityMode>(
      env_choice("DELIRIUM_AFFINITY", {"none", "operator", "data"}, current_affinity));
  if (const auto spec = env_raw("DELIRIUM_TOPOLOGY"); spec.has_value()) {
    config.topology = parse_topology(*spec, "DELIRIUM_TOPOLOGY");
  }
  config.locality_scheduling = env_flag("DELIRIUM_LOCALITY", config.locality_scheduling);
}

// ---------------------------------------------------------------------------
// ActivationPool
// ---------------------------------------------------------------------------

namespace {
#ifndef NDEBUG
constexpr std::byte kPoolPoison{0xDD};
/// How far into a retired object the poison extends: enough to catch a
/// stale write without touching the whole 16 KiB class on every free.
constexpr size_t kPoisonLimit = 64;

/// Reset-on-reuse check: the poison written at deallocate must be
/// intact, or something wrote through a retired activation.
void check_poison(const void* node, size_t cls_bytes) {
  const std::byte* p = static_cast<const std::byte*>(node);
  for (size_t i = sizeof(void*); i < std::min(cls_bytes, kPoisonLimit); ++i) {
    assert(p[i] == kPoolPoison && "stale write to a pooled object detected on reuse");
  }
}
#endif

/// Registry of live pools keyed by (pointer, generation), consulted
/// when a thread magazine must flush nodes to a pool it is no longer
/// bound to: an absent entry means the nodes point into freed chunks
/// and are simply dropped. The generation disambiguates a new pool
/// constructed at a dead pool's address. Leaked on purpose so
/// thread-exit flushes stay valid during static teardown.
std::mutex& pool_registry_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<std::pair<ActivationPool*, uint64_t>>& pool_registry() {
  static auto* pools = new std::vector<std::pair<ActivationPool*, uint64_t>>;
  return *pools;
}

uint64_t next_pool_id() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

ActivationPool::ActivationPool() : id_(next_pool_id()) {
  std::lock_guard<std::mutex> lock(pool_registry_mu());
  pool_registry().emplace_back(this, id_);
}

ActivationPool::~ActivationPool() {
  std::lock_guard<std::mutex> lock(pool_registry_mu());
  auto& pools = pool_registry();
  pools.erase(std::remove(pools.begin(), pools.end(), std::make_pair(this, id_)),
              pools.end());
}

ActivationPool::TlsCache::~TlsCache() { flush_all(*this); }

int ActivationPool::size_class(size_t bytes) {
  if (bytes == 0) bytes = 1;
  size_t cls_bytes = kMinClassBytes;
  for (size_t cls = 0; cls < kNumClasses; ++cls, cls_bytes <<= 1) {
    if (bytes <= cls_bytes) return static_cast<int>(cls);
  }
  return -1;  // larger than the biggest class: global heap
}

ActivationPool::TlsCache& ActivationPool::bound_cache() {
  thread_local TlsCache cache;
  if (cache.owner != this || cache.owner_id != id_) {
    flush_all(cache);
    cache.owner = this;
    cache.owner_id = id_;
  }
  return cache;
}

void* ActivationPool::allocate(size_t bytes) {
  const int cls = enabled_ ? size_class(bytes) : -1;
  if (cls < 0) {
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }
  const size_t cls_bytes = kMinClassBytes << static_cast<size_t>(cls);
  TlsCache& cache = bound_cache();
  if (FreeNode* node = cache.free[cls]; node != nullptr) {
    cache.free[cls] = node->next;
    --cache.count[cls];
#ifndef NDEBUG
    check_poison(node, cls_bytes);
#endif
    pooled_.fetch_add(1, std::memory_order_relaxed);
    return node;
  }
  return refill_and_allocate(cache, cls, cls_bytes);
}

void* ActivationPool::refill_and_allocate(TlsCache& cache, int cls, size_t cls_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (FreeNode* node = free_[cls]; node != nullptr) {
    free_[cls] = node->next;
    // Tow a batch of recycled objects into the magazine while we hold
    // the lock, so the next kRefillBatch-1 allocations stay lock-free.
    uint32_t moved = 0;
    while (moved + 1 < kRefillBatch && free_[cls] != nullptr) {
      FreeNode* extra = free_[cls];
      free_[cls] = extra->next;
      extra->next = cache.free[cls];
      cache.free[cls] = extra;
      ++moved;
    }
    cache.count[cls] += moved;
#ifndef NDEBUG
    check_poison(node, cls_bytes);
#endif
    pooled_.fetch_add(1, std::memory_order_relaxed);
    return node;
  }
  // Nothing to recycle anywhere: carve exactly one fresh object, so the
  // pooled/allocated split stays an honest recycle-vs-fresh count.
  if (chunk_used_ + cls_bytes > kChunkBytes) {
    chunks_.push_back(std::make_unique<std::byte[]>(kChunkBytes));
    chunk_used_ = 0;
  }
  void* p = chunks_.back().get() + chunk_used_;
  chunk_used_ += cls_bytes;
  allocated_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void ActivationPool::deallocate(void* p, size_t bytes) noexcept {
  const int cls = enabled_ ? size_class(bytes) : -1;
  if (cls < 0) {
    ::operator delete(p);
    return;
  }
#ifndef NDEBUG
  const size_t cls_bytes = kMinClassBytes << static_cast<size_t>(cls);
  std::memset(static_cast<std::byte*>(p) + sizeof(FreeNode*), static_cast<int>(kPoolPoison),
              std::min(cls_bytes, kPoisonLimit) - sizeof(FreeNode*));
#endif
  TlsCache& cache = bound_cache();
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = cache.free[cls];
  cache.free[cls] = node;
  if (++cache.count[cls] >= kCacheCap) flush_half(cache, cls);
}

void ActivationPool::flush_half(TlsCache& cache, int cls) noexcept {
  FreeNode* batch = nullptr;
  uint32_t moved = 0;
  while (moved < kCacheCap / 2 && cache.free[cls] != nullptr) {
    FreeNode* node = cache.free[cls];
    cache.free[cls] = node->next;
    node->next = batch;
    batch = node;
    ++moved;
  }
  cache.count[cls] -= moved;
  std::lock_guard<std::mutex> lock(mu_);
  while (batch != nullptr) {
    FreeNode* node = batch;
    batch = node->next;
    node->next = free_[cls];
    free_[cls] = node;
  }
}

void ActivationPool::flush_all(TlsCache& cache) noexcept {
  ActivationPool* owner = cache.owner;
  const uint64_t owner_id = cache.owner_id;
  cache.owner = nullptr;
  cache.owner_id = 0;
  if (owner == nullptr) return;
  std::lock_guard<std::mutex> registry_lock(pool_registry_mu());
  const auto& pools = pool_registry();
  if (std::find(pools.begin(), pools.end(), std::make_pair(owner, owner_id)) ==
      pools.end()) {
    // The owner died: its chunks (and these nodes) are already freed.
    cache.free.fill(nullptr);
    cache.count.fill(0);
    return;
  }
  std::lock_guard<std::mutex> lock(owner->mu_);
  for (size_t cls = 0; cls < kNumClasses; ++cls) {
    while (cache.free[cls] != nullptr) {
      FreeNode* node = cache.free[cls];
      cache.free[cls] = node->next;
      node->next = owner->free_[cls];
      owner->free_[cls] = node;
    }
    cache.count[cls] = 0;
  }
}

// ---------------------------------------------------------------------------
// StatCounters
// ---------------------------------------------------------------------------

void StatCounters::reset() {
  activations_created.store(0);
  // live_activations is a gauge (activations alive right now), not a
  // per-run counter — it survives the reset.
  peak_live_activations.store(0);
  nodes_executed.store(0);
  operator_invocations.store(0);
  cow_copies.store(0);
  cow_skipped.store(0);
  remote_block_moves.store(0);
  remote_bytes_pulled.store(0);
  operator_ticks.store(0);
  sched_local_enqueues.store(0);
  sched_injected_enqueues.store(0);
  sched_steals.store(0);
  sched_failed_steals.store(0);
  sched_local_steals.store(0);
  sched_remote_steals.store(0);
  sched_parks.store(0);
  sched_wakeups.store(0);
  sched_hint_promotions.store(0);
  sched_cost_promotions.store(0);
  faults_raised.store(0);
  faults_injected.store(0);
  retries.store(0);
  retries_exhausted.store(0);
  items_purged.store(0);
  watchdog_fires.store(0);
  instances_admitted.store(0);
  instances_completed.store(0);
  instances_faulted.store(0);
  instances_budget_killed.store(0);
  instances_shed.store(0);
}

void StatCounters::snapshot(RunStats& out) const {
  out.activations_created = activations_created.load();
  out.peak_live_activations = peak_live_activations.load();
  out.nodes_executed = nodes_executed.load();
  out.operator_invocations = operator_invocations.load();
  out.cow_copies = cow_copies.load();
  out.cow_skipped = cow_skipped.load();
  out.remote_block_moves = remote_block_moves.load();
  out.remote_bytes_pulled = remote_bytes_pulled.load();
  out.operator_ticks = operator_ticks.load();
  out.sched_local_enqueues = sched_local_enqueues.load();
  out.sched_injected_enqueues = sched_injected_enqueues.load();
  out.sched_steals = sched_steals.load();
  out.sched_failed_steals = sched_failed_steals.load();
  out.sched_local_steals = sched_local_steals.load();
  out.sched_remote_steals = sched_remote_steals.load();
  out.sched_parks = sched_parks.load();
  out.sched_wakeups = sched_wakeups.load();
  out.sched_hint_promotions = sched_hint_promotions.load();
  out.sched_cost_promotions = sched_cost_promotions.load();
  out.faults_raised = faults_raised.load();
  out.faults_injected = faults_injected.load();
  out.retries = retries.load();
  out.retries_exhausted = retries_exhausted.load();
  out.items_purged = items_purged.load();
  out.watchdog_fires = watchdog_fires.load();
  out.instances_admitted = instances_admitted.load();
  out.instances_completed = instances_completed.load();
  out.instances_faulted = instances_faulted.load();
  out.instances_budget_killed = instances_budget_killed.load();
  out.instances_shed = instances_shed.load();
}

// ---------------------------------------------------------------------------
// Shared run-driver helpers
// ---------------------------------------------------------------------------

int smallest_fault_index(const std::vector<FaultInfo>& faults) {
  if (faults.empty()) return -1;
  size_t best = 0;
  for (size_t i = 1; i < faults.size(); ++i) {
    if (fault_before(faults[i], faults[best])) best = i;
  }
  return static_cast<int>(best);
}

std::string build_deadlock_message(bool simulated, const std::string& stranded) {
  std::string out = simulated ? "simulated " : "";
  out +=
      "program finished without producing a result (a value was never "
      "delivered — dataflow deadlock)\nstranded activations:\n";
  out += stranded;
  return out;
}

std::string build_watchdog_message(const std::string& budget_text,
                                   const std::string& busy_section,
                                   const std::string& stranded,
                                   const std::string& instance_text) {
  // `instance_text` names the instance the watchdog fired for (manager
  // mode); empty in the single-run path, keeping that message
  // byte-identical to what it was before instances existed.
  return "watchdog: no result within " + budget_text + "; cancelling run" + instance_text +
         "\n" + busy_section + "stranded activations:\n" + stranded;
}

}  // namespace delirium
