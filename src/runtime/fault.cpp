#include "src/runtime/fault.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

#include "src/support/env.h"

namespace delirium {

namespace {

const char* kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::kConst: return "const";
    case NodeKind::kParam: return "param";
    case NodeKind::kOperator: return "operator";
    case NodeKind::kTupleMake: return "package";
    case NodeKind::kTupleGet: return "decompose";
    case NodeKind::kMakeClosure: return "closure";
    case NodeKind::kCall: return "call";
    case NodeKind::kCallClosure: return "call-closure";
    case NodeKind::kIfDispatch: return "if";
    case NodeKind::kReturn: return "return";
    case NodeKind::kParMap: return "parmap";
    case NodeKind::kFused: return "fused";
  }
  return "?";
}

uint64_t parse_u64(std::string_view text, const std::string& clause) {
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("fault spec: bad number '" + std::string(text) +
                                "' in clause '" + clause + "'");
  }
  return value;
}

}  // namespace

std::string FaultInfo::render() const {
  std::string out;
  if (stall) {
    out = "operator '" + op + "' stalled";
  } else if (injected) {
    out = "injected fault in operator '" + op + "'";
  } else {
    out = "operator '" + op + "' faulted";
  }
  out += " in template '" + tmpl + "' (node " + std::to_string(node) + ", seq " +
         std::to_string(seq);
  if (!location.empty()) out += ", " + location;
  out += "): " + message;
  if (!stack.empty()) out += "\ncoordination stack:\n" + stack;
  return out;
}

bool fault_before(const FaultInfo& a, const FaultInfo& b) {
  if (a.seq != b.seq) return a.seq < b.seq;
  if (a.node != b.node) return a.node < b.node;
  return a.message < b.message;
}

std::string exception_message(std::exception_ptr ep) {
  if (ep == nullptr) return "unknown error";
  try {
    std::rethrow_exception(std::move(ep));
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception type";
  }
}

std::string fault_node_label(const Node& n) {
  if (!n.op_name.empty()) return n.op_name;
  if (!n.debug_label.empty()) return n.debug_label;
  return kind_name(n.kind);
}

std::string fault_node_location(const Node& n) { return fault_range_location(n.range); }

std::string fault_range_location(const SourceRange& range) {
  if (range.begin.offset == 0 && range.end.offset == 0) return "";
  return "bytes " + std::to_string(range.begin.offset) + ".." +
         std::to_string(range.end.offset);
}

std::string render_stranded(std::vector<StrandedActivation> acts, size_t limit) {
  if (acts.empty()) return "  (no live activations)\n";
  std::sort(acts.begin(), acts.end(),
            [](const StrandedActivation& a, const StrandedActivation& b) {
              if (a.instance != b.instance) return a.instance < b.instance;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.tmpl < b.tmpl;
            });
  std::string out;
  size_t shown = 0;
  for (const StrandedActivation& a : acts) {
    if (shown == limit) {
      out += "  ... and " + std::to_string(acts.size() - shown) + " more activation(s)\n";
      break;
    }
    out += "  [seq " + std::to_string(a.seq) + "] template '" + a.tmpl + "'";
    if (!a.program.empty()) {
      out += " (instance " + std::to_string(a.instance) + ": '" + a.program + "')";
    }
    if (a.partial.empty()) {
      out += ": no partially-fed nodes";
    } else {
      out += ":";
      for (const StrandedNode& n : a.partial) {
        out += " node " + std::to_string(n.node) + " ('" + n.label + "') missing " +
               std::to_string(n.missing) + " of " + std::to_string(n.total) + " input(s);";
      }
      out.pop_back();  // trailing ';'
    }
    if (a.never_fed > 0) {
      out += "; " + std::to_string(a.never_fed) + " node(s) never fed";
    }
    out += "\n";
    ++shown;
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  plan.spec_ = spec;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) {
      if (pos > spec.size()) break;  // trailing empty segment
      throw std::invalid_argument("fault spec: empty clause");
    }
    FaultRule rule;
    bool have_action = false;
    size_t field_pos = 0;
    int field_index = 0;
    while (field_pos <= clause.size()) {
      const size_t colon = std::min(clause.find(':', field_pos), clause.size());
      const std::string field = clause.substr(field_pos, colon - field_pos);
      field_pos = colon + 1;
      if (field_index == 0) {
        if (field.empty()) {
          throw std::invalid_argument("fault spec: clause '" + clause +
                                      "' has no operator name");
        }
        rule.op = field;
        rule.wildcard = field == "*";
      } else if (field == "throw") {
        rule.action = FaultAction::kThrow;
        have_action = true;
      } else if (field == "corrupt") {
        rule.action = FaultAction::kCorrupt;
        have_action = true;
      } else if (field.rfind("stall=", 0) == 0) {
        rule.action = FaultAction::kStall;
        rule.stall_ns = static_cast<int64_t>(parse_u64(field.substr(6), clause));
        have_action = true;
      } else if (field.rfind("nth=", 0) == 0) {
        rule.nth = parse_u64(field.substr(4), clause);
        if (rule.nth == 0) {
          throw std::invalid_argument("fault spec: nth is 1-based in clause '" + clause +
                                      "'");
        }
      } else if (field.rfind("every=", 0) == 0) {
        rule.every = parse_u64(field.substr(6), clause);
        if (rule.every == 0) {
          throw std::invalid_argument("fault spec: every=0 in clause '" + clause + "'");
        }
      } else if (field.rfind("seed=", 0) == 0) {
        rule.seed = parse_u64(field.substr(5), clause);
      } else if (field.rfind("fail_attempts=", 0) == 0) {
        rule.fail_attempts = static_cast<uint32_t>(parse_u64(field.substr(14), clause));
      } else {
        throw std::invalid_argument("fault spec: unknown field '" + field + "' in clause '" +
                                    clause + "'");
      }
      ++field_index;
      if (field_pos > clause.size()) break;
    }
    if (!have_action) {
      throw std::invalid_argument("fault spec: clause '" + clause +
                                  "' needs throw, stall=<ns>, or corrupt");
    }
    if (rule.nth != 0 && rule.every != 0) {
      throw std::invalid_argument("fault spec: clause '" + clause +
                                  "' mixes nth= and every= selectors");
    }
    plan.rules_.push_back(std::move(rule));
    if (pos > spec.size()) break;
  }
  if (plan.rules_.empty()) {
    throw std::invalid_argument("fault spec: no clauses in '" + spec + "'");
  }
  return plan;
}

std::shared_ptr<const FaultPlan> FaultPlan::from_env() {
  const std::optional<std::string> env = env_raw("DELIRIUM_INJECT_FAULTS");
  if (!env.has_value()) return nullptr;
  try {
    return std::make_shared<const FaultPlan>(parse(*env));
  } catch (const std::invalid_argument& e) {
    // Name the source: a spec set through the environment fails far from
    // where it was typed, and the bare parse error doesn't say which
    // knob to fix (docs/CLI.md).
    throw EnvError(std::string("DELIRIUM_INJECT_FAULTS: ") + e.what());
  }
}

FaultDecision FaultPlan::decide(std::string_view op, bool op_pure, uint64_t seq,
                                uint32_t node, uint64_t arrival, uint32_t attempt) const {
  for (const FaultRule& rule : rules_) {
    if (rule.wildcard) {
      // The wildcard deliberately matches only pure operators: they are
      // the retry-eligible set, so a blanket plan with retries enabled
      // leaves program results unchanged (the CI fault-injection job
      // depends on this).
      if (!op_pure) continue;
    } else if (rule.op != op) {
      continue;
    }
    if (attempt >= rule.fail_attempts) continue;
    if (rule.nth != 0 && arrival + 1 != rule.nth) continue;
    if (rule.every != 0 &&
        fault_seq_child(rule.seed ^ seq, node, 0xfa17u) % rule.every != 0) {
      continue;
    }
    return FaultDecision{rule.action, rule.stall_ns};
  }
  return FaultDecision{};
}

}  // namespace delirium
