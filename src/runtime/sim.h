// Virtual-time execution of coordination graphs.
//
// The paper evaluates on 4-processor Crays and a Sequent; this
// reproduction machine has a single core, so wall-clock speedups are
// unobtainable. SimRuntime substitutes a deterministic discrete-event
// scheduler: every operator *executes for real* (values are exact), its
// cost is measured, and a virtual P-processor machine is simulated with
// the same ready-queue policy as the threaded runtime (three priority
// levels, FIFO within a level, affinity preferences). Speedup figures
// are ratios of virtual makespans.
//
// The simulated-NUMA model (§9.3) is also virtual here: touching a block
// homed on another processor adds a per-KiB cost to the node instead of
// spinning, which makes the Butterfly-style experiments cheap and exact.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/template.h"
#include "src/runtime/registry.h"
#include "src/runtime/runtime.h"  // AffinityMode, NodeTiming, RunStats
#include "src/runtime/value.h"

namespace delirium {

/// Per-operator costs, one entry per invocation in occurrence order.
/// Recorded by a calibration run and replayed so that speedup curves are
/// deterministic (measured costs vary run to run on a busy host).
struct CostTable {
  std::unordered_map<std::string, std::vector<Ticks>> per_op;
};

struct SimConfig {
  int num_procs = 4;
  bool use_priorities = true;
  /// Tail-call continuation forwarding (ablation; see RuntimeConfig).
  bool enable_tail_calls = true;
  AffinityMode affinity = AffinityMode::kNone;
  /// Virtual cost, per KiB, of an operator reading a block homed on
  /// another virtual processor. The block then migrates.
  int64_t remote_penalty_ns_per_kb = 0;
  /// Virtual cost of every non-operator node (scheduling, tuple and
  /// closure plumbing, subgraph expansion). Roughly what the threaded
  /// runtime pays per node.
  int64_t node_overhead_ns = 300;
  /// Record per-operator virtual timings.
  bool enable_node_timing = false;
  /// When set, the i-th invocation of each operator costs what the table
  /// says instead of its measured wall time (operators still execute for
  /// real — values are exact either way).
  const CostTable* replay_costs = nullptr;
  /// When set, measured operator costs are appended here.
  CostTable* record_costs = nullptr;
  /// Honor kUnique consume-class annotations (see RuntimeConfig).
  bool unique_fastpath = true;
  /// Automatic retries of faulting retry-eligible operators; same
  /// eligibility rule as RuntimeConfig::max_retries and the same
  /// DELIRIUM_RETRIES override. Backoff is charged in virtual time, so
  /// recovery is fully deterministic here.
  int max_retries = 0;
  /// Base virtual-time delay before a retry, doubled per attempt.
  int64_t retry_backoff_ns = 1000;
  /// Watchdog: virtual-time budget in nanoseconds; 0 disables. The
  /// simulated clock is deterministic (with replayed costs), so a
  /// watchdog fire here reproduces exactly.
  int64_t watchdog_budget_ns = 0;
  /// Cancel on the first captured fault instead of draining (see
  /// RuntimeConfig::fail_fast).
  bool fail_fast = false;
  /// Record the trace event stream under the same schema as the threaded
  /// runtime (tracing.h), with *exact virtual* timestamps. The simulator
  /// is single-threaded, so events go into one growable vector — no
  /// rings, no overwrites. Honors the same DELIRIUM_TRACE override.
  bool enable_tracing = false;
};

struct SimResult {
  Value result;
  Ticks makespan = 0;              // virtual ns from start to final result
  Ticks total_busy = 0;            // sum of per-processor busy time
  std::vector<Ticks> proc_busy;    // per-processor busy time
  RunStats stats;
  std::vector<NodeTiming> timings; // operator label + measured cost
  /// Trace event stream (empty unless enable_tracing), in record order,
  /// timestamped in exact virtual nanoseconds.
  std::vector<TraceEvent> trace_events;
};

/// Single-threaded simulator. Stateless across runs except for nothing —
/// construct per experiment.
class SimRuntime {
 public:
  SimRuntime(const OperatorRegistry& registry, SimConfig config = {});

  /// Execute the entry point under virtual time.
  SimResult run(const CompiledProgram& program, std::vector<Value> args = {});
  SimResult run_function(const CompiledProgram& program, const std::string& name,
                         std::vector<Value> args = {});

  /// Trace of the most recent run (empty unless enable_tracing). Unlike
  /// SimResult::trace_events this survives a faulting run, mirroring
  /// Runtime::trace_events() so fault recovery is comparable across the
  /// two executors.
  const std::vector<TraceEvent>& trace_events() const { return last_trace_; }

 private:
  struct Impl;
  const OperatorRegistry& registry_;
  SimConfig config_;
  std::vector<TraceEvent> last_trace_;
};

/// Run the program `runs` times on one virtual processor and return the
/// per-invocation median operator costs. Replaying this table makes the
/// speedup experiments deterministic.
CostTable calibrate_costs(const OperatorRegistry& registry, const CompiledProgram& program,
                          int runs = 3);

}  // namespace delirium
