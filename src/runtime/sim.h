// Virtual-time execution of coordination graphs.
//
// The paper evaluates on 4-processor Crays and a Sequent; this
// reproduction machine has a single core, so wall-clock speedups are
// unobtainable. SimRuntime substitutes a deterministic discrete-event
// scheduler: every operator *executes for real* (values are exact), its
// cost is measured, and a virtual P-processor machine is simulated with
// the same ready-queue policy as the threaded runtime (three priority
// levels, FIFO within a level, affinity preferences). Speedup figures
// are ratios of virtual makespans.
//
// All graph semantics (activation lifecycle, CoW, fault capture/retry,
// trace emission) come from the shared ExecutorCore (executor_core.h);
// this header adds only the virtual machine: the discrete-event clock,
// the simulated P-processor ready queue, and virtual-time charging of
// stalls, backoff, and the simulated-NUMA penalties of §9.3 (touching a
// block homed on another processor adds a per-KiB cost to the node
// instead of spinning, which makes the Butterfly-style experiments cheap
// and exact).
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/template.h"
#include "src/runtime/executor_core.h"
#include "src/runtime/registry.h"
#include "src/runtime/value.h"

namespace delirium {

/// Per-operator costs, one entry per invocation in occurrence order.
/// Recorded by a calibration run and replayed so that speedup curves are
/// deterministic (measured costs vary run to run on a busy host).
struct CostTable {
  std::unordered_map<std::string, std::vector<Ticks>> per_op;
};

/// Virtual-machine knobs. Everything shared with the threaded runtime
/// (priorities, tail calls, affinity, CoW fast path, retries, tracing,
/// the activation pool, ...) lives in the ExecConfig base
/// (executor_core.h) so a knob exists in both executors by construction.
struct SimConfig : ExecConfig {
  int num_procs = 4;
  /// Virtual cost of every non-operator node (scheduling, tuple and
  /// closure plumbing, subgraph expansion). Roughly what the threaded
  /// runtime pays per node.
  int64_t node_overhead_ns = 300;
  /// When set, the i-th invocation of each operator costs what the table
  /// says instead of its measured wall time (operators still execute for
  /// real — values are exact either way).
  const CostTable* replay_costs = nullptr;
  /// When set, measured operator costs are appended here.
  CostTable* record_costs = nullptr;
  /// When set, *every* invocation of an operator costs the mapped value
  /// (ops absent from the map cost `fixed_cost_default_ns`) — measured
  /// wall time never reaches the virtual clock, so the whole run is
  /// byte-deterministic. This is how `delc --plan` replays a calibration
  /// profile (docs/PROFILING.md). Takes precedence over replay_costs.
  const std::unordered_map<std::string, Ticks>* fixed_costs = nullptr;
  /// Cost of operators missing from `fixed_costs` (ignored when
  /// fixed_costs is null).
  Ticks fixed_cost_default_ns = 1000;
  /// Watchdog: virtual-time budget in nanoseconds; 0 disables. The
  /// simulated clock is deterministic (with replayed costs), so a
  /// watchdog fire here reproduces exactly. (The threaded runtime's
  /// budget is wall-clock milliseconds — see RuntimeConfig.)
  int64_t watchdog_budget_ns = 0;

  /// Machine-model preset approximating a small cluster of shared-memory
  /// shards: MemoryTopology::cluster()'s four domains, each holding
  /// `procs_per_shard` virtual processors, with a steep inter-domain
  /// transfer cost. Values stay identical to any other topology — only
  /// virtual makespans (and the locality counters) move.
  static SimConfig sharded_cluster(int procs_per_shard = 2);
};

struct SimResult {
  Value result;
  Ticks makespan = 0;              // virtual ns from start to final result
  Ticks total_busy = 0;            // sum of per-processor busy time
  std::vector<Ticks> proc_busy;    // per-processor busy time
  RunStats stats;
  std::vector<NodeTiming> timings; // operator label + measured cost
  /// Trace event stream (empty unless enable_tracing), in record order,
  /// timestamped in exact virtual nanoseconds.
  std::vector<TraceEvent> trace_events;
};

/// One instance of a multi-instance batch (the virtual-time leg of the
/// InstanceManager — see instance.h and docs/ROBUSTNESS.md "Isolation
/// model"). All instances share one virtual machine; each is isolated:
/// its faults, budgets, and cancellation never touch a sibling.
struct SimInstanceRequest {
  const CompiledProgram* program = nullptr;
  std::string function;  // empty = the program's entry template
  std::vector<Value> args;
  uint64_t max_activations = 0;  // 0 = unlimited
  int64_t time_budget_ns = 0;    // virtual ns from arrival; 0 = none
  Ticks arrival = 0;             // virtual arrival time of the request
};

struct SimInstanceOutcome {
  bool have_value = false;
  Value value;
  /// Fault winner under fault_before() — byte-identical (render()) to
  /// what a solo run of the same program reports.
  bool have_fault = false;
  FaultInfo fault;
  bool budget_exceeded = false;
  /// Diagnostic text when not a value: the fault render, the budget
  /// message, or the deadlock dump.
  std::string message;
  Ticks finish = 0;   // virtual time of the last event of this instance
  Ticks latency = 0;  // finish - arrival
  uint64_t activations = 0;
};

struct SimBatchResult {
  std::vector<SimInstanceOutcome> outcomes;  // one per request, same order
  Ticks makespan = 0;  // virtual completion time of the whole batch
  RunStats stats;
};

/// Single-threaded simulator. Stateless across runs except for nothing —
/// construct per experiment.
class SimRuntime {
 public:
  SimRuntime(const OperatorRegistry& registry, SimConfig config = {});

  /// Execute the entry point under virtual time.
  SimResult run(const CompiledProgram& program, std::vector<Value> args = {});
  SimResult run_function(const CompiledProgram& program, const std::string& name,
                         std::vector<Value> args = {});

  /// Execute a batch of independent instances concurrently on one
  /// virtual machine, with per-instance fault containment and budgets.
  /// Nothing throws per instance — every outcome (value, fault, budget
  /// kill, deadlock) is reported structurally in the batch result.
  /// Fully deterministic given (requests, config): cost replay and
  /// nth= injection selectors share per-operator arrival counters across
  /// the batch, so use structural every= selectors for cross-checking
  /// against solo runs.
  SimBatchResult run_instances(const std::vector<SimInstanceRequest>& requests);

  /// Trace of the most recent run (empty unless enable_tracing). Unlike
  /// SimResult::trace_events this survives a faulting run, mirroring
  /// Runtime::trace_events() so fault recovery is comparable across the
  /// two executors.
  const std::vector<TraceEvent>& trace_events() const { return last_trace_; }

  /// Counters of the most recent run. Like Runtime::last_stats() this
  /// survives a faulting run (SimResult::stats does not), so fault
  /// accounting is comparable across the two executors.
  const RunStats& last_stats() const { return last_stats_; }

 private:
  struct Impl;
  const OperatorRegistry& registry_;
  SimConfig config_;
  std::vector<TraceEvent> last_trace_;
  RunStats last_stats_;
};

/// Run the program `runs` times on one virtual processor and return the
/// per-invocation median operator costs. Replaying this table makes the
/// speedup experiments deterministic.
CostTable calibrate_costs(const OperatorRegistry& registry, const CompiledProgram& program,
                          int runs = 3);

}  // namespace delirium
