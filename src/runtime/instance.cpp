#include "src/runtime/instance.h"

#include <chrono>
#include <utility>

namespace delirium {

const char* instance_outcome_name(InstanceOutcome o) {
  switch (o) {
    case InstanceOutcome::kCompleted: return "completed";
    case InstanceOutcome::kFaulted: return "faulted";
    case InstanceOutcome::kBudgetExhausted: return "budget_exhausted";
    case InstanceOutcome::kOverload: return "overload";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

InstanceManager::InstanceManager(Runtime& rt, InstanceManagerConfig config)
    : rt_(&rt), config_(config), run_lock_(rt.run_mu_) {
  // The session is one "run" from the machine's point of view: counters,
  // timings, and trace rings reset here and are published at destruction,
  // so last_stats()/trace_events() describe the whole session.
  rt_->reset_run_accumulators();
  rt_->resolve_run_policy();
  rt_->run_start_ticks_ = now_ticks();
  rt_->busy_tracking_.store(config_.track_busy_workers, std::memory_order_relaxed);
}

InstanceManager::InstanceManager(SimRuntime& sim, InstanceManagerConfig config)
    : sim_(&sim), config_(config) {}

InstanceManager::~InstanceManager() {
  if (sim_ != nullptr) {
    // Run anything still queued so every submitted instance has a result
    // and the counters are final.
    flush_sim();
    return;
  }
  {
    // Wait for every admitted instance to finalize. Cancellation purges
    // the queues, so this completes unless an operator is truly wedged —
    // the same contract as a plain run()'s drain.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      for (const auto& s : slots_) {
        if (!s->done) return false;
      }
      return true;
    });
    stop_monitor_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  rt_->busy_tracking_.store(false, std::memory_order_relaxed);
  rt_->finish_run_bookkeeping();
}

// ---------------------------------------------------------------------------
// Admission + launch
// ---------------------------------------------------------------------------

InstanceBudget InstanceManager::effective_budget(const InstanceBudget& b) const {
  InstanceBudget out = b;
  if (out.max_activations == 0) out.max_activations = config_.default_budget.max_activations;
  if (out.time_budget_ns == 0) out.time_budget_ns = config_.default_budget.time_budget_ns;
  return out;
}

uint64_t InstanceManager::submit(InstanceRequest req) {
  uint64_t id = 0;
  Slot* slot = nullptr;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(std::make_unique<Slot>());
    id = slots_.size();
    slot = slots_.back().get();
    slot->result.id = id;
    // Reject-newest shed: occupancy counts admitted-but-not-collected
    // instances and changes only on submit()/wait(), so this decision is
    // a pure function of the caller's call sequence — deterministic
    // regardless of how fast workers drain.
    if (config_.admission_capacity > 0 && occupancy_ >= config_.admission_capacity) {
      shed = true;
      slot->done = true;
      slot->result.outcome = InstanceOutcome::kOverload;
      slot->result.error = "admission control: capacity " +
                           std::to_string(config_.admission_capacity) +
                           " reached; instance " + std::to_string(id) + " shed";
      ++counters_.shed;
    } else {
      ++occupancy_;
      ++counters_.admitted;
      ++counters_.live;
    }
  }
  if (shed) {
    if (rt_ != nullptr) {
      rt_->counters_.instances_shed.fetch_add(1, std::memory_order_relaxed);
    }
    return id;
  }
  if (rt_ != nullptr) {
    launch_threaded(slot, id, std::move(req));
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    sim_pending_.emplace_back(id, std::move(req));
  }
  return id;
}

void InstanceManager::launch_threaded(Slot* slot, uint64_t id, InstanceRequest req) {
  rt_->counters_.instances_admitted.fetch_add(1, std::memory_order_relaxed);
  const InstanceBudget budget = effective_budget(req.budget);
  auto rs = std::make_unique<Runtime::RunState>();
  Runtime::RunState* prs = rs.get();
  prs->manager = this;
  prs->instance_id = id;
  prs->max_activations = budget.max_activations;
  prs->time_budget_ns = budget.time_budget_ns;
  prs->submit_ticks = now_ticks();
  // +1 submission token: holds the instance open across the root spawn so
  // a transient outstanding == 0 mid-spawn cannot finalize it early.
  prs->outstanding.store(1, std::memory_order_relaxed);

  // Resolve the entry template before publishing the RunState: once it is
  // in the slot the budget monitor may read program_name concurrently.
  const Template* tmpl = nullptr;
  std::string spawn_error;
  try {
    if (req.program == nullptr) throw RuntimeError("instance has no program");
    prs->program_name =
        req.function.empty() ? req.program->entry_template().name : req.function;
    tmpl = req.program->find(prs->program_name);
    if (tmpl == nullptr) {
      throw RuntimeError("program has no function named '" + prs->program_name + "'");
    }
  } catch (const std::exception& e) {
    spawn_error = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    slot->rs = std::move(rs);
    if (budget.time_budget_ns > 0) ensure_monitor_locked();
  }

  if (spawn_error.empty()) {
    try {
      // Every root shares fault_seq_root(), so this instance's fault
      // reports are byte-identical to its solo run.
      prs->root = rt_->spawn(req.program, tmpl, std::move(req.args), nullptr, 0,
                             fault_seq_root(), 0, prs);
    } catch (const std::exception& e) {
      spawn_error = e.what();
    }
  }
  if (!spawn_error.empty()) {
    {
      std::lock_guard<std::mutex> lock(prs->mu);
      prs->spawn_error = std::move(spawn_error);
    }
    // Drain whatever a partial spawn may have enqueued.
    rt_->cancel_run(prs);
  }

  // Release the submission token; if the instance already drained (or the
  // spawn failed before enqueuing anything) this thread finalizes it.
  if (prs->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    on_instance_drained(prs);
  }
}

// ---------------------------------------------------------------------------
// Finalize (threaded; runs on whichever thread drained the instance)
// ---------------------------------------------------------------------------

void InstanceManager::on_instance_drained(Runtime::RunState* rs) {
  InstanceResult res;
  res.id = rs->instance_id;
  res.activations = rs->activations.load(std::memory_order_relaxed);
  bool deadlocked = false;
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->finalized = true;
    // Outcome priority mirrors the simulator's run_batch and the solo
    // run(): a budget trip beats the faults it caused; the drain winner
    // (smallest deterministic sequence id) beats a delivered result.
    const int best = smallest_fault_index(rs->faults);
    if (rs->budget_fired) {
      res.outcome = InstanceOutcome::kBudgetExhausted;
      res.error = rs->budget_message;
    } else if (best >= 0) {
      res.outcome = InstanceOutcome::kFaulted;
      res.have_fault = true;
      res.fault = std::move(rs->faults[static_cast<size_t>(best)]);
      res.error = res.fault.render();
    } else if (!rs->spawn_error.empty()) {
      res.outcome = InstanceOutcome::kFaulted;
      res.error = rs->spawn_error;
    } else if (rs->have_result) {
      res.outcome = InstanceOutcome::kCompleted;
      res.value = std::move(rs->result);
    } else {
      res.outcome = InstanceOutcome::kFaulted;
      deadlocked = true;
    }
  }
  if (deadlocked) {
    // Dump before releasing the root: the stranded tree is alive only
    // while the root holds it.
    res.error =
        build_deadlock_message(/*simulated=*/false,
                               render_stranded(rt_->collect_stranded(rs)));
  }
  res.latency_ns = now_ticks() - rs->submit_ticks;
  rs->root.reset();

  switch (res.outcome) {
    case InstanceOutcome::kCompleted:
      rt_->counters_.instances_completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case InstanceOutcome::kBudgetExhausted:
      rt_->counters_.instances_budget_killed.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      rt_->counters_.instances_faulted.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot* slot = slots_[res.id - 1].get();
    --counters_.live;
    switch (res.outcome) {
      case InstanceOutcome::kCompleted: ++counters_.completed; break;
      case InstanceOutcome::kBudgetExhausted: ++counters_.budget_killed; break;
      default: ++counters_.faulted; break;
    }
    latencies_.push_back(res.latency_ns);
    slot->result = std::move(res);
    slot->done = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Wall-time budget monitor (threaded)
// ---------------------------------------------------------------------------

void InstanceManager::ensure_monitor_locked() {
  if (monitor_.joinable()) return;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void InstanceManager::monitor_loop() {
  const auto poll =
      std::chrono::milliseconds(config_.budget_poll_ms > 0 ? config_.budget_poll_ms : 1);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_monitor_) {
    monitor_cv_.wait_for(lock, poll);
    if (stop_monitor_) return;
    // Collect candidates under mu_, then release it: the per-instance
    // work below takes rs->mu, and finalize takes rs->mu then mu_ —
    // holding both here would invert that order. The RunStates are owned
    // by slots_, which live until the manager is destroyed, so the raw
    // pointers stay valid after the unlock.
    std::vector<Runtime::RunState*> candidates;
    for (const auto& s : slots_) {
      if (s->rs != nullptr && !s->done && s->rs->time_budget_ns > 0) {
        candidates.push_back(s->rs.get());
      }
    }
    lock.unlock();
    const Ticks now = now_ticks();
    for (Runtime::RunState* rs : candidates) {
      if (now - rs->submit_ticks < rs->time_budget_ns) continue;
      if (rs->budget_tripped.exchange(true)) continue;
      // Build the diagnostic before taking rs->mu: the stranded dump
      // takes ledger shard locks, which must never nest under rs->mu.
      std::string msg = "instance budget: no result within " +
                        std::to_string(rs->time_budget_ns / 1000000) + " ms (instance " +
                        std::to_string(rs->instance_id) + ": '" + rs->program_name +
                        "'); cancelling instance\n";
      if (config_.track_busy_workers) {
        msg += "busy workers:\n" + rt_->dump_busy_workers();
      }
      msg += "stranded activations:\n" + render_stranded(rt_->collect_stranded(rs));
      {
        std::lock_guard<std::mutex> g(rs->mu);
        // The instance may have drained between the exchange and here; a
        // finalized instance keeps its real outcome.
        if (!rs->finalized) {
          rs->budget_fired = true;
          rs->budget_message = std::move(msg);
        }
      }
      rt_->cancel_run(rs);
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Sim mode: batch flush
// ---------------------------------------------------------------------------

void InstanceManager::flush_sim() {
  std::unique_lock<std::mutex> lock(mu_);
  if (sim_pending_.empty()) return;
  std::vector<std::pair<uint64_t, InstanceRequest>> pending = std::move(sim_pending_);
  sim_pending_.clear();

  std::vector<SimInstanceRequest> reqs;
  reqs.reserve(pending.size());
  for (auto& [id, req] : pending) {
    (void)id;
    SimInstanceRequest sr;
    sr.program = req.program;
    sr.function = std::move(req.function);
    sr.args = std::move(req.args);
    const InstanceBudget budget = effective_budget(req.budget);
    sr.max_activations = budget.max_activations;
    sr.time_budget_ns = budget.time_budget_ns;
    sr.arrival = req.arrival;
    reqs.push_back(std::move(sr));
  }
  SimBatchResult batch = sim_->run_instances(reqs);
  // Each flush is one virtual machine; stats() reflects the most recent
  // batch's machine counters (the instances_* tallies stay cumulative).
  sim_stats_ = batch.stats;

  for (size_t i = 0; i < pending.size(); ++i) {
    Slot* slot = slots_[pending[i].first - 1].get();
    SimInstanceOutcome& o = batch.outcomes[i];
    InstanceResult& r = slot->result;
    r.activations = o.activations;
    r.latency_ns = o.latency;
    if (o.budget_exceeded) {
      r.outcome = InstanceOutcome::kBudgetExhausted;
      r.error = std::move(o.message);
      ++counters_.budget_killed;
    } else if (o.have_value) {
      r.outcome = InstanceOutcome::kCompleted;
      r.value = std::move(o.value);
      ++counters_.completed;
    } else {
      r.outcome = InstanceOutcome::kFaulted;
      r.have_fault = o.have_fault;
      if (o.have_fault) r.fault = std::move(o.fault);
      r.error = std::move(o.message);
      ++counters_.faulted;
    }
    --counters_.live;
    latencies_.push_back(o.latency);
    slot->done = true;
  }
  lock.unlock();
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

InstanceResult InstanceManager::wait(uint64_t id) {
  if (sim_ != nullptr) flush_sim();
  std::unique_lock<std::mutex> lock(mu_);
  if (id == 0 || id > slots_.size()) {
    throw RuntimeError("no instance with id " + std::to_string(id));
  }
  Slot* slot = slots_[id - 1].get();
  cv_.wait(lock, [slot] { return slot->done; });
  if (!slot->collected) {
    slot->collected = true;
    // Collecting releases the admission slot (shed instances never held
    // one). Capacity frees only here — on a caller action — so shed
    // decisions stay deterministic.
    if (slot->result.outcome != InstanceOutcome::kOverload) --occupancy_;
  }
  return slot->result;
}

std::vector<InstanceResult> InstanceManager::wait_all() {
  size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = slots_.size();
  }
  std::vector<InstanceResult> out;
  out.reserve(n);
  for (uint64_t id = 1; id <= n; ++id) out.push_back(wait(id));
  return out;
}

InstanceCounters InstanceManager::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<int64_t> InstanceManager::latencies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latencies_;
}

RunStats InstanceManager::stats() const {
  RunStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sim_ != nullptr) out = sim_stats_;
  }
  if (rt_ != nullptr) rt_->snapshot_core_stats(out);
  // The manager's tallies are authoritative: the machine never sees shed
  // requests, and a sim session may span several batches.
  std::lock_guard<std::mutex> lock(mu_);
  out.instances_admitted = counters_.admitted;
  out.instances_completed = counters_.completed;
  out.instances_faulted = counters_.faulted;
  out.instances_budget_killed = counters_.budget_killed;
  out.instances_shed = counters_.shed;
  return out;
}

}  // namespace delirium
