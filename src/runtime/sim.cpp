#include "src/runtime/sim.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string_view>
#include <unordered_set>

#include "src/support/clock.h"

namespace delirium {

namespace {
constexpr Ticks kNever = std::numeric_limits<Ticks>::max();
}  // namespace

struct SimRuntime::Impl {
  struct Activation;

  /// Virtual-time join for kParMap: the package is delivered when the
  /// last child returns, at the latest child completion time.
  struct Collector {
    std::vector<Value> results;
    int remaining = 0;
    Ticks latest = 0;
    std::shared_ptr<Activation> cont_act;
    uint32_t cont_node = 0;
  };

  struct Activation {
    Activation(Impl* sim_in, const Template* tmpl_in, uint64_t seq_in)
        : sim(sim_in), tmpl(tmpl_in), seq(seq_in), slots(tmpl_in->value_slots),
          pending(tmpl_in->nodes.size()), ready_at(tmpl_in->nodes.size(), 0) {
      for (size_t i = 0; i < tmpl->nodes.size(); ++i) pending[i] = tmpl->nodes[i].num_inputs;
      ++sim->stats.activations_created;
      ++sim->live;
      sim->stats.peak_live_activations =
          std::max<uint64_t>(sim->stats.peak_live_activations, sim->live);
      sim->live_acts.insert(this);
    }
    ~Activation() {
      sim->live_acts.erase(this);
      --sim->live;
    }

    Impl* sim;
    const Template* tmpl;
    /// Deterministic structural sequence id (see fault.h) — computed by
    /// the same formula as the threaded runtime, so fault reports match
    /// byte for byte across the two executors.
    uint64_t seq;
    std::vector<Value> slots;
    std::vector<int32_t> pending;
    std::vector<Ticks> ready_at;  // per node: when its last input arrived
    std::shared_ptr<Activation> cont_act;
    uint32_t cont_node = 0;
    std::shared_ptr<Collector> collector;
    uint32_t collector_index = 0;
  };

  struct ReadyItem {
    std::shared_ptr<Activation> act;
    uint32_t node = 0;
    Ticks ready = 0;
    uint64_t seq = 0;      // FIFO within a priority level
    int priority = 0;
    int preferred = -1;    // affinity target processor
  };

  const OperatorRegistry& registry;
  SimConfig config;
  const CompiledProgram* program = nullptr;

  // Declared before `ready`: activation destructors unregister from
  // live_acts and update live/stats, so these must outlive any queued
  // activation if a run aborts with items still enqueued.
  uint64_t live = 0;
  RunStats stats;
  std::unordered_set<Activation*> live_acts;

  std::vector<ReadyItem> ready;  // unsorted; selection scans (small queues)
  std::vector<Ticks> proc_avail;
  std::vector<Ticks> proc_busy;
  uint64_t next_seq = 0;
  std::vector<NodeTiming> timings;
  Value final_result;
  bool have_result = false;
  Ticks final_time = 0;

  // Fault handling (docs/ROBUSTNESS.md) — the single-threaded mirror of
  // Runtime's machinery: no locks, virtual-time backoff and watchdog.
  std::vector<FaultInfo> faults;
  std::shared_ptr<const FaultPlan> plan;
  int max_retries = 0;
  bool cancelled = false;
  bool watchdog_fired = false;
  std::string watchdog_message;

  // Tracing mirror (tracing.h): same kinds, same per-kind arg meanings,
  // exact virtual timestamps, one growable vector (single-threaded — no
  // rings needed). Sequence numbers are the record order.
  std::vector<TraceEvent> trace;
  uint64_t trace_seq = 0;
  bool tracing = false;

  void trace_event(Ticks ts, int proc, TraceEventKind kind, int32_t op = -1,
                   int64_t arg = 0) {
    if (!tracing) return;
    TraceEvent e;
    e.ts = ts;
    e.seq = trace_seq++;
    e.arg = arg;
    e.op = op;
    e.worker = static_cast<int16_t>(proc);
    e.kind = kind;
    trace.push_back(e);
  }

  void record_fault(FaultInfo f, Ticks ts = 0, int proc = -1, int32_t op_index = -1) {
    ++stats.faults_raised;
    trace_event(ts, proc, TraceEventKind::kFaultRaise, op_index,
                static_cast<int64_t>(f.seq));
    faults.push_back(std::move(f));
    if (config.fail_fast) cancelled = true;
  }

  std::vector<StrandedActivation> collect_stranded() {
    std::vector<StrandedActivation> out;
    for (Activation* a : live_acts) {
      StrandedActivation sa;
      sa.seq = a->seq;
      sa.tmpl = a->tmpl->name;
      for (uint32_t i = 0; i < a->tmpl->nodes.size(); ++i) {
        const Node& node = a->tmpl->nodes[i];
        if (node.num_inputs == 0) continue;
        const int32_t missing = a->pending[i];
        if (missing <= 0) continue;
        if (missing == node.num_inputs) {
          ++sa.never_fed;
        } else {
          sa.partial.push_back(
              StrandedNode{i, fault_node_label(node), missing, node.num_inputs});
        }
      }
      if (!sa.partial.empty() || sa.never_fed > 0) out.push_back(std::move(sa));
    }
    return out;
  }

  Impl(const OperatorRegistry& r, const SimConfig& c) : registry(r), config(c) {
    proc_avail.assign(config.num_procs, 0);
    proc_busy.assign(config.num_procs, 0);
  }

  void enqueue(const std::shared_ptr<Activation>& act, uint32_t node, Ticks when) {
    const Node& n = act->tmpl->nodes[node];
    // Mirror the threaded scheduler's counter schema: the simulator has
    // one virtual ready queue, so every enqueue is "local" and the
    // steal/park/wakeup counters stay zero.
    ++stats.sched_local_enqueues;
    ReadyItem item;
    item.act = act;
    item.node = node;
    item.ready = when;
    item.seq = next_seq++;
    item.priority = config.use_priorities ? static_cast<int>(n.priority) : 0;
    if (config.affinity == AffinityMode::kOperator && n.kind == NodeKind::kOperator &&
        n.op_index >= 0) {
      item.preferred = op_last_proc.size() > static_cast<size_t>(n.op_index)
                           ? op_last_proc[n.op_index]
                           : -1;
    } else if (config.affinity == AffinityMode::kData && n.kind == NodeKind::kOperator) {
      size_t best_bytes = 0;
      for (uint16_t i = 0; i < n.num_inputs; ++i) {
        const Value& v = act->slots[n.input_offset + i];
        if (v.kind() == Value::Kind::kBlock) {
          const auto& blk = v.block_ptr();
          const int home = blk->home_worker.load(std::memory_order_relaxed);
          if (home >= 0 && blk->byte_size() > best_bytes) {
            best_bytes = blk->byte_size();
            item.preferred = home;
          }
        }
      }
    }
    ready.push_back(std::move(item));
  }

  std::vector<int> op_last_proc;  // operator-affinity memory
  std::unordered_map<std::string, size_t> op_occurrence;  // for cost replay

  void deliver(const std::shared_ptr<Activation>& act, uint32_t node, Value v, Ticks when) {
    const Node& n = act->tmpl->nodes[node];
    const size_t k = n.consumers.size();

    bool any_get = false;
    for (const PortRef& c : n.consumers) {
      any_get = any_get || act->tmpl->nodes[c.node].kind == NodeKind::kTupleGet;
    }
    if (any_get) {
      const MultiValue& mv = v.as_tuple();
      std::vector<std::pair<uint32_t, Value>> extracted;
      for (size_t i = 0; i < k; ++i) {
        const PortRef& c = n.consumers[i];
        const Node& consumer = act->tmpl->nodes[c.node];
        if (consumer.kind == NodeKind::kTupleGet) {
          if (consumer.tuple_index >= mv.elems.size()) {
            throw RuntimeError("decomposition in '" + act->tmpl->name + "' needs element " +
                               std::to_string(consumer.tuple_index) + " of a " +
                               std::to_string(mv.elems.size()) + "-element package");
          }
          extracted.emplace_back(c.node, mv.elems[consumer.tuple_index]);
        } else {
          write_slot(act, c, v, when);
        }
      }
      v = Value();
      for (auto& [get_node, element] : extracted) {
        deliver(act, get_node, std::move(element), when);
      }
      return;
    }
    for (size_t i = 0; i < k; ++i) {
      const PortRef& c = n.consumers[i];
      Value copy = (i + 1 == k) ? std::move(v) : v;
      write_slot(act, c, std::move(copy), when);
    }
  }

  void write_slot(const std::shared_ptr<Activation>& act, const PortRef& c, Value v,
                  Ticks when) {
    const Node& consumer = act->tmpl->nodes[c.node];
    act->slots[consumer.input_offset + c.port] = std::move(v);
    act->ready_at[c.node] = std::max(act->ready_at[c.node], when);
    if (--act->pending[c.node] == 0) enqueue(act, c.node, act->ready_at[c.node]);
  }

  std::shared_ptr<Activation> spawn(const Template* tmpl, std::vector<Value> params,
                                    std::shared_ptr<Activation> cont_act, uint32_t cont_node,
                                    Ticks when, uint64_t act_seq) {
    if (params.size() != tmpl->num_params) {
      throw RuntimeError("activation of '" + tmpl->name + "' expects " +
                         std::to_string(tmpl->num_params) + " values, got " +
                         std::to_string(params.size()));
    }
    auto act = std::make_shared<Activation>(this, tmpl, act_seq);
    act->cont_act = std::move(cont_act);
    act->cont_node = cont_node;
    for (uint32_t i = 0; i < tmpl->nodes.size(); ++i) {
      const Node& n = tmpl->nodes[i];
      switch (n.kind) {
        case NodeKind::kConst: deliver(act, i, Value::from_const(n.literal), when); break;
        case NodeKind::kParam: deliver(act, i, std::move(params[n.param_index]), when); break;
        default:
          if (n.num_inputs == 0) enqueue(act, i, when);
          break;
      }
    }
    return act;
  }

  /// Pick the next (processor, item) pair under the ready-queue policy and
  /// remove the item from the queue. Returns false when nothing is ready.
  bool select(int& proc_out, size_t& item_out, Ticks& start_out) {
    if (ready.empty()) return false;
    // Earliest-free processor; if it would idle past the earliest ready
    // time, it starts then.
    int p = 0;
    for (int i = 1; i < config.num_procs; ++i) {
      if (proc_avail[i] < proc_avail[p]) p = i;
    }
    Ticks t = proc_avail[p];
    Ticks min_ready = kNever;
    for (const ReadyItem& item : ready) min_ready = std::min(min_ready, item.ready);
    t = std::max(t, min_ready);

    // Among items ready at <= t: priority level first; within a level,
    // prefer items bound to this processor, then unbound, then steal —
    // FIFO inside each class. Mirrors Runtime::pop_item.
    size_t best = ready.size();
    int best_rank = std::numeric_limits<int>::max();
    uint64_t best_seq = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < ready.size(); ++i) {
      const ReadyItem& item = ready[i];
      if (item.ready > t) continue;
      int affinity_class = 1;  // unbound
      if (item.preferred == p) affinity_class = 0;
      else if (item.preferred >= 0) affinity_class = 2;
      const int rank = item.priority * 3 + affinity_class;
      if (rank < best_rank || (rank == best_rank && item.seq < best_seq)) {
        best = i;
        best_rank = rank;
        best_seq = item.seq;
      }
    }
    if (best == ready.size()) return false;  // defensive; cannot happen
    proc_out = p;
    item_out = best;
    start_out = t;
    return true;
  }

  Ticks execute(const ReadyItem& item, int proc, Ticks start) {
    Activation& act = *item.act;
    const Node& n = act.tmpl->nodes[item.node];
    ++stats.nodes_executed;

    auto take_input = [&](uint16_t port) -> Value {
      return std::move(act.slots[n.input_offset + port]);
    };
    auto take_all_inputs = [&]() {
      std::vector<Value> values;
      values.reserve(n.num_inputs);
      for (uint16_t i = 0; i < n.num_inputs; ++i) values.push_back(take_input(i));
      return values;
    };

    Ticks cost = config.node_overhead_ns;
    switch (n.kind) {
      case NodeKind::kConst:
      case NodeKind::kParam:
      case NodeKind::kTupleGet:
        throw RuntimeError("internal: node kind should not reach the simulated queue");

      case NodeKind::kOperator: {
        const OperatorDef& def = registry.at(static_cast<size_t>(n.op_index));
        const size_t occurrence = op_occurrence[def.info.name]++;
        std::vector<Value> args = take_all_inputs();
        // Virtual NUMA: remote blocks cost time and migrate.
        if (config.remote_penalty_ns_per_kb > 0) {
          for (Value& v : args) {
            if (v.kind() != Value::Kind::kBlock) continue;
            BlockBase& blk = *v.block_ptr();
            const int home = blk.home_worker.load(std::memory_order_relaxed);
            if (home >= 0 && home != proc) {
              cost += config.remote_penalty_ns_per_kb *
                      (static_cast<int64_t>(blk.byte_size() / 1024) + 1);
              ++stats.remote_block_moves;
            }
            blk.home_worker.store(proc, std::memory_order_relaxed);
          }
        }
        ++stats.operator_invocations;
        const std::span<const ConsumeClass> classes =
            config.unique_fastpath ? std::span<const ConsumeClass>(n.input_classes)
                                   : std::span<const ConsumeClass>();

        // Retry eligibility and pre-image snapshot: same rules as the
        // threaded runtime (see Runtime::execute_node), with backoff
        // charged to the virtual clock instead of slept.
        int budget = 0;
        if (max_retries > 0) {
          bool eligible = true;
          for (size_t i = 0; i < args.size(); ++i) {
            if (def.is_destructive(i) &&
                !(i < n.input_classes.size() &&
                  n.input_classes[i] == ConsumeClass::kUnique)) {
              eligible = false;
              break;
            }
          }
          if (eligible) budget = max_retries;
        }
        auto restore_from = [&def](const std::vector<Value>& from) {
          std::vector<Value> to;
          to.reserve(from.size());
          for (size_t i = 0; i < from.size(); ++i) {
            if (def.is_destructive(i) && from[i].kind() == Value::Kind::kBlock) {
              to.push_back(Value::of_block(from[i].block_ptr()->clone()));
            } else {
              to.push_back(from[i]);
            }
          }
          return to;
        };
        std::vector<Value> snapshot;
        if (budget > 0) snapshot = restore_from(args);

        Value result;
        bool ok = false;
        for (uint32_t attempt = 0;; ++attempt) {
          FaultDecision fd;
          if (plan != nullptr) {
            fd = plan->decide(def.info.name, def.info.pure, act.seq, item.node,
                              occurrence, attempt);
            if (fd.action != FaultAction::kNone) ++stats.faults_injected;
          }
          bool injected = false;
          trace_event(start + cost, proc, TraceEventKind::kOpBegin, n.op_index, attempt);
          try {
            if (fd.action == FaultAction::kThrow) {
              injected = true;
              throw RuntimeError("injected fault (attempt " + std::to_string(attempt) +
                                 ")");
            }
            if (fd.action == FaultAction::kStall) cost += fd.stall_ns;
            const Ticks virtual_start = start + cost;
            const Ticks t0 = now_ticks();
            OpContext ctx(def, std::span<Value>(args), proc, classes);
            result = def.fn(ctx);
            Ticks measured = now_ticks() - t0;
            if (config.record_costs != nullptr) {
              config.record_costs->per_op[def.info.name].push_back(measured);
            }
            if (config.replay_costs != nullptr) {
              auto it = config.replay_costs->per_op.find(def.info.name);
              if (it != config.replay_costs->per_op.end() &&
                  occurrence < it->second.size()) {
                measured = it->second[occurrence];
              }
            }
            // Cost, timings, and CoW stats come from the successful
            // attempt only; failed attempts contribute their backoff.
            cost += measured;
            stats.operator_ticks += measured;
            stats.cow_copies += ctx.cow_copies();
            stats.cow_skipped += ctx.cow_skipped();
            if (config.enable_node_timing) {
              timings.push_back(NodeTiming{n.op_name, act.tmpl->name, measured, proc,
                                           static_cast<uint64_t>(timings.size()),
                                           virtual_start});
            }
            if (fd.action == FaultAction::kCorrupt) result = Value::tuple({});
            trace_event(start + cost, proc, TraceEventKind::kOpEnd, n.op_index, attempt);
            ok = true;
          } catch (...) {
            trace_event(start + cost, proc, TraceEventKind::kOpEnd, n.op_index, attempt);
            if (attempt < static_cast<uint32_t>(budget)) {
              ++stats.retries;
              trace_event(start + cost, proc, TraceEventKind::kRetry, n.op_index,
                          attempt + 1);
              const int shift = attempt < 20 ? static_cast<int>(attempt) : 20;
              cost += config.retry_backoff_ns > 0 ? (config.retry_backoff_ns << shift) : 0;
              args = restore_from(snapshot);
              continue;
            }
            if (budget > 0) ++stats.retries_exhausted;
            record_fault(make_fault(act, item.node, std::current_exception(), injected),
                         start + cost, proc, n.op_index);
          }
          break;
        }
        if (!ok) break;  // fault recorded; consumers starve deterministically
        if (config.affinity == AffinityMode::kOperator && n.op_index >= 0) {
          if (op_last_proc.size() <= static_cast<size_t>(n.op_index)) {
            op_last_proc.resize(registry.size(), -1);
          }
          op_last_proc[n.op_index] = proc;
        }
        if (result.kind() == Value::Kind::kBlock) {
          result.block_ptr()->home_worker.store(proc, std::memory_order_relaxed);
        }
        deliver(item.act, item.node, std::move(result), start + cost);
        break;
      }

      case NodeKind::kTupleMake:
        deliver(item.act, item.node, Value::tuple(take_all_inputs()), start + cost);
        break;

      case NodeKind::kMakeClosure: {
        const Template* target = program->templates[n.target_template].get();
        deliver(item.act, item.node, Value::closure(target, take_all_inputs()), start + cost);
        break;
      }

      case NodeKind::kCall: {
        const Template* target = program->templates[n.target_template].get();
        spawn_child(item, target, take_all_inputs(), start + cost);
        break;
      }

      case NodeKind::kCallClosure: {
        Value callee = take_input(0);
        const Template* target = callee.as_closure().tmpl;
        const uint32_t given = n.num_inputs - 1u;
        if (given != target->explicit_params()) {
          throw RuntimeError("closure '" + target->name + "' expects " +
                             std::to_string(target->explicit_params()) +
                             " argument(s), got " + std::to_string(given));
        }
        std::vector<Value> params;
        std::vector<Value> captures = callee.take_closure_captures();
        params.reserve(given + captures.size());
        for (uint16_t i = 1; i < n.num_inputs; ++i) params.push_back(take_input(i));
        for (Value& cap : captures) params.push_back(std::move(cap));
        callee = Value();
        spawn_child(item, target, std::move(params), start + cost);
        break;
      }

      case NodeKind::kIfDispatch: {
        const bool cond = take_input(0).truthy();
        Value then_clo = take_input(1);
        Value else_clo = take_input(2);
        Value chosen = cond ? std::move(then_clo) : std::move(else_clo);
        then_clo = Value();
        else_clo = Value();
        const Template* target = chosen.as_closure().tmpl;
        std::vector<Value> params = chosen.take_closure_captures();
        chosen = Value();
        spawn_child(item, target, std::move(params), start + cost);
        break;
      }

      case NodeKind::kParMap: {
        Value fn = take_input(0);
        Value pkg = take_input(1);
        const Template* target = fn.as_closure().tmpl;
        if (target->explicit_params() != 1) {
          throw RuntimeError("parmap: '" + target->name +
                             "' must take exactly one argument, takes " +
                             std::to_string(target->explicit_params()));
        }
        const size_t count = pkg.as_tuple().elems.size();
        if (count == 0) {
          deliver(item.act, item.node, Value::tuple({}), start + cost);
          break;
        }
        std::vector<std::vector<Value>> params_list;
        params_list.reserve(count);
        {
          const MultiValue& mv = pkg.as_tuple();
          const Closure& c = fn.as_closure();
          for (size_t i = 0; i < count; ++i) {
            std::vector<Value> params;
            params.reserve(1 + c.captures.size());
            params.push_back(mv.elems[i]);
            for (const Value& cap : c.captures) params.push_back(cap);
            params_list.push_back(std::move(params));
          }
        }
        pkg = Value();
        fn = Value();
        auto collector = std::make_shared<Collector>();
        collector->results.resize(count);
        collector->remaining = static_cast<int>(count);
        if (n.is_tail) {
          collector->cont_act = item.act->cont_act;
          collector->cont_node = item.act->cont_node;
        } else {
          collector->cont_act = item.act;
          collector->cont_node = item.node;
        }
        for (size_t i = 0; i < count; ++i) {
          auto child = spawn(target, std::move(params_list[i]), nullptr, 0, start + cost,
                             fault_seq_child(act.seq, item.node,
                                             static_cast<uint32_t>(i) + 1));
          child->collector = collector;
          child->collector_index = static_cast<uint32_t>(i);
        }
        break;
      }

      case NodeKind::kReturn: {
        Value v = take_input(0);
        if (act.collector != nullptr) {
          Collector& col = *act.collector;
          col.results[act.collector_index] = std::move(v);
          col.latest = std::max(col.latest, start + cost);
          if (--col.remaining == 0) {
            Value package = Value::tuple(std::move(col.results));
            if (col.cont_act != nullptr) {
              deliver(col.cont_act, col.cont_node, std::move(package), col.latest);
            } else {
              final_result = std::move(package);
              have_result = true;
              final_time = col.latest;
            }
          }
        } else if (act.cont_act != nullptr) {
          deliver(act.cont_act, act.cont_node, std::move(v), start + cost);
        } else {
          final_result = std::move(v);
          have_result = true;
          final_time = start + cost;
        }
        break;
      }
    }
    return cost;
  }

  void spawn_child(const ReadyItem& item, const Template* target, std::vector<Value> params,
                   Ticks when) {
    const Node& n = item.act->tmpl->nodes[item.node];
    // Same structural child-id formula as Runtime::spawn_child.
    const uint64_t child_seq = fault_seq_child(item.act->seq, item.node, 0);
    if (n.is_tail && config.enable_tail_calls) {
      // Forward the whole continuation, including any parmap collector.
      auto child = spawn(target, std::move(params), item.act->cont_act,
                         item.act->cont_node, when, child_seq);
      child->collector = item.act->collector;
      child->collector_index = item.act->collector_index;
    } else {
      spawn(target, std::move(params), item.act, item.node, when, child_seq);
    }
  }

  SimResult run(const CompiledProgram& prog, const Template* tmpl, std::vector<Value> args) {
    program = &prog;
    tracing = config.enable_tracing;
    // Fault policy: registry plan beats the environment spec; retries
    // honor the same DELIRIUM_RETRIES override as the threaded runtime.
    plan = registry.fault_plan() != nullptr ? registry.fault_plan()
                                            : FaultPlan::from_env();
    max_retries = config.max_retries;
    if (const char* env = std::getenv("DELIRIUM_RETRIES")) {
      max_retries = static_cast<int>(std::strtol(env, nullptr, 10));
    }
    if (max_retries < 0) max_retries = 0;

    // The root shared_ptr is held across the drain so the deadlock and
    // watchdog diagnostics can walk the stranded activation tree.
    auto root = spawn(tmpl, std::move(args), nullptr, 0, 0, fault_seq_root());
    while (true) {
      if (cancelled) {
        // Fast cancellation (fail_fast fault or watchdog): purge the
        // virtual ready queue instead of running it.
        stats.items_purged += ready.size();
        if (tracing) {
          for (const ReadyItem& it : ready) {
            const Node& n = it.act->tmpl->nodes[it.node];
            trace_event(it.ready, -1, TraceEventKind::kPurge,
                        n.kind == NodeKind::kOperator ? n.op_index : -1);
          }
        }
        ready.clear();
        break;
      }
      int proc;
      size_t index;
      Ticks start;
      if (!select(proc, index, start)) break;
      // Virtual-time watchdog: work would start past the budget with no
      // result delivered — fully deterministic, unlike wall-clock stall
      // detection in the threaded runtime.
      if (config.watchdog_budget_ns > 0 && !watchdog_fired &&
          start > config.watchdog_budget_ns) {
        watchdog_fired = true;
        ++stats.watchdog_fires;
        trace_event(config.watchdog_budget_ns, -1, TraceEventKind::kWatchdog, -1,
                    config.watchdog_budget_ns);
        watchdog_message =
            "watchdog: no result within " + std::to_string(config.watchdog_budget_ns) +
            " virtual ns; cancelling run\nstranded activations:\n" +
            render_stranded(collect_stranded());
        cancelled = true;
        continue;
      }
      ReadyItem item = std::move(ready[index]);
      ready.erase(ready.begin() + static_cast<long>(index));
      Ticks cost = config.node_overhead_ns;
      try {
        cost = execute(item, proc, start);
      } catch (...) {
        // Coordination-level failure (operator faults are captured with
        // richer context inside execute's kOperator case).
        const Node& n = item.act->tmpl->nodes[item.node];
        record_fault(make_fault(*item.act, item.node, std::current_exception()),
                     start, proc, n.kind == NodeKind::kOperator ? n.op_index : -1);
      }
      proc_avail[proc] = start + cost;
      proc_busy[proc] += cost;
    }

    // Drain-time error selection: identical to Runtime::run_function —
    // the smallest deterministic sequence id wins, and a fault beats a
    // delivered result.
    if (!faults.empty()) {
      size_t best = 0;
      for (size_t i = 1; i < faults.size(); ++i) {
        if (fault_before(faults[i], faults[best])) best = i;
      }
      throw FaultError(std::move(faults[best]));
    }
    if (watchdog_fired) throw RuntimeError(watchdog_message);
    if (!have_result) {
      throw RuntimeError(
          "simulated program finished without producing a result (a value was "
          "never delivered — dataflow deadlock)\nstranded activations:\n" +
          render_stranded(collect_stranded()));
    }
    SimResult result;
    result.result = std::move(final_result);
    result.makespan = final_time;
    for (Ticks b : proc_busy) result.total_busy += b;
    result.proc_busy = proc_busy;
    result.stats = stats;
    result.timings = std::move(timings);
    result.trace_events = trace;  // Impl keeps its copy for faulting-run retrieval
    return result;
  }
};

SimRuntime::SimRuntime(const OperatorRegistry& registry, SimConfig config)
    : registry_(registry), config_(config) {
  if (config_.num_procs <= 0) config_.num_procs = 1;
  // Same environment override as the threaded runtime.
  if (const char* env = std::getenv("DELIRIUM_TRACE")) {
    config_.enable_tracing = std::string_view(env) != "0";
  }
}

SimResult SimRuntime::run(const CompiledProgram& program, std::vector<Value> args) {
  return run_function(program, program.entry_template().name, std::move(args));
}

SimResult SimRuntime::run_function(const CompiledProgram& program, const std::string& name,
                                   std::vector<Value> args) {
  const Template* tmpl = program.find(name);
  if (tmpl == nullptr) {
    throw RuntimeError("program has no function named '" + name + "'");
  }
  Impl impl(registry_, config_);
  try {
    SimResult result = impl.run(program, tmpl, std::move(args));
    last_trace_ = result.trace_events;
    return result;
  } catch (...) {
    // Keep the trace reachable across a faulting run, like
    // Runtime::trace_events().
    last_trace_ = std::move(impl.trace);
    throw;
  }
}

CostTable calibrate_costs(const OperatorRegistry& registry, const CompiledProgram& program,
                          int runs) {
  std::vector<CostTable> samples(std::max(runs, 1));
  for (CostTable& table : samples) {
    SimConfig config;
    config.num_procs = 1;
    config.record_costs = &table;
    SimRuntime sim(registry, config);
    sim.run(program);
  }
  // Per-invocation median across the calibration runs.
  CostTable merged;
  for (const auto& [op, costs] : samples[0].per_op) {
    std::vector<Ticks>& out = merged.per_op[op];
    out.resize(costs.size());
    for (size_t i = 0; i < costs.size(); ++i) {
      std::vector<Ticks> values;
      values.reserve(samples.size());
      for (const CostTable& table : samples) {
        auto it = table.per_op.find(op);
        if (it != table.per_op.end() && i < it->second.size()) values.push_back(it->second[i]);
      }
      std::sort(values.begin(), values.end());
      out[i] = values.empty() ? 0 : values[values.size() / 2];
    }
  }
  return merged;
}

}  // namespace delirium
