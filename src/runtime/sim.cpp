#include "src/runtime/sim.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_set>
#include <utility>

#include "src/support/clock.h"

namespace delirium {

namespace {
constexpr Ticks kNever = std::numeric_limits<Ticks>::max();
}  // namespace

/// The virtual MachineModel: a discrete-event P-processor simulator
/// plugged into the shared ExecutorCore. One Impl per run.
struct SimRuntime::Impl : ExecutorCore<SimRuntime::Impl> {
  // Re-exposed for SimRuntime::run_function's faulting-run snapshot.
  using ExecutorCore<SimRuntime::Impl>::snapshot_core_stats;

  struct ReadyItem {
    std::shared_ptr<Activation> act;
    uint32_t node = 0;
    Ticks ready = 0;
    uint64_t seq = 0;      // FIFO within a priority level
    int priority = 0;
    int preferred = -1;    // affinity target processor
  };

  /// Per-instance state, pointed to by Activation::run. A plain run is a
  /// batch of one (id 0, no budgets), which keeps the single-instance
  /// path byte-identical — there is exactly one code path.
  struct SimInstance {
    uint64_t id = 0;  // 1-based in batch mode; 0 = plain single run
    std::string program_name;
    Ticks arrival = 0;
    uint64_t max_activations = 0;  // 0 = unlimited
    int64_t time_budget_ns = 0;    // virtual ns from arrival; 0 = none

    // Fault handling (docs/ROBUSTNESS.md): capture/retry is the core's;
    // this machine adds virtual-time backoff and the budgets. All state
    // is instance-scoped, which is the whole containment story: a fault
    // or budget kill cancels only this instance's queued work.
    std::vector<FaultInfo> faults;
    bool cancelled = false;
    bool budget_fired = false;
    std::string budget_message;
    uint64_t activations = 0;
    bool have_result = false;
    Value result;
    Ticks finish = 0;      // when the final result was delivered
    Ticks last_event = 0;  // end of the last executed item
    std::string spawn_error;
    /// Held until outcomes are assembled so budget/deadlock dumps can
    /// still walk the stranded activation tree.
    std::shared_ptr<Activation> root;
  };

  SimConfig config;

  // Declared before `ready`: activation destructors unregister from
  // live_acts, so it must outlive any queued activation if a run aborts
  // with items still enqueued. (The pool and counters live in the base
  // subobject, which outlives every member.)
  std::unordered_set<Activation*> live_acts;

  std::vector<ReadyItem> ready;  // unsorted; selection scans (small queues)
  std::vector<Ticks> proc_avail;
  std::vector<Ticks> proc_busy;
  uint64_t next_seq = 0;
  std::vector<NodeTiming> timings;

  /// Some instance was cancelled with work possibly queued: the drive
  /// loop sweeps the ready queue (in queue order, so purge traces are
  /// deterministic) before the next selection.
  bool purge_pending = false;
  bool watchdog_fired = false;  // the *global* virtual watchdog
  std::string watchdog_message;
  std::vector<std::unique_ptr<SimInstance>> instances;

  // Tracing (tracing.h): same kinds, same per-kind arg meanings, exact
  // virtual timestamps, one growable vector (single-threaded — no rings
  // needed, trace_capacity is ignored). Sequence numbers are the record
  // order.
  std::vector<TraceEvent> trace;
  uint64_t trace_seq = 0;
  bool tracing = false;

  std::vector<int> op_last_proc;  // operator-affinity memory
  std::unordered_map<std::string, size_t> op_occurrence;  // for cost replay
  std::vector<uint32_t> domain_rr;  // per-domain RR cursor (deterministic)

  Impl(const OperatorRegistry& r, const SimConfig& c)
      : ExecutorCore<SimRuntime::Impl>(r), config(c) {
    init_exec(&config);
    proc_avail.assign(config.num_procs, 0);
    proc_busy.assign(config.num_procs, 0);
    if (topology().num_domains > 1) {
      domain_rr.assign(static_cast<size_t>(topology().num_domains), 0);
    }
  }

  void trace_event(Ticks ts, int proc, TraceEventKind kind, int32_t op = -1,
                   int64_t arg = 0) {
    if (!tracing) return;
    TraceEvent e;
    e.ts = ts;
    e.seq = trace_seq++;
    e.arg = arg;
    e.op = op;
    e.worker = static_cast<int16_t>(proc);
    e.kind = kind;
    trace.push_back(e);
  }

  void record_fault(SimInstance* si, FaultInfo f, Ticks ts = 0, int proc = -1,
                    int32_t op_index = -1) {
    counters_.faults_raised.fetch_add(1, std::memory_order_relaxed);
    trace_event(ts, proc, TraceEventKind::kFaultRaise, op_index,
                static_cast<int64_t>(f.seq));
    si->faults.push_back(std::move(f));
    if (config.fail_fast) {
      si->cancelled = true;
      purge_pending = true;
    }
  }

  /// Stranded dump over all live activations (`filter` null) or one
  /// instance's. Batch-mode entries are attributed to their instance.
  std::vector<StrandedActivation> collect_stranded(const SimInstance* filter = nullptr) {
    std::vector<StrandedActivation> out;
    for (Activation* a : live_acts) {
      const SimInstance* si = static_cast<const SimInstance*>(a->run);
      if (filter != nullptr && si != filter) continue;
      const size_t before = out.size();
      append_stranded(*a, out);
      if (si->id != 0) {
        for (size_t i = before; i < out.size(); ++i) {
          out[i].instance = si->id;
          out[i].program = si->program_name;
        }
      }
    }
    return out;
  }

  std::string instance_text(const SimInstance& si) const {
    return " (instance " + std::to_string(si.id) + ": '" + si.program_name + "')";
  }

  // -- MachineModel hooks (called by ExecutorCore) ---------------------------

  static constexpr bool kVirtualTime = true;

  Ticks node_base_cost() { return config.node_overhead_ns; }

  void enqueue_ready(const std::shared_ptr<Activation>& act, uint32_t node, Ticks when) {
    const Node& n = act->tmpl->nodes[node];
    // Mirror the threaded scheduler's counter schema: the simulator has
    // one virtual ready queue, so every enqueue is "local" and the
    // steal/park/wakeup counters stay zero.
    counters_.sched_local_enqueues.fetch_add(1, std::memory_order_relaxed);
    ReadyItem item;
    item.act = act;
    item.node = node;
    item.ready = when;
    item.seq = next_seq++;
    item.priority = queue_level(n);
    item.preferred = affinity_preference(*act, n);
    ready.push_back(std::move(item));
  }

  void deliver_final(void* run, Value v, Ticks when) {
    SimInstance* si = static_cast<SimInstance*>(run);
    si->result = std::move(v);
    si->have_result = true;
    si->finish = when;
  }

  void trace_from_core(int proc, Ticks ts, TraceEventKind kind, int32_t op, int64_t arg) {
    trace_event(ts, proc, kind, op, arg);
  }

  void record_fault_from_core(void* run, FaultInfo f, int32_t op_index, Ticks ts,
                              int proc) {
    record_fault(static_cast<SimInstance*>(run), std::move(f), ts, proc, op_index);
  }

  // Virtual NUMA pulls, injected stalls, and retry backoff are all
  // charged to the virtual clock instead of spun/slept — deterministic
  // and exact: the simulator charges precisely the topology's per-KiB +
  // migration penalty, whatever the domain pair.
  void charge_remote(int /*domain_from*/, int /*domain_to*/, int64_t /*bytes*/,
                     Ticks penalty_ns, Ticks& cost) {
    cost += penalty_ns;
  }
  void charge_stall(Ticks ns, Ticks& cost) { cost += ns; }
  void charge_backoff(Ticks ns, Ticks& cost) { cost += ns; }

  int pick_worker_in_domain(int domain, int home_worker) {
    // Same striping rule as Runtime::pick_worker_in_domain, but with a
    // plain cursor: the simulator is single-threaded, so placement stays
    // deterministic across runs.
    const int domains = topology().num_domains;
    if (domain < 0 || domains <= 1 || domain >= domains) return home_worker;
    const int members = (config.num_procs - domain + domains - 1) / domains;
    if (members <= 1) return home_worker;
    const uint32_t k = domain_rr[static_cast<size_t>(domain)]++;
    return domain + static_cast<int>(k % static_cast<uint32_t>(members)) * domains;
  }

  // No wall-clock watchdog here (the virtual one lives in the run loop).
  void busy_begin(int /*proc*/, const OperatorDef& /*def*/) {}
  void busy_end(int /*proc*/) {}

  // Operators always run under the cost clock: their measured (or
  // replayed) wall time *is* the virtual cost model.
  Ticks op_clock_begin() { return now_ticks(); }

  void op_note_success(Ticks t0, const OperatorDef& def, const Activation& act, int proc,
                       Ticks virtual_start, uint64_t occurrence, Ticks& cost) {
    Ticks measured = now_ticks() - t0;
    if (config.record_costs != nullptr) {
      config.record_costs->per_op[def.info.name].push_back(measured);
    }
    if (config.fixed_costs != nullptr) {
      const auto it = config.fixed_costs->find(def.info.name);
      measured = it != config.fixed_costs->end() ? it->second : config.fixed_cost_default_ns;
    } else if (config.replay_costs != nullptr) {
      auto it = config.replay_costs->per_op.find(def.info.name);
      if (it != config.replay_costs->per_op.end() && occurrence < it->second.size()) {
        measured = it->second[occurrence];
      }
    }
    cost += measured;
    counters_.operator_ticks.fetch_add(measured, std::memory_order_relaxed);
    if (config.enable_node_timing) {
      timings.push_back(NodeTiming{def.info.name, act.tmpl->name, measured, proc,
                                   static_cast<uint64_t>(timings.size()), virtual_start});
    }
  }

  uint64_t op_arrival(const OperatorDef& def, int /*op_index*/, bool /*has_plan*/) {
    // Counted unconditionally (unlike the threaded runtime): cost replay
    // needs the occurrence index even with no injection plan.
    return op_occurrence[def.info.name]++;
  }

  int last_affinity_worker(int op_index) {
    return op_last_proc.size() > static_cast<size_t>(op_index) ? op_last_proc[op_index]
                                                              : -1;
  }

  void note_affinity(int op_index, int proc) {
    if (op_last_proc.size() <= static_cast<size_t>(op_index)) {
      op_last_proc.resize(registry_.size(), -1);
    }
    op_last_proc[op_index] = proc;
  }

  void on_activation_created(Activation* act) {
    live_acts.insert(act);
    // Per-instance activation budget, counted only when something could
    // consume it (a budget is set, or a batch instance reports the
    // count). The trip message matches the threaded runtime's byte for
    // byte — the activation count is schedule-independent.
    SimInstance* si = static_cast<SimInstance*>(act->run);
    if (si->id == 0 && si->max_activations == 0) return;
    ++si->activations;
    if (si->max_activations > 0 && si->activations > si->max_activations &&
        !si->budget_fired) {
      si->budget_fired = true;
      si->budget_message = "instance budget: activation count exceeded " +
                           std::to_string(si->max_activations) + instance_text(*si) +
                           "; cancelling instance";
      si->cancelled = true;
      purge_pending = true;
    }
  }
  void on_activation_destroyed(Activation* act) { live_acts.erase(act); }

  // -- Discrete-event scheduler ----------------------------------------------

  /// Pick the next (processor, item) pair under the ready-queue policy and
  /// remove the item from the queue. Returns false when nothing is ready.
  bool select(int& proc_out, size_t& item_out, Ticks& start_out) {
    if (ready.empty()) return false;
    // Earliest-free processor; if it would idle past the earliest ready
    // time, it starts then.
    int p = 0;
    for (int i = 1; i < config.num_procs; ++i) {
      if (proc_avail[i] < proc_avail[p]) p = i;
    }
    Ticks t = proc_avail[p];
    Ticks min_ready = kNever;
    for (const ReadyItem& item : ready) min_ready = std::min(min_ready, item.ready);
    t = std::max(t, min_ready);

    // Among items ready at <= t: priority level first; within a level,
    // prefer items bound to this processor, then unbound, then steal —
    // FIFO inside each class. Mirrors Runtime's pop order. Under a
    // multi-domain topology with locality_scheduling the class ladder
    // grows a rung: bound-here, bound-same-domain, unbound, bound-
    // elsewhere — the virtual twin of Runtime's domain-aware steal scan.
    // The three-class ranking is kept verbatim otherwise, so default,
    // UMA, and legacy-flat schedules stay byte-identical.
    const bool domain_aware =
        exec_config().locality_scheduling && topology().num_domains > 1;
    const int p_domain = domain_aware ? topology().domain_of(p) : -1;
    size_t best = ready.size();
    int best_rank = std::numeric_limits<int>::max();
    uint64_t best_seq = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < ready.size(); ++i) {
      const ReadyItem& item = ready[i];
      if (item.ready > t) continue;
      int rank;
      if (domain_aware) {
        int affinity_class = 2;  // unbound
        if (item.preferred == p) affinity_class = 0;
        else if (item.preferred >= 0 &&
                 topology().domain_of(item.preferred) == p_domain) affinity_class = 1;
        else if (item.preferred >= 0) affinity_class = 3;
        rank = item.priority * 4 + affinity_class;
      } else {
        int affinity_class = 1;  // unbound
        if (item.preferred == p) affinity_class = 0;
        else if (item.preferred >= 0) affinity_class = 2;
        rank = item.priority * 3 + affinity_class;
      }
      if (rank < best_rank || (rank == best_rank && item.seq < best_seq)) {
        best = i;
        best_rank = rank;
        best_seq = item.seq;
      }
    }
    if (best == ready.size()) return false;  // defensive; cannot happen
    proc_out = p;
    item_out = best;
    start_out = t;
    return true;
  }

  /// The discrete-event loop, shared by the single-run path and the
  /// batch path. Runs until nothing is ready (all instances drained or
  /// purged).
  void drive() {
    while (true) {
      if (purge_pending) {
        // An instance was cancelled (fail_fast fault, budget, watchdog):
        // sweep its queued items, in queue order so the purge trace is
        // deterministic. Siblings' items are untouched — this sweep *is*
        // the fault-containment boundary.
        purge_pending = false;
        size_t keep = 0;
        for (size_t i = 0; i < ready.size(); ++i) {
          ReadyItem& it = ready[i];
          if (static_cast<SimInstance*>(it.act->run)->cancelled) {
            counters_.items_purged.fetch_add(1, std::memory_order_relaxed);
            if (tracing) {
              const Node& n = it.act->tmpl->nodes[it.node];
              trace_event(it.ready, -1, TraceEventKind::kPurge,
                          n.kind == NodeKind::kOperator ? n.op_index : -1);
            }
          } else {
            if (keep != i) ready[keep] = std::move(ready[i]);
            ++keep;
          }
        }
        ready.resize(keep);
        continue;
      }
      int proc;
      size_t index;
      Ticks start;
      if (!select(proc, index, start)) break;
      // Virtual-time watchdog: work would start past the *global* budget
      // with no result delivered — fully deterministic, unlike
      // wall-clock stall detection in the threaded runtime. Cancels
      // every instance (per-instance ceilings are time_budget_ns).
      if (config.watchdog_budget_ns > 0 && !watchdog_fired &&
          start > config.watchdog_budget_ns) {
        watchdog_fired = true;
        counters_.watchdog_fires.fetch_add(1, std::memory_order_relaxed);
        trace_event(config.watchdog_budget_ns, -1, TraceEventKind::kWatchdog, -1,
                    config.watchdog_budget_ns);
        watchdog_message =
            build_watchdog_message(std::to_string(config.watchdog_budget_ns) + " virtual ns",
                                   "", render_stranded(collect_stranded()));
        for (auto& si : instances) si->cancelled = true;
        purge_pending = true;
        continue;
      }
      SimInstance* si = static_cast<SimInstance*>(ready[index].act->run);
      // Per-instance virtual deadline: this instance's next work would
      // start past its ceiling. Reported as a structured stall, never an
      // exception, and never visible to siblings.
      if (si->time_budget_ns > 0 && !si->budget_fired &&
          start > si->arrival + si->time_budget_ns) {
        si->budget_fired = true;
        si->budget_message =
            "instance budget: no result within " + std::to_string(si->time_budget_ns) +
            " virtual ns" + instance_text(*si) + "; cancelling instance\n" +
            "stranded activations:\n" + render_stranded(collect_stranded(si));
        si->cancelled = true;
        purge_pending = true;
        continue;  // the sweep collects the selected item too
      }
      ReadyItem item = std::move(ready[index]);
      ready.erase(ready.begin() + static_cast<long>(index));
      Ticks cost = config.node_overhead_ns;
      try {
        cost = execute_node(item.act, item.node, proc, start);
      } catch (...) {
        // Coordination-level failure (operator faults are captured with
        // richer context inside the core's kOperator case).
        const Node& n = item.act->tmpl->nodes[item.node];
        record_fault(si, make_fault(*item.act, item.node, std::current_exception()),
                     start, proc, n.kind == NodeKind::kOperator ? n.op_index : -1);
      }
      proc_avail[proc] = start + cost;
      proc_busy[proc] += cost;
      si->last_event = std::max(si->last_event, start + cost);
    }
  }

  SimResult run(const CompiledProgram& prog, const Template* tmpl, std::vector<Value> args) {
    tracing = config.enable_tracing;
    resolve_run_policy();

    // A plain run is a batch of one (id 0: no budgets, no dump
    // annotation), so the single-instance path *is* the instance path.
    instances.push_back(std::make_unique<SimInstance>());
    SimInstance& si = *instances.back();
    // The root shared_ptr is held across the drain so the deadlock and
    // watchdog diagnostics can walk the stranded activation tree.
    si.root = spawn(&prog, tmpl, std::move(args), nullptr, 0, fault_seq_root(), 0, &si);
    drive();

    // Drain-time error selection: identical to Runtime::run_function —
    // the smallest deterministic sequence id wins, and a fault beats a
    // delivered result.
    const int best = smallest_fault_index(si.faults);
    if (best >= 0) throw FaultError(std::move(si.faults[static_cast<size_t>(best)]));
    if (watchdog_fired) throw RuntimeError(watchdog_message);
    if (!si.have_result) {
      throw RuntimeError(
          build_deadlock_message(/*simulated=*/true, render_stranded(collect_stranded())));
    }
    SimResult result;
    result.result = std::move(si.result);
    result.makespan = si.finish;
    for (Ticks b : proc_busy) result.total_busy += b;
    result.proc_busy = proc_busy;
    snapshot_core_stats(result.stats);
    result.timings = std::move(timings);
    result.trace_events = trace;  // Impl keeps its copy for faulting-run retrieval
    return result;
  }

  SimBatchResult run_batch(const std::vector<SimInstanceRequest>& requests) {
    tracing = config.enable_tracing;
    resolve_run_policy();

    instances.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const SimInstanceRequest& req = requests[i];
      instances.push_back(std::make_unique<SimInstance>());
      SimInstance& si = *instances.back();
      si.id = i + 1;
      si.arrival = req.arrival;
      si.max_activations = req.max_activations;
      si.time_budget_ns = req.time_budget_ns;
      counters_.instances_admitted.fetch_add(1, std::memory_order_relaxed);
      try {
        if (req.program == nullptr) throw RuntimeError("instance has no program");
        si.program_name = req.function.empty() ? req.program->entry_template().name
                                               : req.function;
        const Template* tmpl = req.program->find(si.program_name);
        if (tmpl == nullptr) {
          throw RuntimeError("program has no function named '" + si.program_name + "'");
        }
        // Every root shares fault_seq_root(), so an instance's fault
        // reports are byte-identical to its solo run.
        si.root = spawn(req.program, tmpl, std::vector<Value>(req.args), nullptr, 0,
                        fault_seq_root(), req.arrival, &si);
      } catch (const std::exception& e) {
        si.spawn_error = e.what();
        si.cancelled = true;
        purge_pending = true;
      }
    }
    drive();

    SimBatchResult out;
    out.outcomes.resize(instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      SimInstance& si = *instances[i];
      SimInstanceOutcome& o = out.outcomes[i];
      o.activations = si.activations;
      o.finish = si.have_result ? si.finish : std::max(si.last_event, si.arrival);
      o.latency = o.finish - si.arrival;
      const int best = smallest_fault_index(si.faults);
      if (si.budget_fired) {
        o.budget_exceeded = true;
        o.message = si.budget_message;
        counters_.instances_budget_killed.fetch_add(1, std::memory_order_relaxed);
      } else if (best >= 0) {
        o.have_fault = true;
        o.fault = std::move(si.faults[static_cast<size_t>(best)]);
        o.message = o.fault.render();
        counters_.instances_faulted.fetch_add(1, std::memory_order_relaxed);
      } else if (!si.spawn_error.empty()) {
        o.message = si.spawn_error;
        counters_.instances_faulted.fetch_add(1, std::memory_order_relaxed);
      } else if (si.have_result) {
        o.have_value = true;
        o.value = std::move(si.result);
        counters_.instances_completed.fetch_add(1, std::memory_order_relaxed);
      } else if (watchdog_fired) {
        o.message = watchdog_message;
        counters_.instances_faulted.fetch_add(1, std::memory_order_relaxed);
      } else {
        o.message = build_deadlock_message(/*simulated=*/true,
                                           render_stranded(collect_stranded(&si)));
        counters_.instances_faulted.fetch_add(1, std::memory_order_relaxed);
      }
      out.makespan = std::max(out.makespan, o.finish);
    }
    for (auto& si : instances) si->root.reset();
    snapshot_core_stats(out.stats);
    return out;
  }
};

SimConfig SimConfig::sharded_cluster(int procs_per_shard) {
  SimConfig config;
  config.topology = MemoryTopology::cluster();
  config.num_procs = config.topology.num_domains * std::max(procs_per_shard, 1);
  return config;
}

SimRuntime::SimRuntime(const OperatorRegistry& registry, SimConfig config)
    : registry_(registry), config_(config) {
  if (config_.num_procs <= 0) config_.num_procs = 1;
  // Same environment overrides as the threaded runtime.
  apply_exec_env_overrides(config_);
}

SimResult SimRuntime::run(const CompiledProgram& program, std::vector<Value> args) {
  return run_function(program, program.entry_template().name, std::move(args));
}

SimBatchResult SimRuntime::run_instances(const std::vector<SimInstanceRequest>& requests) {
  Impl impl(registry_, config_);
  SimBatchResult result = impl.run_batch(requests);
  last_trace_ = impl.trace;
  last_stats_ = result.stats;
  return result;
}

SimResult SimRuntime::run_function(const CompiledProgram& program, const std::string& name,
                                   std::vector<Value> args) {
  const Template* tmpl = program.find(name);
  if (tmpl == nullptr) {
    throw RuntimeError("program has no function named '" + name + "'");
  }
  Impl impl(registry_, config_);
  try {
    SimResult result = impl.run(program, tmpl, std::move(args));
    last_trace_ = result.trace_events;
    last_stats_ = result.stats;
    return result;
  } catch (...) {
    // Keep the trace and counters reachable across a faulting run, like
    // Runtime::trace_events() / Runtime::last_stats().
    last_trace_ = std::move(impl.trace);
    impl.snapshot_core_stats(last_stats_);
    throw;
  }
}

CostTable calibrate_costs(const OperatorRegistry& registry, const CompiledProgram& program,
                          int runs) {
  std::vector<CostTable> samples(std::max(runs, 1));
  for (CostTable& table : samples) {
    SimConfig config;
    config.num_procs = 1;
    config.record_costs = &table;
    SimRuntime sim(registry, config);
    sim.run(program);
  }
  // Per-invocation median across the calibration runs.
  CostTable merged;
  for (const auto& [op, costs] : samples[0].per_op) {
    std::vector<Ticks>& out = merged.per_op[op];
    out.resize(costs.size());
    for (size_t i = 0; i < costs.size(); ++i) {
      std::vector<Ticks> values;
      values.reserve(samples.size());
      for (const CostTable& table : samples) {
        auto it = table.per_op.find(op);
        if (it != table.per_op.end() && i < it->second.size()) values.push_back(it->second[i]);
      }
      std::sort(values.begin(), values.end());
      out[i] = values.empty() ? 0 : values[values.size() / 2];
    }
  }
  return merged;
}

}  // namespace delirium
