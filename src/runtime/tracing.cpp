#include "src/runtime/tracing.h"

#include <algorithm>
#include <bit>

namespace delirium {

std::string_view trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kOpBegin: return "op_begin";
    case TraceEventKind::kOpEnd: return "op_end";
    case TraceEventKind::kSteal: return "steal";
    case TraceEventKind::kStealFail: return "steal_fail";
    case TraceEventKind::kPark: return "park";
    case TraceEventKind::kWake: return "wake";
    case TraceEventKind::kInject: return "inject";
    case TraceEventKind::kFaultRaise: return "fault_raise";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kPurge: return "purge";
    case TraceEventKind::kWatchdog: return "watchdog";
  }
  return "unknown";
}

void TraceRing::init(size_t capacity) {
  if (capacity < 16) capacity = 16;
  capacity = std::bit_ceil(capacity);
  buf_.assign(capacity, TraceEvent{});
  mask_ = capacity - 1;
  head_ = 0;
}

void TraceRing::collect(std::vector<TraceEvent>& out) const {
  const uint64_t n = size();
  const uint64_t first = head_ - n;
  out.reserve(out.size() + n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(buf_[(first + i) & mask_]);
}

void sort_trace_events(std::vector<TraceEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
}

}  // namespace delirium
