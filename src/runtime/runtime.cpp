#include "src/runtime/runtime.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <string_view>

namespace delirium {

namespace {
// Which Runtime's worker pool the current thread belongs to, if any.
// Lets schedule_node distinguish the owner fast path (push to this
// worker's own deque) from the cross-thread injection path. A thread can
// belong to at most one pool; nested Runtimes run on distinct threads.
thread_local Runtime* tls_runtime = nullptr;
thread_local int tls_worker = -1;
}  // namespace

// ---------------------------------------------------------------------------
// Activation & run state
// ---------------------------------------------------------------------------

/// A template activation (§7): a pointer back to the template plus enough
/// buffer space to evaluate the subgraph once. The tree of activations is
/// the parallel generalization of the sequential call stack. Lifetime is
/// managed by shared ownership: the ready queue and child activations
/// (through their continuation) keep an activation alive exactly as long
/// as it can still be referenced.
struct Runtime::Activation {
  Activation(Runtime* rt_in, const CompiledProgram* program_in, const Template* tmpl_in,
             RunState* run_in, uint64_t seq_in)
      : rt(rt_in), program(program_in), tmpl(tmpl_in), run(run_in), seq(seq_in),
        slots(tmpl_in->value_slots),
        pending(std::make_unique<std::atomic<int32_t>[]>(tmpl_in->nodes.size())) {
    for (size_t i = 0; i < tmpl->nodes.size(); ++i) {
      pending[i].store(tmpl->nodes[i].num_inputs, std::memory_order_relaxed);
    }
    rt->activations_created_.fetch_add(1, std::memory_order_relaxed);
    const int64_t live = rt->live_activations_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = rt->peak_live_activations_.load(std::memory_order_relaxed);
    while (static_cast<uint64_t>(live) > peak &&
           !rt->peak_live_activations_.compare_exchange_weak(peak, static_cast<uint64_t>(live),
                                                             std::memory_order_relaxed)) {
    }
    rt->ledger_add(this);
  }

  ~Activation() {
    rt->ledger_remove(this);
    rt->live_activations_.fetch_sub(1, std::memory_order_relaxed);
  }

  Runtime* rt;
  const CompiledProgram* program;
  const Template* tmpl;
  RunState* run;
  /// Deterministic structural sequence id (see fault.h): a hash of the
  /// spawn path, independent of the schedule, identical in SimRuntime.
  uint64_t seq;
  std::vector<Value> slots;
  std::unique_ptr<std::atomic<int32_t>[]> pending;
  /// Continuation: where this activation's result goes. When `collector`
  /// is set the result joins a parmap package instead; otherwise a null
  /// cont_act means "the final result of the run".
  std::shared_ptr<Activation> cont_act;
  uint32_t cont_node = 0;
  std::shared_ptr<ParMapCollector> collector;
  uint32_t collector_index = 0;
};

/// Join object for kParMap (§9.2 dynamic parallelism): one child
/// activation per package element; the last returning child assembles
/// the result package and forwards it to the parmap's continuation.
struct Runtime::ParMapCollector {
  std::vector<Value> results;           // one slot per element
  std::atomic<int> remaining{0};
  std::shared_ptr<Activation> cont_act;  // null -> the run's final result
  uint32_t cont_node = 0;
};

struct Runtime::RunState {
  const CompiledProgram* program = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  bool have_result = false;
  Value result;
  /// Faults captured during the run, guarded by mu. At drain the
  /// smallest fault under fault_before() is the one rethrown, so the
  /// reported error is identical across schedulers and worker counts.
  std::vector<FaultInfo> faults;
  /// Set (release) by fail_fast fault capture or the watchdog; checked
  /// (acquire) before every execution so queued items are purged
  /// instead of run.
  std::atomic<bool> cancelled{false};
  bool watchdog_fired = false;     // caller thread only
  std::string watchdog_message;    // written before cancellation
  /// Queued + executing work items. The run is complete when this drains
  /// to zero: every enqueue increments, every completed execution
  /// decrements, and an executing item performs all of its enqueues
  /// before its own decrement.
  std::atomic<int64_t> outstanding{0};
  // Fault policy resolved once per run (config + environment overrides).
  std::shared_ptr<const FaultPlan> plan;
  int max_retries = 0;
  int64_t retry_backoff_ns = 0;
  int64_t watchdog_budget_ns = 0;
  bool fail_fast = false;
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Runtime::Runtime(const OperatorRegistry& registry, RuntimeConfig config)
    : registry_(registry), config_(config) {
  int n = config_.num_workers;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  config_.num_workers = n;
  if (const char* env = std::getenv("DELIRIUM_SCHEDULER")) {
    const std::string_view v(env);
    if (v == "global_lock") config_.scheduler = SchedulerKind::kGlobalLock;
    else if (v == "work_stealing") config_.scheduler = SchedulerKind::kWorkStealing;
  }
  if (const char* env = std::getenv("DELIRIUM_TRACE")) {
    config_.enable_tracing = std::string_view(env) != "0";
  }
  if (const char* env = std::getenv("DELIRIUM_TRACE_CAPACITY")) {
    const long long cap = std::strtoll(env, nullptr, 10);
    if (cap > 0) config_.trace_capacity = static_cast<size_t>(cap);
  }
  trace_enabled_ = config_.enable_tracing;
  if (trace_enabled_) {
    // One ring per worker plus one for the run's caller thread (root
    // spawn, watchdog). Allocated once; cleared per run.
    trace_rings_.resize(static_cast<size_t>(n) + 1);
    for (TraceRing& r : trace_rings_) r.init(config_.trace_capacity);
  }
  local_queues_.resize(n);
  worker_data_.reserve(n);
  for (int w = 0; w < n; ++w) worker_data_.push_back(std::make_unique<WorkerData>());
  op_last_worker_ = std::vector<std::atomic<int>>(registry.size());
  for (auto& a : op_last_worker_) a.store(-1, std::memory_order_relaxed);
  op_arrivals_ = std::vector<std::atomic<uint64_t>>(registry.size());
  const bool ws = config_.scheduler == SchedulerKind::kWorkStealing;
  if (ws) {
    ws_.reserve(n);
    for (int w = 0; w < n; ++w) ws_.push_back(std::make_unique<WsWorker>());
  }
  workers_.reserve(n);
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w, ws] { ws ? worker_loop_ws(w) : worker_loop(w); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  sched_cv_.notify_all();
  for (auto& w : ws_) w->ec.notify();
  for (std::thread& t : workers_) t.join();
}

// ---------------------------------------------------------------------------
// Tracing (docs/OBSERVABILITY.md)
// ---------------------------------------------------------------------------

void Runtime::trace_at(int64_t ts, int worker, TraceEventKind kind, int32_t op,
                       int64_t arg) {
  TraceEvent e;
  e.ts = ts;
  e.seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  e.arg = arg;
  e.op = op;
  e.worker = static_cast<int16_t>(worker);
  e.kind = kind;
  // worker -1 is a thread outside the pool — only ever the run's caller —
  // and uses the extra ring at the end.
  const size_t ring = worker >= 0 ? static_cast<size_t>(worker) : trace_rings_.size() - 1;
  trace_rings_[ring].push(e);
}

void Runtime::ws_flush_pending_trace(int worker) {
  // Called between a successful pop and the item's outstanding decrement:
  // the one window in which this worker may write its ring (tracing.h).
  WsWorker& w = *ws_[worker];
  if (w.pending_steal_fails > 0) {
    trace(worker, TraceEventKind::kStealFail, -1, w.pending_steal_fails);
    w.pending_steal_fails = 0;
  }
  if (w.has_pending_park) {
    // A park may have begun before this run started (workers idle between
    // runs); clamp so timestamps stay within the run.
    int64_t ts = w.pending_park_ts - run_start_ticks_;
    if (ts < 0) ts = 0;
    trace_at(ts, worker, TraceEventKind::kPark, -1, w.pending_park_ns);
    w.has_pending_park = false;
    w.pending_park_ns = 0;
  }
}

// ---------------------------------------------------------------------------
// Fault handling (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------------

void Runtime::ledger_add(Activation* act) {
  LedgerShard& s = ledger_[(reinterpret_cast<uintptr_t>(act) >> 6) % kLedgerShards];
  std::lock_guard<std::mutex> lock(s.mu);
  s.acts.insert(act);
}

void Runtime::ledger_remove(Activation* act) {
  LedgerShard& s = ledger_[(reinterpret_cast<uintptr_t>(act) >> 6) % kLedgerShards];
  std::lock_guard<std::mutex> lock(s.mu);
  s.acts.erase(act);
}

void Runtime::record_fault(RunState* rs, FaultInfo f, int32_t op_index) {
  faults_raised_.fetch_add(1, std::memory_order_relaxed);
  if (trace_enabled_) {
    // Recorded by the faulting worker (in its safe window) or, never in
    // practice today, by the caller thread into the external ring.
    const int self = (tls_runtime == this) ? tls_worker : -1;
    trace(self, TraceEventKind::kFaultRaise, op_index, static_cast<int64_t>(f.seq));
  }
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->faults.push_back(std::move(f));
  }
  // Default mode drains naturally: every fault reachable from the inputs
  // is captured, so the smallest-sequence-id winner is schedule-
  // independent. fail_fast trades that guarantee for latency.
  if (rs->fail_fast) cancel_run(rs);
}

void Runtime::cancel_run(RunState* rs) {
  rs->cancelled.store(true, std::memory_order_release);
  // No queue surgery needed: workers observe the flag before executing
  // and purge queued items as they pop them (counted in items_purged).
  // Workers are never parked while items remain queued, so the drain
  // needs no extra wakeups.
}

std::vector<StrandedActivation> Runtime::collect_stranded(const RunState* rs) {
  std::vector<StrandedActivation> out;
  for (LedgerShard& shard : ledger_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Activation* a : shard.acts) {
      if (a->run != rs) continue;
      StrandedActivation sa;
      sa.seq = a->seq;
      sa.tmpl = a->tmpl->name;
      for (uint32_t i = 0; i < a->tmpl->nodes.size(); ++i) {
        const Node& n = a->tmpl->nodes[i];
        if (n.num_inputs == 0) continue;
        const int32_t missing = a->pending[i].load(std::memory_order_relaxed);
        if (missing <= 0) continue;
        if (missing == n.num_inputs) {
          ++sa.never_fed;
        } else {
          sa.partial.push_back(StrandedNode{i, fault_node_label(n),
                                            missing, n.num_inputs});
        }
      }
      if (!sa.partial.empty() || sa.never_fed > 0) out.push_back(std::move(sa));
    }
  }
  return out;
}

std::string Runtime::dump_busy_workers() {
  std::string out;
  const Ticks now = now_ticks();
  for (size_t w = 0; w < worker_data_.size(); ++w) {
    WorkerData& wd = *worker_data_[w];
    std::lock_guard<std::mutex> lock(wd.busy_mu);
    if (wd.busy_op.empty()) continue;
    out += "  worker " + std::to_string(w) + ": executing '" + wd.busy_op + "' for " +
           std::to_string(now - wd.busy_since) + " ns\n";
  }
  if (out.empty()) out = "  (all workers idle)\n";
  return out;
}

void Runtime::fire_watchdog(RunState* rs) {
  watchdog_fires_.fetch_add(1, std::memory_order_relaxed);
  // The caller thread owns the external ring, so this write is safe even
  // while workers are still draining their queues.
  trace(-1, TraceEventKind::kWatchdog, -1, rs->watchdog_budget_ns);
  rs->watchdog_message =
      "watchdog: no result within " +
      std::to_string(rs->watchdog_budget_ns / 1000000) +
      " ms; cancelling run\nbusy workers:\n" + dump_busy_workers() +
      "stranded activations:\n" + render_stranded(collect_stranded(rs));
  cancel_run(rs);
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void Runtime::schedule_node(const std::shared_ptr<Activation>& act, uint32_t node) {
  const Node& n = act->tmpl->nodes[node];
  const int priority =
      config_.use_priorities ? static_cast<int>(n.priority) : 0;

  // Affinity (§9.3): choose a preferred worker, if any. Operators
  // registered after Runtime construction have no slot in
  // op_last_worker_ (it is sized from the registry at construction);
  // they schedule with no preference instead of indexing past the end.
  int target = -1;
  if (config_.affinity == AffinityMode::kOperator && n.kind == NodeKind::kOperator &&
      n.op_index >= 0 && static_cast<size_t>(n.op_index) < op_last_worker_.size()) {
    target = op_last_worker_[n.op_index].load(std::memory_order_relaxed);
  } else if (config_.affinity == AffinityMode::kData && n.kind == NodeKind::kOperator) {
    size_t best_bytes = 0;
    for (uint16_t i = 0; i < n.num_inputs; ++i) {
      const Value& v = act->slots[n.input_offset + i];
      if (v.kind() == Value::Kind::kBlock) {
        const auto& blk = v.block_ptr();
        const size_t bytes = blk->byte_size();
        const int home = blk->home_worker.load(std::memory_order_relaxed);
        if (home >= 0 && bytes > best_bytes) {
          best_bytes = bytes;
          target = home;
        }
      }
    }
  }
  if (target >= config_.num_workers) target = -1;

  act->run->outstanding.fetch_add(1, std::memory_order_acq_rel);
  if (config_.scheduler == SchedulerKind::kWorkStealing) {
    ws_enqueue(WorkItem{act, node}, priority, target);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (target >= 0) {
      local_queues_[target][priority].push_back(WorkItem{act, node});
    } else {
      global_queue_[priority].push_back(WorkItem{act, node});
    }
    ++queued_total_;
  }
  sched_local_enqueues_.fetch_add(1, std::memory_order_relaxed);
  sched_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------
//
// Every enqueue lands in per-worker storage: a worker scheduling for
// itself (or with no affinity preference) pushes to its own lock-free
// deque; everything else — cross-worker affinity targets and calls from
// threads outside the pool — goes through the target's MPSC inbox. Idle
// workers park on a per-worker eventcount; enqueuers wake a parked
// worker only when one is advertised (one relaxed load on the hot path).
// The seq_cst fences below pair with the parking protocol in
// worker_loop_ws: either the enqueuer observes the parked flag, or the
// parking worker's recheck observes the enqueued item.

void Runtime::ws_enqueue(WorkItem item, int priority, int target) {
  const int self = (tls_runtime == this) ? tls_worker : -1;
  if (self >= 0 && (target < 0 || target == self)) {
    if (!ws_[self]->deques[priority].push(std::move(item))) {
      // Ring full: spill into the own inbox — unbounded, still popped by
      // this worker, so no work is ever dropped.
      ws_[self]->inbox[priority].push(std::move(item));
    }
    sched_local_enqueues_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (num_parked_.load(std::memory_order_relaxed) > 0) ws_wake_any_parked();
    return;
  }

  int dest = target;
  if (dest < 0) {
    // Injection from outside the pool with no preference: prefer a
    // parked worker (it will wake anyway), else round-robin.
    const size_t n = ws_.size();
    const uint32_t start = inject_rr_.fetch_add(1, std::memory_order_relaxed);
    dest = static_cast<int>(start % n);
    for (size_t i = 0; i < n; ++i) {
      const size_t w = (start + i) % n;
      if (ws_[w]->parked.load(std::memory_order_acquire)) {
        dest = static_cast<int>(w);
        break;
      }
    }
  }
  ws_[dest]->inbox[priority].push(std::move(item));
  sched_injected_enqueues_.fetch_add(1, std::memory_order_relaxed);
  // A worker injecting is mid-execute (its safe window); anything else is
  // the run's caller, which records into the external ring.
  trace(self, TraceEventKind::kInject, -1, dest);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (ws_[dest]->parked.load(std::memory_order_relaxed)) ws_wake(dest);
}

void Runtime::ws_wake(int worker) {
  // Claim the parked flag: a flurry of enqueues costs one notify per
  // park episode, not one per item. The worker re-advertises the flag
  // before every wait, and treats a claimed flag as a wakeup (see the
  // commit condition in worker_loop_ws), so a claim is never lost.
  if (!ws_[worker]->parked.exchange(false, std::memory_order_seq_cst)) return;
  sched_wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (trace_enabled_) {
    // Attributed to the waking thread's ring: enqueuing workers are in
    // their safe window, everything else is the caller's external ring.
    const int self = (tls_runtime == this) ? tls_worker : -1;
    trace(self, TraceEventKind::kWake, -1, worker);
  }
  ws_[worker]->ec.notify();
}

void Runtime::ws_wake_any_parked() {
  const size_t n = ws_.size();
  const uint32_t start = inject_rr_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    const size_t w = (start + i) % n;
    if (ws_[w]->parked.load(std::memory_order_acquire)) {
      ws_wake(static_cast<int>(w));
      return;
    }
  }
}

bool Runtime::ws_try_pop(int worker, WorkItem& out) {
  WsWorker& self = *ws_[worker];
  // Priority-major over the worker's own sources: the deque (LIFO — the
  // cache-warm path, and depth-first like the priority scheme it
  // serves) before the injection inbox (FIFO).
  for (int pri = 0; pri < 3; ++pri) {
    if (self.deques[pri].pop(out)) return true;
    if (self.inbox[pri].pop(out)) return true;
  }
  // Dry: steal FIFO from victims' deque tops, priority-major across the
  // pool, starting from a rotating victim so thieves spread out.
  const size_t n = ws_.size();
  if (n > 1) {
    const size_t base = ++self.steal_rr;
    for (int pri = 0; pri < 3; ++pri) {
      for (size_t i = 0; i < n; ++i) {
        const size_t victim = (base + i) % n;
        if (victim == static_cast<size_t>(worker)) continue;
        if (ws_[victim]->deques[pri].steal(out)) {
          sched_steals_.fetch_add(1, std::memory_order_relaxed);
          if (trace_enabled_) {
            // Holding the stolen item opens the safe window: flush what
            // accumulated while idle, then record the steal itself.
            ws_flush_pending_trace(worker);
            trace(worker, TraceEventKind::kSteal, -1, static_cast<int64_t>(victim));
          }
          return true;
        }
      }
    }
    sched_failed_steals_.fetch_add(1, std::memory_order_relaxed);
    // A dry scan happens while holding no item — outside the safe window
    // — so it only bumps an owner-private counter, flushed at the next
    // successful pop (see tracing.h).
    if (trace_enabled_) ++self.pending_steal_fails;
  }
  return false;
}

bool Runtime::ws_has_work(int worker) const {
  const WsWorker& self = *ws_[worker];
  for (int pri = 0; pri < 3; ++pri) {
    if (!self.deques[pri].empty()) return true;
    if (!self.inbox[pri].empty()) return true;
  }
  for (size_t w = 0; w < ws_.size(); ++w) {
    if (w == static_cast<size_t>(worker)) continue;
    for (int pri = 0; pri < 3; ++pri) {
      if (!ws_[w]->deques[pri].empty()) return true;
    }
  }
  return false;
}

void Runtime::worker_loop_ws(int worker) {
  tls_runtime = this;
  tls_worker = worker;
  WsWorker& self = *ws_[worker];
  for (;;) {
    WorkItem item;
    if (ws_try_pop(worker, item)) {
      if (trace_enabled_) ws_flush_pending_trace(worker);
      execute(item, worker);
      item.act.reset();  // release before the next blocking wait
      continue;
    }
    // Nothing visible anywhere: advertise as parked, then recheck, then
    // sleep. The fence pairs with the enqueuers' fences: either they see
    // the parked flag (and notify), or the recheck sees their item.
    self.parked.store(true, std::memory_order_seq_cst);
    num_parked_.fetch_add(1, std::memory_order_seq_cst);
    const uint64_t epoch = self.ec.prepare_wait();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Sleep only while our flag is still up: a waker claims the flag
    // (exchange to false) before notifying, so a cleared flag means a
    // wakeup already happened — never sleep through it, or a later
    // inbox injection (unstealable) would see the flag down, skip its
    // notify, and strand the item.
    if (!stopping_.load(std::memory_order_acquire) && !ws_has_work(worker) &&
        self.parked.load(std::memory_order_seq_cst)) {
      sched_parks_.fetch_add(1, std::memory_order_relaxed);
      if (trace_enabled_) {
        // Parked while holding no item — outside the ring's safe window.
        // Accumulate the interval owner-privately; the next successful
        // pop flushes it as one kPark event (arg = total ns slept).
        const Ticks t0 = now_ticks();
        self.ec.commit_wait(epoch);
        if (!self.has_pending_park) {
          self.has_pending_park = true;
          self.pending_park_ts = t0;
        }
        self.pending_park_ns += now_ticks() - t0;
      } else {
        self.ec.commit_wait(epoch);
      }
    }
    self.parked.store(false, std::memory_order_relaxed);
    num_parked_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_acquire)) return;
  }
}

bool Runtime::pop_item(int worker, WorkItem& out) {
  // Priority-major: a higher-priority item anywhere beats a lower-priority
  // one here. Within a level: own queue, then global, then steal.
  for (int pri = 0; pri < 3; ++pri) {
    auto& own = local_queues_[worker][pri];
    if (!own.empty()) {
      out = std::move(own.front());
      own.pop_front();
      return true;
    }
    if (!global_queue_[pri].empty()) {
      out = std::move(global_queue_[pri].front());
      global_queue_[pri].pop_front();
      return true;
    }
    for (size_t other = 0; other < local_queues_.size(); ++other) {
      auto& q = local_queues_[other][pri];
      if (!q.empty()) {
        out = std::move(q.front());
        q.pop_front();
        return true;
      }
    }
  }
  return false;
}

void Runtime::worker_loop(int worker) {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || queued_total_ > 0;
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (!pop_item(worker, item)) continue;
      --queued_total_;
    }
    execute(item, worker);
    item.act.reset();  // release before the next blocking wait
  }
}

void Runtime::execute(const WorkItem& item, int worker) {
  RunState* rs = item.act->run;
  const Node& n = item.act->tmpl->nodes[item.node];
  const int32_t op_index = n.kind == NodeKind::kOperator ? n.op_index : -1;
  if (rs->cancelled.load(std::memory_order_acquire)) {
    // Cancelled (fail_fast fault or watchdog): discard instead of run.
    items_purged_.fetch_add(1, std::memory_order_relaxed);
    trace(worker, TraceEventKind::kPurge, op_index);
  } else {
    try {
      execute_node(item, worker);
    } catch (...) {
      // Operator faults are captured inside the kOperator case (they
      // carry injection/retry context); anything reaching here is a
      // coordination-level failure at this node.
      record_fault(rs, make_fault(*item.act, item.node, std::current_exception()),
                   op_index);
    }
  }
  if (rs->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------------

void Runtime::deliver(const std::shared_ptr<Activation>& act, uint32_t node, Value v) {
  const Node& n = act->tmpl->nodes[node];
  const size_t k = n.consumers.size();

  // Decomposition fast path: kTupleGet consumers receive their element
  // directly, and the package itself is released *before* any element is
  // forwarded. This keeps reference counts exact, so an operator with
  // destructive access to an element does not see a transient count from
  // the package and copy needlessly.
  bool any_get = false;
  for (const PortRef& c : n.consumers) {
    any_get = any_get || act->tmpl->nodes[c.node].kind == NodeKind::kTupleGet;
  }
  if (any_get) {
    const MultiValue& mv = v.as_tuple();  // throws if not a package
    std::vector<std::pair<uint32_t, Value>> extracted;
    for (size_t i = 0; i < k; ++i) {
      const PortRef& c = n.consumers[i];
      const Node& consumer = act->tmpl->nodes[c.node];
      if (consumer.kind == NodeKind::kTupleGet) {
        if (consumer.tuple_index >= mv.elems.size()) {
          throw RuntimeError("decomposition in '" + act->tmpl->name + "' needs element " +
                             std::to_string(consumer.tuple_index) + " of a " +
                             std::to_string(mv.elems.size()) + "-element package");
        }
        extracted.emplace_back(c.node, mv.elems[consumer.tuple_index]);
      } else {
        act->slots[consumer.input_offset + c.port] = v;
        if (act->pending[c.node].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          schedule_node(act, c.node);
        }
      }
    }
    v = Value();  // drop the package before forwarding elements
    for (auto& [get_node, element] : extracted) {
      deliver(act, get_node, std::move(element));
    }
    return;
  }

  for (size_t i = 0; i < k; ++i) {
    const PortRef& c = n.consumers[i];
    const Node& consumer = act->tmpl->nodes[c.node];
    Value copy = (i + 1 == k) ? std::move(v) : v;
    act->slots[consumer.input_offset + c.port] = std::move(copy);
    if (act->pending[c.node].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      schedule_node(act, c.node);
    }
  }
  // k == 0: the value has no consumers (e.g. an unused binding when
  // optimization is off) and is simply dropped.
}

std::shared_ptr<Runtime::Activation> Runtime::spawn(const CompiledProgram& program,
                                                    const Template* tmpl,
                                                    std::vector<Value> params,
                                                    std::shared_ptr<Activation> cont_act,
                                                    uint32_t cont_node, RunState* run,
                                                    uint64_t seq,
                                                    std::shared_ptr<ParMapCollector> collector,
                                                    uint32_t collector_index) {
  if (params.size() != tmpl->num_params) {
    throw RuntimeError("activation of '" + tmpl->name + "' expects " +
                       std::to_string(tmpl->num_params) + " values, got " +
                       std::to_string(params.size()));
  }
  auto act = std::make_shared<Activation>(this, &program, tmpl, run, seq);
  act->cont_act = std::move(cont_act);
  act->cont_node = cont_node;
  act->collector = std::move(collector);
  act->collector_index = collector_index;
  for (uint32_t i = 0; i < tmpl->nodes.size(); ++i) {
    const Node& n = tmpl->nodes[i];
    switch (n.kind) {
      case NodeKind::kConst:
        deliver(act, i, Value::from_const(n.literal));
        break;
      case NodeKind::kParam:
        deliver(act, i, std::move(params[n.param_index]));
        break;
      default:
        if (n.num_inputs == 0) schedule_node(act, i);
        break;
    }
  }
  return act;
}

void Runtime::spawn_child(const WorkItem& item, const Template* target,
                          std::vector<Value> params) {
  const Node& n = item.act->tmpl->nodes[item.node];
  // Structural child id: same formula under both call shapes (and in
  // SimRuntime), so the id never depends on tail-call optimization state
  // of anything *below* this node.
  const uint64_t seq = fault_seq_child(item.act->seq, item.node, 0);
  if (n.is_tail && config_.enable_tail_calls) {
    // Tail call: forward the *whole* continuation — including a parmap
    // collector, if this activation's result was to join one. This
    // activation can retire as soon as its remaining nodes finish (§7's
    // early activation reuse).
    spawn(*item.act->program, target, std::move(params), item.act->cont_act,
          item.act->cont_node, item.act->run, seq, item.act->collector,
          item.act->collector_index);
  } else {
    spawn(*item.act->program, target, std::move(params), item.act, item.node,
          item.act->run, seq);
  }
}

void Runtime::apply_numa_penalties(std::vector<Value>& args, int worker) {
  for (Value& v : args) {
    if (v.kind() != Value::Kind::kBlock) continue;
    BlockBase& blk = *v.block_ptr();
    const int home = blk.home_worker.load(std::memory_order_relaxed);
    if (home >= 0 && home != worker) {
      const int64_t kb = static_cast<int64_t>(blk.byte_size() / 1024) + 1;
      const int64_t penalty_ns = config_.remote_penalty_ns_per_kb * kb;
      const Ticks until = now_ticks() + penalty_ns;
      while (now_ticks() < until) {
        // Busy wait: models the stall of pulling a remote block across the
        // interconnect (Butterfly-style NUMA).
      }
      remote_block_moves_.fetch_add(1, std::memory_order_relaxed);
    }
    blk.home_worker.store(worker, std::memory_order_relaxed);
  }
}

void Runtime::execute_node(const WorkItem& item, int worker) {
  Activation& act = *item.act;
  const Node& n = act.tmpl->nodes[item.node];
  nodes_executed_.fetch_add(1, std::memory_order_relaxed);

  auto take_input = [&](uint16_t port) -> Value {
    return std::move(act.slots[n.input_offset + port]);
  };
  auto take_all_inputs = [&]() {
    std::vector<Value> values;
    values.reserve(n.num_inputs);
    for (uint16_t i = 0; i < n.num_inputs; ++i) values.push_back(take_input(i));
    return values;
  };

  switch (n.kind) {
    case NodeKind::kConst:
    case NodeKind::kParam:
      // Seeded at spawn; never queued.
      assert(false && "const/param nodes are never scheduled");
      break;

    case NodeKind::kOperator: {
      const OperatorDef& def = registry_.at(static_cast<size_t>(n.op_index));
      RunState* rs = act.run;
      std::vector<Value> args = take_all_inputs();
      if (config_.remote_penalty_ns_per_kb > 0) apply_numa_penalties(args, worker);
      operator_invocations_.fetch_add(1, std::memory_order_relaxed);
      const bool timing = config_.enable_node_timing;
      const bool track_busy = rs->watchdog_budget_ns > 0;
      const std::span<const ConsumeClass> classes =
          config_.unique_fastpath ? std::span<const ConsumeClass>(n.input_classes)
                                  : std::span<const ConsumeClass>();
      const FaultPlan* plan = rs->plan.get();
      uint64_t arrival = 0;
      if (plan != nullptr && n.op_index >= 0 &&
          static_cast<size_t>(n.op_index) < op_arrivals_.size()) {
        arrival = op_arrivals_[n.op_index].fetch_add(1, std::memory_order_relaxed);
      }

      // Retry eligibility: pure operators always qualify; destructive
      // operators only when the sole-consumer analysis proved every
      // destructive argument kUnique, so the pre-image snapshot below
      // captures the entire effect of a failed attempt. kUnknown
      // destructive arguments stay ineligible — their copy-on-write
      // behavior depends on live reference counts a snapshot would
      // perturb.
      int budget = 0;
      if (rs->max_retries > 0) {
        bool eligible = true;
        for (size_t i = 0; i < args.size(); ++i) {
          if (def.is_destructive(i) &&
              !(i < n.input_classes.size() &&
                n.input_classes[i] == ConsumeClass::kUnique)) {
            eligible = false;
            break;
          }
        }
        if (eligible) budget = rs->max_retries;
      }

      // Pre-image snapshot: shallow Value copies (a reference bump) for
      // read-only arguments, deep clones for destructive ones (the
      // kUnique path mutates those in place). Restores re-clone from the
      // snapshot so a second retry never sees the first retry's writes.
      auto restore_from = [&def](const std::vector<Value>& from) {
        std::vector<Value> to;
        to.reserve(from.size());
        for (size_t i = 0; i < from.size(); ++i) {
          if (def.is_destructive(i) && from[i].kind() == Value::Kind::kBlock) {
            to.push_back(Value::of_block(from[i].block_ptr()->clone()));
          } else {
            to.push_back(from[i]);
          }
        }
        return to;
      };
      std::vector<Value> snapshot;
      if (budget > 0) snapshot = restore_from(args);

      Value result;
      bool ok = false;
      WorkerData& wd = *worker_data_[worker];
      for (uint32_t attempt = 0;; ++attempt) {
        FaultDecision fd;
        if (plan != nullptr) {
          fd = plan->decide(def.info.name, def.info.pure, act.seq, item.node, arrival,
                            attempt);
          if (fd.action != FaultAction::kNone) {
            faults_injected_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        bool injected = false;
        if (track_busy) {
          std::lock_guard<std::mutex> lock(wd.busy_mu);
          wd.busy_op = def.info.name;
          wd.busy_since = now_ticks();
        }
        trace(worker, TraceEventKind::kOpBegin, n.op_index, attempt);
        try {
          if (fd.action == FaultAction::kThrow) {
            injected = true;
            throw RuntimeError("injected fault (attempt " + std::to_string(attempt) +
                               ")");
          }
          if (fd.action == FaultAction::kStall) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(fd.stall_ns));
          }
          const Ticks t0 = timing ? now_ticks() : 0;
          OpContext ctx(def, std::span<Value>(args), worker, classes);
          result = def.fn(ctx);
          if (track_busy) {
            std::lock_guard<std::mutex> lock(wd.busy_mu);
            wd.busy_op.clear();
          }
          // Timings and CoW stats come from the successful attempt only.
          if (timing) {
            const Ticks dt = now_ticks() - t0;
            operator_ticks_.fetch_add(dt, std::memory_order_relaxed);
            wd.timings.push_back(
                NodeTiming{n.op_name, act.tmpl->name, dt,
                           worker, timing_seq_.fetch_add(1, std::memory_order_relaxed),
                           t0 - run_start_ticks_});
          }
          cow_copies_.fetch_add(ctx.cow_copies(), std::memory_order_relaxed);
          cow_skipped_.fetch_add(ctx.cow_skipped(), std::memory_order_relaxed);
          if (fd.action == FaultAction::kCorrupt) {
            // Deterministically wrong-shaped result: consumers that
            // decompose it fault with exact provenance.
            result = Value::tuple({});
          }
          trace(worker, TraceEventKind::kOpEnd, n.op_index, attempt);
          ok = true;
        } catch (...) {
          if (track_busy) {
            std::lock_guard<std::mutex> lock(wd.busy_mu);
            wd.busy_op.clear();
          }
          trace(worker, TraceEventKind::kOpEnd, n.op_index, attempt);
          if (attempt < static_cast<uint32_t>(budget)) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            trace(worker, TraceEventKind::kRetry, n.op_index, attempt + 1);
            const int shift = attempt < 20 ? static_cast<int>(attempt) : 20;
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(rs->retry_backoff_ns << shift));
            args = restore_from(snapshot);
            continue;
          }
          if (budget > 0) retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
          record_fault(rs, make_fault(act, item.node, std::current_exception(), injected),
                       n.op_index);
        }
        break;
      }
      // A recorded fault delivers nothing: the node's consumers starve,
      // the run drains, and the smallest-seq fault is rethrown at drain.
      if (!ok) break;
      if (config_.affinity == AffinityMode::kOperator && n.op_index >= 0 &&
          static_cast<size_t>(n.op_index) < op_last_worker_.size()) {
        op_last_worker_[n.op_index].store(worker, std::memory_order_relaxed);
      }
      if (result.kind() == Value::Kind::kBlock) {
        result.block_ptr()->home_worker.store(worker, std::memory_order_relaxed);
      }
      deliver(item.act, item.node, std::move(result));
      break;
    }

    case NodeKind::kTupleMake:
      deliver(item.act, item.node, Value::tuple(take_all_inputs()));
      break;

    case NodeKind::kTupleGet:
      // Decomposition is handled eagerly in deliver(); a kTupleGet node is
      // never scheduled.
      throw RuntimeError("internal: kTupleGet node reached the ready queue");

    case NodeKind::kMakeClosure: {
      const Template* target = act.program->templates[n.target_template].get();
      deliver(item.act, item.node, Value::closure(target, take_all_inputs()));
      break;
    }

    case NodeKind::kCall: {
      const Template* target = act.program->templates[n.target_template].get();
      spawn_child(item, target, take_all_inputs());
      break;
    }

    case NodeKind::kCallClosure: {
      Value callee = take_input(0);
      const Template* target = callee.as_closure().tmpl;
      const uint32_t given = n.num_inputs - 1u;
      if (given != target->explicit_params()) {
        throw RuntimeError("closure '" + target->name + "' expects " +
                           std::to_string(target->explicit_params()) + " argument(s), got " +
                           std::to_string(given));
      }
      std::vector<Value> params;
      std::vector<Value> captures = callee.take_closure_captures();
      params.reserve(given + captures.size());
      for (uint16_t i = 1; i < n.num_inputs; ++i) params.push_back(take_input(i));
      for (Value& cap : captures) params.push_back(std::move(cap));
      callee = Value();  // release the closure before the child can run
      spawn_child(item, target, std::move(params));
      break;
    }

    case NodeKind::kIfDispatch: {
      const bool cond = take_input(0).truthy();
      // Take *both* closures: the untaken branch must release its captured
      // values now, so reference counts stay exact for copy-on-write.
      Value then_clo = take_input(1);
      Value else_clo = take_input(2);
      Value chosen = cond ? std::move(then_clo) : std::move(else_clo);
      then_clo = Value();
      else_clo = Value();
      const Template* target = chosen.as_closure().tmpl;
      if (target->explicit_params() != 0) {
        throw RuntimeError("internal: branch template '" + target->name +
                           "' must take no explicit arguments");
      }
      std::vector<Value> params = chosen.take_closure_captures();
      chosen = Value();  // release the closure before the child can run
      spawn_child(item, target, std::move(params));
      break;
    }

    case NodeKind::kParMap: {
      Value fn = take_input(0);
      Value pkg = take_input(1);
      const Template* target = fn.as_closure().tmpl;
      if (target->explicit_params() != 1) {
        throw RuntimeError("parmap: '" + target->name +
                           "' must take exactly one argument, takes " +
                           std::to_string(target->explicit_params()));
      }
      const size_t k = pkg.as_tuple().elems.size();
      if (k == 0) {
        deliver(item.act, item.node, Value::tuple({}));
        break;
      }
      // Prepare every child's parameters first, then release the package
      // and closure, so element reference counts are exact before any
      // child can run (the copy-on-write discipline).
      std::vector<std::vector<Value>> params_list;
      params_list.reserve(k);
      {
        const MultiValue& mv = pkg.as_tuple();
        const Closure& c = fn.as_closure();
        for (size_t i = 0; i < k; ++i) {
          std::vector<Value> params;
          params.reserve(1 + c.captures.size());
          params.push_back(mv.elems[i]);
          for (const Value& cap : c.captures) params.push_back(cap);
          params_list.push_back(std::move(params));
        }
      }
      pkg = Value();
      fn = Value();
      auto collector = std::make_shared<ParMapCollector>();
      collector->results.resize(k);
      collector->remaining.store(static_cast<int>(k), std::memory_order_relaxed);
      if (n.is_tail && config_.enable_tail_calls) {
        collector->cont_act = act.cont_act;
        collector->cont_node = act.cont_node;
      } else {
        collector->cont_act = item.act;
        collector->cont_node = item.node;
      }
      for (size_t i = 0; i < k; ++i) {
        spawn(*act.program, target, std::move(params_list[i]), nullptr, 0, act.run,
              fault_seq_child(act.seq, item.node, static_cast<uint32_t>(i) + 1),
              collector, static_cast<uint32_t>(i));
      }
      break;
    }

    case NodeKind::kReturn: {
      Value v = take_input(0);
      if (act.collector != nullptr) {
        ParMapCollector& col = *act.collector;
        col.results[act.collector_index] = std::move(v);
        if (col.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          Value package = Value::tuple(std::move(col.results));
          if (col.cont_act != nullptr) {
            deliver(col.cont_act, col.cont_node, std::move(package));
          } else {
            deliver_final(act.run, std::move(package));
          }
        }
      } else if (act.cont_act != nullptr) {
        deliver(act.cont_act, act.cont_node, std::move(v));
      } else {
        deliver_final(act.run, std::move(v));
      }
      break;
    }
  }
}

void Runtime::deliver_final(RunState* rs, Value v) {
  std::lock_guard<std::mutex> lock(rs->mu);
  rs->result = std::move(v);
  rs->have_result = true;
}

// ---------------------------------------------------------------------------
// Run driver
// ---------------------------------------------------------------------------

Value Runtime::run(const CompiledProgram& program, std::vector<Value> args) {
  return run_function(program, program.entry_template().name, std::move(args));
}

Value Runtime::run_function(const CompiledProgram& program, const std::string& name,
                            std::vector<Value> args) {
  std::lock_guard<std::mutex> run_lock(run_mu_);

  // Reset per-run state *before* anything that can throw (the function
  // lookup, FaultPlan::from_env). Otherwise a failed run would leave
  // last_stats() / node_timings() / trace_events() showing the previous
  // run's numbers — exactly the stale-counter bug a --stats user cannot
  // see past.
  reset_run_accumulators();

  const Template* tmpl = program.find(name);
  if (tmpl == nullptr) {
    throw RuntimeError("program has no function named '" + name + "'");
  }

  RunState rs;
  rs.program = &program;

  // Resolve the fault policy for this run: config, overridable by the
  // environment (mirrors the DELIRIUM_SCHEDULER pattern); an injection
  // plan attached to the registry beats the environment spec.
  rs.plan = registry_.fault_plan() != nullptr ? registry_.fault_plan()
                                              : FaultPlan::from_env();
  rs.max_retries = config_.max_retries;
  if (const char* env = std::getenv("DELIRIUM_RETRIES")) {
    rs.max_retries = static_cast<int>(std::strtol(env, nullptr, 10));
  }
  if (rs.max_retries < 0) rs.max_retries = 0;
  rs.retry_backoff_ns = config_.retry_backoff_ns > 0 ? config_.retry_backoff_ns : 0;
  rs.watchdog_budget_ns = config_.watchdog_budget_ms * 1000000;
  rs.fail_fast = config_.fail_fast;
  current_run_ = &rs;

  // Trace timestamps (and NodeTiming::start) are relative to this point.
  run_start_ticks_ = now_ticks();

  // The root activation delivers its result to the run state directly.
  // Its shared_ptr is held across the drain so the deadlock diagnostic
  // and watchdog dump can still walk the stranded activation tree.
  std::shared_ptr<Activation> root;
  auto drain = [this, &rs] {
    std::unique_lock<std::mutex> lock(rs.mu);
    auto done = [&rs] { return rs.outstanding.load(std::memory_order_acquire) == 0; };
    if (rs.watchdog_budget_ns <= 0) {
      rs.cv.wait(lock, done);
      return;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(rs.watchdog_budget_ns);
    if (!rs.cv.wait_until(lock, deadline, done)) {
      rs.watchdog_fired = true;
      lock.unlock();
      fire_watchdog(&rs);  // takes ledger/worker locks; never rs.mu
      lock.lock();
      // Cancellation purges the queues, so the drain completes unless an
      // operator is truly wedged (which no cancellation could fix).
      rs.cv.wait(lock, done);
    }
  };
  try {
    root = spawn(program, tmpl, std::move(args), nullptr, 0, &rs, fault_seq_root());
  } catch (...) {
    // The root spawn may fault after scheduling part of the activation;
    // drain whatever was enqueued before rethrowing.
    cancel_run(&rs);
    drain();
    current_run_ = nullptr;
    finish_run_bookkeeping();
    throw;
  }
  drain();
  current_run_ = nullptr;

  // Drain-time error selection: the winner is the fault with the
  // smallest deterministic sequence id, not the first one a worker
  // happened to record — identical across schedulers and worker counts.
  // A fault beats a delivered result (a faulting program must never
  // appear to succeed just because the result raced ahead).
  FaultInfo winner;
  bool have_fault = false;
  {
    std::lock_guard<std::mutex> lock(rs.mu);
    for (FaultInfo& f : rs.faults) {
      if (!have_fault || fault_before(f, winner)) {
        winner = std::move(f);
        have_fault = true;
      }
    }
  }
  std::string stranded;
  if (!have_fault && !rs.have_result && !rs.watchdog_fired) {
    stranded = render_stranded(collect_stranded(&rs));
  }
  root.reset();
  finish_run_bookkeeping();

  if (have_fault) throw FaultError(std::move(winner));
  if (rs.watchdog_fired) throw RuntimeError(rs.watchdog_message);
  if (!rs.have_result) {
    throw RuntimeError(
        "program finished without producing a result (a value was never "
        "delivered — dataflow deadlock)\nstranded activations:\n" + stranded);
  }
  return std::move(rs.result);
}

void Runtime::reset_run_accumulators() {
  activations_created_.store(0);
  peak_live_activations_.store(0);
  nodes_executed_.store(0);
  operator_invocations_.store(0);
  cow_copies_.store(0);
  cow_skipped_.store(0);
  remote_block_moves_.store(0);
  operator_ticks_.store(0);
  timing_seq_.store(0);
  sched_local_enqueues_.store(0);
  sched_injected_enqueues_.store(0);
  sched_steals_.store(0);
  sched_failed_steals_.store(0);
  sched_parks_.store(0);
  sched_wakeups_.store(0);
  faults_raised_.store(0);
  faults_injected_.store(0);
  retries_.store(0);
  retries_exhausted_.store(0);
  items_purged_.store(0);
  watchdog_fires_.store(0);
  for (auto& wd : worker_data_) wd->timings.clear();
  for (auto& a : op_arrivals_) a.store(0, std::memory_order_relaxed);
  merged_timings_.clear();
  // Zero the published snapshot too: if this run throws before its drain
  // (unknown function, bad injection spec), last_stats() must not keep
  // reporting the previous run.
  stats_ = RunStats{};
  // Trace state. Workers never write their rings while idle (tracing.h),
  // so the caller may clear them here: the clear happens-before the
  // root's enqueue, which happens-before any worker's first pop/write.
  merged_trace_.clear();
  trace_overwritten_ = 0;
  trace_seq_.store(0, std::memory_order_relaxed);
  for (TraceRing& r : trace_rings_) r.clear();
}

void Runtime::finish_run_bookkeeping() {
  stats_.activations_created = activations_created_.load();
  stats_.peak_live_activations = peak_live_activations_.load();
  stats_.nodes_executed = nodes_executed_.load();
  stats_.operator_invocations = operator_invocations_.load();
  stats_.cow_copies = cow_copies_.load();
  stats_.cow_skipped = cow_skipped_.load();
  stats_.remote_block_moves = remote_block_moves_.load();
  stats_.operator_ticks = operator_ticks_.load();
  stats_.sched_local_enqueues = sched_local_enqueues_.load();
  stats_.sched_injected_enqueues = sched_injected_enqueues_.load();
  stats_.sched_steals = sched_steals_.load();
  stats_.sched_failed_steals = sched_failed_steals_.load();
  stats_.sched_parks = sched_parks_.load();
  stats_.sched_wakeups = sched_wakeups_.load();
  stats_.faults_raised = faults_raised_.load();
  stats_.faults_injected = faults_injected_.load();
  stats_.retries = retries_.load();
  stats_.retries_exhausted = retries_exhausted_.load();
  stats_.items_purged = items_purged_.load();
  stats_.watchdog_fires = watchdog_fires_.load();
  for (auto& wd : worker_data_) {
    merged_timings_.insert(merged_timings_.end(), wd->timings.begin(), wd->timings.end());
  }
  std::sort(merged_timings_.begin(), merged_timings_.end(),
            [](const NodeTiming& a, const NodeTiming& b) { return a.seq < b.seq; });
  if (trace_enabled_) {
    // Safe to read every ring: the drain observed outstanding == 0, and
    // the acq_rel decrement chain gives this thread happens-before with
    // all workers' ring writes (tracing.h).
    for (const TraceRing& r : trace_rings_) {
      r.collect(merged_trace_);
      trace_overwritten_ += r.overwritten();
    }
    sort_trace_events(merged_trace_);
  }
}

void Runtime::print_node_timings(std::ostream& os) const {
  for (const NodeTiming& t : merged_timings_) {
    os << "call of " << t.label << " took " << t.duration << '\n';
  }
}

}  // namespace delirium
