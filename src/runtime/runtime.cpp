#include "src/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <string_view>

#include "src/runtime/instance.h"
#include "src/support/env.h"

namespace delirium {

namespace {
// Which Runtime's worker pool the current thread belongs to, if any.
// Lets the enqueue path distinguish the owner fast path (push to this
// worker's own deque) from the cross-thread injection path. A thread can
// belong to at most one pool; nested Runtimes run on distinct threads.
thread_local Runtime* tls_runtime = nullptr;
thread_local int tls_worker = -1;
}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Runtime::Runtime(const OperatorRegistry& registry, RuntimeConfig config)
    : ExecutorCore<Runtime>(registry), config_(config) {
  int n = config_.num_workers;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  config_.num_workers = n;
  const size_t sched = env_choice(
      "DELIRIUM_SCHEDULER", {"global_lock", "work_stealing"},
      config_.scheduler == SchedulerKind::kGlobalLock ? 0u : 1u);
  config_.scheduler = sched == 0 ? SchedulerKind::kGlobalLock : SchedulerKind::kWorkStealing;
  apply_exec_env_overrides(config_);
  init_exec(&config_);
  if (topology().num_domains > 1) {
    domain_rr_ =
        std::vector<std::atomic<uint32_t>>(static_cast<size_t>(topology().num_domains));
  }
  trace_enabled_ = config_.enable_tracing;
  if (trace_enabled_) {
    // One ring per worker plus one for the run's caller thread (root
    // spawn, watchdog). Allocated once; cleared per run.
    trace_rings_.resize(static_cast<size_t>(n) + 1);
    for (TraceRing& r : trace_rings_) r.init(config_.trace_capacity);
  }
  local_queues_.resize(n);
  worker_data_.reserve(n);
  for (int w = 0; w < n; ++w) worker_data_.push_back(std::make_unique<WorkerData>());
  op_last_worker_ = std::vector<std::atomic<int>>(registry.size());
  for (auto& a : op_last_worker_) a.store(-1, std::memory_order_relaxed);
  op_arrivals_ = std::vector<std::atomic<uint64_t>>(registry.size());
  const bool ws = config_.scheduler == SchedulerKind::kWorkStealing;
  if (ws) {
    ws_.reserve(n);
    for (int w = 0; w < n; ++w) ws_.push_back(std::make_unique<WsWorker>());
  }
  workers_.reserve(n);
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w, ws] { ws ? worker_loop_ws(w) : worker_loop(w); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  sched_cv_.notify_all();
  for (auto& w : ws_) w->ec.notify();
  for (std::thread& t : workers_) t.join();
}

// ---------------------------------------------------------------------------
// Tracing (docs/OBSERVABILITY.md)
// ---------------------------------------------------------------------------

void Runtime::trace_at(int64_t ts, int worker, TraceEventKind kind, int32_t op,
                       int64_t arg) {
  TraceEvent e;
  e.ts = ts;
  e.seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  e.arg = arg;
  e.op = op;
  e.worker = static_cast<int16_t>(worker);
  e.kind = kind;
  // worker -1 is a thread outside the pool — only ever the run's caller —
  // and uses the extra ring at the end.
  const size_t ring = worker >= 0 ? static_cast<size_t>(worker) : trace_rings_.size() - 1;
  trace_rings_[ring].push(e);
}

void Runtime::ws_flush_pending_trace(int worker) {
  // Called between a successful pop and the item's outstanding decrement:
  // the one window in which this worker may write its ring (tracing.h).
  WsWorker& w = *ws_[worker];
  if (w.pending_steal_fails > 0) {
    trace(worker, TraceEventKind::kStealFail, -1, w.pending_steal_fails);
    w.pending_steal_fails = 0;
  }
  if (w.has_pending_park) {
    // A park may have begun before this run started (workers idle between
    // runs); clamp so timestamps stay within the run.
    int64_t ts = w.pending_park_ts - run_start_ticks_;
    if (ts < 0) ts = 0;
    trace_at(ts, worker, TraceEventKind::kPark, -1, w.pending_park_ns);
    w.has_pending_park = false;
    w.pending_park_ns = 0;
  }
}

// ---------------------------------------------------------------------------
// Fault handling (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------------

void Runtime::ledger_add(Activation* act) {
  LedgerShard& s = ledger_[(reinterpret_cast<uintptr_t>(act) >> 6) % kLedgerShards];
  std::lock_guard<std::mutex> lock(s.mu);
  s.acts.insert(act);
}

void Runtime::ledger_remove(Activation* act) {
  LedgerShard& s = ledger_[(reinterpret_cast<uintptr_t>(act) >> 6) % kLedgerShards];
  std::lock_guard<std::mutex> lock(s.mu);
  s.acts.erase(act);
}

void Runtime::record_fault(RunState* rs, FaultInfo f, int32_t op_index) {
  counters_.faults_raised.fetch_add(1, std::memory_order_relaxed);
  if (trace_enabled_) {
    // Recorded by the faulting worker (in its safe window) or, never in
    // practice today, by the caller thread into the external ring.
    const int self = (tls_runtime == this) ? tls_worker : -1;
    trace(self, TraceEventKind::kFaultRaise, op_index, static_cast<int64_t>(f.seq));
  }
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->faults.push_back(std::move(f));
  }
  // Default mode drains naturally: every fault reachable from the inputs
  // is captured, so the smallest-sequence-id winner is schedule-
  // independent. fail_fast trades that guarantee for latency.
  if (config_.fail_fast) cancel_run(rs);
}

void Runtime::cancel_run(RunState* rs) {
  rs->cancelled.store(true, std::memory_order_release);
  // No queue surgery needed: workers observe the flag before executing
  // and purge queued items as they pop them (counted in items_purged).
  // Workers are never parked while items remain queued, so the drain
  // needs no extra wakeups.
}

std::vector<StrandedActivation> Runtime::collect_stranded(const RunState* rs) {
  std::vector<StrandedActivation> out;
  for (LedgerShard& shard : ledger_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Activation* a : shard.acts) {
      if (a->run != rs) continue;
      append_stranded(*a, out);
    }
  }
  // Attribute the dump to the owning instance in manager mode; a plain
  // single run (instance_id 0) renders exactly as before.
  if (rs->instance_id != 0) {
    for (StrandedActivation& sa : out) {
      sa.instance = rs->instance_id;
      sa.program = rs->program_name;
    }
  }
  return out;
}

std::string Runtime::dump_busy_workers() {
  std::string out;
  const Ticks now = now_ticks();
  for (size_t w = 0; w < worker_data_.size(); ++w) {
    WorkerData& wd = *worker_data_[w];
    std::lock_guard<std::mutex> lock(wd.busy_mu);
    if (wd.busy_op.empty()) continue;
    out += "  worker " + std::to_string(w) + ": executing '" + wd.busy_op + "' for " +
           std::to_string(now - wd.busy_since) + " ns\n";
  }
  if (out.empty()) out = "  (all workers idle)\n";
  return out;
}

void Runtime::fire_watchdog(RunState* rs) {
  counters_.watchdog_fires.fetch_add(1, std::memory_order_relaxed);
  // The caller thread owns the external ring, so this write is safe even
  // while workers are still draining their queues.
  trace(-1, TraceEventKind::kWatchdog, -1, rs->watchdog_budget_ns);
  std::string instance_text;
  if (rs->instance_id != 0) {
    instance_text = " (instance " + std::to_string(rs->instance_id) + ": '" +
                    rs->program_name + "')";
  }
  rs->watchdog_message = build_watchdog_message(
      std::to_string(rs->watchdog_budget_ns / 1000000) + " ms",
      "busy workers:\n" + dump_busy_workers(), render_stranded(collect_stranded(rs)),
      instance_text);
  cancel_run(rs);
}

// ---------------------------------------------------------------------------
// MachineModel hooks (called by ExecutorCore)
// ---------------------------------------------------------------------------

void Runtime::enqueue_ready(const std::shared_ptr<Activation>& act, uint32_t node,
                            Ticks /*when*/) {
  const Node& n = act->tmpl->nodes[node];
  const int priority = queue_level(n);
  int target = affinity_preference(*act, n);
  if (target >= config_.num_workers) target = -1;

  static_cast<RunState*>(act->run)->outstanding.fetch_add(1, std::memory_order_acq_rel);
  if (config_.scheduler == SchedulerKind::kWorkStealing) {
    ws_enqueue(WorkItem{act, node}, priority, target);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (target >= 0) {
      local_queues_[target][priority].push_back(WorkItem{act, node});
    } else {
      global_queue_[priority].push_back(WorkItem{act, node});
    }
    ++queued_total_;
  }
  counters_.sched_local_enqueues.fetch_add(1, std::memory_order_relaxed);
  sched_cv_.notify_one();
}

void Runtime::deliver_final(void* run, Value v, Ticks /*when*/) {
  RunState* rs = static_cast<RunState*>(run);
  std::lock_guard<std::mutex> lock(rs->mu);
  rs->result = std::move(v);
  rs->have_result = true;
}

void Runtime::trace_from_core(int worker, Ticks /*ts*/, TraceEventKind kind, int32_t op,
                              int64_t arg) {
  trace(worker, kind, op, arg);
}

void Runtime::record_fault_from_core(void* run, FaultInfo f, int32_t op_index,
                                     Ticks /*ts*/, int /*worker*/) {
  record_fault(static_cast<RunState*>(run), std::move(f), op_index);
}

namespace {
/// One-time probe of how many spin-kernel iterations fit in a
/// microsecond on this host. charge_remote spins calibrated bursts
/// between clock reads: polling now_ticks() every iteration spends most
/// of the budget inside the clock read itself, which made short
/// penalties wildly inaccurate.
uint64_t spin_iters_per_us() {
  static const uint64_t calibrated = [] {
    constexpr uint64_t kProbeIters = 1 << 16;
    volatile uint64_t sink = 0;
    const Ticks t0 = now_ticks();
    for (uint64_t i = 0; i < kProbeIters; ++i) sink += i;
    const Ticks elapsed = std::max<Ticks>(now_ticks() - t0, 1);
    return std::max<uint64_t>(kProbeIters * 1000 / static_cast<uint64_t>(elapsed), 16);
  }();
  return calibrated;
}
}  // namespace

void Runtime::charge_remote(int /*domain_from*/, int /*domain_to*/, int64_t /*bytes*/,
                            Ticks penalty_ns, Ticks& /*cost*/) {
  // Models the stall of pulling a block across the interconnect
  // (Butterfly-style NUMA) as a calibrated spin: burn ~penalty_ns of CPU
  // in bursts sized by the one-time probe, re-reading the clock only
  // between bursts so the overshoot is bounded by one burst (~1 µs).
  if (penalty_ns <= 0) return;
  const Ticks deadline = now_ticks() + penalty_ns;
  volatile uint64_t sink = 0;
  while (now_ticks() < deadline) {
    const uint64_t burst = spin_iters_per_us();
    for (uint64_t i = 0; i < burst; ++i) sink += i;
  }
}

int Runtime::pick_worker_in_domain(int domain, int home_worker) {
  // Under the w % num_domains striping rule, the workers of domain d are
  // {d, d+D, d+2D, ...} below num_workers. Rotate among them so
  // data-affinity placement spreads across the home domain instead of
  // hammering the single home worker.
  const int domains = topology().num_domains;
  if (domain < 0 || domains <= 1 || domain >= domains ||
      static_cast<size_t>(domain) >= domain_rr_.size()) {
    return home_worker;
  }
  const int members = (config_.num_workers - domain + domains - 1) / domains;
  if (members <= 1) return home_worker;
  const uint32_t k = domain_rr_[domain].fetch_add(1, std::memory_order_relaxed);
  return domain + static_cast<int>(k % static_cast<uint32_t>(members)) * domains;
}

void Runtime::charge_stall(Ticks ns, Ticks& /*cost*/) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void Runtime::charge_backoff(Ticks ns, Ticks& /*cost*/) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void Runtime::busy_begin(int worker, const OperatorDef& def) {
  if (!busy_tracking_.load(std::memory_order_relaxed)) return;
  WorkerData& wd = *worker_data_[worker];
  std::lock_guard<std::mutex> lock(wd.busy_mu);
  wd.busy_op = def.info.name;
  wd.busy_since = now_ticks();
}

void Runtime::busy_end(int worker) {
  if (!busy_tracking_.load(std::memory_order_relaxed)) return;
  WorkerData& wd = *worker_data_[worker];
  std::lock_guard<std::mutex> lock(wd.busy_mu);
  wd.busy_op.clear();
}

Ticks Runtime::op_clock_begin() {
  return config_.enable_node_timing ? now_ticks() : 0;
}

void Runtime::op_note_success(Ticks t0, const OperatorDef& def, const Activation& act,
                              int worker, Ticks /*virtual_start*/, uint64_t /*arrival*/,
                              Ticks& /*cost*/) {
  if (!config_.enable_node_timing) return;
  const Ticks dt = now_ticks() - t0;
  counters_.operator_ticks.fetch_add(dt, std::memory_order_relaxed);
  worker_data_[worker]->timings.push_back(
      NodeTiming{def.info.name, act.tmpl->name, dt, worker,
                 timing_seq_.fetch_add(1, std::memory_order_relaxed),
                 t0 - run_start_ticks_});
}

uint64_t Runtime::op_arrival(const OperatorDef& /*def*/, int op_index, bool has_plan) {
  // Arrival counters exist only for injection-plan selection here (the
  // simulator also needs them for cost replay, so it counts always).
  if (has_plan && op_index >= 0 && static_cast<size_t>(op_index) < op_arrivals_.size()) {
    return op_arrivals_[op_index].fetch_add(1, std::memory_order_relaxed);
  }
  return 0;
}

int Runtime::last_affinity_worker(int op_index) {
  // Operators registered after Runtime construction have no slot in
  // op_last_worker_ (it is sized from the registry at construction);
  // they schedule with no preference instead of indexing past the end.
  if (op_index >= 0 && static_cast<size_t>(op_index) < op_last_worker_.size()) {
    return op_last_worker_[op_index].load(std::memory_order_relaxed);
  }
  return -1;
}

void Runtime::note_affinity(int op_index, int worker) {
  if (op_index >= 0 && static_cast<size_t>(op_index) < op_last_worker_.size()) {
    op_last_worker_[op_index].store(worker, std::memory_order_relaxed);
  }
}

void Runtime::on_activation_created(Activation* act) {
  ledger_add(act);
  // Per-instance activation budget (instance.h). The first trip wins the
  // exchange, writes the deterministic diagnostic, and cancels only this
  // instance; siblings keep running. The count is schedule-independent
  // for deterministic programs, so the trip (and its message) is too.
  RunState* rs = static_cast<RunState*>(act->run);
  if (rs->max_activations == 0 && rs->manager == nullptr) return;
  const uint64_t n = rs->activations.fetch_add(1, std::memory_order_relaxed) + 1;
  if (rs->max_activations != 0 && n > rs->max_activations &&
      !rs->budget_tripped.exchange(true)) {
    {
      std::lock_guard<std::mutex> lock(rs->mu);
      rs->budget_fired = true;
      rs->budget_message = "instance budget: activation count exceeded " +
                           std::to_string(rs->max_activations) +
                           " (instance " + std::to_string(rs->instance_id) + ": '" +
                           rs->program_name + "'); cancelling instance";
    }
    cancel_run(rs);
  }
}

void Runtime::on_activation_destroyed(Activation* act) { ledger_remove(act); }

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------
//
// Every enqueue lands in per-worker storage: a worker scheduling for
// itself (or with no affinity preference) pushes to its own lock-free
// deque; everything else — cross-worker affinity targets and calls from
// threads outside the pool — goes through the target's MPSC inbox. Idle
// workers park on a per-worker eventcount; enqueuers wake a parked
// worker only when one is advertised (one relaxed load on the hot path).
// The seq_cst fences below pair with the parking protocol in
// worker_loop_ws: either the enqueuer observes the parked flag, or the
// parking worker's recheck observes the enqueued item.

void Runtime::ws_enqueue(WorkItem item, int priority, int target) {
  const int self = (tls_runtime == this) ? tls_worker : -1;
  if (self >= 0 && (target < 0 || target == self)) {
    if (!ws_[self]->deques[priority].push(std::move(item))) {
      // Ring full: spill into the own inbox — unbounded, still popped by
      // this worker, so no work is ever dropped.
      ws_[self]->inbox[priority].push(std::move(item));
    }
    counters_.sched_local_enqueues.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (num_parked_.load(std::memory_order_relaxed) > 0) ws_wake_any_parked();
    return;
  }

  int dest = target;
  if (dest < 0) {
    // Injection from outside the pool with no preference: prefer a
    // parked worker (it will wake anyway), else round-robin.
    const size_t n = ws_.size();
    const uint32_t start = inject_rr_.fetch_add(1, std::memory_order_relaxed);
    dest = static_cast<int>(start % n);
    for (size_t i = 0; i < n; ++i) {
      const size_t w = (start + i) % n;
      if (ws_[w]->parked.load(std::memory_order_acquire)) {
        dest = static_cast<int>(w);
        break;
      }
    }
  }
  ws_[dest]->inbox[priority].push(std::move(item));
  counters_.sched_injected_enqueues.fetch_add(1, std::memory_order_relaxed);
  // A worker injecting is mid-execute (its safe window); anything else is
  // the run's caller, which records into the external ring.
  trace(self, TraceEventKind::kInject, -1, dest);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (ws_[dest]->parked.load(std::memory_order_relaxed)) ws_wake(dest);
}

void Runtime::ws_wake(int worker) {
  // Claim the parked flag: a flurry of enqueues costs one notify per
  // park episode, not one per item. The worker re-advertises the flag
  // before every wait, and treats a claimed flag as a wakeup (see the
  // commit condition in worker_loop_ws), so a claim is never lost.
  if (!ws_[worker]->parked.exchange(false, std::memory_order_seq_cst)) return;
  counters_.sched_wakeups.fetch_add(1, std::memory_order_relaxed);
  if (trace_enabled_) {
    // Attributed to the waking thread's ring: enqueuing workers are in
    // their safe window, everything else is the caller's external ring.
    const int self = (tls_runtime == this) ? tls_worker : -1;
    trace(self, TraceEventKind::kWake, -1, worker);
  }
  ws_[worker]->ec.notify();
}

void Runtime::ws_wake_any_parked() {
  const size_t n = ws_.size();
  const uint32_t start = inject_rr_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    const size_t w = (start + i) % n;
    if (ws_[w]->parked.load(std::memory_order_acquire)) {
      ws_wake(static_cast<int>(w));
      return;
    }
  }
}

bool Runtime::ws_try_pop(int worker, WorkItem& out) {
  WsWorker& self = *ws_[worker];
  // Priority-major over the worker's own sources: the deque (LIFO — the
  // cache-warm path, and depth-first like the priority scheme it
  // serves) before the injection inbox (FIFO).
  for (int pri = 0; pri < kQueueLevels; ++pri) {
    if (self.deques[pri].pop(out)) return true;
    if (self.inbox[pri].pop(out)) return true;
  }
  // Dry: steal FIFO from victims' deque tops, priority-major across the
  // pool, starting from a rotating victim so thieves spread out. Under a
  // multi-domain topology with locality_scheduling, each priority level
  // is scanned twice — same-domain victims first, then cross-domain — so
  // a higher-priority item anywhere still wins, but within a level the
  // thief prefers work whose producer shares its memory domain.
  const size_t n = ws_.size();
  if (n > 1) {
    const MemoryTopology& topo = topology();
    const bool domain_aware =
        exec_config().locality_scheduling && topo.num_domains > 1;
    const int my_domain = topo.domain_of(worker);
    const size_t base = ++self.steal_rr;
    // pass < 0: scan every victim. pass 0: same-domain only. pass 1:
    // cross-domain only. The local/remote counter split is always keyed
    // off the victim's actual domain, so it stays honest even when the
    // scan order is locality-blind.
    const auto steal_scan = [&](int pri, int pass) {
      for (size_t i = 0; i < n; ++i) {
        const size_t victim = (base + i) % n;
        if (victim == static_cast<size_t>(worker)) continue;
        const bool same = topo.domain_of(static_cast<int>(victim)) == my_domain;
        if (pass >= 0 && same != (pass == 0)) continue;
        if (ws_[victim]->deques[pri].steal(out)) {
          counters_.sched_steals.fetch_add(1, std::memory_order_relaxed);
          (same ? counters_.sched_local_steals : counters_.sched_remote_steals)
              .fetch_add(1, std::memory_order_relaxed);
          if (trace_enabled_) {
            // Holding the stolen item opens the safe window: flush what
            // accumulated while idle, then record the steal itself.
            ws_flush_pending_trace(worker);
            trace(worker, TraceEventKind::kSteal, -1, static_cast<int64_t>(victim));
          }
          return true;
        }
      }
      return false;
    };
    for (int pri = 0; pri < kQueueLevels; ++pri) {
      if (domain_aware) {
        if (steal_scan(pri, 0) || steal_scan(pri, 1)) return true;
      } else {
        if (steal_scan(pri, -1)) return true;
      }
    }
    counters_.sched_failed_steals.fetch_add(1, std::memory_order_relaxed);
    // A dry scan happens while holding no item — outside the safe window
    // — so it only bumps an owner-private counter, flushed at the next
    // successful pop (see tracing.h).
    if (trace_enabled_) ++self.pending_steal_fails;
  }
  return false;
}

bool Runtime::ws_has_work(int worker) const {
  const WsWorker& self = *ws_[worker];
  for (int pri = 0; pri < kQueueLevels; ++pri) {
    if (!self.deques[pri].empty()) return true;
    if (!self.inbox[pri].empty()) return true;
  }
  for (size_t w = 0; w < ws_.size(); ++w) {
    if (w == static_cast<size_t>(worker)) continue;
    for (int pri = 0; pri < kQueueLevels; ++pri) {
      if (!ws_[w]->deques[pri].empty()) return true;
    }
  }
  return false;
}

void Runtime::worker_loop_ws(int worker) {
  tls_runtime = this;
  tls_worker = worker;
  WsWorker& self = *ws_[worker];
  for (;;) {
    WorkItem item;
    if (ws_try_pop(worker, item)) {
      if (trace_enabled_) ws_flush_pending_trace(worker);
      execute(item, worker);
      item.act.reset();  // release before the next blocking wait
      continue;
    }
    // Nothing visible anywhere: advertise as parked, then recheck, then
    // sleep. The fence pairs with the enqueuers' fences: either they see
    // the parked flag (and notify), or the recheck sees their item.
    self.parked.store(true, std::memory_order_seq_cst);
    num_parked_.fetch_add(1, std::memory_order_seq_cst);
    const uint64_t epoch = self.ec.prepare_wait();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Sleep only while our flag is still up: a waker claims the flag
    // (exchange to false) before notifying, so a cleared flag means a
    // wakeup already happened — never sleep through it, or a later
    // inbox injection (unstealable) would see the flag down, skip its
    // notify, and strand the item.
    if (!stopping_.load(std::memory_order_acquire) && !ws_has_work(worker) &&
        self.parked.load(std::memory_order_seq_cst)) {
      counters_.sched_parks.fetch_add(1, std::memory_order_relaxed);
      if (trace_enabled_) {
        // Parked while holding no item — outside the ring's safe window.
        // Accumulate the interval owner-privately; the next successful
        // pop flushes it as one kPark event (arg = total ns slept).
        const Ticks t0 = now_ticks();
        self.ec.commit_wait(epoch);
        if (!self.has_pending_park) {
          self.has_pending_park = true;
          self.pending_park_ts = t0;
        }
        self.pending_park_ns += now_ticks() - t0;
      } else {
        self.ec.commit_wait(epoch);
      }
    }
    self.parked.store(false, std::memory_order_relaxed);
    num_parked_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_acquire)) return;
  }
}

bool Runtime::pop_item(int worker, WorkItem& out) {
  // Priority-major: a higher-priority item anywhere beats a lower-priority
  // one here. Within a level: own queue, then global, then steal — with
  // the steal scan visiting same-domain workers first under a
  // multi-domain topology, mirroring the work-stealing executor.
  const MemoryTopology& topo = topology();
  const bool domain_aware = exec_config().locality_scheduling && topo.num_domains > 1;
  const int my_domain = topo.domain_of(worker);
  for (int pri = 0; pri < kQueueLevels; ++pri) {
    auto& own = local_queues_[worker][pri];
    if (!own.empty()) {
      out = std::move(own.front());
      own.pop_front();
      return true;
    }
    if (!global_queue_[pri].empty()) {
      out = std::move(global_queue_[pri].front());
      global_queue_[pri].pop_front();
      return true;
    }
    const int passes = domain_aware ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      for (size_t other = 0; other < local_queues_.size(); ++other) {
        if (domain_aware) {
          const bool same = topo.domain_of(static_cast<int>(other)) == my_domain;
          if (same != (pass == 0)) continue;
        }
        auto& q = local_queues_[other][pri];
        if (!q.empty()) {
          out = std::move(q.front());
          q.pop_front();
          return true;
        }
      }
    }
  }
  return false;
}

void Runtime::worker_loop(int worker) {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || queued_total_ > 0;
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (!pop_item(worker, item)) continue;
      --queued_total_;
    }
    execute(item, worker);
    item.act.reset();  // release before the next blocking wait
  }
}

void Runtime::execute(const WorkItem& item, int worker) {
  RunState* rs = static_cast<RunState*>(item.act->run);
  const Node& n = item.act->tmpl->nodes[item.node];
  const int32_t op_index = n.kind == NodeKind::kOperator ? n.op_index : -1;
  if (rs->cancelled.load(std::memory_order_acquire)) {
    // Cancelled (fail_fast fault or watchdog): discard instead of run.
    counters_.items_purged.fetch_add(1, std::memory_order_relaxed);
    trace(worker, TraceEventKind::kPurge, op_index);
  } else {
    try {
      execute_node(item.act, item.node, worker, 0);
    } catch (...) {
      // Operator faults are captured inside the core's kOperator case
      // (they carry injection/retry context); anything reaching here is a
      // coordination-level failure at this node.
      record_fault(rs, make_fault(*item.act, item.node, std::current_exception()),
                   op_index);
    }
  }
  if (rs->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (rs->manager != nullptr) {
      // Manager mode: the drained instance is finalized inline on this
      // worker (outcome selection, latency, counters) — the submitting
      // thread never blocks per instance.
      rs->manager->on_instance_drained(rs);
    } else {
      std::lock_guard<std::mutex> lock(rs->mu);
      rs->cv.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Run driver
// ---------------------------------------------------------------------------

Value Runtime::run(const CompiledProgram& program, std::vector<Value> args) {
  return run_function(program, program.entry_template().name, std::move(args));
}

Value Runtime::run_function(const CompiledProgram& program, const std::string& name,
                            std::vector<Value> args) {
  std::lock_guard<std::mutex> run_lock(run_mu_);

  // Reset per-run state *before* anything that can throw (the function
  // lookup, FaultPlan::from_env). Otherwise a failed run would leave
  // last_stats() / node_timings() / trace_events() showing the previous
  // run's numbers — exactly the stale-counter bug a --stats user cannot
  // see past.
  reset_run_accumulators();

  const Template* tmpl = program.find(name);
  if (tmpl == nullptr) {
    throw RuntimeError("program has no function named '" + name + "'");
  }

  // Resolve the fault policy for this run (config + environment
  // overrides; an injection plan attached to the registry beats the
  // environment spec) — shared with SimRuntime via the core.
  resolve_run_policy();

  RunState rs;
  rs.watchdog_budget_ns = config_.watchdog_budget_ms * 1000000;
  busy_tracking_.store(rs.watchdog_budget_ns > 0, std::memory_order_relaxed);

  // Trace timestamps (and NodeTiming::start) are relative to this point.
  run_start_ticks_ = now_ticks();

  // The root activation delivers its result to the run state directly.
  // Its shared_ptr is held across the drain so the deadlock diagnostic
  // and watchdog dump can still walk the stranded activation tree.
  std::shared_ptr<Activation> root;
  auto drain = [this, &rs] {
    std::unique_lock<std::mutex> lock(rs.mu);
    auto done = [&rs] { return rs.outstanding.load(std::memory_order_acquire) == 0; };
    if (rs.watchdog_budget_ns <= 0) {
      rs.cv.wait(lock, done);
      return;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(rs.watchdog_budget_ns);
    if (!rs.cv.wait_until(lock, deadline, done)) {
      rs.watchdog_fired = true;
      lock.unlock();
      fire_watchdog(&rs);  // takes ledger/worker locks; never rs.mu
      lock.lock();
      // Cancellation purges the queues, so the drain completes unless an
      // operator is truly wedged (which no cancellation could fix).
      rs.cv.wait(lock, done);
    }
  };
  try {
    root = spawn(&program, tmpl, std::move(args), nullptr, 0, fault_seq_root(), 0, &rs);
  } catch (...) {
    // The root spawn may fault after scheduling part of the activation;
    // drain whatever was enqueued before rethrowing.
    cancel_run(&rs);
    drain();
    finish_run_bookkeeping();
    throw;
  }
  drain();

  // Drain-time error selection: the winner is the fault with the
  // smallest deterministic sequence id, not the first one a worker
  // happened to record — identical across schedulers and worker counts.
  // A fault beats a delivered result (a faulting program must never
  // appear to succeed just because the result raced ahead).
  FaultInfo winner;
  bool have_fault = false;
  {
    std::lock_guard<std::mutex> lock(rs.mu);
    const int best = smallest_fault_index(rs.faults);
    if (best >= 0) {
      winner = std::move(rs.faults[static_cast<size_t>(best)]);
      have_fault = true;
    }
  }
  std::string stranded;
  if (!have_fault && !rs.have_result && !rs.watchdog_fired) {
    stranded = render_stranded(collect_stranded(&rs));
  }
  root.reset();
  finish_run_bookkeeping();

  if (have_fault) throw FaultError(std::move(winner));
  if (rs.watchdog_fired) throw RuntimeError(rs.watchdog_message);
  if (!rs.have_result) {
    throw RuntimeError(build_deadlock_message(/*simulated=*/false, stranded));
  }
  return std::move(rs.result);
}

void Runtime::reset_run_accumulators() {
  reset_core_run_state();
  timing_seq_.store(0);
  for (auto& wd : worker_data_) wd->timings.clear();
  for (auto& a : op_arrivals_) a.store(0, std::memory_order_relaxed);
  merged_timings_.clear();
  // Zero the published snapshot too: if this run throws before its drain
  // (unknown function, bad injection spec), last_stats() must not keep
  // reporting the previous run.
  stats_ = RunStats{};
  // Trace state. Workers never write their rings while idle (tracing.h),
  // so the caller may clear them here: the clear happens-before the
  // root's enqueue, which happens-before any worker's first pop/write.
  merged_trace_.clear();
  trace_overwritten_ = 0;
  trace_seq_.store(0, std::memory_order_relaxed);
  for (TraceRing& r : trace_rings_) r.clear();
}

void Runtime::finish_run_bookkeeping() {
  snapshot_core_stats(stats_);
  for (auto& wd : worker_data_) {
    merged_timings_.insert(merged_timings_.end(), wd->timings.begin(), wd->timings.end());
  }
  std::sort(merged_timings_.begin(), merged_timings_.end(),
            [](const NodeTiming& a, const NodeTiming& b) { return a.seq < b.seq; });
  if (trace_enabled_) {
    // Safe to read every ring: the drain observed outstanding == 0, and
    // the acq_rel decrement chain gives this thread happens-before with
    // all workers' ring writes (tracing.h).
    for (const TraceRing& r : trace_rings_) {
      r.collect(merged_trace_);
      trace_overwritten_ += r.overwritten();
    }
    sort_trace_events(merged_trace_);
  }
}

void Runtime::print_node_timings(std::ostream& os) const {
  for (const NodeTiming& t : merged_timings_) {
    os << "call of " << t.label << " took " << t.duration << '\n';
  }
}

}  // namespace delirium
